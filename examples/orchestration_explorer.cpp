/// \file orchestration_explorer.cpp
/// Explore the orchestrated optimization space of one design: sample
/// random and priority-guided decision vectors, summarize the QoR
/// distributions (the paper's Fig. 2 view) and persist the best decision
/// vector as CSV.
///
/// Usage:  orchestration_explorer [design] [num_samples] [seed]
///   design       registry name (b07..c5315) or a .bench / .aag file
///   num_samples  per strategy (default 80)
///   seed         RNG seed (default 1)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuits/registry.hpp"
#include "core/sampling.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "opt/orchestrate.hpp"
#include "util/progress.hpp"
#include "util/stats.hpp"

using bg::aig::Aig;

namespace {

Aig load_design(const std::string& name) {
    if (name.ends_with(".bench")) {
        return bg::io::read_bench_file(name);
    }
    if (name.ends_with(".aag")) {
        return bg::io::read_aiger_file(name);
    }
    return bg::circuits::make_benchmark_scaled(name, 0.5);
}

void report(const char* label,
            const std::vector<bg::core::SampleRecord>& samples,
            std::size_t original) {
    std::vector<double> sizes;
    sizes.reserve(samples.size());
    for (const auto& s : samples) {
        sizes.push_back(static_cast<double>(s.final_size));
    }
    const auto sum = bg::summarize(sizes);
    const auto hist = bg::histogram(sizes, 24);
    std::printf("%-7s n=%zu  size: mean %.1f  sd %.1f  min %.0f  max %.0f\n",
                label, sum.count, sum.mean, sum.stddev, sum.min, sum.max);
    std::printf("        density %s  (reduction up to %.1f%%)\n",
                bg::sparkline(hist).c_str(),
                100.0 * (1.0 - sum.min / static_cast<double>(original)));
}

}  // namespace

int main(int argc, char** argv) {
    const std::string design_name = argc > 1 ? argv[1] : "b11";
    const std::size_t n =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 80;
    const std::uint64_t seed =
        argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

    const Aig design = load_design(design_name);
    std::printf("design %s: %s\n", design_name.c_str(),
                design.to_string().c_str());

    bg::Stopwatch sw;
    const auto random = bg::core::generate_random_samples(design, n, seed);
    const auto guided = bg::core::generate_guided_samples(design, n, seed);
    std::printf("sampled 2x%zu decision vectors in %.1fs\n\n", n,
                sw.seconds());

    report("random", random, design.num_ands());
    report("guided", guided, design.num_ands());

    // Persist the best decision vector found.
    const bg::core::SampleRecord* best = nullptr;
    for (const auto* batch : {&random, &guided}) {
        for (const auto& s : *batch) {
            if (best == nullptr || s.reduction > best->reduction) {
                best = &s;
            }
        }
    }
    if (best != nullptr) {
        const auto path = design_name + "_best_decisions.csv";
        bg::opt::save_decisions_csv(path, best->decisions);
        std::printf("\nbest sample removes %d nodes (%zu -> %zu); decision "
                    "vector saved to %s\n",
                    best->reduction, design.num_ands(), best->final_size,
                    path.c_str());
    }
    return 0;
}
