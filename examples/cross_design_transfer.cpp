/// \file cross_design_transfer.cpp
/// The paper's headline generalization claim (§IV-B): a predictor trained
/// on ONE design transfers to unseen designs.  Train on a small design,
/// then drive the flow on different (and larger) ones with the same
/// weights, reporting the prediction/ground-truth rank correlation per
/// target design.
///
/// Usage:  cross_design_transfer [train_design] [test_design ...]

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"
#include "util/progress.hpp"
#include "util/stats.hpp"

using bg::aig::Aig;

int main(int argc, char** argv) {
    const std::string train_name = argc > 1 ? argv[1] : "b11";
    std::vector<std::string> test_names;
    for (int i = 2; i < argc; ++i) {
        test_names.emplace_back(argv[i]);
    }
    if (test_names.empty()) {
        test_names = {"b12", "c2670"};
    }

    // Train on the source design only.
    const Aig train_design =
        bg::circuits::make_benchmark_scaled(train_name, 0.4);
    std::printf("training design %s: %s\n", train_name.c_str(),
                train_design.to_string().c_str());
    const auto records =
        bg::core::generate_guided_samples(train_design, 48, 3);
    const auto ds = bg::core::build_dataset(train_design, records);
    bg::core::BoolGebraModel model(bg::core::ModelConfig::quick());
    auto tc = bg::core::TrainConfig::quick();
    tc.epochs = 50;
    (void)bg::core::train_model(model, ds, tc);

    // Transfer: infer on unseen designs (different graphs and sizes —
    // GraphSAGE weights are graph-agnostic).
    bg::TablePrinter table(
        {"test design", "nodes", "spearman", "pearson", "BG-Best ratio"});
    for (const auto& name : test_names) {
        const Aig target = bg::circuits::make_benchmark_scaled(name, 0.4);
        // Ground truth for correlation: evaluate a fresh random batch.
        const auto eval =
            bg::core::generate_random_samples(target, 32, 11);
        const auto target_ds = bg::core::build_dataset(target, eval);
        std::vector<std::size_t> all(target_ds.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] = i;
        }
        const auto preds = model.predict(target_ds, all);
        std::vector<double> labels;
        for (const auto& s : target_ds.samples()) {
            labels.push_back(s.label);
        }

        bg::core::FlowConfig fc;
        fc.num_samples = 60;
        fc.top_k = 8;
        fc.seed = 5;
        const auto flow = bg::core::run_flow(target, model, fc);

        table.add_row({name, std::to_string(target.num_ands()),
                       bg::TablePrinter::fmt(bg::spearman(preds, labels)),
                       bg::TablePrinter::fmt(bg::pearson(preds, labels)),
                       bg::TablePrinter::fmt(flow.bg_best_ratio)});
    }
    std::printf("\nmodel trained on %s only; all rows below are unseen "
                "designs\n\n",
                train_name.c_str());
    table.print();
    return 0;
}
