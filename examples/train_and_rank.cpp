/// \file train_and_rank.cpp
/// End-to-end BoolGebra on one design: build the training set from
/// priority-guided samples, train the GraphSAGE predictor, run the
/// sample -> prune -> evaluate flow and compare against the stand-alone
/// rewrite / resub / refactor baselines (the Table I experiment for a
/// single design).
///
/// Usage:  train_and_rank [design] [num_train_samples] [epochs]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"
#include "opt/standalone.hpp"
#include "util/progress.hpp"

using bg::aig::Aig;
using bg::opt::OpKind;

int main(int argc, char** argv) {
    const std::string design_name = argc > 1 ? argv[1] : "b11";
    const std::size_t num_samples =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 60;
    const std::size_t epochs =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 40;

    const Aig design = bg::circuits::make_benchmark_scaled(design_name, 0.5);
    std::printf("design %s: %s\n", design_name.c_str(),
                design.to_string().c_str());

    // 1. training data: priority-guided samples, labels normalized.
    bg::Stopwatch sw;
    const auto records =
        bg::core::generate_guided_samples(design, num_samples, 7);
    const auto ds = bg::core::build_dataset(design, records);
    std::printf("dataset: %zu samples, best reduction %d (%.1fs)\n",
                ds.size(), ds.best_reduction(), sw.seconds());

    // 2. train the predictor (quick widths; same architecture as paper).
    sw.reset();
    bg::core::BoolGebraModel model(bg::core::ModelConfig::quick());
    auto tc = bg::core::TrainConfig::quick();
    tc.epochs = epochs;
    const auto tr = bg::core::train_model(model, ds, tc);
    std::printf("trained %zu parameters for %zu epochs: test MSE %.5f "
                "(%.1fs)\n",
                model.num_parameters(), epochs, tr.final_test_loss,
                sw.seconds());

    // Persist and reload the weights, proving the round trip works.
    model.save("boolgebra_model.bin");
    bg::core::BoolGebraModel reloaded(bg::core::ModelConfig::quick());
    reloaded.load("boolgebra_model.bin");

    // 3. flow: sample, prune with the model, evaluate top-10.
    sw.reset();
    bg::core::FlowConfig fc;
    fc.num_samples = 120;
    fc.top_k = 10;
    fc.seed = 13;
    const auto flow = bg::core::run_flow(design, reloaded, fc);
    std::printf("flow: scored %zu samples, evaluated top %zu (%.1fs)\n\n",
                flow.predictions.size(), flow.selected.size(), sw.seconds());

    // 4. report against stand-alone baselines.
    bg::TablePrinter table({"method", "size", "ratio"});
    const auto orig = static_cast<double>(design.num_ands());
    for (const OpKind op : {OpKind::Rewrite, OpKind::Resub,
                            OpKind::Refactor}) {
        Aig g = design;
        (void)bg::opt::standalone_pass(g, op);
        table.add_row({bg::opt::to_string(op),
                       std::to_string(g.num_ands()),
                       bg::TablePrinter::fmt(
                           static_cast<double>(g.num_ands()) / orig)});
    }
    table.add_row({"BG-Mean", "-",
                   bg::TablePrinter::fmt(flow.bg_mean_ratio)});
    table.add_row(
        {"BG-Best",
         std::to_string(design.num_ands() -
                        static_cast<std::size_t>(flow.best_reduction)),
         bg::TablePrinter::fmt(flow.bg_best_ratio)});
    table.print();
    return 0;
}
