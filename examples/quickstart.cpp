/// \file quickstart.cpp
/// Five-minute tour of the BoolGebra API, recreating the paper's Fig. 1
/// story: a small redundant AIG where each stand-alone optimization
/// (rw / rs / rf) finds something, but an orchestrated per-node
/// assignment (Algorithm 1) beats all three.

#include <cstdio>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "opt/orchestrate.hpp"
#include "opt/standalone.hpp"
#include "util/progress.hpp"
#include "util/rng.hpp"

using namespace bg::aig;  // NOLINT: example brevity
using bg::opt::OpKind;

namespace {

/// A small network in the spirit of the paper's Fig. 1: a degenerate mux
/// (rw food), a distributed product (rf food) and a re-derived conjunction
/// (rs food), entangled through shared fanins.
Aig build_example() {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit d = g.add_pi();
    const Lit e = g.add_pi();

    // Degenerate mux: f1 = e ? (a b) : (a b) -- collapses to a b.
    const Lit ab = g.and_(a, b);
    const Lit f1 = g.or_(g.and_(e, ab), g.and_(lit_not(e), ab));

    // Distributed product: f2 = c d + c e  (factors to c (d + e)).
    const Lit f2 = g.or_(g.and_(c, d), g.and_(c, e));

    // Re-derived conjunction: (a b) d built again as a (b d).
    const Lit g1 = g.and_(ab, d);
    const Lit g2 = g.and_(a, g.and_(b, d));

    g.add_po(g.and_(f1, f2));
    g.add_po(g1);
    g.add_po(g.or_(g2, e));
    return g;
}

}  // namespace

int main() {
    const Aig original = build_example();
    std::printf("original AIG: %s, depth %u\n",
                original.to_string().c_str(), Aig(original).depth());

    // --- stand-alone passes (what ABC's rewrite/resub/refactor do) ------
    for (const OpKind op : {OpKind::Rewrite, OpKind::Resub,
                            OpKind::Refactor}) {
        Aig g = original;
        const auto res = bg::opt::standalone_pass(g, op);
        std::printf("stand-alone %-4s : %3zu -> %3zu nodes (%d removed)\n",
                    bg::opt::to_string(op).c_str(), res.original_size,
                    res.final_size, res.reduction());
        if (!likely_equivalent(original, g)) {
            std::printf("ERROR: function changed!\n");
            return 1;
        }
    }

    // --- orchestrated traversals (Algorithm 1): search a few random
    // per-node assignments from the 3^N space and keep the best ----------
    bg::Rng rng(7);
    Aig best_graph = original;
    bg::opt::DecisionVector best_decisions;
    for (int trial = 0; trial < 64; ++trial) {
        Aig g = original;
        bg::opt::DecisionVector decisions(g.num_slots(), OpKind::None);
        for (Var v = 0; v < g.num_slots(); ++v) {
            if (g.is_and(v)) {
                decisions[v] = bg::opt::op_from_index(
                    static_cast<int>(rng.next_below(3)));
            }
        }
        (void)bg::opt::orchestrate(g, decisions);
        if (g.num_ands() < best_graph.num_ands()) {
            best_graph = g;
            best_decisions = decisions;
        }
    }
    std::printf("orchestrated     :  %zu -> %3zu nodes (best of 64 random "
                "per-node assignments)\n",
                original.num_ands(), best_graph.num_ands());
    if (check_equivalence(original, best_graph) != CecVerdict::Equivalent) {
        std::printf("ERROR: function changed!\n");
        return 1;
    }
    std::printf("equivalence      : %s\n",
                to_string(check_equivalence(original, best_graph)).c_str());
    std::printf("\nthe mixed per-node assignment beats every stand-alone "
                "pass — the paper's Fig. 1 observation.\n");
    return 0;
}
