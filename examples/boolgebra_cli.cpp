/// \file boolgebra_cli.cpp
/// A small synthesis shell over the BoolGebra library — the kind of tool a
/// downstream user would actually drive in scripts.
///
/// Commands:
///   stats    <design> [--check]                print size / depth / IO;
///            --check also runs the strict structural integrity audit
///            (FanoutArena accounting, strash consistency, ref counts)
///   opt      <design> --ops rw,rs,rf[,b] [--rounds N] [-o out.{aag,aig,bench}]
///   sample   <design> [-n N] [--guided] [--seed S] [--save-best best.csv]
///   train    <design> [-n N] [--epochs E] [--seed S]
///            [--heads size,depth,luts] [--lut-k K] [-o weights.bin]
///            generate guided samples, build the dataset and train the
///            predictor; --heads picks the metric heads (multi-head
///            checkpoints let depth/LUT flows rank under the matching
///            head instead of size-as-proxy), --lut-k sets the mapping K
///            for LUT labels (measured only when the luts head is on)
///   flow     <design...>|--all [--samples N] [--top-k K] [--rounds R]
///            [--workers W] [--intra-workers W] [--scale S] [--seed S]
///            [--model weights.bin] [--random] [--incremental-features]
///            [--objective size|depth|luts[:K]|weighted:a,b]
///            batched GNN-guided flow over one or many designs; design
///            arguments may be registry globs (e.g. 'b1*'); --random
///            replaces priority-guided sampling with uniform sampling;
///            --objective picks the cost model candidates are ranked and
///            committed under (default size = AND count); the pruning
///            scores come from the model head matching the objective
///            (size stands in when the checkpoint lacks the head);
///            --intra-workers parallelizes candidate checks *inside* each
///            orchestration pass (bit-identical to sequential);
///            --incremental-features maintains per-design features across
///            committed rounds instead of rebuilding them
///   serve    <design...>|--all [flow flags] [--repeat N]
///            [--swap-model weights.bin|fresh] [--swap-after N]
///            long-lived FlowService demo: submits every design (repeated
///            --repeat times) to the serving queue, optionally hot-swaps
///            the model mid-stream, and reports latency percentiles and
///            throughput
///   serve    --listen PORT [--bind ADDR] [--tenant NAME[:WEIGHT[:CAP]]]...
///            [flow flags] network server mode: accept BGNP connections
///            and serve jobs on the multi-tenant FlowService until a
///            client sends shutdown (tenant names double as the Hello
///            bearer tokens; no --tenant = the default tenant only)
///   client   <host:port> flow <design...> [--samples N] [--top-k K]
///            [--rounds R] [--seed S] [--objective O] [--verify]
///            [--timeout SEC] [--token T] [--send-spec] [--progress]
///            [--scale S] submit designs over the wire and wait for the
///            results (--send-spec sends the spec string for server-side
///            resolution instead of uploading the AIGER blob)
///   client   <host:port> stats [--token T]      remote ServiceStats
///   client   <host:port> shutdown [--token T]   ask the server to exit
///   apply    <design> --decisions d.csv [-o out]
///   cec      <design1> <design2>               equivalence check (sim + SAT)
///   map      <design> [-k K]                   K-LUT technology mapping
///   convert  <in> <out>                        format conversion
///   list                                       registry designs
///
/// <design> is a registry name (b07..c5315, optionally name@scale, e.g.
/// b11@0.25) or a path ending in .aag / .aig / .bench.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aig/cec.hpp"
#include "circuits/design_source.hpp"
#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow_engine.hpp"
#include "core/flow_service.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "opt/balance.hpp"
#include "opt/lut_map.hpp"
#include "opt/objective.hpp"
#include "opt/orchestrate.hpp"
#include "opt/standalone.hpp"
#include "bdd/cec_bdd.hpp"
#include "sat/cec_sat.hpp"
#include "util/progress.hpp"
#include "util/stats.hpp"
#include "verify/portfolio.hpp"

using bg::aig::Aig;

namespace {

int usage() {
    std::puts(
        "usage: boolgebra_cli <command> [args]\n"
        "  stats    <design> [--check]\n"
        "  opt      <design> --ops rw,rs,rf[,b] [--rounds N] [-o out]\n"
        "  sample   <design> [-n N] [--guided] [--seed S] [--save-best f]\n"
        "  train    <design> [-n N] [--epochs E] [--seed S]\n"
        "           [--heads size,depth,luts] [--lut-k K] [-o weights.bin]\n"
        "  flow     <design...>|--all [--samples N] [--top-k K] [--rounds R]\n"
        "           [--workers W] [--intra-workers W] [--scale S] [--seed S]\n"
        "           [--model f] [--random] [--verify]\n"
        "           [--objective size|depth|luts[:K]|weighted:a,b]\n"
        "           [--incremental-features]\n"
        "  serve    <design...>|--all [flow flags] [--repeat N]\n"
        "           [--swap-model f|fresh] [--swap-after N]\n"
        "  serve    --listen PORT [--bind ADDR]\n"
        "           [--tenant NAME[:WEIGHT[:CAP]]]... [flow flags]\n"
        "  client   <host:port> flow <design...> [--samples N] [--top-k K]\n"
        "           [--rounds R] [--seed S] [--objective O] [--verify]\n"
        "           [--timeout SEC] [--token T] [--send-spec] [--progress]\n"
        "  client   <host:port> stats|shutdown [--token T]\n"
        "  apply    <design> --decisions d.csv [-o out]\n"
        "  cec      <design1> <design2> [--engine sim|bdd|sat|portfolio]\n"
        "  map      <design> [-k K]\n"
        "  convert  <in> <out>\n"
        "  list\n"
        "designs: registry names (b07..c5315, name@scale), registry globs\n"
        "         (b1?), file:<path> / file:<glob> AIGER or BENCH specs,\n"
        "         or bare .aag/.aig/.bench paths");
    return 2;
}

Aig load_design(const std::string& spec) {
    return bg::circuits::load_design_spec(spec);
}

void save_design(const Aig& g, const std::string& path) {
    if (path.ends_with(".bench")) {
        bg::io::write_bench_file(g, path);
    } else if (path.ends_with(".aig")) {
        bg::io::write_aiger_binary_file(g, path);
    } else {
        bg::io::write_aiger_file(g, path);
    }
    std::printf("wrote %s\n", path.c_str());
}

std::optional<std::string> flag_value(std::vector<std::string>& args,
                                      const char* name) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == name) {
            std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    return std::nullopt;
}

bool flag_present(std::vector<std::string>& args, const char* name) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

int cmd_stats(Aig g, bool check) {
    std::printf("pis   : %zu\n", g.num_pis());
    std::printf("pos   : %zu\n", g.num_pos());
    std::printf("ands  : %zu\n", g.num_ands());
    std::printf("depth : %u\n", g.depth());
    if (check) {
        g.check_integrity(Aig::CheckLevel::Strict);
        std::printf("check : strict integrity OK (fanout arena, strash, "
                    "ref counts)\n");
    }
    return 0;
}

int cmd_opt(Aig g, std::vector<std::string> args) {
    const auto ops_arg = flag_value(args, "--ops");
    const auto rounds_arg = flag_value(args, "--rounds");
    const auto out_arg = flag_value(args, "-o");
    const std::string ops = ops_arg.value_or("rw,rs,rf");
    const int rounds = rounds_arg ? std::atoi(rounds_arg->c_str()) : 1;

    std::printf("start: ands=%zu depth=%u\n", g.num_ands(), g.depth());
    for (int r = 0; r < rounds; ++r) {
        std::size_t pos = 0;
        while (pos < ops.size()) {
            auto comma = ops.find(',', pos);
            if (comma == std::string::npos) {
                comma = ops.size();
            }
            const std::string op = ops.substr(pos, comma - pos);
            pos = comma + 1;
            if (op == "rw") {
                (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Rewrite);
            } else if (op == "rs") {
                (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Resub);
            } else if (op == "rf") {
                (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Refactor);
            } else if (op == "b") {
                (void)bg::opt::balance_in_place(g);
            } else {
                std::printf("unknown op '%s' (use rw, rs, rf, b)\n",
                            op.c_str());
                return 2;
            }
            std::printf("after %-2s: ands=%zu depth=%u\n", op.c_str(),
                        g.num_ands(), g.depth());
        }
    }
    if (out_arg) {
        save_design(g, *out_arg);
    }
    return 0;
}

int cmd_sample(Aig g, std::vector<std::string> args) {
    const auto n_arg = flag_value(args, "-n");
    const auto seed_arg = flag_value(args, "--seed");
    const auto save_arg = flag_value(args, "--save-best");
    const bool guided = flag_present(args, "--guided");
    const std::size_t n =
        n_arg ? static_cast<std::size_t>(std::atoll(n_arg->c_str())) : 100;
    const std::uint64_t seed =
        seed_arg ? static_cast<std::uint64_t>(std::atoll(seed_arg->c_str()))
                 : 1;

    const auto samples =
        guided ? bg::core::generate_guided_samples(g, n, seed)
               : bg::core::generate_random_samples(g, n, seed);
    std::vector<double> reductions;
    const bg::core::SampleRecord* best = nullptr;
    for (const auto& s : samples) {
        reductions.push_back(s.reduction);
        if (best == nullptr || s.reduction > best->reduction) {
            best = &s;
        }
    }
    const auto sum = bg::summarize(reductions);
    std::printf("%s sampling: %zu samples on %zu-node design\n",
                guided ? "guided" : "random", n, g.num_ands());
    std::printf("reduction: mean %.1f sd %.1f min %.0f max %.0f\n", sum.mean,
                sum.stddev, sum.min, sum.max);
    std::printf("density  : %s\n",
                bg::sparkline(bg::histogram(reductions, 32)).c_str());
    if (save_arg && best != nullptr) {
        bg::opt::save_decisions_csv(*save_arg, best->decisions);
        std::printf("best decision vector (reduction %d) saved to %s\n",
                    best->reduction, save_arg->c_str());
    }
    return 0;
}

/// Parse a comma-separated head list ("size,depth,luts").
std::vector<bg::core::MetricHead> parse_heads(const std::string& spec) {
    std::vector<bg::core::MetricHead> heads;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            comma = spec.size();
        }
        heads.push_back(
            bg::core::head_from_string(spec.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return heads;
}

int cmd_train(Aig g, std::vector<std::string> args) {
    const auto n_arg = flag_value(args, "-n");
    const auto epochs_arg = flag_value(args, "--epochs");
    const auto seed_arg = flag_value(args, "--seed");
    const auto heads_arg = flag_value(args, "--heads");
    const auto lut_k_arg = flag_value(args, "--lut-k");
    const auto out_arg = flag_value(args, "-o");

    const std::size_t n =
        n_arg ? static_cast<std::size_t>(std::atoll(n_arg->c_str())) : 120;
    const std::uint64_t seed =
        seed_arg ? static_cast<std::uint64_t>(std::atoll(seed_arg->c_str()))
                 : 7;

    bg::core::ModelConfig mc = bg::core::ModelConfig::quick();
    if (heads_arg) {
        mc.heads = parse_heads(*heads_arg);
    }
    bg::core::BoolGebraModel model(mc);

    // LUT labels are only worth their lut_map cost when a LUT head will
    // consume them.
    bg::opt::LutMapParams lut;
    if (lut_k_arg) {
        lut.k = static_cast<unsigned>(std::atoi(lut_k_arg->c_str()));
    }
    const bool wants_luts = model.has_head(bg::core::MetricHead::Luts);
    std::printf("sampling %zu guided decision vectors%s...\n", n,
                wants_luts ? " (with LUT labels)" : "");
    bg::Stopwatch sw;
    const auto records = bg::core::generate_guided_samples(
        g, n, seed, {}, nullptr, wants_luts ? &lut : nullptr);
    const auto ds = bg::core::build_dataset(g, records);
    std::printf("dataset: %zu samples, best reduction %d (%.1fs)\n",
                ds.size(), ds.best_reduction(), sw.seconds());

    auto tc = bg::core::TrainConfig::quick();
    if (epochs_arg) {
        tc.epochs = static_cast<std::size_t>(std::atoll(epochs_arg->c_str()));
    }
    tc.seed = seed;
    sw.reset();
    const auto tr = bg::core::train_model(model, ds, tc);
    std::printf("trained %zu parameters for %zu epochs in %.1fs\n",
                model.num_parameters(), tc.epochs, sw.seconds());
    const auto head_losses =
        bg::core::evaluate_head_losses(model, ds, tr.split.test);
    for (std::size_t h = 0; h < head_losses.size(); ++h) {
        std::printf("  head %-5s test MSE %.5f\n",
                    bg::core::to_string(model.heads()[h]), head_losses[h]);
    }
    if (out_arg) {
        model.save(*out_arg);
        std::printf("checkpoint (%s) saved to %s\n",
                    model.num_heads() == 1 ? "v1 single-head"
                                           : "v2 multi-head",
                    out_arg->c_str());
    } else {
        std::puts("note: no -o given; weights were not saved");
    }
    return 0;
}

/// Flags shared by the `flow` and `serve` commands.
struct FlowArgs {
    bg::core::EngineConfig cfg;
    double scale = 1.0;
    bool all = false;
    std::optional<std::string> model_path;
};

FlowArgs parse_flow_args(std::vector<std::string>& args) {
    FlowArgs out;
    const auto samples_arg = flag_value(args, "--samples");
    const auto topk_arg = flag_value(args, "--top-k");
    const auto rounds_arg = flag_value(args, "--rounds");
    const auto workers_arg = flag_value(args, "--workers");
    const auto intra_workers_arg = flag_value(args, "--intra-workers");
    const auto scale_arg = flag_value(args, "--scale");
    const auto seed_arg = flag_value(args, "--seed");
    const auto objective_arg = flag_value(args, "--objective");
    out.model_path = flag_value(args, "--model");
    out.all = flag_present(args, "--all");
    const bool random = flag_present(args, "--random");
    out.cfg.flow.verify = flag_present(args, "--verify");
    out.cfg.flow.incremental_features =
        flag_present(args, "--incremental-features");

    if (objective_arg) {
        out.cfg.flow.objective = bg::opt::make_objective(*objective_arg);
    }

    out.cfg.flow.num_samples =
        samples_arg
            ? static_cast<std::size_t>(std::atoll(samples_arg->c_str()))
            : 100;
    out.cfg.flow.top_k =
        topk_arg ? static_cast<std::size_t>(std::atoll(topk_arg->c_str()))
                 : 10;
    out.cfg.flow.guided = !random;
    out.cfg.flow.seed =
        seed_arg ? static_cast<std::uint64_t>(std::atoll(seed_arg->c_str()))
                 : 1;
    out.cfg.rounds =
        rounds_arg ? static_cast<std::size_t>(std::atoll(rounds_arg->c_str()))
                   : 1;
    out.cfg.workers =
        workers_arg
            ? static_cast<std::size_t>(std::atoll(workers_arg->c_str()))
            : 0;
    // Intra-design parallelism: speculative candidate checks inside each
    // committed orchestration (bit-identical to sequential).
    out.cfg.flow.intra_workers =
        intra_workers_arg
            ? static_cast<std::size_t>(std::atoll(intra_workers_arg->c_str()))
            : 0;
    out.scale = scale_arg ? std::stod(scale_arg->c_str()) : 1.0;
    return out;
}

/// Collect jobs: --all, registry globs, registry names (name[@scale]),
/// file:<path|glob> specs and bare netlist paths all mix freely — one
/// resolution language for the whole CLI (circuits::resolve_design_specs).
/// A spec that resolves to nothing — unknown name, empty glob, missing or
/// malformed file — is an error: returns nullopt after printing it, so
/// the command exits 2 instead of "running" over zero designs.
std::optional<std::vector<bg::core::DesignJob>> collect_jobs(
    const std::vector<std::string>& specs, bool all, double scale) {
    try {
        return bg::core::jobs_from_specs(specs, all, scale);
    } catch (const bg::circuits::DesignSourceError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return std::nullopt;
    }
}

/// Build the quick-architecture model, optionally loading weights.  The
/// checkpoint picks its own head list: v1 single-head files load as
/// size-only, v2 files restore their recorded heads.
bg::core::BoolGebraModel make_cli_model(
    const std::optional<std::string>& path) {
    if (path) {
        auto model =
            bg::core::load_checkpoint(*path, bg::core::ModelConfig::quick());
        std::string heads;
        for (const auto h : model.heads()) {
            heads += heads.empty() ? "" : ",";
            heads += bg::core::to_string(h);
        }
        std::printf("loaded %s checkpoint %s (heads: %s)\n",
                    model.num_heads() == 1 ? "v1 single-head"
                                           : "v2 multi-head",
                    path->c_str(), heads.c_str());
        return model;
    }
    std::puts("note: no --model given; ranking with untrained weights");
    return bg::core::BoolGebraModel{bg::core::ModelConfig::quick()};
}

/// Table cell for a job's verification outcome: "verdict@engine", e.g.
/// "equivalent@bdd" or "NOT-equivalent@sim".
std::string verify_cell(
    const std::optional<bg::verify::VerifyReport>& report) {
    if (!report) {
        return "-";
    }
    return bg::aig::to_string(report->verdict) + "@" +
           bg::verify::to_string(report->engine);
}

int cmd_flow(std::vector<std::string> args) {
    const FlowArgs parsed = parse_flow_args(args);
    const auto jobs = collect_jobs(args, parsed.all, parsed.scale);
    if (!jobs) {
        return 2;
    }
    if (jobs->empty()) {
        std::puts("flow requires at least one design (or --all)");
        return 2;
    }
    const bool verify = parsed.cfg.flow.verify;

    const bg::core::BoolGebraModel model = make_cli_model(parsed.model_path);
    bg::core::FlowEngine engine(parsed.cfg);
    const auto batch = engine.run(*jobs, model);

    // Size ratios (Table I), then the per-metric companions: D-* = depth
    // ratios, V-Best = the configured objective's scalar ratio.
    std::vector<std::string> headers = {"design", "ands", "depth", "BG-Mean",
                                        "BG-Best", "D-Best", "V-Best",
                                        "final", "D-final", "rounds", "sec"};
    if (verify) {
        headers.push_back("verify");
    }
    bg::TablePrinter table(headers);
    for (const auto& d : batch.designs) {
        std::vector<std::string> row = {
            d.name, std::to_string(d.original_size),
            std::to_string(d.flow.original_depth),
            bg::TablePrinter::fmt(d.flow.bg_mean_ratio),
            bg::TablePrinter::fmt(d.flow.bg_best_ratio),
            bg::TablePrinter::fmt(d.flow.bg_best_depth_ratio),
            bg::TablePrinter::fmt(d.flow.bg_best_value_ratio),
            bg::TablePrinter::fmt(d.iterated.final_ratio),
            bg::TablePrinter::fmt(d.iterated.final_depth_ratio),
            std::to_string(d.iterated.rounds()),
            bg::TablePrinter::fmt(d.seconds, 2)};
        if (verify) {
            row.push_back(verify_cell(d.verification));
        }
        table.add_row(std::move(row));
    }
    std::vector<std::string> avg = {
        "Avg.", "-", "-", bg::TablePrinter::fmt(batch.avg_bg_mean_ratio),
        bg::TablePrinter::fmt(batch.avg_bg_best_ratio),
        bg::TablePrinter::fmt(batch.avg_bg_best_depth_ratio),
        bg::TablePrinter::fmt(batch.avg_bg_best_value_ratio),
        bg::TablePrinter::fmt(batch.avg_final_ratio),
        bg::TablePrinter::fmt(batch.avg_final_depth_ratio), "-", "-"};
    if (verify) {
        avg.push_back("-");
    }
    table.add_row(std::move(avg));
    table.print();
    std::printf("\nobjective %s (ranked by %s): %zu designs, %zu samples in "
                "%.2fs on %zu workers (%.2f designs/s, %.1f samples/s)\n",
                batch.objective.c_str(), batch.ranked_by.c_str(),
                batch.designs.size(), batch.total_samples,
                batch.total_seconds, engine.workers(),
                batch.designs_per_second, batch.samples_per_second);
    if (verify) {
        std::printf("verification: %zu verified, %zu refuted, %zu unknown\n",
                    batch.jobs_verified, batch.jobs_refuted,
                    batch.jobs_unknown);
        if (batch.jobs_refuted > 0) {
            return 1;  // a committed result failed its equivalence proof
        }
    }
    return 0;
}

int cmd_serve(std::vector<std::string> args) {
    const auto swap_arg = flag_value(args, "--swap-model");
    const auto swap_after_arg = flag_value(args, "--swap-after");
    const auto repeat_arg = flag_value(args, "--repeat");
    const FlowArgs parsed = parse_flow_args(args);
    const auto jobs = collect_jobs(args, parsed.all, parsed.scale);
    if (!jobs) {
        return 2;
    }
    if (jobs->empty()) {
        std::puts("serve requires at least one design (or --all)");
        return 2;
    }
    const std::size_t repeat =
        repeat_arg
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::atoll(repeat_arg->c_str())))
            : 1;
    const std::size_t total = jobs->size() * repeat;
    const std::size_t swap_after =
        swap_after_arg
            ? static_cast<std::size_t>(std::atoll(swap_after_arg->c_str()))
            : total / 2;

    auto initial = std::make_shared<bg::core::BoolGebraModel>(
        make_cli_model(parsed.model_path));
    bg::core::ServiceConfig scfg;
    scfg.workers = parsed.cfg.workers;
    scfg.rounds = parsed.cfg.rounds;
    scfg.flow = parsed.cfg.flow;
    bg::core::FlowService service(scfg, initial);
    std::printf("serving %zu jobs (%zu designs x %zu) on %zu workers\n",
                total, jobs->size(), repeat, service.workers());

    std::vector<std::future<bg::core::DesignFlowResult>> futures;
    futures.reserve(total);
    std::size_t submitted = 0;
    bool swapped = false;
    for (std::size_t r = 0; r < repeat; ++r) {
        for (const auto& job : *jobs) {
            if (swap_arg && !swapped && submitted >= swap_after) {
                // Hot-swap mid-stream: jobs already submitted keep the
                // snapshot they were bound to.  "fresh" reseeds so the
                // swapped model visibly ranks differently.
                auto swap_cfg = bg::core::ModelConfig::quick();
                if (*swap_arg == "fresh") {
                    swap_cfg.seed ^= 0x5EED;
                }
                auto next =
                    *swap_arg == "fresh"
                        ? std::make_shared<bg::core::BoolGebraModel>(
                              swap_cfg)
                        : std::make_shared<bg::core::BoolGebraModel>(
                              bg::core::load_checkpoint(*swap_arg,
                                                        swap_cfg));
                service.swap_model(std::move(next));
                swapped = true;
                std::printf("-- hot-swapped model after %zu submissions --\n",
                            submitted);
            }
            futures.push_back(service.submit(job));
            ++submitted;
        }
    }

    std::vector<std::string> headers = {"job", "design", "ands", "BG-Best",
                                        "D-Best", "V-Best", "final", "sec"};
    if (scfg.flow.verify) {
        headers.push_back("verify");
    }
    bg::TablePrinter table(headers);
    // Jobs bound to different snapshots (mid-stream --swap-model) may
    // rank differently; report every ranking seen, in encounter order.
    std::vector<std::string> rankings;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto d = futures[i].get();
        if (std::find(rankings.begin(), rankings.end(), d.flow.ranked_by) ==
            rankings.end()) {
            rankings.push_back(d.flow.ranked_by);
        }
        std::vector<std::string> row = {
            std::to_string(i), d.name, std::to_string(d.original_size),
            bg::TablePrinter::fmt(d.flow.bg_best_ratio),
            bg::TablePrinter::fmt(d.flow.bg_best_depth_ratio),
            bg::TablePrinter::fmt(d.flow.bg_best_value_ratio),
            bg::TablePrinter::fmt(d.iterated.final_ratio),
            bg::TablePrinter::fmt(d.seconds, 2)};
        if (scfg.flow.verify) {
            row.push_back(verify_cell(d.verification));
        }
        table.add_row(std::move(row));
    }
    service.stop();
    table.print();

    std::string ranked_by;
    for (const auto& r : rankings) {
        ranked_by += ranked_by.empty() ? "" : " -> ";
        ranked_by += r;
    }
    const auto st = service.stats();
    std::printf("\nobjective %s (ranked by %s)\n",
                bg::core::flow_objective(scfg.flow).name().c_str(),
                ranked_by.empty() ? "size" : ranked_by.c_str());
    std::printf("served %llu/%llu jobs in %.2fs uptime "
                "(%.2f jobs/s, %.1f samples/s, %llu samples)\n",
                static_cast<unsigned long long>(st.jobs_completed),
                static_cast<unsigned long long>(st.jobs_submitted),
                st.uptime_seconds, st.jobs_per_second, st.samples_per_second,
                static_cast<unsigned long long>(st.samples_run));
    std::printf("latency p50 %.3fs p95 %.3fs, busy %.2fs, "
                "model swaps %llu\n",
                st.p50_latency_seconds, st.p95_latency_seconds,
                st.busy_seconds,
                static_cast<unsigned long long>(st.model_swaps));
    if (scfg.flow.verify) {
        std::printf("verification: %llu verified, %llu refuted, "
                    "%llu unknown, %llu unverified "
                    "(cache %llu/%llu hits)\n",
                    static_cast<unsigned long long>(st.jobs_verified),
                    static_cast<unsigned long long>(st.jobs_refuted),
                    static_cast<unsigned long long>(st.jobs_unknown),
                    static_cast<unsigned long long>(st.jobs_unverified),
                    static_cast<unsigned long long>(st.verify_cache_hits),
                    static_cast<unsigned long long>(st.verify_cache_lookups));
        if (st.jobs_refuted > 0) {
            return 1;
        }
    }
    return 0;
}

/// Parse "NAME[:WEIGHT[:CAP]]" into a tenant registration.
bg::core::TenantConfig parse_tenant_spec(const std::string& spec) {
    bg::core::TenantConfig cfg;
    const auto first = spec.find(':');
    cfg.name = spec.substr(0, first);
    if (first != std::string::npos) {
        const auto second = spec.find(':', first + 1);
        cfg.weight = static_cast<std::size_t>(std::max(
            1LL, std::atoll(spec.substr(first + 1, second - first - 1)
                                .c_str())));
        if (second != std::string::npos) {
            cfg.max_pending = static_cast<std::size_t>(
                std::atoll(spec.substr(second + 1).c_str()));
        }
    }
    if (cfg.name.empty()) {
        throw std::invalid_argument("tenant spec '" + spec +
                                    "' has an empty name");
    }
    return cfg;
}

/// `serve --listen`: the network server mode.  Binds, prints the resolved
/// port (machine-readable first line, so scripts can grab an ephemeral
/// port), and serves until a client sends Shutdown.
int cmd_serve_listen(std::vector<std::string> args,
                     const std::string& listen_arg) {
    const auto bind_arg = flag_value(args, "--bind");
    std::vector<bg::core::TenantConfig> tenants;
    while (const auto tenant_arg = flag_value(args, "--tenant")) {
        tenants.push_back(parse_tenant_spec(*tenant_arg));
    }
    const FlowArgs parsed = parse_flow_args(args);
    if (!args.empty()) {
        std::fprintf(stderr, "serve --listen takes no design arguments "
                             "(clients submit designs); got '%s'\n",
                     args[0].c_str());
        return 2;
    }

    auto model = std::make_shared<bg::core::BoolGebraModel>(
        make_cli_model(parsed.model_path));
    bg::net::ServerConfig cfg;
    cfg.bind_address = bind_arg.value_or("127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(std::atoi(listen_arg.c_str()));
    cfg.service.workers = parsed.cfg.workers;
    cfg.service.rounds = parsed.cfg.rounds;
    cfg.service.flow = parsed.cfg.flow;

    std::string tenant_line = "tenants: default";
    for (const auto& tenant : tenants) {
        tenant_line += ", " + tenant.name;
    }
    bg::net::FlowServer server(cfg, std::move(model), std::move(tenants));
    std::printf("listening on %s:%u\n%s\n", cfg.bind_address.c_str(),
                server.port(), tenant_line.c_str());
    std::fflush(stdout);

    server.wait_shutdown();
    const auto st = server.service().stats();
    server.stop();
    std::printf("served %llu jobs (%llu cancelled, %llu timed out, "
                "%llu rejected) in %.2fs; p50 %.3fs p95 %.3fs\n",
                static_cast<unsigned long long>(st.jobs_completed),
                static_cast<unsigned long long>(st.jobs_cancelled),
                static_cast<unsigned long long>(st.jobs_timed_out),
                static_cast<unsigned long long>(st.jobs_rejected),
                st.uptime_seconds, st.p50_latency_seconds,
                st.p95_latency_seconds);
    return 0;
}

const char* status_name(bg::net::JobStatus status) {
    switch (status) {
        case bg::net::JobStatus::Ok:
            return "ok";
        case bg::net::JobStatus::Cancelled:
            return "cancelled";
        case bg::net::JobStatus::TimedOut:
            return "timed-out";
        case bg::net::JobStatus::Rejected:
            return "rejected";
        case bg::net::JobStatus::Failed:
            return "failed";
    }
    return "?";
}

const char* verdict_name(bg::net::WireVerdict verdict) {
    switch (verdict) {
        case bg::net::WireVerdict::None:
            return "-";
        case bg::net::WireVerdict::Equivalent:
            return "equivalent";
        case bg::net::WireVerdict::NotEquivalent:
            return "NOT-equivalent";
        case bg::net::WireVerdict::ProbablyEquivalent:
            return "probably-equivalent";
    }
    return "?";
}

int cmd_client_flow(bg::net::FlowClient& client,
                    std::vector<std::string> args) {
    const auto samples_arg = flag_value(args, "--samples");
    const auto topk_arg = flag_value(args, "--top-k");
    const auto rounds_arg = flag_value(args, "--rounds");
    const auto seed_arg = flag_value(args, "--seed");
    const auto objective_arg = flag_value(args, "--objective");
    const auto timeout_arg = flag_value(args, "--timeout");
    const auto scale_arg = flag_value(args, "--scale");
    const bool verify = flag_present(args, "--verify");
    const bool send_spec = flag_present(args, "--send-spec");
    const bool progress = flag_present(args, "--progress");
    if (args.empty()) {
        std::puts("client flow requires at least one design");
        return 2;
    }
    const double scale = scale_arg ? std::stod(*scale_arg) : 1.0;

    auto fill = [&](bg::net::SubmitJobMsg& msg) {
        if (samples_arg) {
            msg.num_samples = static_cast<std::uint32_t>(
                std::atoll(samples_arg->c_str()));
        }
        if (topk_arg) {
            msg.top_k =
                static_cast<std::uint32_t>(std::atoll(topk_arg->c_str()));
        }
        if (rounds_arg) {
            msg.rounds =
                static_cast<std::uint32_t>(std::atoll(rounds_arg->c_str()));
        }
        if (seed_arg) {
            msg.seed =
                static_cast<std::uint64_t>(std::atoll(seed_arg->c_str()));
        }
        if (objective_arg) {
            msg.objective = *objective_arg;
        }
        if (timeout_arg) {
            msg.timeout_seconds = std::stod(*timeout_arg);
        }
        msg.verify = verify;
        msg.want_progress = progress;
    };

    // One SubmitJob per design: either resolved locally and uploaded as a
    // binary AIGER blob, or forwarded as a spec string (--send-spec) for
    // server-side registry/file resolution.
    std::vector<std::pair<std::uint64_t, std::string>> jobs;
    if (send_spec) {
        for (const auto& spec : args) {
            bg::net::SubmitJobMsg msg;
            msg.kind = bg::net::DesignKind::DesignSpec;
            msg.design = spec;
            fill(msg);
            jobs.emplace_back(client.submit(std::move(msg)), spec);
        }
    } else {
        const auto resolved =
            bg::circuits::resolve_design_specs(args, false, scale);
        for (const auto& design : resolved) {
            bg::net::SubmitJobMsg msg;
            msg.kind = bg::net::DesignKind::AigerBlob;
            msg.name = design.name;
            msg.design =
                bg::io::write_aiger_binary_string(design.load());
            fill(msg);
            jobs.emplace_back(client.submit(std::move(msg)), design.name);
        }
    }

    bg::TablePrinter table({"job", "design", "status", "ands", "final",
                            "ratio", "rounds", "verify", "sec"});
    bool any_bad = false;
    for (const auto& [job_id, name] : jobs) {
        const auto result = client.wait(
            job_id, [&](const bg::net::ProgressMsg& p) {
                if (progress) {
                    std::printf("  job %llu round %u: %llu ands\n",
                                static_cast<unsigned long long>(p.job_id),
                                p.round,
                                static_cast<unsigned long long>(p.ands));
                }
            });
        const bool ok = result.status == bg::net::JobStatus::Ok;
        const bool refuted =
            result.verdict == bg::net::WireVerdict::NotEquivalent;
        any_bad = any_bad || !ok || refuted;
        table.add_row(
            {std::to_string(job_id), name, status_name(result.status),
             ok ? std::to_string(result.original_ands) : "-",
             ok ? std::to_string(result.final_ands) : "-",
             ok ? bg::TablePrinter::fmt(result.final_ratio)
                : result.message,
             ok ? std::to_string(result.rounds_run) : "-",
             verdict_name(result.verdict),
             bg::TablePrinter::fmt(result.seconds, 2)});
    }
    table.print();
    return any_bad ? 1 : 0;
}

int cmd_client_stats(bg::net::FlowClient& client) {
    const auto st = client.stats();
    std::printf("jobs: %llu submitted, %llu completed, %llu pending, "
                "%llu cancelled, %llu timed out, %llu rejected\n",
                static_cast<unsigned long long>(st.jobs_submitted),
                static_cast<unsigned long long>(st.jobs_completed),
                static_cast<unsigned long long>(st.jobs_pending),
                static_cast<unsigned long long>(st.jobs_cancelled),
                static_cast<unsigned long long>(st.jobs_timed_out),
                static_cast<unsigned long long>(st.jobs_rejected));
    std::printf("verify: %llu verified, %llu refuted, %llu unknown; "
                "%llu samples; uptime %.2fs p50 %.3fs p95 %.3fs\n",
                static_cast<unsigned long long>(st.jobs_verified),
                static_cast<unsigned long long>(st.jobs_refuted),
                static_cast<unsigned long long>(st.jobs_unknown),
                static_cast<unsigned long long>(st.samples_run),
                st.uptime_seconds, st.p50_latency_seconds,
                st.p95_latency_seconds);
    for (const auto& t : st.tenants) {
        std::printf("tenant %-12s submitted %llu ok %llu cancelled %llu "
                    "timed-out %llu failed %llu rejected %llu pending "
                    "%llu\n",
                    t.name.empty() ? "(default)" : t.name.c_str(),
                    static_cast<unsigned long long>(t.submitted),
                    static_cast<unsigned long long>(t.ok),
                    static_cast<unsigned long long>(t.cancelled),
                    static_cast<unsigned long long>(t.timed_out),
                    static_cast<unsigned long long>(t.failed),
                    static_cast<unsigned long long>(t.rejected),
                    static_cast<unsigned long long>(t.pending));
    }
    return 0;
}

/// `client <host:port> flow|stats|shutdown ...`.  Exit codes: 0 success,
/// 1 a job failed or a verdict was refuted, 2 usage/connect errors.
int cmd_client(std::vector<std::string> args) {
    if (args.size() < 2) {
        std::puts("client requires <host:port> and a subcommand "
                  "(flow, stats, shutdown)");
        return 2;
    }
    const std::string endpoint = args[0];
    const std::string sub = args[1];
    args.erase(args.begin(), args.begin() + 2);

    bg::net::ClientConfig cfg;
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "endpoint '%s' is not host:port\n",
                     endpoint.c_str());
        return 2;
    }
    cfg.host = endpoint.substr(0, colon);
    cfg.port = static_cast<std::uint16_t>(
        std::atoi(endpoint.substr(colon + 1).c_str()));
    cfg.token = flag_value(args, "--token").value_or("");

    try {
        bg::net::FlowClient client(std::move(cfg));
        if (sub == "flow") {
            return cmd_client_flow(client, std::move(args));
        }
        if (sub == "stats") {
            return cmd_client_stats(client);
        }
        if (sub == "shutdown") {
            client.request_shutdown();
            std::puts("server acknowledged shutdown");
            return 0;
        }
        std::fprintf(stderr, "unknown client subcommand '%s'\n",
                     sub.c_str());
        return 2;
    } catch (const bg::net::SocketError& e) {
        std::fprintf(stderr, "connection error: %s\n", e.what());
        return 2;
    } catch (const bg::net::RpcError& e) {
        std::fprintf(stderr, "server refused: %s\n", e.what());
        return 2;
    } catch (const bg::net::ProtocolError& e) {
        std::fprintf(stderr, "protocol error: %s\n", e.what());
        return 2;
    }
}

int cmd_apply(Aig g, std::vector<std::string> args) {
    const auto dec_arg = flag_value(args, "--decisions");
    const auto out_arg = flag_value(args, "-o");
    if (!dec_arg) {
        std::puts("apply requires --decisions <file.csv>");
        return 2;
    }
    auto decisions = bg::opt::load_decisions_csv(*dec_arg);
    if (decisions.size() < g.num_slots()) {
        decisions.resize(g.num_slots(), bg::opt::OpKind::None);
    }
    const auto res = bg::opt::orchestrate(g, decisions);
    std::printf("orchestrated: %zu -> %zu nodes (%d removed), depth %u -> "
                "%u, %zu ops applied\n",
                res.original_size, res.final_size, res.reduction(),
                res.original_depth, res.final_depth, res.num_applied);
    if (out_arg) {
        save_design(g, *out_arg);
    }
    return 0;
}

/// Standalone equivalence check.  Default races all three engines via the
/// portfolio; --engine pins one back end.  Exit codes: 0 = proven
/// equivalent, 1 = refuted (counterexample printed), 3 = undecided within
/// the budgets.
int cmd_cec(std::vector<std::string> args) {
    const auto engine_arg = flag_value(args, "--engine");
    if (args.size() != 2) {
        std::puts("cec requires exactly two designs");
        return 2;
    }
    const Aig a = load_design(args[0]);
    const Aig b = load_design(args[1]);
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
        std::fprintf(stderr,
                     "error: %s (%zu PIs, %zu POs) and %s (%zu PIs, %zu "
                     "POs) have different interfaces\n",
                     args[0].c_str(), a.num_pis(), a.num_pos(),
                     args[1].c_str(), b.num_pis(), b.num_pos());
        return 2;
    }
    const std::string engine = engine_arg.value_or("portfolio");

    bg::verify::VerifyReport report;
    if (engine == "sim") {
        const bg::Stopwatch watch;
        auto r = bg::aig::check_equivalence_full(a, b);
        report.verdict = r.verdict;
        report.engine = bg::verify::Engine::Simulation;
        report.counterexample = std::move(r.counterexample);
        report.seconds = watch.seconds();
    } else if (engine == "bdd") {
        const bg::Stopwatch watch;
        report.verdict = bg::bdd::check_equivalence_bdd(a, b);
        report.engine = bg::verify::Engine::Bdd;
        report.seconds = watch.seconds();
    } else if (engine == "sat") {
        const bg::Stopwatch watch;
        auto r = bg::sat::check_equivalence_sat_full(a, b);
        report.verdict = r.verdict;
        report.engine = bg::verify::Engine::Sat;
        report.counterexample = std::move(r.counterexample);
        report.seconds = watch.seconds();
    } else if (engine == "portfolio") {
        bg::verify::PortfolioCec prover;
        report = prover.check(a, b);
    } else {
        std::fprintf(stderr,
                     "error: unknown engine '%s' "
                     "(sim, bdd, sat or portfolio)\n",
                     engine.c_str());
        return 2;
    }

    std::printf("%s (engine %s, %.3fs)\n",
                bg::aig::to_string(report.verdict).c_str(),
                bg::verify::to_string(report.engine).c_str(),
                report.seconds);
    if (report.verdict == bg::aig::CecVerdict::NotEquivalent &&
        !report.counterexample.empty()) {
        std::string bits;
        bits.reserve(report.counterexample.size());
        for (const bool v : report.counterexample) {
            bits += v ? '1' : '0';
        }
        std::printf("counterexample (PI order): %s\n", bits.c_str());
    }
    switch (report.verdict) {
        case bg::aig::CecVerdict::Equivalent:
            return 0;
        case bg::aig::CecVerdict::NotEquivalent:
            return 1;
        case bg::aig::CecVerdict::ProbablyEquivalent:
            return 3;
    }
    return 3;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "list") {
            for (const auto& info : bg::circuits::benchmark_registry()) {
                std::printf("%-7s %-10s pis=%-4u target=%zu\n",
                            info.name.c_str(),
                            info.family == bg::circuits::Family::Control
                                ? "control"
                                : "arithmetic",
                            info.num_pis, info.target_ands);
            }
            return 0;
        }
        if (cmd == "stats" && !args.empty() && args.size() <= 2) {
            const bool check =
                args.size() == 2 && args[1] == "--check";
            if (args.size() == 2 && !check) {
                std::fprintf(stderr, "unknown stats flag: %s\n",
                             args[1].c_str());
                return 2;
            }
            return cmd_stats(load_design(args[0]), check);
        }
        if (cmd == "opt" && !args.empty()) {
            Aig g = load_design(args[0]);
            args.erase(args.begin());
            return cmd_opt(std::move(g), std::move(args));
        }
        if (cmd == "sample" && !args.empty()) {
            Aig g = load_design(args[0]);
            args.erase(args.begin());
            return cmd_sample(std::move(g), std::move(args));
        }
        if (cmd == "train" && !args.empty()) {
            Aig g = load_design(args[0]);
            args.erase(args.begin());
            return cmd_train(std::move(g), std::move(args));
        }
        if (cmd == "flow") {
            return cmd_flow(std::move(args));
        }
        if (cmd == "serve") {
            if (const auto listen_arg = flag_value(args, "--listen")) {
                return cmd_serve_listen(std::move(args), *listen_arg);
            }
            return cmd_serve(std::move(args));
        }
        if (cmd == "client") {
            return cmd_client(std::move(args));
        }
        if (cmd == "apply" && !args.empty()) {
            Aig g = load_design(args[0]);
            args.erase(args.begin());
            return cmd_apply(std::move(g), std::move(args));
        }
        if (cmd == "cec" && !args.empty()) {
            return cmd_cec(std::move(args));
        }
        if (cmd == "map" && !args.empty()) {
            Aig g = load_design(args[0]);
            args.erase(args.begin());
            const auto k_arg = flag_value(args, "-k");
            bg::opt::LutMapParams p;
            p.k = k_arg ? static_cast<unsigned>(std::atoi(k_arg->c_str()))
                        : 6;
            const auto m = bg::opt::map_to_luts(g, p);
            std::printf("%u-LUT mapping: %zu LUTs, depth %u "
                        "(from %zu AND nodes, depth %u)\n",
                        p.k, m.num_luts(), m.depth, g.num_ands(), g.depth());
            return 0;
        }
        if (cmd == "convert" && args.size() == 2) {
            save_design(load_design(args[0]), args[1]);
            return 0;
        }
    } catch (const bg::circuits::DesignSourceError& e) {
        // Bad design spec (unknown name, empty glob, unreadable or
        // malformed file): a usage-class failure, exit 2.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
