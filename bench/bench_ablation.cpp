/// \file bench_ablation.cpp
/// Ablations over the design choices DESIGN.md calls out (not in the
/// paper, but motivated by it):
///   A. feature sets — static-only vs dynamic-only vs both (§III-C.1
///      argues both matter);
///   B. training data — priority-guided vs purely random sampling
///      (§III-C.1's second challenge);
///   C. flow sampling budget — how BG-Best responds to the batch size
///      (the paper fixes 600; we sweep).

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "opt/standalone.hpp"
#include "util/stats.hpp"

namespace {

double eval_spearman(bg::core::BoolGebraModel& model,
                     const bg::core::Dataset& eval_ds) {
    std::vector<std::size_t> all(eval_ds.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
    }
    const auto preds = model.predict(eval_ds, all);
    std::vector<double> labels;
    for (const auto& s : eval_ds.samples()) {
        labels.push_back(s.label);
    }
    return bg::spearman(preds, labels);
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Ablations: features, sampling strategy, flow budget");
    const auto design = scale.design("b11");
    std::printf("design b11: %s\n\n", design.to_string().c_str());

    // Shared records for A and B.
    const auto guided_records = bg::core::generate_guided_samples(
        design, scale.train_samples, 0xAB1A);
    const auto random_records = bg::core::generate_random_samples(
        design, scale.train_samples, 0xAB1A);
    const auto eval_records = bg::core::generate_random_samples(
        design, std::max<std::size_t>(scale.train_samples / 2, 16), 0xEA1);

    // --- A: feature-set ablation ----------------------------------------
    {
        bg::TablePrinter table({"features", "test MSE", "spearman(unseen)"});
        for (const auto& [label, cfg] :
             std::vector<std::pair<std::string, bg::core::FeatureConfig>>{
                 {"static+dynamic", {true, true}},
                 {"static only", {true, false}},
                 {"dynamic only", {false, true}}}) {
            const auto ds = bg::core::build_dataset(design, guided_records,
                                                    {}, cfg);
            const auto eval_ds = bg::core::build_dataset(design, eval_records,
                                                         {}, cfg);
            bg::core::BoolGebraModel model(scale.model);
            const auto tr = bg::core::train_model(model, ds, scale.train);
            table.add_row({label,
                           bg::TablePrinter::fmt(tr.final_test_loss, 5),
                           bg::TablePrinter::fmt(
                               eval_spearman(model, eval_ds))});
        }
        std::printf("A. feature-set ablation (trained on guided samples)\n");
        table.print();
    }

    // --- B: guided vs random training data -------------------------------
    {
        bg::TablePrinter table({"training data", "best red. in set",
                                "test MSE", "spearman(unseen)"});
        const auto eval_ds = bg::core::build_dataset(design, eval_records);
        for (const auto& [label, records] :
             std::vector<std::pair<std::string,
                                   const std::vector<bg::core::SampleRecord>*>>{
                 {"priority-guided", &guided_records},
                 {"purely random", &random_records}}) {
            const auto ds = bg::core::build_dataset(design, *records);
            bg::core::BoolGebraModel model(scale.model);
            const auto tr = bg::core::train_model(model, ds, scale.train);
            table.add_row({label, std::to_string(ds.best_reduction()),
                           bg::TablePrinter::fmt(tr.final_test_loss, 5),
                           bg::TablePrinter::fmt(
                               eval_spearman(model, eval_ds))});
        }
        std::printf("\nB. training-data ablation\n");
        table.print();
    }

    // --- C: flow sampling-budget sweep -----------------------------------
    {
        const auto ds = bg::core::build_dataset(design, guided_records);
        bg::core::BoolGebraModel model(scale.model);
        (void)bg::core::train_model(model, ds, scale.train);
        bg::TablePrinter table({"flow samples", "BG-Mean ratio",
                                "BG-Best ratio", "best reduction"});
        for (const std::size_t budget :
             {scale.flow_samples / 4, scale.flow_samples / 2,
              scale.flow_samples}) {
            bg::core::FlowConfig fc;
            fc.num_samples = std::max<std::size_t>(budget, 12);
            fc.top_k = scale.flow_top_k;
            fc.seed = 0xC0FFEE;
            const auto res = bg::core::run_flow(design, model, fc);
            table.add_row({std::to_string(fc.num_samples),
                           bg::TablePrinter::fmt(res.bg_mean_ratio),
                           bg::TablePrinter::fmt(res.bg_best_ratio),
                           std::to_string(res.best_reduction)});
        }
        std::printf("\nC. flow sampling-budget sweep\n");
        table.print();
    }

    // --- D: optimization-window parameter sweep ---------------------------
    {
        bg::TablePrinter table({"params", "rw red.", "rs red.", "rf red."});
        struct Setting {
            std::string label;
            bg::opt::OptParams p;
        };
        std::vector<Setting> settings;
        settings.push_back({"defaults", {}});
        settings.push_back({"small windows", {}});
        settings.back().p.rewrite_cut_size = 3;
        settings.back().p.refactor_max_leaves = 6;
        settings.back().p.resub_max_leaves = 5;
        settings.push_back({"large windows", {}});
        settings.back().p.refactor_max_leaves = 12;
        settings.back().p.resub_max_leaves = 10;
        settings.back().p.resub_max_divisors = 64;
        settings.push_back({"zero-gain", {}});
        settings.back().p.allow_zero_gain = true;
        for (const auto& s : settings) {
            std::vector<std::string> row{s.label};
            for (const auto op :
                 {bg::opt::OpKind::Rewrite, bg::opt::OpKind::Resub,
                  bg::opt::OpKind::Refactor}) {
                auto g = design;
                const auto res = bg::opt::standalone_pass(g, op, s.p);
                row.push_back(std::to_string(res.reduction()));
            }
            table.add_row(row);
        }
        std::printf("\nD. optimization-window parameter sweep "
                    "(stand-alone pass reductions on b11)\n");
        table.print();
    }

    // --- E: iterated flow (extension: commit best candidate, repeat) -----
    {
        const auto ds = bg::core::build_dataset(design, guided_records);
        bg::core::BoolGebraModel model(scale.model);
        (void)bg::core::train_model(model, ds, scale.train);
        bg::core::FlowConfig fc;
        fc.num_samples = scale.flow_samples / 2;
        fc.top_k = scale.flow_top_k;
        fc.seed = 0x17E7;
        bg::TablePrinter table(
            {"max rounds", "rounds run", "final ratio", "total reduction"});
        for (const std::size_t rounds : {1UL, 2UL, 4UL}) {
            const auto res =
                bg::core::run_iterated_flow(design, model, fc, rounds);
            int total = 0;
            for (const int r : res.per_round_reduction) {
                total += r;
            }
            table.add_row({std::to_string(rounds),
                           std::to_string(res.rounds()),
                           bg::TablePrinter::fmt(res.final_ratio),
                           std::to_string(total)});
        }
        std::printf("\nE. iterated flow (multi-round BoolGebra, an "
                    "extension beyond the paper's single-shot flow)\n");
        table.print();
    }
    return 0;
}
