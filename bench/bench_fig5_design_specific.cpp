/// \file bench_fig5_design_specific.cpp
/// Reproduces Figure 5: design-specific inference — predicted vs actual
/// normalized QoR on *unseen* randomly sampled decision vectors, per
/// design.  The paper's observations to check:
///  * b11 / b12 / c5315 correlate well;
///  * tiny designs (b07, b10) have discrete labels and weaker fits.

#include "bench_common.hpp"
#include "util/stats.hpp"

#include <cmath>
#include <set>

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner(
        "Figure 5: design-specific predicted-vs-actual correlation");

    const std::vector<std::string> designs = {"b07", "b10", "b12",
                                              "b11", "c2670", "c5315"};
    bg::TablePrinter table({"design", "nodes", "labels", "pearson",
                            "spearman", "test MSE"});
    double corr_sum = 0.0;
    for (const auto& name : designs) {
        auto td = bgbench::train_design(scale, name);

        // Unseen evaluation set: fresh random decision vectors.
        const auto eval_records = bg::core::generate_random_samples(
            td.design, std::max<std::size_t>(scale.train_samples / 2, 16),
            0xEF'A1);
        const auto eval_ds = bg::core::build_dataset(td.design, eval_records);
        std::vector<std::size_t> all(eval_ds.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] = i;
        }
        const auto preds = td.model.predict(eval_ds, all);
        std::vector<double> labels;
        std::set<long> distinct;
        for (const auto& s : eval_ds.samples()) {
            labels.push_back(s.label);
            distinct.insert(std::lround(s.label * 1e6));
        }
        const double pr = bg::pearson(preds, labels);
        const double sr = bg::spearman(preds, labels);
        corr_sum += sr;
        table.add_row({name, std::to_string(td.design.num_ands()),
                       std::to_string(distinct.size()),
                       bg::TablePrinter::fmt(pr),
                       bg::TablePrinter::fmt(sr),
                       bg::TablePrinter::fmt(td.result.final_test_loss, 5)});
    }
    table.print();
    const double avg = corr_sum / static_cast<double>(designs.size());
    std::printf("\naverage spearman over designs: %.3f\n", avg);
    std::printf("shape check (paper): predictions correlate positively with "
                "ground truth on unseen samples: %s\n",
                avg > 0.0 ? "YES" : "NO");
    return avg > 0.0 ? 0 : 1;
}
