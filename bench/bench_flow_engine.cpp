/// \file bench_flow_engine.cpp
/// Multi-design FlowEngine throughput: run the sample -> prune -> evaluate
/// flow over a batch of registry designs on a persistent worker pool,
/// sweeping the worker count.  Reports designs/s and samples/s per worker
/// count and checks that (a) the batched engine's per-design output is
/// bit-identical to the sequential run_flow and (b) output is independent
/// of the worker count.  Throughput should scale with workers up to the
/// machine's core count (flat on a single-core host).

#include <cmath>

#include "bench_common.hpp"
#include "core/flow_engine.hpp"

namespace {

bool same_design_result(const bg::core::DesignFlowResult& got,
                        const bg::core::FlowResult& want) {
    return got.flow.selected == want.selected &&
           got.flow.reductions == want.reductions &&
           got.flow.predictions == want.predictions &&
           got.flow.best_reduction == want.best_reduction &&
           got.flow.bg_best_ratio == want.bg_best_ratio &&
           got.flow.bg_mean_ratio == want.bg_mean_ratio;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("FlowEngine: batched multi-design throughput");

    const std::vector<std::string> names = {"b07", "b08", "b09", "b10",
                                            "b11", "b12", "c2670", "c5315"};
    std::vector<bg::core::DesignJob> jobs;
    for (const auto& name : names) {
        jobs.push_back({name, scale.design(name)});
    }

    bg::core::EngineConfig cfg;
    cfg.flow.num_samples = scale.flow_samples;
    cfg.flow.top_k = scale.flow_top_k;
    cfg.flow.seed = 0x7AB1E1;

    const bg::core::BoolGebraModel model{scale.model};

    // Sequential reference: plain run_flow per design, no pool, no caches.
    std::vector<bg::core::FlowResult> reference;
    bg::Stopwatch sw;
    for (const auto& job : jobs) {
        bg::core::BoolGebraModel m(model);
        reference.push_back(bg::core::run_flow(job.design, m, cfg.flow));
    }
    const double seq_seconds = sw.seconds();
    std::printf("sequential run_flow reference: %.2fs "
                "(%zu designs, %zu samples each)\n\n",
                seq_seconds, jobs.size(), cfg.flow.num_samples);

    bg::TablePrinter table({"workers", "seconds", "designs/s", "samples/s",
                            "speedup", "identical"});
    bool all_identical = true;
    for (const std::size_t workers : {1UL, 2UL, 4UL, 8UL}) {
        cfg.workers = workers;
        bg::core::FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, model);

        bool identical = batch.designs.size() == reference.size();
        for (std::size_t i = 0; identical && i < reference.size(); ++i) {
            identical = same_design_result(batch.designs[i], reference[i]);
        }
        all_identical = all_identical && identical;

        table.add_row({std::to_string(workers),
                       bg::TablePrinter::fmt(batch.total_seconds, 2),
                       bg::TablePrinter::fmt(batch.designs_per_second, 2),
                       bg::TablePrinter::fmt(batch.samples_per_second, 1),
                       bg::TablePrinter::fmt(
                           seq_seconds / batch.total_seconds, 2) + "x",
                       identical ? "yes" : "NO"});
    }
    table.print();
    std::printf("\nhardware concurrency: %zu\n", bg::default_worker_count());
    std::printf("batched output bit-identical to sequential flow: %s\n",
                all_identical ? "YES" : "NO");
    return all_identical ? 0 : 1;
}
