/// \file bench_multi_head.cpp
/// Head-selected ranking vs size-as-proxy: for each design, train one
/// multi-head model (size / depth / mapped-LUT labels from the same
/// guided sample set), then run the depth- and LUT-objective flows twice
/// — once ranking with the matching head and once forced onto the size
/// head (FlowConfig::ranking_head, the PR-4 proxy behavior) — and report
/// the per-metric BG-Best ratios side by side.  The size objective is
/// included as the unchanged baseline (its two rows must be identical:
/// size ranking *is* the proxy).
///
/// Quick mode trains small models for seconds per design; --full uses the
/// paper-scale widths/epochs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "opt/objective.hpp"
#include "util/progress.hpp"

namespace {

struct Row {
    std::string design;
    std::string objective;
    double head_depth_ratio = 1.0;
    double proxy_depth_ratio = 1.0;
    double head_value_ratio = 1.0;
    double proxy_value_ratio = 1.0;
    std::string ranked_by;
};

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("multi-head ranking vs size-as-proxy");

    const std::vector<std::string> designs = {"b07", "b09", "b10"};
    const std::vector<std::string> objectives = {"size", "depth", "luts:4"};

    bg::opt::LutMapParams lut;
    lut.k = 4;
    std::vector<Row> rows;
    for (const auto& name : designs) {
        const bg::aig::Aig design = scale.design(name);
        // One multi-head model per design, trained on all three labels.
        bg::core::ModelConfig mc = scale.model;
        mc.heads = {bg::core::MetricHead::Size, bg::core::MetricHead::Depth,
                    bg::core::MetricHead::Luts};
        bg::core::BoolGebraModel model(mc);
        bg::Stopwatch sw;
        const auto records = bg::core::generate_guided_samples(
            design, scale.train_samples, 7, {}, nullptr, &lut);
        const auto ds = bg::core::build_dataset(design, records);
        const auto tr = bg::core::train_model(model, ds, scale.train);
        std::printf("%s: trained %zu-head model, test MSE %.4f (%.1fs)\n",
                    name.c_str(), model.num_heads(), tr.final_test_loss,
                    sw.seconds());

        for (const auto& spec : objectives) {
            bg::core::FlowConfig fc;
            fc.num_samples = scale.flow_samples;
            fc.top_k = scale.flow_top_k;
            fc.seed = 13;
            fc.objective = bg::opt::make_objective(spec);

            const auto by_head = bg::core::run_flow(design, model, fc);
            bg::core::FlowConfig proxy = fc;
            proxy.ranking_head = bg::core::MetricHead::Size;
            const auto by_proxy = bg::core::run_flow(design, model, proxy);

            Row row;
            row.design = name;
            row.objective = spec;
            row.ranked_by = by_head.ranked_by;
            row.head_depth_ratio = by_head.bg_best_depth_ratio;
            row.proxy_depth_ratio = by_proxy.bg_best_depth_ratio;
            row.head_value_ratio = by_head.bg_best_value_ratio;
            row.proxy_value_ratio = by_proxy.bg_best_value_ratio;
            rows.push_back(row);
        }
    }

    bg::TablePrinter table({"design", "objective", "ranked-by", "D-Best",
                            "D-Best(proxy)", "V-Best", "V-Best(proxy)"});
    for (const auto& r : rows) {
        table.add_row({r.design, r.objective, r.ranked_by,
                       bg::TablePrinter::fmt(r.head_depth_ratio),
                       bg::TablePrinter::fmt(r.proxy_depth_ratio),
                       bg::TablePrinter::fmt(r.head_value_ratio),
                       bg::TablePrinter::fmt(r.proxy_value_ratio)});
    }
    table.print();

    // Self-check: under the size objective the matching head *is* the
    // size head, so both rows must agree exactly.
    for (const auto& r : rows) {
        if (r.objective == "size" &&
            (r.head_depth_ratio != r.proxy_depth_ratio ||
             r.head_value_ratio != r.proxy_value_ratio)) {
            std::printf("FAIL: size objective diverged from its own proxy "
                        "on %s\n",
                        r.design.c_str());
            return 1;
        }
    }
    std::puts("\nself-check passed: size-objective ranking == size proxy");
    return 0;
}
