/// \file bench_table1_minimization.cpp
/// Reproduces Table I: optimized AIG size as a fraction of the original
/// for the three stand-alone SOTA passes (rewrite / resub / refactor in
/// ABC) against the BoolGebra flow's BG-Mean and BG-Best.  As in the
/// paper, the predictor is trained on b11 ONLY; every other design is
/// cross-design inference.  The shape to check: BG-Best <= each
/// stand-alone on average, with a few-percent improvement.

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "opt/standalone.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Table I: Boolean minimization vs stand-alone SOTA");

    // Train on b11 only (the paper's §IV-C setup).
    bg::Stopwatch sw;
    auto td = bgbench::train_design(scale, "b11");
    std::printf("predictor trained on b11 only (%.1fs, test MSE %.5f)\n\n",
                sw.seconds(), td.result.final_test_loss);

    const std::vector<std::string> designs = {"b07", "b08", "b09", "b10",
                                              "b11", "b12", "c2670",
                                              "c5315"};
    bg::TablePrinter table({"Designs", "rewrite", "resub", "refactor",
                            "BG(Mean)", "BG(Best)"});
    double sums[5] = {0, 0, 0, 0, 0};
    for (const auto& name : designs) {
        const auto design = scale.design(name);
        const auto orig = static_cast<double>(design.num_ands());
        double ratios[5] = {0, 0, 0, 0, 0};

        const bg::opt::OpKind ops[3] = {bg::opt::OpKind::Rewrite,
                                        bg::opt::OpKind::Resub,
                                        bg::opt::OpKind::Refactor};
        for (int k = 0; k < 3; ++k) {
            bg::aig::Aig g = design;
            (void)bg::opt::standalone_pass(g, ops[k]);
            ratios[k] = static_cast<double>(g.num_ands()) / orig;
        }

        bg::core::FlowConfig fc;
        fc.num_samples = scale.flow_samples;
        fc.top_k = scale.flow_top_k;
        fc.seed = 0x7AB1E1;
        const auto flow = bg::core::run_flow(design, td.model, fc);
        ratios[3] = flow.bg_mean_ratio;
        ratios[4] = flow.bg_best_ratio;

        std::vector<std::string> row{name};
        for (int k = 0; k < 5; ++k) {
            row.push_back(bg::TablePrinter::fmt(ratios[k]));
            sums[k] += ratios[k];
        }
        table.add_row(row);
    }
    std::vector<std::string> avg_row{"Avg"};
    for (double& s : sums) {
        s /= static_cast<double>(designs.size());
        avg_row.push_back(bg::TablePrinter::fmt(s));
    }
    table.add_row(avg_row);
    // Impr.(%) row: improvement of BG-Best over each stand-alone average.
    table.add_row({"Impr.",
                   bg::TablePrinter::fmt(100.0 * (sums[0] - sums[4]), 1) + "%",
                   bg::TablePrinter::fmt(100.0 * (sums[1] - sums[4]), 1) + "%",
                   bg::TablePrinter::fmt(100.0 * (sums[2] - sums[4]), 1) + "%",
                   "-", "-"});
    table.print();

    const bool wins = sums[4] <= sums[0] && sums[4] <= sums[1] &&
                      sums[4] <= sums[2];
    std::printf("\nshape check (paper): BG-Best average beats every "
                "stand-alone average: %s\n",
                wins ? "YES" : "NO");
    std::printf("(paper reports rewrite 0.925, resub 0.942, refactor 0.943, "
                "BG-Mean 0.892, BG-Best 0.888 -> 3.6%%/5.3%%/5.5%% Impr.)\n");
    return wins ? 0 : 1;
}
