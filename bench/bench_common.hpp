#pragma once

/// Shared scaffolding for the experiment harnesses.  Every harness runs in
/// *quick* mode by default (CPU-friendly sizes, minutes for the full
/// suite) and in *paper-scale* mode with `--full` or BOOLGEBRA_FULL=1
/// (the paper's 6000 samples / 600 training samples / 1500 epochs /
/// 512-wide model; hours on CPU).

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "util/progress.hpp"

namespace bgbench {

struct Scale {
    bool full = false;
    double design_scale = 0.25;      ///< fraction of the paper's AIG sizes
    std::size_t fig2_samples = 100;  ///< paper: 6000
    std::size_t train_samples = 64;  ///< paper: 600
    std::size_t flow_samples = 100;  ///< paper: 600
    std::size_t flow_top_k = 10;     ///< paper: 10
    bg::core::ModelConfig model;
    bg::core::TrainConfig train;

    static Scale from_args(int argc, char** argv) {
        Scale s;
        s.full = bg::full_scale_requested(argc, argv);
        if (s.full) {
            s.design_scale = 1.0;
            s.fig2_samples = 6000;
            s.train_samples = 600;
            s.flow_samples = 600;
            s.model = bg::core::ModelConfig::paper();
            s.train = bg::core::TrainConfig::paper();
        } else {
            s.model = bg::core::ModelConfig::quick();
            s.model.sage_dims = {32, 32, 16};
            s.model.mlp_dims = {32, 16, 1};
            s.train = bg::core::TrainConfig::quick();
            s.train.epochs = 60;
            s.train.batch_size = 16;
            s.train.lr = 3e-3;
            s.train.decay_every = 25;
            s.train.eval_every = 6;
        }
        return s;
    }

    void banner(const char* experiment) const {
        std::printf("== %s ==\n", experiment);
        std::printf("mode: %s (design scale %.2f, %zu train samples, "
                    "%zu epochs)%s\n\n",
                    full ? "PAPER-SCALE" : "quick", design_scale,
                    train_samples, train.epochs,
                    full ? "" : "   [--full or BOOLGEBRA_FULL=1 for "
                                "paper-scale]");
    }

    bg::aig::Aig design(const std::string& name) const {
        return full ? bg::circuits::make_benchmark(name)
                    : bg::circuits::make_benchmark_scaled(name, design_scale);
    }
};

/// Guided-sample dataset + trained model for one design.
struct TrainedDesign {
    bg::aig::Aig design;
    bg::core::Dataset dataset;
    bg::core::BoolGebraModel model;
    bg::core::TrainResult result;
};

inline TrainedDesign train_design(const Scale& s, const std::string& name,
                                  std::uint64_t sample_seed = 7) {
    TrainedDesign td{s.design(name), {}, bg::core::BoolGebraModel(s.model),
                     {}};
    const auto records = bg::core::generate_guided_samples(
        td.design, s.train_samples, sample_seed);
    td.dataset = bg::core::build_dataset(td.design, records);
    td.result = bg::core::train_model(td.model, td.dataset, s.train);
    return td;
}

}  // namespace bgbench
