/// \file bench_audit_overhead.cpp
/// Pins the "audit hooks are free in normal builds" claim two ways:
///
///  1. Semantically: sweeping every accessor of a large AIG under an
///     *active* ShadowScope must record nothing in a normal build — if a
///     hook were ever compiled unconditionally, the shadow set would fill
///     and this harness exits non-zero.  (Audit builds record, and the
///     harness checks that instead.)
///  2. Empirically: the accessor sweep is timed with and without the
///     active scope, so an audit-build slowdown is visible and a normal
///     build can eyeball parity.  Timing is reported, never asserted —
///     a loaded CI box must not flake the build.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "aig/aig.hpp"
#include "aig/audit.hpp"
#include "circuits/registry.hpp"

namespace {

using namespace bg::aig;  // NOLINT: bench brevity

/// One full accessor sweep: every read class of every node, accumulated
/// into a checksum the optimizer cannot discard.
std::uint64_t sweep(const Aig& g) {
    std::uint64_t acc = 0;
    for (const Var v : g.topo_ands()) {
        acc += g.is_and(v) ? 1 : 0;
        acc += g.fanin0_ref(v).raw();
        acc += g.fanin1_ref(v).raw();
        acc += g.ref_count(v);
        acc += g.level(v);
        for (const Var f : g.fanouts(v)) {
            acc += f;
        }
    }
    return acc;
}

double time_sweeps(const Aig& g, int reps, std::uint64_t& sink) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
        sink += sweep(g);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
    std::printf("== Audit-hook overhead (%s build) ==\n",
                audit::enabled() ? "AUDIT" : "normal");
    const Aig g = bg::circuits::make_benchmark_scaled("b12", 0.5);
    std::printf("design: %s\n", g.to_string().c_str());
    const int reps = 50;

    std::uint64_t sink = 0;
    const double cold_ms = time_sweeps(g, reps, sink);  // warm caches

    const double plain_ms = time_sweeps(g, reps, sink);

    audit::ShadowSet shadow;
    double scoped_ms = 0;
    {
        const audit::ShadowScope scope(shadow);
        scoped_ms = time_sweeps(g, reps, sink);
    }

    std::printf("sweep x%d: no scope %.2f ms, active scope %.2f ms "
                "(warmup %.2f ms, checksum %llu)\n",
                reps, plain_ms, scoped_ms, cold_ms,
                static_cast<unsigned long long>(sink));

    if (audit::enabled()) {
        if (shadow.entries.empty() && !shadow.overflow) {
            std::fprintf(stderr,
                         "FAIL: audit build recorded no accessor reads\n");
            return EXIT_FAILURE;
        }
        std::printf("audit build: %zu reads recorded%s\n",
                    shadow.entries.size(),
                    shadow.overflow ? " (overflowed)" : "");
    } else {
        // The pin: a normal build must compile the hooks to nothing, so
        // an active recorder observes zero reads.
        if (!shadow.entries.empty() || shadow.overflow || shadow.po_read) {
            std::fprintf(stderr,
                         "FAIL: normal build recorded %zu accessor reads — "
                         "an audit hook is compiled unconditionally\n",
                         shadow.entries.size());
            return EXIT_FAILURE;
        }
        std::printf("normal build: 0 reads recorded with an active scope — "
                    "hooks compiled away\n");
    }
    return EXIT_SUCCESS;
}
