/// Harness for the intra-design parallel orchestrator: on a >= 100k-node
/// scaled registry design and a 1M-node file-backed design, run the same
/// mixed decision vector through the sequential orchestrator and the
/// partition/speculate/ordered-commit path at 1/2/4 workers.  Alongside
/// the throughput table it self-checks the acceptance bar — bit-identical
/// committed graphs at every worker count and a >= 1.5x orchestration
/// speedup at 4 workers on the registry design — and returns nonzero if
/// any check fails, so CI/nightly can gate on it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "circuits/design_source.hpp"
#include "circuits/registry.hpp"
#include "io/aiger.hpp"
#include "opt/orchestrate.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using bg::aig::Aig;
using bg::aig::Var;
using bg::opt::DecisionVector;
using bg::opt::OpKind;

/// Deterministic dense random AIG (same construction as bench_aig_scale):
/// few PIs, so the graph is deep and fanout-heavy like real netlists.
Aig build_large(std::size_t pis, std::size_t ands, std::uint64_t seed) {
    using namespace bg::aig;
    Aig g;
    g.reserve(1 + pis + ands);
    bg::Rng rng(seed);
    std::vector<Lit> pool = g.add_pis(pis);
    pool.reserve(pis + ands);
    while (g.num_ands() < ands) {
        const Lit x = pool[rng.next_u64() % pool.size()];
        const Lit y = pool[rng.next_u64() % pool.size()];
        const Lit z = g.and_(lit_not_cond(x, rng.next_u64() % 2 != 0),
                             lit_not_cond(y, rng.next_u64() % 2 != 0));
        if (!g.is_and(lit_var(z))) {
            continue;  // trivial simplification, no new node
        }
        pool.push_back(z);
    }
    for (std::size_t i = 0; i < 32 && i < pool.size(); ++i) {
        g.add_po(pool[pool.size() - 1 - i]);
    }
    return g;
}

/// rw/rs/rf round-robin over every AND — the same shape a sampled flow
/// round commits.
DecisionVector mixed_decisions(const Aig& g) {
    DecisionVector d(g.num_slots(), OpKind::None);
    for (const Var v : g.topo_ands()) {
        d[v] = bg::opt::op_from_index(static_cast<int>(v % 3));
    }
    return d;
}

struct StageOutcome {
    double t_seq = 0.0;
    double t_par4 = 0.0;
};

/// Time the sequential orchestrator and the parallel one at each worker
/// count on fresh copies of `design` (best of `reps`, so one scheduler
/// hiccup does not decide the table), checking bit-parity throughout.
StageOutcome run_stage(
    const std::string& label, const Aig& design, int reps,
    bg::TablePrinter& table,
    const std::function<void(bool, const std::string&)>& check) {
    const DecisionVector d = mixed_decisions(design);

    StageOutcome out;
    Aig ref;
    for (int r = 0; r < reps; ++r) {
        Aig g = design;
        bg::Stopwatch sw;
        const auto res = bg::opt::orchestrate(g, d);
        const double t = sw.seconds();
        if (r == 0 || t < out.t_seq) {
            out.t_seq = t;
        }
        if (r == 0) {
            ref = std::move(g);
            check(res.num_applied > 0,
                  label + ": sequential pass applied transforms");
        }
    }
    const auto fp_ref = bg::aig::structural_fingerprint(ref);
    table.add_row({label + " sequential", bg::TablePrinter::fmt(out.t_seq, 3),
                   "1.00x"});

    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        bg::ThreadPool pool(workers);
        bg::opt::IntraParallel intra;
        intra.pool = &pool;
        double best = 0.0;
        std::uint64_t fp = 0;
        std::size_t conflicts = 0;
        for (int r = 0; r < reps; ++r) {
            Aig g = design;
            bg::Stopwatch sw;
            const auto res = bg::opt::orchestrate_parallel(
                g, d, {}, bg::opt::size_objective(), intra);
            const double t = sw.seconds();
            if (r == 0 || t < best) {
                best = t;
            }
            fp = bg::aig::structural_fingerprint(g);
            conflicts = res.num_conflicts;
        }
        check(fp == fp_ref, label + ": bit-identical at " +
                                std::to_string(workers) + " workers");
        const double speedup = best > 0.0 ? out.t_seq / best : 0.0;
        table.add_row({label + " " + std::to_string(workers) + " workers (" +
                           std::to_string(conflicts) + " conflicts)",
                       bg::TablePrinter::fmt(best, 3),
                       bg::TablePrinter::fmt(speedup, 2) + "x"});
        if (workers == 4) {
            out.t_par4 = best;
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const bool full = bg::full_scale_requested(argc, argv);
    const double registry_scale = full ? 256.0 : 128.0;
    const std::size_t k_file_ands = 1'000'000;
    const int reps = 2;

    std::printf("== Intra-design parallel orchestration ==\n");
    std::printf("mode: %s (registry scale %.0fx, %zu-AND file design)%s\n\n",
                full ? "PAPER-SCALE" : "quick", registry_scale, k_file_ands,
                full ? "" : "   [--full or BOOLGEBRA_FULL=1 for 256x]");

    std::vector<std::string> failures;
    const auto check = [&failures](bool ok, const std::string& what) {
        if (!ok) {
            failures.push_back(what);
        }
        std::printf("self-check: %-58s %s\n", what.c_str(),
                    ok ? "OK" : "FAIL");
    };

    bg::TablePrinter table({"stage", "seconds", "speedup"});

    // -- >= 100k-node scaled registry design --------------------------------
    const Aig registry =
        bg::circuits::make_benchmark_scaled("b12", registry_scale);
    std::printf("registry design: b12 x%.0f = %zu ANDs\n", registry_scale,
                registry.num_ands());
    check(registry.num_ands() >= 100'000,
          "registry design reaches 100k AND nodes");
    const auto reg = run_stage("b12-scaled", registry, reps, table, check);
    check(reg.t_par4 > 0.0 && reg.t_seq / reg.t_par4 >= 1.5,
          "registry design >= 1.5x speedup at 4 workers");

    // -- 1M-node design through the AIGER file -> DesignSource path ---------
    const auto dir = fs::temp_directory_path() / "bg_bench_intra_parallel";
    fs::create_directories(dir);
    const std::string path = (dir / "intra.aig").string();
    {
        const Aig g = build_large(64, k_file_ands, 42);
        bg::io::write_aiger_binary_file(g, path);
    }
    const Aig loaded = bg::circuits::load_design_spec("file:" + path);
    std::printf("file design: %zu ANDs from %s\n", loaded.num_ands(),
                path.c_str());
    check(loaded.num_ands() >= k_file_ands,
          "file-backed design keeps >= 1M AND nodes");
    (void)run_stage("file-1M", loaded, 1, table, check);

    std::error_code ec;
    fs::remove_all(dir, ec);

    std::printf("\n");
    table.print();
    std::printf("\nself-checks: %zu failed\n", failures.size());
    for (const auto& f : failures) {
        std::printf("  FAIL: %s\n", f.c_str());
    }
    return failures.empty() ? 0 : 1;
}
