/// \file bench_objectives.cpp
/// Table-I-style comparison of the pluggable cost models: the same
/// trained predictor drives the flow over the same designs under the
/// size, depth, mapped-LUT and weighted objectives, reporting each run's
/// per-metric ratios (size / depth / objective scalar vs the original).
/// The shapes to check: the size objective minimizes the AND-count
/// column, the depth objective never ranks a deeper candidate best, and
/// the LUT objective's scalar column tracks `lut_map` counts.  Quick mode
/// by default; `--full` / BOOLGEBRA_FULL=1 is paper scale.

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "opt/objective.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Objectives: size vs depth vs luts vs weighted");

    // One cross-design predictor (trained on b11, as in Table I).
    bg::Stopwatch sw;
    auto td = bgbench::train_design(scale, "b11");
    std::printf("predictor trained on b11 only (%.1fs, test MSE %.5f)\n\n",
                sw.seconds(), td.result.final_test_loss);

    const std::vector<std::string> designs = {"b07", "b09", "b10", "b11"};
    const std::vector<std::string> objectives = {"size", "depth", "luts",
                                                 "weighted:1,4"};

    bool depth_sound = true;
    for (const auto& spec : objectives) {
        const auto objective = bg::opt::make_objective(spec);
        bg::TablePrinter table({"design", "ands", "depth", "BG-Best",
                                "D-Best", "V-Best", "BG-Mean", "D-Mean",
                                "sec"});
        double sums[5] = {0, 0, 0, 0, 0};
        for (const auto& name : designs) {
            const auto design = scale.design(name);
            bg::core::FlowConfig fc;
            fc.num_samples = scale.flow_samples;
            fc.top_k = scale.flow_top_k;
            fc.seed = 0x0B7EC7;
            fc.objective = objective;
            bg::Stopwatch flow_sw;
            const auto flow = bg::core::run_flow(design, td.model, fc);
            const double secs = flow_sw.seconds();

            // Internal soundness: the committed best must be
            // comparator-minimal over the evaluated candidates.
            for (const auto& cost : flow.costs) {
                if (objective->better(cost, flow.best_cost)) {
                    depth_sound = false;
                }
            }

            table.add_row({name, std::to_string(flow.original_size),
                           std::to_string(flow.original_depth),
                           bg::TablePrinter::fmt(flow.bg_best_ratio),
                           bg::TablePrinter::fmt(flow.bg_best_depth_ratio),
                           bg::TablePrinter::fmt(flow.bg_best_value_ratio),
                           bg::TablePrinter::fmt(flow.bg_mean_ratio),
                           bg::TablePrinter::fmt(flow.bg_mean_depth_ratio),
                           bg::TablePrinter::fmt(secs, 2)});
            sums[0] += flow.bg_best_ratio;
            sums[1] += flow.bg_best_depth_ratio;
            sums[2] += flow.bg_best_value_ratio;
            sums[3] += flow.bg_mean_ratio;
            sums[4] += flow.bg_mean_depth_ratio;
        }
        const auto n = static_cast<double>(designs.size());
        table.add_row({"Avg.", "-", "-", bg::TablePrinter::fmt(sums[0] / n),
                       bg::TablePrinter::fmt(sums[1] / n),
                       bg::TablePrinter::fmt(sums[2] / n),
                       bg::TablePrinter::fmt(sums[3] / n),
                       bg::TablePrinter::fmt(sums[4] / n), "-"});
        std::printf("-- objective %s --\n", objective->name().c_str());
        table.print();
        std::printf("\n");
    }

    std::printf("shape check: every objective's best candidate is "
                "comparator-minimal: %s\n",
                depth_sound ? "YES" : "NO");
    return depth_sound ? 0 : 1;
}
