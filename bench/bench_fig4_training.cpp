/// \file bench_fig4_training.cpp
/// Reproduces Figure 4: design-specific testing-loss (MSE) curves over
/// training epochs for b07, b08, b09, b10, b11, b12, c2670 and c5315.
/// The shape to check: every curve decreases and converges.

#include "bench_common.hpp"

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Figure 4: design-specific testing loss vs epochs");

    const std::vector<std::string> designs = {"b07", "b08", "b09", "b10",
                                              "b11", "b12", "c2670",
                                              "c5315"};
    bg::TablePrinter table({"design", "nodes", "epoch0", "25%", "50%", "75%",
                            "final", "decreasing?"});
    bool all_converge = true;
    for (const auto& name : designs) {
        bg::Stopwatch sw;
        const auto td = bgbench::train_design(scale, name);
        const auto& h = td.result.history;
        const auto at = [&](double frac) {
            const auto idx = static_cast<std::size_t>(
                frac * static_cast<double>(h.size() - 1));
            return h[idx].test_loss;
        };
        const bool decreasing = h.back().test_loss < h.front().test_loss;
        all_converge &= decreasing;
        table.add_row({name, std::to_string(td.design.num_ands()),
                       bg::TablePrinter::fmt(at(0.0), 5),
                       bg::TablePrinter::fmt(at(0.25), 5),
                       bg::TablePrinter::fmt(at(0.5), 5),
                       bg::TablePrinter::fmt(at(0.75), 5),
                       bg::TablePrinter::fmt(at(1.0), 5),
                       decreasing ? "yes" : "NO"});
        std::printf("  [%s trained in %.1fs]\n", name.c_str(), sw.seconds());
    }
    std::printf("\n");
    table.print();
    std::printf("\nshape check (paper): every testing-loss curve decreases "
                "over training: %s\n",
                all_converge ? "YES" : "NO");
    return all_converge ? 0 : 1;
}
