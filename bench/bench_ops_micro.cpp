/// \file bench_ops_micro.cpp
/// google-benchmark micro-benchmarks of the core engines: structural
/// hashing, cut enumeration, NPN canonization, ISOP + factoring, the
/// three transformability checks, simulation, orchestration and the
/// GraphSAGE forward/backward.

#include <benchmark/benchmark.h>

#include <optional>

#include "aig/simulation.hpp"
#include "bdd/cec_bdd.hpp"
#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "cut/cut_enum.hpp"
#include "opt/lut_map.hpp"
#include "opt/rewrite_lib.hpp"
#include "opt/standalone.hpp"
#include "sat/cec_sat.hpp"
#include "tt/factor.hpp"
#include "tt/isop.hpp"
#include "tt/npn.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

bg::aig::Aig design() {
    static const bg::aig::Aig g =
        bg::circuits::make_benchmark_scaled("b11", 0.5);
    return g;
}

void BM_Strash(benchmark::State& state) {
    bg::Rng rng(1);
    for (auto _ : state) {
        bg::aig::Aig g;
        const auto pis = g.add_pis(16);
        std::vector<bg::aig::Lit> pool(pis.begin(), pis.end());
        for (int i = 0; i < 500; ++i) {
            const auto a = bg::aig::lit_not_cond(
                pool[rng.next_below(pool.size())], rng.next_bool());
            const auto b = bg::aig::lit_not_cond(
                pool[rng.next_below(pool.size())], rng.next_bool());
            pool.push_back(g.and_(a, b));
        }
        benchmark::DoNotOptimize(g.num_ands());
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_Strash);

void BM_CutEnumeration(benchmark::State& state) {
    const auto g = design();
    const auto ands = g.topo_ands();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto cuts =
            bg::cut::enumerate_cuts(g, ands[i % ands.size()], 4, 24);
        benchmark::DoNotOptimize(cuts.size());
        ++i;
    }
}
BENCHMARK(BM_CutEnumeration);

void BM_NpnCanonize(benchmark::State& state) {
    std::uint16_t f = 0x1234;
    for (auto _ : state) {
        const auto c = bg::tt::npn_canonize(f);
        benchmark::DoNotOptimize(c.canon);
        f = static_cast<std::uint16_t>(f * 33 + 17);
    }
}
BENCHMARK(BM_NpnCanonize);

void BM_IsopFactor(benchmark::State& state) {
    bg::Rng rng(2);
    bg::tt::TruthTable t(8);
    for (std::uint64_t m = 0; m < t.num_bits(); ++m) {
        t.set_bit(m, rng.next_bool());
    }
    for (auto _ : state) {
        const auto ff = bg::tt::factor(bg::tt::isop(t));
        benchmark::DoNotOptimize(ff.aig_node_count());
    }
}
BENCHMARK(BM_IsopFactor);

void BM_RewriteLibLookup(benchmark::State& state) {
    auto& lib = bg::opt::RewriteLibrary::instance();
    std::uint16_t f = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lib.structure_for(f).num_gates());
        f = static_cast<std::uint16_t>(f + 641);
    }
}
BENCHMARK(BM_RewriteLibLookup);

void BM_CheckRewrite(benchmark::State& state) {
    const auto g = design();
    const auto ands = g.topo_ands();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::opt::check_rewrite(g, ands[i % ands.size()]).applicable);
        ++i;
    }
}
BENCHMARK(BM_CheckRewrite);

void BM_CheckResub(benchmark::State& state) {
    const auto g = design();
    const auto ands = g.topo_ands();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::opt::check_resub(g, ands[i % ands.size()]).applicable);
        ++i;
    }
}
BENCHMARK(BM_CheckResub);

void BM_CheckRefactor(benchmark::State& state) {
    const auto g = design();
    const auto ands = g.topo_ands();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::opt::check_refactor(g, ands[i % ands.size()]).applicable);
        ++i;
    }
}
BENCHMARK(BM_CheckRefactor);

void BM_Simulate64Words(benchmark::State& state) {
    const auto g = design();
    bg::Rng rng(3);
    const auto pats = bg::aig::random_patterns(g.num_pis(), 64, rng);
    for (auto _ : state) {
        const auto sigs = bg::aig::simulate(g, pats);
        benchmark::DoNotOptimize(sigs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.num_ands()) * 64);
}
BENCHMARK(BM_Simulate64Words);

void BM_OrchestratePass(benchmark::State& state) {
    const auto base = design();
    bg::Rng rng(4);
    for (auto _ : state) {
        state.PauseTiming();
        auto g = base;
        const auto d = bg::core::random_decisions(g, rng);
        state.ResumeTiming();
        auto copy = g;
        benchmark::DoNotOptimize(
            bg::opt::orchestrate(copy, d).reduction());
    }
}
BENCHMARK(BM_OrchestratePass);

void BM_StaticFeatures(benchmark::State& state) {
    const auto g = design();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::core::compute_static_features(g).size());
    }
}
BENCHMARK(BM_StaticFeatures);

void BM_MeanAggregate(benchmark::State& state) {
    // The GraphSAGE neighbor aggregation — the next-largest inference
    // cost after the blocked GEMMs.  Arg(0)=1 runs the fast path with the
    // CSR's precomputed 1/deg (what FlowContext-cached CSRs provide);
    // Arg(0)=0 strips it to measure the per-call-division fallback.
    auto g = design();
    auto csr = bg::core::build_csr(g);
    if (state.range(0) == 0) {
        csr.inv_deg.clear();
    }
    constexpr std::size_t batch = 8;
    constexpr std::size_t feat = 48;  // quick-mode hidden width
    bg::Rng rng(6);
    bg::nn::Matrix x(batch * csr.num_nodes(), feat);
    for (auto& v : x.data()) {
        v = rng.next_float();
    }
    bg::nn::Matrix h;
    for (auto _ : state) {
        bg::nn::mean_aggregate(x, csr, batch, h);
        benchmark::DoNotOptimize(h.data().data());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(batch * csr.neighbors.size() * feat));
}
BENCHMARK(BM_MeanAggregate)->Arg(0)->Arg(1);

void BM_MeanAggregatePooled(benchmark::State& state) {
    // The edge-parallel sharded aggregation on a worker pool (Arg = pool
    // size; 0 = serial reference).  Bit-identical to BM_MeanAggregate's
    // serial result by construction — this measures scheduling overhead
    // vs. speedup at the flow's real batch shape.
    const auto g = design();
    const auto csr = bg::core::build_csr(g);
    constexpr std::size_t batch = 8;
    constexpr std::size_t feat = 48;
    bg::Rng rng(6);
    bg::nn::Matrix x(batch * csr.num_nodes(), feat);
    for (auto& v : x.data()) {
        v = rng.next_float();
    }
    const auto workers = static_cast<std::size_t>(state.range(0));
    std::optional<bg::ThreadPool> pool;
    if (workers > 0) {
        pool.emplace(workers);
    }
    bg::nn::Matrix h;
    for (auto _ : state) {
        bg::nn::mean_aggregate(x, csr, batch, h,
                               pool ? &*pool : nullptr);
        benchmark::DoNotOptimize(h.data().data());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(batch * csr.neighbors.size() * feat));
}
BENCHMARK(BM_MeanAggregatePooled)->Arg(0)->Arg(2)->Arg(4);

void BM_SageForward(benchmark::State& state) {
    const auto g = design();
    const auto csr = bg::core::build_csr(g);
    bg::Rng rng(5);
    bg::nn::SageConv conv(12, 32, rng);
    bg::nn::Matrix x(8 * csr.num_nodes(), 12);
    for (auto& v : x.data()) {
        v = rng.next_float();
    }
    for (auto _ : state) {
        auto y = conv.forward(x, csr, 8);
        benchmark::DoNotOptimize(y.data().data());
    }
}
BENCHMARK(BM_SageForward);

void BM_SatCec(benchmark::State& state) {
    const auto original = design();
    auto optimized = original;
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::sat::check_equivalence_sat(original, optimized));
    }
}
BENCHMARK(BM_SatCec);

void BM_BddCec(benchmark::State& state) {
    const auto original = design();
    auto optimized = original;
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bg::bdd::check_equivalence_bdd(original, optimized));
    }
}
BENCHMARK(BM_BddCec);

void BM_LutMapping(benchmark::State& state) {
    const auto g = design();
    for (auto _ : state) {
        benchmark::DoNotOptimize(bg::opt::map_to_luts(g).num_luts());
    }
}
BENCHMARK(BM_LutMapping);

void BM_ModelForwardBackward(benchmark::State& state) {
    const auto g = design();
    const auto records = bg::core::generate_guided_samples(g, 8, 1);
    const auto ds = bg::core::build_dataset(g, records);
    bg::core::ModelConfig cfg = bg::core::ModelConfig::quick();
    cfg.sage_dims = {32, 32, 16};
    cfg.mlp_dims = {32, 16, 1};
    bg::core::BoolGebraModel model(cfg);
    bg::nn::Matrix x(8 * ds.num_nodes(), 12);
    std::vector<float> labels(8, 0.5F);
    for (std::size_t s = 0; s < 8; ++s) {
        const auto& f = ds.samples()[s].features;
        std::copy(f.begin(), f.end(), x.row(s * ds.num_nodes()));
    }
    for (auto _ : state) {
        model.zero_grad();
        auto pred = model.forward(x, ds.csr(), 8, /*train=*/true);
        bg::nn::Matrix dpred(pred.rows(), 1);
        for (std::size_t i = 0; i < 8; ++i) {
            dpred.at(i, 0) = pred.at(i, 0) - labels[i];
        }
        model.backward(dpred);
        benchmark::DoNotOptimize(pred.at(0, 0));
    }
}
BENCHMARK(BM_ModelForwardBackward);

}  // namespace

BENCHMARK_MAIN();
