/// \file bench_fig6_cross_design.cpp
/// Reproduces Figure 6: cross-design inference — a model trained on one
/// design predicts QoR on a *different* design (9 combinations of
/// training designs {b11, c2670, c5315} and testing designs
/// {b11, b12, c2670, c5315}).  The shape to check: correlations remain
/// positive across designs (the model generalizes), with b11 the
/// strongest training design.

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Figure 6: cross-design inference correlation");

    const std::vector<std::string> train_designs = {"b11", "c2670", "c5315"};
    const std::vector<std::string> test_designs = {"b11", "b12", "c2670",
                                                   "c5315"};

    // Pre-build evaluation sets once per test design.
    struct EvalSet {
        bg::core::Dataset ds;
        std::vector<double> labels;
    };
    std::vector<EvalSet> evals;
    for (const auto& name : test_designs) {
        const auto design = scale.design(name);
        const auto records = bg::core::generate_random_samples(
            design, std::max<std::size_t>(scale.train_samples / 2, 16),
            0xF16'6);
        EvalSet e{bg::core::build_dataset(design, records), {}};
        for (const auto& s : e.ds.samples()) {
            e.labels.push_back(s.label);
        }
        evals.push_back(std::move(e));
    }

    bg::TablePrinter table({"train \\ test", "b11", "b12", "c2670",
                            "c5315"});
    double sum = 0.0;
    std::size_t combos = 0;
    double b11_sum = 0.0;
    for (const auto& tname : train_designs) {
        auto td = bgbench::train_design(scale, tname);
        std::vector<std::string> row{tname};
        for (std::size_t t = 0; t < test_designs.size(); ++t) {
            if (test_designs[t] == tname) {
                row.push_back("(self)");
                continue;
            }
            std::vector<std::size_t> all(evals[t].ds.size());
            for (std::size_t i = 0; i < all.size(); ++i) {
                all[i] = i;
            }
            const auto preds = td.model.predict(evals[t].ds, all);
            const double sr = bg::spearman(preds, evals[t].labels);
            row.push_back(bg::TablePrinter::fmt(sr));
            sum += sr;
            ++combos;
            if (tname == "b11") {
                b11_sum += sr;
            }
        }
        table.add_row(row);
    }
    std::printf("spearman(prediction, ground truth) on unseen random "
                "samples of the TEST design:\n\n");
    table.print();
    const double avg = sum / static_cast<double>(combos);
    std::printf("\naverage cross-design spearman: %.3f (b11-trained avg: "
                "%.3f)\n",
                avg, b11_sum / 3.0);
    std::printf("shape check (paper): cross-design correlations stay "
                "positive (generalization): %s\n",
                avg > 0.0 ? "YES" : "NO");
    return avg > 0.0 ? 0 : 1;
}
