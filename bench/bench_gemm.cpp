/// \file bench_gemm.cpp
/// Micro-benchmark for the dense GEMM layer: naive (seed) triple loop vs
/// the blocked/register-tiled kernel, sequential and ThreadPool-sharded.
/// Every timed configuration is also parity-checked against the naive
/// reference, so a wrong-but-fast kernel cannot slip through.
///
/// Usage: bench_gemm [--quick] [--workers N]
///   --quick     fewer repetitions (CI nightly mode)
///   --workers   pool width for the parallel rows (default: hardware)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "nn/matrix.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/rng.hpp"

namespace {

using bg::nn::ConstMatrixView;
using bg::nn::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, bg::Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = 2.0F * rng.next_float() - 1.0F;
    }
    return m;
}

/// Best-of-reps wall time of fn(), with enough inner iterations that one
/// measurement is >= min_time.
template <typename Fn>
double time_best(Fn&& fn, int reps, double min_time) {
    fn();  // warm-up (and first-touch of the output)
    int iters = 1;
    for (;;) {
        bg::Stopwatch watch;
        for (int i = 0; i < iters; ++i) {
            fn();
        }
        const double dt = watch.seconds();
        if (dt >= min_time || iters >= (1 << 20)) {
            double best = dt / iters;
            for (int r = 1; r < reps; ++r) {
                watch.reset();
                for (int i = 0; i < iters; ++i) {
                    fn();
                }
                best = std::min(best, watch.seconds() / iters);
            }
            return best;
        }
        iters *= 2;
    }
}

bool bit_equal(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] != b.data()[i]) {
            return false;
        }
    }
    return true;
}

struct Case {
    const char* name;
    std::size_t n, k, m;
};

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::size_t workers = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            workers = static_cast<std::size_t>(std::max(0, std::atoi(argv[++i])));
        }
    }
    const int reps = quick ? 2 : 5;
    const double min_time = quick ? 0.05 : 0.2;
    bg::ThreadPool pool(workers);

    const Case cases[] = {
        {"square-64", 64, 64, 64},
        {"square-128", 128, 128, 128},
        {"square-256", 256, 256, 256},
        {"odd-257x129", 257, 193, 129},
        // Inference shapes: (B*N, in) x (in, hidden) feature GEMMs.
        {"sage-in", 4096, 12, 48},
        {"sage-hidden", 4096, 48, 48},
    };

    std::printf("GEMM kernels (Release, floats).  naive = seed triple loop;"
                " blocked = register-tiled; pool = %zu workers\n\n",
                pool.size());
    std::printf("%-14s %10s %10s %10s %9s %9s\n", "case", "naive", "blocked",
                "pool", "speedup", "pool-x");

    bool all_ok = true;
    for (const auto& c : cases) {
        bg::Rng rng(0xBEEF ^ c.n ^ (c.m << 8));
        const Matrix a = random_matrix(c.n, c.k, rng);
        const Matrix b = random_matrix(c.k, c.m, rng);
        Matrix ref;
        bg::nn::matmul_naive(a, b, ref);
        Matrix out;
        bg::nn::matmul(a, b, out);
        Matrix out_pool;
        bg::nn::matmul(a, b, out_pool, &pool);
        if (!bit_equal(ref, out) || !bit_equal(ref, out_pool)) {
            std::printf("%-14s PARITY FAILURE\n", c.name);
            all_ok = false;
            continue;
        }
        const double gflop =
            2.0 * static_cast<double>(c.n) * static_cast<double>(c.k) *
            static_cast<double>(c.m) * 1e-9;
        const double t_naive = time_best(
            [&] { bg::nn::matmul_naive(a, b, out); }, reps, min_time);
        const double t_blocked =
            time_best([&] { bg::nn::matmul(a, b, out); }, reps, min_time);
        const double t_pool = time_best(
            [&] { bg::nn::matmul(a, b, out, &pool); }, reps, min_time);
        std::printf("%-14s %8.2fGF %8.2fGF %8.2fGF %8.2fx %8.2fx\n", c.name,
                    gflop / t_naive, gflop / t_blocked, gflop / t_pool,
                    t_naive / t_blocked, t_naive / t_pool);
    }

    // Transposed variants at the training shapes.
    {
        bg::Rng rng(0xF00D);
        const Matrix a = random_matrix(256, 192, rng);
        const Matrix b = random_matrix(256, 160, rng);
        Matrix ref;
        bg::nn::matmul_tn_naive(a, b, ref);
        Matrix out;
        bg::nn::matmul_tn(a, b, out);
        all_ok = all_ok && bit_equal(ref, out);
        const double gflop = 2.0 * 192.0 * 256.0 * 160.0 * 1e-9;
        const double tn_naive = time_best(
            [&] { bg::nn::matmul_tn_naive(a, b, out); }, reps, min_time);
        const double tn_blocked =
            time_best([&] { bg::nn::matmul_tn(a, b, out); }, reps, min_time);
        std::printf("%-14s %8.2fGF %8.2fGF %10s %8.2fx\n", "tn-256",
                    gflop / tn_naive, gflop / tn_blocked, "-",
                    tn_naive / tn_blocked);

        const Matrix d = random_matrix(256, 192, rng);
        const Matrix e = random_matrix(160, 192, rng);
        Matrix ref_nt;
        bg::nn::matmul_nt_naive(d, e, ref_nt);
        Matrix out_nt;
        bg::nn::matmul_nt(d, e, out_nt);
        all_ok = all_ok && bit_equal(ref_nt, out_nt);
        const double gflop_nt = 2.0 * 256.0 * 192.0 * 160.0 * 1e-9;
        const double nt_naive = time_best(
            [&] { bg::nn::matmul_nt_naive(d, e, out_nt); }, reps, min_time);
        const double nt_blocked = time_best(
            [&] { bg::nn::matmul_nt(d, e, out_nt); }, reps, min_time);
        std::printf("%-14s %8.2fGF %8.2fGF %10s %8.2fx\n", "nt-256",
                    gflop_nt / nt_naive, gflop_nt / nt_blocked, "-",
                    nt_naive / nt_blocked);
    }

    if (!all_ok) {
        std::printf("\nFAIL: blocked kernel does not match the naive"
                    " reference bit-for-bit\n");
        return 1;
    }
    std::printf("\nall kernels parity-checked against the naive reference\n");
    return 0;
}
