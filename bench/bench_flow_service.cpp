/// \file bench_flow_service.cpp
/// Long-lived FlowService under cross-design traffic with a model
/// hot-swap mid-stream: submits every registry design (several passes),
/// swaps the model while jobs are in flight, and verifies that every
/// result is bit-identical to a sequential run_flow with the snapshot the
/// job was bound to at submission — the serving loop changes scheduling,
/// never output.  Reports jobs/s, samples/s and the p50/p95
/// submit-to-completion latencies.

#include <future>
#include <memory>

#include "bench_common.hpp"
#include "core/flow_service.hpp"

namespace {

bool same_flow(const bg::core::FlowResult& got,
               const bg::core::FlowResult& want) {
    return got.selected == want.selected &&
           got.reductions == want.reductions &&
           got.predictions == want.predictions &&
           got.best_reduction == want.best_reduction &&
           got.bg_best_ratio == want.bg_best_ratio &&
           got.bg_mean_ratio == want.bg_mean_ratio;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("FlowService: long-lived serving with model hot-swap");

    const std::vector<std::string> names = {"b07", "b08", "b09", "b10",
                                            "b11", "b12", "c2670", "c5315"};
    std::vector<bg::core::DesignJob> jobs;
    for (const auto& name : names) {
        jobs.push_back({name, scale.design(name)});
    }

    bg::core::ServiceConfig cfg;
    cfg.flow.num_samples = scale.flow_samples;
    cfg.flow.top_k = scale.flow_top_k;
    cfg.flow.seed = 0x5E21CE;

    // Two model generations; the service swaps from A to B mid-stream.
    auto cfg_b = scale.model;
    cfg_b.seed ^= 0x5EED;
    const auto model_a =
        std::make_shared<const bg::core::BoolGebraModel>(scale.model);
    const auto model_b =
        std::make_shared<const bg::core::BoolGebraModel>(cfg_b);

    // Sequential references, one per model generation.
    std::vector<bg::core::FlowResult> ref_a;
    std::vector<bg::core::FlowResult> ref_b;
    for (const auto& job : jobs) {
        ref_a.push_back(bg::core::run_flow(job.design, *model_a, cfg.flow));
        ref_b.push_back(bg::core::run_flow(job.design, *model_b, cfg.flow));
    }

    const std::size_t passes = 3;  // passes x designs jobs in total
    bg::core::FlowService service(cfg, model_a);
    std::printf("submitting %zu jobs (%zu designs x %zu passes) on %zu "
                "workers, hot-swap at the halfway mark\n\n",
                passes * jobs.size(), jobs.size(), passes,
                service.workers());

    const std::size_t swap_at = passes * jobs.size() / 2;
    std::vector<std::future<bg::core::DesignFlowResult>> futures;
    std::vector<bool> on_model_a;
    bool swapped = false;
    for (std::size_t p = 0; p < passes; ++p) {
        for (const auto& job : jobs) {
            if (!swapped && futures.size() >= swap_at) {
                service.swap_model(model_b);  // in-flight jobs keep A
                swapped = true;
            }
            on_model_a.push_back(!swapped);
            futures.push_back(service.submit(job));
        }
    }

    bool all_identical = true;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto got = futures[i].get();
        const auto& want =
            on_model_a[i] ? ref_a[i % jobs.size()] : ref_b[i % jobs.size()];
        const bool identical = same_flow(got.flow, want);
        all_identical = all_identical && identical;
        if (!identical) {
            std::printf("MISMATCH: job %zu (%s, model %s)\n", i,
                        got.name.c_str(), on_model_a[i] ? "A" : "B");
        }
    }
    service.stop();

    const auto st = service.stats();
    bg::TablePrinter table({"metric", "value"});
    table.add_row({"jobs served", std::to_string(st.jobs_completed)});
    table.add_row({"model swaps", std::to_string(st.model_swaps)});
    table.add_row({"uptime (s)", bg::TablePrinter::fmt(st.uptime_seconds, 2)});
    table.add_row({"busy (s)", bg::TablePrinter::fmt(st.busy_seconds, 2)});
    table.add_row({"jobs/s", bg::TablePrinter::fmt(st.jobs_per_second, 2)});
    table.add_row(
        {"samples/s", bg::TablePrinter::fmt(st.samples_per_second, 1)});
    table.add_row(
        {"p50 latency (s)", bg::TablePrinter::fmt(st.p50_latency_seconds, 3)});
    table.add_row(
        {"p95 latency (s)", bg::TablePrinter::fmt(st.p95_latency_seconds, 3)});
    table.print();

    std::printf("\nhardware concurrency: %zu\n", bg::default_worker_count());
    std::printf("served results bit-identical to the bound snapshot's "
                "sequential flow: %s\n",
                all_identical ? "YES" : "NO");
    return all_identical ? 0 : 1;
}
