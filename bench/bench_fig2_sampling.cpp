/// \file bench_fig2_sampling.cpp
/// Reproduces Figure 2: the distribution of optimized AIG sizes under
/// purely random sampling vs priority-guided sampling for b11, b12,
/// c2670 and c5315.  The paper's findings to check:
///  (1) decision choice matters — the size spread is wide;
///  (2) random QoR is roughly Gaussian (bulky middle, thin tails);
///  (3) guided sampling is shifted toward smaller sizes.

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("Figure 2: random vs priority-guided sampling QoR");

    bg::TablePrinter table({"design", "strategy", "samples", "mean", "sd",
                            "min", "max", "density (size lo->hi)"});
    bool guided_always_better = true;
    for (const std::string name : {"b11", "b12", "c2670", "c5315"}) {
        const auto design = scale.design(name);
        const auto random = bg::core::generate_random_samples(
            design, scale.fig2_samples, 0xF16'2);
        const auto guided = bg::core::generate_guided_samples(
            design, scale.fig2_samples, 0xF16'2);

        double lo = 1e18;
        double hi = -1e18;
        const auto sizes = [&](const auto& batch) {
            std::vector<double> out;
            for (const auto& s : batch) {
                out.push_back(static_cast<double>(s.final_size));
                lo = std::min(lo, out.back());
                hi = std::max(hi, out.back());
            }
            return out;
        };
        const auto rs = sizes(random);
        const auto gs = sizes(guided);

        const auto emit = [&](const char* strategy,
                              const std::vector<double>& v) {
            const auto sum = bg::summarize(v);
            const auto hist = bg::histogram(v, 24, lo, hi);
            table.add_row({name, strategy, std::to_string(v.size()),
                           bg::TablePrinter::fmt(sum.mean, 1),
                           bg::TablePrinter::fmt(sum.stddev, 1),
                           bg::TablePrinter::fmt(sum.min, 0),
                           bg::TablePrinter::fmt(sum.max, 0),
                           bg::sparkline(hist)});
        };
        emit("random", rs);
        emit("guided", gs);
        guided_always_better &= bg::mean(gs) < bg::mean(rs);
    }
    table.print();
    std::printf("\nshape check (paper): guided mean size < random mean size "
                "on every design: %s\n",
                guided_always_better ? "YES" : "NO");
    return guided_always_better ? 0 : 1;
}
