/// Scale harness for the packed AIG storage redesign: build a >= 1M-AND
/// graph, round-trip it through the AIGER file -> DesignSource path, build
/// the feature-extraction CSR, and complete one size-objective flow round.
/// Alongside the throughput table it self-checks the storage acceptance
/// bar — at most 16 bytes per node of core node storage — and returns
/// nonzero if any check fails, so CI/nightly can gate on it.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "circuits/design_source.hpp"
#include "core/features.hpp"
#include "core/flow_engine.hpp"
#include "core/model.hpp"
#include "io/aiger.hpp"
#include "util/progress.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

/// Deterministic dense random AIG — same construction as the heavy
/// test_aig_scale suite: few PIs, so the graph is deep and fanout-heavy
/// like real netlists.
bg::aig::Aig build_large(std::size_t pis, std::size_t ands,
                         std::uint64_t seed) {
    using namespace bg::aig;
    Aig g;
    g.reserve(1 + pis + ands);
    bg::Rng rng(seed);
    std::vector<Lit> pool = g.add_pis(pis);
    pool.reserve(pis + ands);
    while (g.num_ands() < ands) {
        const Lit x = pool[rng.next_u64() % pool.size()];
        const Lit y = pool[rng.next_u64() % pool.size()];
        const Lit z = g.and_(lit_not_cond(x, rng.next_u64() % 2 != 0),
                             lit_not_cond(y, rng.next_u64() % 2 != 0));
        if (!g.is_and(lit_var(z))) {
            continue;  // trivial simplification, no new node
        }
        pool.push_back(z);
    }
    for (std::size_t i = 0; i < 32 && i < pool.size(); ++i) {
        g.add_po(pool[pool.size() - 1 - i]);
    }
    return g;
}

std::string mb(std::size_t bytes) {
    return bg::TablePrinter::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0),
                                 1) +
           " MiB";
}

std::string rate(double count, double secs) {
    return bg::TablePrinter::fmt(secs > 0.0 ? count / secs / 1e6 : 0.0, 2) +
           " M/s";
}

}  // namespace

int main(int argc, char** argv) {
    using bg::aig::Aig;

    const bool full = bg::full_scale_requested(argc, argv);
    const std::size_t k_ands = full ? 2'000'000 : 1'000'000;
    std::printf("== AIG scale: packed storage throughput ==\n");
    std::printf("mode: %s (%zu AND nodes)%s\n\n",
                full ? "PAPER-SCALE" : "quick", k_ands,
                full ? "" : "   [--full or BOOLGEBRA_FULL=1 for 2M nodes]");

    std::vector<std::string> failures;
    const auto check = [&failures](bool ok, const std::string& what) {
        if (!ok) {
            failures.push_back(what);
        }
        std::printf("self-check: %-52s %s\n", what.c_str(),
                    ok ? "OK" : "FAIL");
    };

    bg::TablePrinter table({"stage", "seconds", "throughput"});
    bg::Stopwatch sw;

    // -- construction -------------------------------------------------------
    Aig g = build_large(64, k_ands, 42);
    const double t_build = sw.seconds();
    table.add_row({"build (and_/strash)", bg::TablePrinter::fmt(t_build, 2),
                   rate(static_cast<double>(g.num_ands()), t_build)});

    const auto m = g.memory_stats();
    std::printf("node record: %zu bytes   nodes: %zu   core array: %s\n",
                Aig::node_bytes(), g.num_slots(), mb(m.node_array_bytes).c_str());
    std::printf("fanout arena: %s   strash: %s   total: %s\n\n",
                mb(m.fanout_bytes).c_str(), mb(m.strash_bytes).c_str(),
                mb(m.total()).c_str());

    // The acceptance bar: core node storage at most 16 bytes per node.
    check(Aig::node_bytes() <= 16, "core node storage <= 16 bytes/node");
    check(m.node_array_bytes >= g.num_slots() * Aig::node_bytes(),
          "memory stats account for the node array");

    // -- traversal ----------------------------------------------------------
    sw.reset();
    const auto order = g.topo_ands();
    const std::size_t depth = g.depth();
    const double t_topo = sw.seconds();
    table.add_row({"topo + depth", bg::TablePrinter::fmt(t_topo, 2),
                   rate(static_cast<double>(order.size()), t_topo)});
    check(order.size() == g.num_ands(), "topological order covers every AND");
    check(depth > 0, "depth computed on the large graph");

    // -- AIGER round trip through the DesignSource workload path ------------
    const auto dir = fs::temp_directory_path() / "bg_bench_aig_scale";
    fs::create_directories(dir);
    const std::string path = (dir / "scale.aig").string();

    sw.reset();
    bg::io::write_aiger_binary_file(g, path);
    const double t_write = sw.seconds();
    std::error_code size_ec;
    const auto file_bytes = fs::file_size(path, size_ec);
    table.add_row({"AIGER binary write", bg::TablePrinter::fmt(t_write, 2),
                   mb(size_ec ? 0 : file_bytes)});

    sw.reset();
    const Aig loaded = bg::circuits::load_design_spec("file:" + path);
    const double t_load = sw.seconds();
    table.add_row({"file: spec load", bg::TablePrinter::fmt(t_load, 2),
                   rate(static_cast<double>(loaded.num_ands()), t_load)});
    check(loaded.num_ands() >= k_ands, "loaded graph keeps >= target ANDs");
    check(loaded.num_pis() == g.num_pis() && loaded.num_pos() == g.num_pos(),
          "AIGER round trip preserves the interface");

    // -- GNN ingestion: CSR build -------------------------------------------
    sw.reset();
    const auto csr = bg::core::build_csr(loaded);
    const double t_csr = sw.seconds();
    table.add_row({"feature CSR build", bg::TablePrinter::fmt(t_csr, 2),
                   rate(static_cast<double>(csr.neighbors.size()), t_csr)});
    check(csr.offsets.size() == loaded.num_slots() + 1,
          "CSR offsets cover every slot");

    // -- one size-objective flow round --------------------------------------
    bg::core::ModelConfig mc = bg::core::ModelConfig::quick();
    mc.sage_dims = {12, 12, 8};
    mc.mlp_dims = {16, 8, 1};
    mc.dropout = 0.0F;
    mc.seed = 17;
    const bg::core::BoolGebraModel model{mc};
    bg::core::FlowConfig fc;
    fc.num_samples = full ? 8 : 2;
    fc.top_k = 1;
    fc.seed = 11;

    sw.reset();
    const auto res = bg::core::run_design_flow({"scale", loaded}, model, fc,
                                               /*rounds=*/1, nullptr);
    const double t_flow = sw.seconds();
    table.add_row({"size-objective flow round",
                   bg::TablePrinter::fmt(t_flow, 2),
                   std::to_string(res.samples_run) + " samples"});
    check(res.original_size == loaded.num_ands(),
          "flow round ran on the file-backed graph");
    check(res.iterated.final_size > 0 &&
              res.iterated.final_size <= res.original_size,
          "flow round completed with a committed size");

    std::error_code ec;
    fs::remove_all(dir, ec);

    std::printf("\n");
    table.print();
    std::printf("\nself-checks: %zu failed\n", failures.size());
    for (const auto& f : failures) {
        std::printf("  FAIL: %s\n", f.c_str());
    }
    return failures.empty() ? 0 : 1;
}
