/// \file bench_cec.cpp
/// CEC engine shoot-out: per-engine latency (random simulation, BDD,
/// incremental SAT) versus the portfolio race on every registry design,
/// for both an equivalent pair (design vs its rewritten twin) and a
/// refuted pair (design vs a single flipped output).  Shows where each
/// engine wins and what the race costs over the best single engine.

#include <cstdio>
#include <string>
#include <vector>

#include "aig/cec.hpp"
#include "bdd/cec_bdd.hpp"
#include "bench_common.hpp"
#include "opt/standalone.hpp"
#include "sat/cec_sat.hpp"
#include "util/parallel.hpp"
#include "verify/portfolio.hpp"

namespace {

using bg::aig::Aig;
using bg::aig::CecVerdict;
using bg::aig::Lit;
using bg::aig::Var;

/// Rebuild `source` with the first PO complemented: a definitively
/// inequivalent twin differing in exactly one output function.
Aig flip_first_po(const Aig& source) {
    const Aig src = source.compact();
    Aig out;
    std::vector<Lit> translate(src.num_slots(), 0);
    translate[0] = bg::aig::lit_false;
    for (std::size_t i = 0; i < src.num_pis(); ++i) {
        translate[src.pi(i)] = out.add_pi();
    }
    for (const Var v : src.topo_ands()) {
        const Lit f0 = src.fanin0(v);
        const Lit f1 = src.fanin1(v);
        translate[v] = out.and_(
            bg::aig::lit_not_cond(translate[bg::aig::lit_var(f0)],
                                  bg::aig::lit_is_compl(f0)),
            bg::aig::lit_not_cond(translate[bg::aig::lit_var(f1)],
                                  bg::aig::lit_is_compl(f1)));
    }
    for (std::size_t i = 0; i < src.num_pos(); ++i) {
        const Lit po = src.po(i);
        const Lit t = bg::aig::lit_not_cond(translate[bg::aig::lit_var(po)],
                                            bg::aig::lit_is_compl(po));
        out.add_po(i == 0 ? bg::aig::lit_not(t) : t);
    }
    return out;
}

struct Row {
    double sim_ms = 0.0;
    double bdd_ms = 0.0;
    double sat_ms = 0.0;
    double race_ms = 0.0;
    CecVerdict verdict = CecVerdict::ProbablyEquivalent;
    bg::verify::Engine winner = bg::verify::Engine::None;
};

Row measure(const Aig& a, const Aig& b, bg::ThreadPool& pool) {
    Row row;
    {
        const bg::Stopwatch t;
        (void)bg::aig::check_equivalence(a, b);
        row.sim_ms = t.seconds() * 1e3;
    }
    {
        const bg::Stopwatch t;
        (void)bg::bdd::check_equivalence_bdd(a, b);
        row.bdd_ms = t.seconds() * 1e3;
    }
    {
        const bg::Stopwatch t;
        (void)bg::sat::check_equivalence_sat(a, b);
        row.sat_ms = t.seconds() * 1e3;
    }
    {
        bg::verify::PortfolioCec prover({}, &pool);
        const bg::Stopwatch t;
        const auto report = prover.check(a, b);
        row.race_ms = t.seconds() * 1e3;
        row.verdict = report.verdict;
        row.winner = report.engine;
    }
    return row;
}

void print_row(const std::string& label, const Row& r) {
    std::printf("%-16s %9.2f %9.2f %9.2f %9.2f   %-20s %s\n", label.c_str(),
                r.sim_ms, r.bdd_ms, r.sat_ms, r.race_ms,
                to_string(r.verdict).c_str(),
                bg::verify::to_string(r.winner).c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bgbench::Scale::from_args(argc, argv);
    scale.banner("CEC engines: sim vs BDD vs SAT vs portfolio race");

    const std::vector<std::string> names = {"b07", "b08", "b09", "b10",
                                            "b11", "b12", "c2670", "c5315"};
    bg::ThreadPool pool(3);

    std::printf("%-16s %9s %9s %9s %9s   %-20s %s\n", "design", "sim ms",
                "bdd ms", "sat ms", "race ms", "verdict", "winner");
    for (const auto& name : names) {
        const Aig original = scale.design(name);
        Aig rewritten = original;
        (void)bg::opt::standalone_pass(rewritten, bg::opt::OpKind::Rewrite);
        print_row(name, measure(original, rewritten, pool));
        print_row(name + " (flip)", measure(original, flip_first_po(original),
                                            pool));
    }
    return 0;
}
