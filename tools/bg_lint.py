#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules (see docs/static-analysis.md for rationale and waiver workflow):

  container        No std::unordered_map / std::unordered_set / std::map /
                   std::set (types or includes) in the hot-path layers
                   src/aig, src/cut, src/opt.  The packed-AIG design exists
                   to avoid node-based containers on traversal paths; use
                   aig::EpochMarks / EpochMap, flat vectors, or the
                   open-addressing StrashMap instead.
  raw-fanin        No legacy literal-encoding fanin accessors (.fanin0( /
                   .fanin1() outside src/aig and src/io.  Traversal code
                   must go through the NodeRef accessors (fanin0_ref /
                   fanin1_ref / fanin_refs); the serializers in src/io
                   deliberately emit the AIGER literal encoding.
  mutex-in-foreach No mutex acquisition inside ThreadPool::for_each bodies
                   in src/opt: speculation waves must stay lock-free
                   (read-only against a frozen graph) — a lock in a wave
                   body is either a data-race bandage or a scalability bug.

Waivers: a finding is suppressed when the matching line, or the line
directly above it, contains `bg-lint: allow(<rule>)`.  Keep a short
justification after the marker, e.g.
    // bg-lint: allow(container): window-sized value-returned map

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

CONTAINER_DIRS = ("src/aig", "src/cut", "src/opt")
RAW_FANIN_EXEMPT = ("src/aig", "src/io")
MUTEX_DIRS = ("src/opt",)

CONTAINER_RE = re.compile(
    r"\bstd::(unordered_map|unordered_set|map|set)\s*<"
    r"|^\s*#\s*include\s*<(unordered_map|unordered_set|map|set)>"
)
RAW_FANIN_RE = re.compile(r"(\.|->)fanin[01]\(")
MUTEX_RE = re.compile(
    r"\bstd::mutex\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b"
    r"|\.lock\(\)"
)
FOR_EACH_RE = re.compile(r"(\.|->)for_each\(")
WAIVER_RE = re.compile(r"bg-lint:\s*allow\((?P<rule>[\w-]+)\)")


def strip_comment(line: str) -> str:
    """Code part of a line (everything before a // comment).

    Good enough for lint purposes; block comments spanning lines are rare
    in this codebase and never contain banned constructs mid-block.
    """
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def waived(lines: list[str], idx: int, rule: str) -> bool:
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = WAIVER_RE.search(lines[probe])
        if m and m.group("rule") == rule:
            return True
    return False


def in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel.startswith(d + "/") for d in dirs)


def for_each_body_spans(text: str) -> list[tuple[int, int]]:
    """(start, end) line-index spans of for_each(...) statement bodies.

    Brace-counts from the first '{' after each for_each( occurrence to its
    matching '}' — which covers the lambda body (and nothing after the
    statement).
    """
    spans = []
    for m in FOR_EACH_RE.finditer(text):
        open_idx = text.find("{", m.end())
        if open_idx < 0:
            continue
        depth = 0
        end_idx = open_idx
        for i in range(open_idx, len(text)):
            c = text[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    end_idx = i
                    break
        start_line = text.count("\n", 0, open_idx)
        end_line = text.count("\n", 0, end_idx)
        spans.append((start_line, end_line))
    return spans


def lint_file(path: pathlib.Path, findings: list[str]) -> None:
    rel = path.relative_to(REPO).as_posix()
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    if in_dirs(rel, CONTAINER_DIRS):
        for i, line in enumerate(lines):
            if CONTAINER_RE.search(strip_comment(line)) and not waived(
                lines, i, "container"
            ):
                findings.append(
                    f"{rel}:{i + 1}: node-based std container in a hot-path "
                    f"layer (use EpochMarks/EpochMap or flat vectors) "
                    f"[container]"
                )

    if rel.startswith("src/") and not in_dirs(rel, RAW_FANIN_EXEMPT):
        for i, line in enumerate(lines):
            if RAW_FANIN_RE.search(strip_comment(line)) and not waived(
                lines, i, "raw-fanin"
            ):
                findings.append(
                    f"{rel}:{i + 1}: legacy literal fanin accessor outside "
                    f"src/aig|src/io (use fanin0_ref/fanin1_ref/fanin_refs) "
                    f"[raw-fanin]"
                )

    if in_dirs(rel, MUTEX_DIRS):
        spans = for_each_body_spans(text)
        for start, end in spans:
            for i in range(start, min(end + 1, len(lines))):
                if MUTEX_RE.search(strip_comment(lines[i])) and not waived(
                    lines, i, "mutex-in-foreach"
                ):
                    findings.append(
                        f"{rel}:{i + 1}: mutex acquisition inside a "
                        f"ThreadPool::for_each body (speculation waves must "
                        f"stay lock-free) [mutex-in-foreach]"
                    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        help="files to lint (default: every tracked .hpp/.cpp under src/)",
    )
    args = parser.parse_args()

    if args.paths:
        files = [pathlib.Path(p).resolve() for p in args.paths]
        for f in files:
            if not f.is_file():
                print(f"bg_lint: no such file: {f}", file=sys.stderr)
                return 2
    else:
        files = sorted(
            p
            for p in (REPO / "src").rglob("*")
            if p.suffix in (".hpp", ".cpp")
        )

    findings: list[str] = []
    for f in files:
        lint_file(f, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"bg_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"bg_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
