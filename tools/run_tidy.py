#!/usr/bin/env python3
"""clang-tidy driver with a ratcheting baseline.

Runs clang-tidy (config from the repo-root .clang-tidy) over every src/
translation unit in compile_commands.json and compares the findings
against tools/tidy_baseline.txt:

  * a finding whose fingerprint appears in the baseline is tolerated —
    UNLESS it lives in a strict path (src/aig, src/opt), where the
    baseline never suppresses anything;
  * any new finding fails the run (exit 1).

`--update-baseline` rewrites the baseline from the current findings
(strict-path findings are refused — fix those instead of baselining).

Fingerprints are `relpath|check|message` — line numbers are deliberately
excluded so unrelated edits above a finding don't churn the baseline.

When clang-tidy is not installed the script prints a loud notice and
exits 0: the gate is enforced in CI (which installs clang-tidy); local
runs degrade gracefully on minimal containers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "tidy_baseline.txt"
STRICT_PATHS = ("src/aig", "src/opt")

FINDING_RE = re.compile(
    r"^(.+?):(\d+):(\d+): (warning|error): (.*?) \[([\w.,-]+)\]$"
)


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(20, 11, -1)]
    for c in candidates:
        if shutil.which(c):
            return c
    return None


def load_compile_db(build_dir: pathlib.Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(
            f"run_tidy: {db_path} not found — configure with cmake first "
            f"(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
            file=sys.stderr,
        )
        sys.exit(2)
    return json.loads(db_path.read_text())


def fingerprint(rel: str, check: str, message: str) -> str:
    return f"{rel}|{check}|{message}"


def is_strict(rel: str) -> bool:
    return any(rel.startswith(p + "/") for p in STRICT_PATHS)


def load_baseline() -> set[str]:
    if not BASELINE.is_file():
        return set()
    out = set()
    for line in BASELINE.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=str(REPO / "build"))
    parser.add_argument("--clang-tidy", default=None, help="binary to use")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/tidy_baseline.txt from the current findings",
    )
    parser.add_argument(
        "paths", nargs="*", help="restrict to these source files (relative)"
    )
    args = parser.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print(
            "run_tidy: clang-tidy NOT FOUND on PATH — skipping.  The tidy "
            "gate still runs in CI; install clang-tidy to reproduce locally.",
            file=sys.stderr,
        )
        return 0

    build_dir = pathlib.Path(args.build_dir).resolve()
    entries = load_compile_db(build_dir)

    wanted: list[str] = []
    for e in entries:
        f = pathlib.Path(e["file"]).resolve()
        try:
            rel = f.relative_to(REPO).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/"):
            continue
        if args.paths and rel not in args.paths:
            continue
        wanted.append(str(f))

    if not wanted:
        print("run_tidy: no matching translation units", file=sys.stderr)
        return 2

    print(f"run_tidy: {tidy} over {len(wanted)} TUs ...", file=sys.stderr)
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", *wanted],
        capture_output=True,
        text=True,
    )

    findings: dict[str, str] = {}  # fingerprint -> display line
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path, lineno, _col, _sev, message, check = m.groups()
        try:
            rel = pathlib.Path(path).resolve().relative_to(REPO).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/"):
            continue
        fp = fingerprint(rel, check, message)
        findings.setdefault(fp, f"{rel}:{lineno}: {message} [{check}]")

    if args.update_baseline:
        strict = sorted(fp for fp in findings if is_strict(fp.split("|")[0]))
        if strict:
            print(
                "run_tidy: refusing to baseline strict-path findings "
                "(fix these instead):",
                file=sys.stderr,
            )
            for fp in strict:
                print(f"  {findings[fp]}", file=sys.stderr)
            return 1
        lines = [
            "# clang-tidy baseline — managed by tools/run_tidy.py",
            "# One fingerprint (relpath|check|message) per line.  Findings",
            "# listed here are tolerated outside the strict paths src/aig",
            "# and src/opt.  Regenerate with:",
            "#   python3 tools/run_tidy.py --update-baseline",
            "",
            *sorted(findings),
        ]
        BASELINE.write_text("\n".join(lines) + "\n")
        print(
            f"run_tidy: baseline updated ({len(findings)} fingerprints)",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline()
    new = []
    suppressed = 0
    for fp in sorted(findings):
        rel = fp.split("|")[0]
        if fp in baseline and not is_strict(rel):
            suppressed += 1
            continue
        new.append(findings[fp])

    for line in new:
        print(line)
    if new:
        print(
            f"run_tidy: {len(new)} new finding(s) "
            f"({suppressed} baseline-suppressed)",
            file=sys.stderr,
        )
        return 1
    print(
        f"run_tidy: clean ({suppressed} baseline-suppressed)", file=sys.stderr
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
