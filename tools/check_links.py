#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/*.md.

Verifies that every relative markdown link ([text](path) and
[text](path#anchor)) resolves to an existing file, and that in-document
anchors point at a real heading.  External links (http/https/mailto) are
not fetched -- CI must stay deterministic and offline.

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug rule (lowercase, drop punctuation,
    spaces to dashes)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link '{target}'")
            continue
        if anchor and dest.suffix == ".md":
            if github_anchor(anchor) not in anchors_of(dest):
                errors.append(
                    f"{path.relative_to(REPO)}: missing anchor '{target}'")
    return errors


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"missing document: {f}", file=sys.stderr)
        return 1
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} documents: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
