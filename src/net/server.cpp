#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "circuits/design_source.hpp"
#include "io/aiger.hpp"
#include "opt/objective.hpp"

namespace bg::net {

namespace {

WireVerdict wire_verdict(
    const std::optional<verify::VerifyReport>& report) {
    if (!report) {
        return WireVerdict::None;
    }
    switch (report->verdict) {
        case aig::CecVerdict::Equivalent:
            return WireVerdict::Equivalent;
        case aig::CecVerdict::NotEquivalent:
            return WireVerdict::NotEquivalent;
        case aig::CecVerdict::ProbablyEquivalent:
            return WireVerdict::ProbablyEquivalent;
    }
    return WireVerdict::None;
}

}  // namespace

FlowServer::FlowServer(ServerConfig cfg, core::ModelSnapshot model,
                       std::vector<core::TenantConfig> tenants)
    : cfg_(std::move(cfg)),
      service_(cfg_.service, std::move(model)),
      listener_(cfg_.bind_address, cfg_.port) {
    tenant_names_.emplace_back("");  // the default tenant's (empty) token
    for (auto& tenant : tenants) {
        tenant_names_.push_back(tenant.name);
        service_.register_tenant(std::move(tenant));
    }
    acceptor_ = std::thread([this] { accept_loop(); });
}

FlowServer::~FlowServer() { stop(); }

bool FlowServer::wait_shutdown(double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto pred = [&] { return shutdown_requested_ || stopping_; };
    if (timeout_seconds <= 0.0) {
        shutdown_cv_.wait(lock, pred);
        return true;
    }
    return shutdown_cv_.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), pred);
}

void FlowServer::stop() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (stopped_) {
            return;
        }
        stopped_ = true;
        stopping_ = true;
        shutdown_cv_.notify_all();
    }
    listener_.close();
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    std::vector<std::shared_ptr<Connection>> conns;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        conns = connections_;
    }
    // Evict first (cancels every connection's in-flight jobs and unparks
    // its threads), then resolve everything still queued or running in
    // the service; only then join, so no connection thread can be parked
    // on a socket or condition variable.
    for (const auto& conn : conns) {
        evict(conn);
    }
    service_.stop_now();
    for (const auto& conn : conns) {
        if (conn->reader.joinable()) {
            conn->reader.join();
        }
        if (conn->writer.joinable()) {
            conn->writer.join();
        }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    connections_.clear();
}

void FlowServer::accept_loop() {
    while (true) {
        auto stream = listener_.accept();
        if (!stream) {
            return;  // listener closed: server is stopping
        }
        auto conn = std::make_shared<Connection>();
        if (cfg_.socket_send_buffer != 0) {
            try {
                stream->set_send_buffer(cfg_.socket_send_buffer);
            } catch (const SocketError&) {
                // Best-effort clamp; the connection still works without it.
            }
        }
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (stopping_) {
                return;  // drop the late connection on the floor
            }
            reap_finished_locked();
            conn->id = next_connection_id_++;
            conn->stream = std::move(*stream);
            connections_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
        conn->writer = std::thread([this, conn] { writer_loop(conn); });
    }
}

void FlowServer::reap_finished_locked() {
    for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished()) {
            // Both loops have returned, so the joins cannot block.
            if ((*it)->reader.joinable()) {
                (*it)->reader.join();
            }
            if ((*it)->writer.joinable()) {
                (*it)->writer.join();
            }
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void FlowServer::reader_loop(const std::shared_ptr<Connection>& conn) {
    std::vector<std::uint8_t> buf(64u << 10);
    FrameDecoder decoder;
    bool flush_before_close = false;
    try {
        while (true) {
            const std::size_t got =
                conn->stream.read_some(buf.data(), buf.size());
            if (got == 0) {
                break;  // orderly EOF (or eviction shut the socket)
            }
            decoder.feed(buf.data(), got);
            while (auto frame = decoder.next()) {
                dispatch(conn, *frame);
            }
        }
    } catch (const ProtocolError& e) {
        // The stream lost sync; tell the (still readable) client why,
        // let the writer flush, and drop the connection.
        send_error(conn, ErrCode::BadFrame, e.what());
        flush_before_close = true;
    } catch (const SocketError&) {
        // Reset/eviction: nothing to flush.
    } catch (...) {
    }
    // The client can no longer receive results: cancel whatever this
    // connection still has in flight and let the writer wind down.
    std::vector<ActiveJob> orphaned;
    {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        orphaned.swap(conn->active);
        if (!flush_before_close) {
            conn->outbound.clear();
        }
        conn->cv.notify_all();
    }
    for (const auto& job : orphaned) {
        job.token->request_cancel();
    }
    if (!flush_before_close) {
        conn->stream.shutdown_both();
    }
    conn->reader_done.store(true, std::memory_order_release);
}

void FlowServer::writer_loop(const std::shared_ptr<Connection>& conn) {
    while (true) {
        std::vector<std::uint8_t> frame;
        {
            std::unique_lock<std::mutex> lock(conn->mu);
            conn->cv.wait(lock, [&] {
                return conn->closing || !conn->outbound.empty();
            });
            if (conn->outbound.empty()) {
                break;  // closing and fully drained
            }
            frame = std::move(conn->outbound.front());
            conn->outbound.pop_front();
        }
        try {
            conn->stream.write_all(frame.data(), frame.size());
        } catch (...) {
            const std::lock_guard<std::mutex> lock(conn->mu);
            conn->closing = true;
            conn->outbound.clear();
            break;
        }
    }
    // Everything queued before closing has been flushed (or abandoned on
    // a write failure): send the FIN now.  The fd itself lives until the
    // connection is reaped, so without this a well-behaved client that
    // just received our Error frame would block forever waiting for EOF.
    conn->stream.shutdown_both();
    conn->writer_done.store(true, std::memory_order_release);
}

bool FlowServer::enqueue(const std::shared_ptr<Connection>& conn,
                         std::vector<std::uint8_t> frame, bool droppable) {
    {
        const std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closing) {
            return false;
        }
        if (droppable) {
            // Progress is best-effort: keep headroom so results always
            // find room before the eviction threshold.
            if (conn->outbound.size() + 8 >= cfg_.outbound_capacity) {
                return false;
            }
            conn->outbound.push_back(std::move(frame));
            conn->cv.notify_one();
            return true;
        }
        if (conn->outbound.size() < cfg_.outbound_capacity) {
            conn->outbound.push_back(std::move(frame));
            conn->cv.notify_one();
            return true;
        }
    }
    // A must-deliver frame found the queue full: the peer is a slow
    // consumer.  Evict (outside the connection lock) instead of ever
    // blocking the serving worker that called us.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evict(conn);
    return false;
}

void FlowServer::evict(const std::shared_ptr<Connection>& conn) {
    std::vector<ActiveJob> orphaned;
    {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        orphaned.swap(conn->active);
        conn->outbound.clear();
        conn->cv.notify_all();
    }
    for (const auto& job : orphaned) {
        job.token->request_cancel();
    }
    // Unparks a reader blocked in recv and makes a writer stuck in send
    // fail fast.
    conn->stream.shutdown_both();
}

void FlowServer::send_error(const std::shared_ptr<Connection>& conn,
                            ErrCode code, const std::string& message) {
    ErrorMsg err;
    err.code = static_cast<std::uint32_t>(code);
    err.message = message;
    (void)enqueue(conn, encode_frame(MsgType::Error, err.encode()),
                  /*droppable=*/false);
}

void FlowServer::send_result(const std::shared_ptr<Connection>& conn,
                             ResultMsg result) {
    (void)enqueue(conn, encode_frame(MsgType::Result, result.encode()),
                  /*droppable=*/false);
}

void FlowServer::dispatch(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
    switch (frame.type) {
        case MsgType::Hello: {
            const HelloMsg msg = HelloMsg::decode(frame.payload);
            if (msg.client_version != kProtocolVersion) {
                send_error(conn, ErrCode::BadFrame,
                           "unsupported client version " +
                               std::to_string(msg.client_version));
                return;
            }
            if (std::find(tenant_names_.begin(), tenant_names_.end(),
                          msg.token) == tenant_names_.end()) {
                send_error(conn, ErrCode::UnknownTenant,
                           "unknown tenant token");
                return;
            }
            std::uint64_t session = 0;
            {
                const std::lock_guard<std::mutex> lock(conn->mu);
                conn->authed = true;
                conn->tenant = msg.token;
                session = conn->id;
            }
            HelloAckMsg ack;
            ack.session_id = session;
            ack.tenant = msg.token;
            ack.max_payload = kMaxPayloadBytes;
            (void)enqueue(conn,
                          encode_frame(MsgType::HelloAck, ack.encode()),
                          /*droppable=*/false);
            return;
        }
        case MsgType::SubmitJob:
            handle_submit(conn, SubmitJobMsg::decode(frame.payload));
            return;
        case MsgType::Cancel: {
            const CancelMsg msg = CancelMsg::decode(frame.payload);
            std::shared_ptr<bg::CancelToken> token;
            {
                const std::lock_guard<std::mutex> lock(conn->mu);
                for (const auto& job : conn->active) {
                    if (job.job_id == msg.job_id) {
                        token = job.token;
                        break;
                    }
                }
            }
            if (token != nullptr) {
                token->request_cancel();
            }
            // Unknown ids are not an error: the job may just have
            // completed (its Result is already on the wire).
            return;
        }
        case MsgType::StatsRequest: {
            StatsRequestMsg::decode(frame.payload);  // validates emptiness
            if (!conn->authed) {
                send_error(conn, ErrCode::NotAuthenticated,
                           "StatsRequest before Hello");
                return;
            }
            const core::ServiceStats stats = service_.stats();
            StatsReplyMsg reply;
            reply.jobs_submitted = stats.jobs_submitted;
            reply.jobs_completed = stats.jobs_completed;
            reply.jobs_pending = stats.jobs_pending;
            reply.jobs_cancelled = stats.jobs_cancelled;
            reply.jobs_timed_out = stats.jobs_timed_out;
            reply.jobs_rejected = stats.jobs_rejected;
            reply.samples_run = stats.samples_run;
            reply.jobs_verified = stats.jobs_verified;
            reply.jobs_refuted = stats.jobs_refuted;
            reply.jobs_unknown = stats.jobs_unknown;
            reply.uptime_seconds = stats.uptime_seconds;
            reply.p50_latency_seconds = stats.p50_latency_seconds;
            reply.p95_latency_seconds = stats.p95_latency_seconds;
            reply.tenants.reserve(stats.tenants.size());
            for (const auto& t : stats.tenants) {
                TenantStatsWire w;
                w.name = t.name;
                w.submitted = t.jobs_submitted;
                w.completed = t.jobs_completed;
                w.ok = t.jobs_ok;
                w.cancelled = t.jobs_cancelled;
                w.timed_out = t.jobs_timed_out;
                w.failed = t.jobs_failed;
                w.rejected = t.jobs_rejected;
                w.pending = t.jobs_pending;
                reply.tenants.push_back(std::move(w));
            }
            (void)enqueue(
                conn, encode_frame(MsgType::StatsReply, reply.encode()),
                /*droppable=*/false);
            return;
        }
        case MsgType::Shutdown: {
            ShutdownMsg::decode(frame.payload);
            if (!conn->authed) {
                send_error(conn, ErrCode::NotAuthenticated,
                           "Shutdown before Hello");
                return;
            }
            (void)enqueue(conn,
                          encode_frame(MsgType::ShutdownAck,
                                       ShutdownAckMsg{}.encode()),
                          /*droppable=*/false);
            {
                const std::lock_guard<std::mutex> lock(mu_);
                shutdown_requested_ = true;
            }
            shutdown_cv_.notify_all();
            return;
        }
        case MsgType::Error:
            // A client-side complaint; nothing to do server-side.
            ErrorMsg::decode(frame.payload);
            return;
        default:
            send_error(conn, ErrCode::BadFrame,
                       "unexpected message type " + to_string(frame.type));
            return;
    }
}

void FlowServer::handle_submit(const std::shared_ptr<Connection>& conn,
                               const SubmitJobMsg& msg) {
    if (!conn->authed) {
        send_error(conn, ErrCode::NotAuthenticated,
                   "SubmitJob before Hello");
        return;
    }
    ResultMsg rejected;
    rejected.job_id = msg.job_id;
    rejected.status = JobStatus::Rejected;
    {
        const std::lock_guard<std::mutex> lock(conn->mu);
        for (const auto& job : conn->active) {
            if (job.job_id == msg.job_id) {
                rejected.message = "job id already in flight";
                break;
            }
        }
    }
    if (!rejected.message.empty()) {
        send_result(conn, std::move(rejected));
        return;
    }

    core::DesignJob job;
    try {
        if (msg.kind == DesignKind::AigerBlob) {
            job.design = io::read_aiger_binary_string(msg.design);
            job.name = msg.name.empty()
                           ? "job-" + std::to_string(msg.job_id)
                           : msg.name;
        } else {
            if (!cfg_.allow_specs) {
                rejected.message =
                    "design-spec submissions are disabled on this server";
                send_result(conn, std::move(rejected));
                return;
            }
            const auto resolved =
                circuits::resolve_single_design(msg.design);
            job.design = resolved.load();
            job.name = msg.name.empty() ? resolved.name : msg.name;
        }
    } catch (const std::exception& e) {
        // Garbage AIGER payloads and bad specs answer with a typed
        // rejection, never a dropped connection.
        rejected.message = e.what();
        send_result(conn, std::move(rejected));
        return;
    }

    core::SubmitOptions opts;
    opts.tenant = conn->tenant;
    opts.timeout_seconds = msg.timeout_seconds;
    opts.rounds = msg.rounds;
    opts.want_graph = true;
    auto token = std::make_shared<bg::CancelToken>();
    opts.cancel = token;
    core::FlowConfig flow = cfg_.service.flow;
    try {
        if (msg.num_samples != 0) {
            flow.num_samples = msg.num_samples;
        }
        if (msg.top_k != 0) {
            flow.top_k = msg.top_k;
        }
        if (msg.seed != 0) {
            flow.seed = msg.seed;
        }
        if (!msg.objective.empty()) {
            flow.objective = opt::make_objective(msg.objective);
        }
        flow.verify = msg.verify;  // the wire flag is authoritative
    } catch (const std::exception& e) {
        rejected.message = e.what();
        send_result(conn, std::move(rejected));
        return;
    }
    opts.flow = std::move(flow);

    const std::uint64_t job_id = msg.job_id;
    if (msg.want_progress) {
        opts.on_progress = [this, conn, job_id](std::size_t round,
                                                std::size_t ands) {
            ProgressMsg progress;
            progress.job_id = job_id;
            progress.round = static_cast<std::uint32_t>(round);
            progress.ands = ands;
            (void)enqueue(
                conn, encode_frame(MsgType::Progress, progress.encode()),
                /*droppable=*/true);
        };
    }
    opts.on_complete = [this, conn, job_id](
                           const core::DesignFlowResult* res,
                           std::exception_ptr error) {
        ResultMsg result;
        result.job_id = job_id;
        if (error == nullptr) {
            result.status = JobStatus::Ok;
            result.ranked_by = res->flow.ranked_by;
            result.objective = res->flow.objective;
            result.original_ands = res->original_size;
            result.final_ands = res->iterated.final_size;
            result.bg_best_ratio = res->flow.bg_best_ratio;
            result.bg_mean_ratio = res->flow.bg_mean_ratio;
            result.final_ratio = res->iterated.final_ratio;
            result.rounds_run = static_cast<std::uint32_t>(
                res->iterated.per_round_reduction.size());
            result.verdict = wire_verdict(res->verification);
            result.seconds = res->seconds;
            if (res->final_graph != nullptr) {
                result.optimized =
                    io::write_aiger_binary_string(*res->final_graph);
            }
        } else {
            try {
                std::rethrow_exception(error);
            } catch (const bg::CancelledError& e) {
                result.status =
                    e.reason() == bg::CancelReason::TimedOut
                        ? JobStatus::TimedOut
                        : JobStatus::Cancelled;
                result.message = e.what();
            } catch (const std::exception& e) {
                result.status = JobStatus::Failed;
                result.message = e.what();
            } catch (...) {
                result.status = JobStatus::Failed;
                result.message = "unknown engine error";
            }
        }
        {
            const std::lock_guard<std::mutex> lock(conn->mu);
            conn->active.erase(
                std::remove_if(conn->active.begin(), conn->active.end(),
                               [&](const ActiveJob& a) {
                                   return a.job_id == job_id;
                               }),
                conn->active.end());
        }
        send_result(conn, std::move(result));
    };

    {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->active.push_back(ActiveJob{job_id, token});
    }
    try {
        (void)service_.submit(std::move(job), std::move(opts));
    } catch (const std::exception& e) {
        // Admission failures (quota, stopped service, missing model):
        // typed per-job rejection, already counted by the service.
        {
            const std::lock_guard<std::mutex> lock(conn->mu);
            conn->active.erase(
                std::remove_if(conn->active.begin(), conn->active.end(),
                               [&](const ActiveJob& a) {
                                   return a.job_id == job_id;
                               }),
                conn->active.end());
        }
        rejected.message = e.what();
        send_result(conn, std::move(rejected));
    }
}

}  // namespace bg::net
