#include "net/client.hpp"

#include <algorithm>
#include <utility>

namespace bg::net {

FlowClient::FlowClient(ClientConfig cfg)
    : cfg_(std::move(cfg)),
      stream_(TcpStream::connect(cfg_.host, cfg_.port)) {
    HelloMsg hello;
    hello.client_version = kProtocolVersion;
    hello.token = cfg_.token;
    send_frame(MsgType::Hello, hello.encode());
    const Frame reply = read_frame();
    if (reply.type == MsgType::Error) {
        const ErrorMsg err = ErrorMsg::decode(reply.payload);
        throw RpcError(static_cast<ErrCode>(err.code), err.message);
    }
    if (reply.type != MsgType::HelloAck) {
        throw ProtocolError(ProtoErr::BadType,
                            "expected HelloAck, got " +
                                to_string(reply.type));
    }
    session_ = HelloAckMsg::decode(reply.payload);
}

std::uint64_t FlowClient::submit(SubmitJobMsg msg) {
    if (msg.job_id == 0) {
        msg.job_id = next_job_id_;
    }
    // Keep auto-assignment ahead of explicit ids so the two schemes mix.
    next_job_id_ = std::max(next_job_id_, msg.job_id + 1);
    send_frame(MsgType::SubmitJob, msg.encode());
    return msg.job_id;
}

ResultMsg FlowClient::wait(
    std::uint64_t job_id,
    const std::function<void(const ProgressMsg&)>& on_progress) {
    while (true) {
        const auto it = done_.find(job_id);
        if (it != done_.end()) {
            ResultMsg result = std::move(it->second);
            done_.erase(it);
            return result;
        }
        (void)consume_or_return(read_frame(), MsgType::Result, job_id,
                                on_progress);
    }
}

void FlowClient::cancel(std::uint64_t job_id) {
    CancelMsg msg;
    msg.job_id = job_id;
    send_frame(MsgType::Cancel, msg.encode());
}

StatsReplyMsg FlowClient::stats() {
    send_frame(MsgType::StatsRequest, StatsRequestMsg{}.encode());
    while (true) {
        auto frame =
            consume_or_return(read_frame(), MsgType::StatsReply, 0, {});
        if (frame) {
            return StatsReplyMsg::decode(frame->payload);
        }
    }
}

void FlowClient::request_shutdown() {
    send_frame(MsgType::Shutdown, ShutdownMsg{}.encode());
    while (true) {
        auto frame =
            consume_or_return(read_frame(), MsgType::ShutdownAck, 0, {});
        if (frame) {
            ShutdownAckMsg::decode(frame->payload);
            return;
        }
    }
}

Frame FlowClient::read_frame() {
    std::uint8_t buf[16 << 10];
    while (true) {
        if (auto frame = decoder_.next()) {
            return std::move(*frame);
        }
        const std::size_t got = stream_.read_some(buf, sizeof buf);
        if (got == 0) {
            throw SocketError("server closed the connection");
        }
        decoder_.feed(buf, got);
    }
}

void FlowClient::send_frame(MsgType type,
                            const std::vector<std::uint8_t>& payload) {
    const std::vector<std::uint8_t> frame = encode_frame(type, payload);
    stream_.write_all(frame.data(), frame.size());
}

std::optional<Frame> FlowClient::consume_or_return(
    Frame frame, MsgType want, std::uint64_t progress_job,
    const std::function<void(const ProgressMsg&)>& on_progress) {
    if (frame.type == want && want != MsgType::Result) {
        return frame;
    }
    switch (frame.type) {
        case MsgType::Result: {
            ResultMsg result = ResultMsg::decode(frame.payload);
            done_.emplace(result.job_id, std::move(result));
            return std::nullopt;
        }
        case MsgType::Progress: {
            const ProgressMsg progress = ProgressMsg::decode(frame.payload);
            if (on_progress && progress.job_id == progress_job) {
                on_progress(progress);
            }
            return std::nullopt;
        }
        case MsgType::Error: {
            const ErrorMsg err = ErrorMsg::decode(frame.payload);
            throw RpcError(static_cast<ErrCode>(err.code), err.message);
        }
        default:
            throw ProtocolError(ProtoErr::BadType,
                                "unexpected frame " + to_string(frame.type) +
                                    " while waiting for " + to_string(want));
    }
}

}  // namespace bg::net
