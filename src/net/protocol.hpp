#pragma once

/// \file protocol.hpp
/// The BoolGebra network protocol (BGNP): a length-prefixed binary
/// framing with versioned typed messages, deliberately independent of the
/// transport and of the serving engine — the codec knows bytes, the
/// FlowServer knows FlowService, and nothing in between (the
/// format/io/backend layering of the NCIP BMC suite).
///
/// ## Frame layout (all integers little-endian)
///
/// | offset | size | field                                   |
/// |-------:|-----:|-----------------------------------------|
/// |      0 |    4 | magic `0x42474E50` ("BGNP")             |
/// |      4 |    1 | protocol version (`kProtocolVersion`)   |
/// |      5 |    1 | message type (MsgType)                  |
/// |      6 |    2 | reserved, must be 0                     |
/// |      8 |    4 | payload length in bytes                 |
/// |     12 |    n | payload (message-type specific)         |
///
/// The payload length is validated against a hard cap *before* any
/// payload byte is buffered, so an adversarial length prefix cannot make
/// the decoder allocate.  Payload primitives are u8/u16/u32/u64, f64
/// (IEEE-754 bit pattern in a u64), and length-prefixed byte strings
/// (u32 length, checked against the bytes actually present).  Every
/// decode is bounds-checked and throws ProtocolError — never reads past
/// the frame, never crashes (the fuzz suite in tests/test_net_protocol.cpp
/// holds this under ASan/UBSan).
///
/// ## Messages
///
/// Hello/HelloAck authenticate a connection (tenant token -> tenant).
/// SubmitJob carries a design (binary AIGER blob, or a design-spec string
/// for server-side resolution) plus the flow parameters; the server
/// answers with optional Progress frames and exactly one Result carrying
/// the verdict and (on success) the optimized graph as a binary AIGER
/// blob.  Cancel aborts one job cooperatively.  StatsRequest/StatsReply
/// expose ServiceStats including the per-tenant slices.  Error reports
/// connection-level failures; Shutdown/ShutdownAck ask the server to
/// stop.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace bg::net {

inline constexpr std::uint32_t kMagic = 0x42474E50;  // "BGNP" LE bytes PNGB
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Hard cap on one frame's payload: large enough for multi-million-node
/// AIGER blobs, small enough that a hostile length prefix cannot OOM the
/// decoder.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t {
    Hello = 1,
    HelloAck = 2,
    SubmitJob = 3,
    Progress = 4,
    Result = 5,
    Cancel = 6,
    StatsRequest = 7,
    StatsReply = 8,
    Error = 9,
    Shutdown = 10,
    ShutdownAck = 11,
};

/// True for byte values that decode to a known MsgType.
bool msg_type_known(std::uint8_t raw);
std::string to_string(MsgType type);

/// Why a frame or payload was rejected.
enum class ProtoErr : std::uint8_t {
    BadMagic = 1,
    BadVersion = 2,
    BadType = 3,
    BadReserved = 4,
    Oversized = 5,       ///< length prefix beyond the hard cap
    Truncated = 6,       ///< payload ended mid-field
    TrailingBytes = 7,   ///< payload longer than the message
    BadValue = 8,        ///< field decoded but semantically invalid
};

class ProtocolError : public std::runtime_error {
public:
    ProtocolError(ProtoErr code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    ProtoErr code() const { return code_; }

private:
    ProtoErr code_;
};

/// One decoded frame: the type plus its raw payload bytes.
struct Frame {
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> payload;
};

/// Bounds-checked payload serializer.
class WireWriter {
public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    /// Length-prefixed bytes (u32 length + raw).  Throws ProtocolError
    /// (Oversized) past kMaxPayloadBytes.
    void bytes(const std::string& v);

    const std::vector<std::uint8_t>& data() const { return out_; }
    std::vector<std::uint8_t> take() { return std::move(out_); }

private:
    std::vector<std::uint8_t> out_;
};

/// Bounds-checked payload reader; every accessor throws ProtocolError
/// (Truncated) instead of reading past the end.
class WireReader {
public:
    explicit WireReader(const std::vector<std::uint8_t>& payload)
        : data_(payload.data()), size_(payload.size()) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string bytes();

    std::size_t remaining() const { return size_ - pos_; }
    /// Call after the last field: throws ProtocolError (TrailingBytes)
    /// when payload bytes remain, so junk appended to a valid message is
    /// rejected rather than silently ignored.
    void finish() const;

private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Serialize a complete frame (header + payload).
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>&
                                           payload);

/// Incremental frame reassembly over a byte stream.  feed() appends
/// whatever the socket produced; next() yields one decoded frame at a
/// time, or nullopt while incomplete.  Header validation (magic, version,
/// type, reserved, length cap) happens as soon as the 12 header bytes are
/// present — a bad or oversized header throws before its payload is
/// buffered, and the decoder is then poisoned (the stream has lost sync;
/// the connection must be dropped).
class FrameDecoder {
public:
    void feed(const std::uint8_t* data, std::size_t n);
    std::optional<Frame> next();

    /// Bytes buffered but not yet consumed by next().
    std::size_t buffered() const { return buf_.size() - consumed_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t consumed_ = 0;
};

// ---------------------------------------------------------------------
// Typed messages.  Each has encode() -> payload bytes and a static
// decode(payload) that throws ProtocolError on malformed input and
// consumes the payload exactly (finish()).

struct HelloMsg {
    std::uint32_t client_version = kProtocolVersion;
    std::string token;  ///< tenant token; empty = default tenant

    std::vector<std::uint8_t> encode() const;
    static HelloMsg decode(const std::vector<std::uint8_t>& payload);
};

struct HelloAckMsg {
    std::uint64_t session_id = 0;
    std::string tenant;  ///< resolved tenant name
    std::uint64_t max_payload = kMaxPayloadBytes;

    std::vector<std::uint8_t> encode() const;
    static HelloAckMsg decode(const std::vector<std::uint8_t>& payload);
};

/// How SubmitJobMsg::design is to be interpreted.
enum class DesignKind : std::uint8_t {
    AigerBlob = 0,   ///< binary AIGER bytes, resolved client-side
    DesignSpec = 1,  ///< design-spec string (registry name, file:..., ...)
};

struct SubmitJobMsg {
    std::uint64_t job_id = 0;  ///< client-chosen, echoed in replies
    DesignKind kind = DesignKind::AigerBlob;
    std::string name;       ///< display name for results/stats
    std::string design;     ///< AIGER bytes or spec string, per `kind`
    std::string objective;  ///< make_objective spec; empty = server default
    std::uint32_t num_samples = 0;  ///< 0 = server default
    std::uint32_t top_k = 0;        ///< 0 = server default
    std::uint32_t rounds = 0;       ///< 0 = server default
    std::uint64_t seed = 0;         ///< 0 = server default
    bool verify = false;
    bool want_progress = false;
    double timeout_seconds = 0.0;  ///< 0 = none

    std::vector<std::uint8_t> encode() const;
    static SubmitJobMsg decode(const std::vector<std::uint8_t>& payload);
};

struct ProgressMsg {
    std::uint64_t job_id = 0;
    std::uint32_t round = 0;  ///< 1-based completed round
    std::uint64_t ands = 0;   ///< AND count after that round

    std::vector<std::uint8_t> encode() const;
    static ProgressMsg decode(const std::vector<std::uint8_t>& payload);
};

/// Definite outcome of one submitted job.
enum class JobStatus : std::uint8_t {
    Ok = 0,
    Cancelled = 1,
    TimedOut = 2,
    Rejected = 3,  ///< admission failure or malformed job
    Failed = 4,    ///< engine error while running
};

/// Wire form of a verification verdict (None = verification off).
enum class WireVerdict : std::uint8_t {
    None = 0,
    Equivalent = 1,
    NotEquivalent = 2,
    ProbablyEquivalent = 3,
};

struct ResultMsg {
    std::uint64_t job_id = 0;
    JobStatus status = JobStatus::Failed;
    std::string message;  ///< error text for non-Ok statuses
    std::string ranked_by;
    std::string objective;
    std::uint64_t original_ands = 0;
    std::uint64_t final_ands = 0;
    double bg_best_ratio = 1.0;
    double bg_mean_ratio = 1.0;
    double final_ratio = 1.0;
    std::uint32_t rounds_run = 0;
    WireVerdict verdict = WireVerdict::None;
    double seconds = 0.0;
    /// Binary AIGER of the optimized graph; empty unless status == Ok and
    /// the submitter asked for the graph.
    std::string optimized;

    std::vector<std::uint8_t> encode() const;
    static ResultMsg decode(const std::vector<std::uint8_t>& payload);
};

struct CancelMsg {
    std::uint64_t job_id = 0;

    std::vector<std::uint8_t> encode() const;
    static CancelMsg decode(const std::vector<std::uint8_t>& payload);
};

struct StatsRequestMsg {
    std::vector<std::uint8_t> encode() const;
    static StatsRequestMsg decode(const std::vector<std::uint8_t>& payload);
};

struct TenantStatsWire {
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t pending = 0;
};

struct StatsReplyMsg {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_pending = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t jobs_timed_out = 0;
    std::uint64_t jobs_rejected = 0;
    std::uint64_t samples_run = 0;
    std::uint64_t jobs_verified = 0;
    std::uint64_t jobs_refuted = 0;
    std::uint64_t jobs_unknown = 0;
    double uptime_seconds = 0.0;
    double p50_latency_seconds = 0.0;
    double p95_latency_seconds = 0.0;
    std::vector<TenantStatsWire> tenants;

    std::vector<std::uint8_t> encode() const;
    static StatsReplyMsg decode(const std::vector<std::uint8_t>& payload);
};

/// Connection-level failure codes (job-level failures ride ResultMsg).
enum class ErrCode : std::uint32_t {
    BadFrame = 1,         ///< protocol violation (decode failure)
    NotAuthenticated = 2, ///< SubmitJob/Stats before Hello
    UnknownTenant = 3,    ///< Hello token matched no tenant
    DuplicateJob = 4,     ///< job_id already in flight on this connection
    ShuttingDown = 5,
    Internal = 6,
};

struct ErrorMsg {
    std::uint32_t code = 0;  ///< ErrCode numeric value
    std::string message;

    std::vector<std::uint8_t> encode() const;
    static ErrorMsg decode(const std::vector<std::uint8_t>& payload);
};

struct ShutdownMsg {
    std::vector<std::uint8_t> encode() const;
    static ShutdownMsg decode(const std::vector<std::uint8_t>& payload);
};

struct ShutdownAckMsg {
    std::vector<std::uint8_t> encode() const;
    static ShutdownAckMsg decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace bg::net
