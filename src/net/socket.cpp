#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bg::net {

namespace {

std::string errno_message(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

/// "localhost" and empty map to loopback; everything else must be an
/// IPv4 dotted quad (the front end is an internal service boundary, not
/// a resolver).
in_addr parse_address(const std::string& address) {
    in_addr addr{};
    if (address.empty() || address == "localhost") {
        addr.s_addr = htonl(INADDR_LOOPBACK);
        return addr;
    }
    if (inet_pton(AF_INET, address.c_str(), &addr) != 1) {
        throw SocketError("unparseable IPv4 address '" + address + "'");
    }
    return addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw SocketError(errno_message("socket"));
    }
    TcpStream stream(fd);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr = parse_address(host);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
        0) {
        throw SocketError(errno_message(
            ("connect to " + host + ":" + std::to_string(port)).c_str()));
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return stream;
}

std::size_t TcpStream::read_some(void* buf, std::size_t n) {
    while (true) {
        const ssize_t got = ::recv(fd_, buf, n, 0);
        if (got >= 0) {
            return static_cast<std::size_t>(got);
        }
        if (errno == EINTR) {
            continue;
        }
        throw SocketError(errno_message("recv"));
    }
}

void TcpStream::write_all(const void* buf, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    while (n > 0) {
        // MSG_NOSIGNAL: a peer reset surfaces as EPIPE instead of killing
        // the process with SIGPIPE.
        const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (sent > 0) {
            p += sent;
            n -= static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR) {
            continue;
        }
        throw SocketError(errno_message("send"));
    }
}

void TcpStream::set_send_buffer(std::size_t bytes) {
    const int val = static_cast<int>(bytes);
    if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &val, sizeof val) != 0) {
        throw SocketError(errno_message("setsockopt(SO_SNDBUF)"));
    }
}

void TcpStream::set_recv_buffer(std::size_t bytes) {
    const int val = static_cast<int>(bytes);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &val, sizeof val) != 0) {
        throw SocketError(errno_message("setsockopt(SO_RCVBUF)"));
    }
}

void TcpStream::shutdown_both() noexcept {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

void TcpStream::close() noexcept {
    if (fd_ >= 0) {
        (void)::close(fd_);
        fd_ = -1;
    }
}

TcpListener::TcpListener(const std::string& address, std::uint16_t port,
                         int backlog) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw SocketError(errno_message("socket"));
    }
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr = parse_address(address);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
        0) {
        const std::string msg = errno_message(
            ("bind " + address + ":" + std::to_string(port)).c_str());
        (void)::close(fd_);
        fd_ = -1;
        throw SocketError(msg);
    }
    if (::listen(fd_, backlog) != 0) {
        const std::string msg = errno_message("listen");
        (void)::close(fd_);
        fd_ = -1;
        throw SocketError(msg);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
        port_ = ntohs(bound.sin_port);
    } else {
        port_ = port;
    }
}

TcpListener::~TcpListener() {
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
        (void)::close(fd_);
        fd_ = -1;
    }
}

std::optional<TcpStream> TcpListener::accept() {
    while (true) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            const int one = 1;
            (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                               sizeof one);
            return TcpStream(client);
        }
        if (errno == EINTR) {
            continue;
        }
        // close() shut the listener down (EINVAL/EBADF), or the socket is
        // otherwise done for: either way the accept loop ends.
        return std::nullopt;
    }
}

void TcpListener::close() noexcept {
    // shutdown() only: it unparks a blocked accept() in another thread
    // without invalidating the fd under it (closing here would race the
    // kernel reassigning the descriptor).  The destructor releases the
    // fd once no thread can be parked on it.
    if (fd_ >= 0) {
        (void)::shutdown(fd_, SHUT_RDWR);
    }
}

}  // namespace bg::net
