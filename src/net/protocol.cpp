#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace bg::net {

bool msg_type_known(std::uint8_t raw) {
    return raw >= static_cast<std::uint8_t>(MsgType::Hello) &&
           raw <= static_cast<std::uint8_t>(MsgType::ShutdownAck);
}

std::string to_string(MsgType type) {
    switch (type) {
        case MsgType::Hello:
            return "Hello";
        case MsgType::HelloAck:
            return "HelloAck";
        case MsgType::SubmitJob:
            return "SubmitJob";
        case MsgType::Progress:
            return "Progress";
        case MsgType::Result:
            return "Result";
        case MsgType::Cancel:
            return "Cancel";
        case MsgType::StatsRequest:
            return "StatsRequest";
        case MsgType::StatsReply:
            return "StatsReply";
        case MsgType::Error:
            return "Error";
        case MsgType::Shutdown:
            return "Shutdown";
        case MsgType::ShutdownAck:
            return "ShutdownAck";
    }
    return "Unknown";
}

// ---------------------------------------------------------------------
// WireWriter

void WireWriter::u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void WireWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::bytes(const std::string& v) {
    if (v.size() > kMaxPayloadBytes) {
        throw ProtocolError(ProtoErr::Oversized,
                            "byte string exceeds the frame payload cap");
    }
    u32(static_cast<std::uint32_t>(v.size()));
    out_.insert(out_.end(), v.begin(), v.end());
}

// ---------------------------------------------------------------------
// WireReader

std::uint8_t WireReader::u8() {
    if (remaining() < 1) {
        throw ProtocolError(ProtoErr::Truncated, "payload ended mid-u8");
    }
    return data_[pos_++];
}

std::uint16_t WireReader::u16() {
    if (remaining() < 2) {
        throw ProtocolError(ProtoErr::Truncated, "payload ended mid-u16");
    }
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
        v = static_cast<std::uint16_t>(
            v | static_cast<std::uint16_t>(data_[pos_ + static_cast<std::size_t>(i)])
                    << (8 * i));
    }
    pos_ += 2;
    return v;
}

std::uint32_t WireReader::u32() {
    if (remaining() < 4) {
        throw ProtocolError(ProtoErr::Truncated, "payload ended mid-u32");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    pos_ += 4;
    return v;
}

std::uint64_t WireReader::u64() {
    if (remaining() < 8) {
        throw ProtocolError(ProtoErr::Truncated, "payload ended mid-u64");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    pos_ += 8;
    return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::bytes() {
    const std::uint32_t len = u32();
    if (remaining() < len) {
        throw ProtocolError(ProtoErr::Truncated,
                            "byte-string length prefix exceeds the payload");
    }
    if (len == 0) {
        return {};  // data_ may be null on an empty payload
    }
    std::string v(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return v;
}

void WireReader::finish() const {
    if (remaining() != 0) {
        throw ProtocolError(ProtoErr::TrailingBytes,
                            std::to_string(remaining()) +
                                " trailing payload bytes after the message");
    }
}

// ---------------------------------------------------------------------
// Framing

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
    if (payload.size() > kMaxPayloadBytes) {
        throw ProtocolError(ProtoErr::Oversized,
                            "payload exceeds the frame cap");
    }
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + payload.size());
    WireWriter header;
    header.u32(kMagic);
    header.u8(kProtocolVersion);
    header.u8(static_cast<std::uint8_t>(type));
    header.u16(0);  // reserved
    header.u32(static_cast<std::uint32_t>(payload.size()));
    const auto& h = header.data();
    out.insert(out.end(), h.begin(), h.end());
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
    // Compact lazily so a long-lived connection does not grow the buffer
    // without bound.
    if (consumed_ > 0 && (consumed_ >= buf_.size() ||
                          consumed_ > (64u << 10))) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
    if (buffered() < kHeaderSize) {
        return std::nullopt;
    }
    // Re-read the header from the consumed offset each call; validation
    // repeats until the payload arrives, which is cheap and keeps the
    // decoder stateless across feeds.
    const std::vector<std::uint8_t> head(
        buf_.begin() + static_cast<std::ptrdiff_t>(consumed_),
        buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + kHeaderSize));
    WireReader r(head);
    if (r.u32() != kMagic) {
        throw ProtocolError(ProtoErr::BadMagic, "bad frame magic");
    }
    if (const std::uint8_t version = r.u8(); version != kProtocolVersion) {
        throw ProtocolError(ProtoErr::BadVersion,
                            "unsupported protocol version " +
                                std::to_string(version));
    }
    const std::uint8_t type = r.u8();
    if (!msg_type_known(type)) {
        throw ProtocolError(ProtoErr::BadType,
                            "unknown message type " + std::to_string(type));
    }
    if (r.u16() != 0) {
        throw ProtocolError(ProtoErr::BadReserved,
                            "reserved header bytes must be zero");
    }
    const std::uint32_t len = r.u32();
    if (len > kMaxPayloadBytes) {
        throw ProtocolError(ProtoErr::Oversized,
                            "frame payload length " + std::to_string(len) +
                                " exceeds the cap");
    }
    if (buffered() < kHeaderSize + len) {
        return std::nullopt;  // wait for the rest of the payload
    }
    Frame frame;
    frame.type = static_cast<MsgType>(type);
    const auto payload_begin = buf_.begin() + static_cast<std::ptrdiff_t>(
                                                  consumed_ + kHeaderSize);
    frame.payload.assign(payload_begin,
                         payload_begin + static_cast<std::ptrdiff_t>(len));
    consumed_ += kHeaderSize + len;
    return frame;
}

// ---------------------------------------------------------------------
// Messages

std::vector<std::uint8_t> HelloMsg::encode() const {
    WireWriter w;
    w.u32(client_version);
    w.bytes(token);
    return w.take();
}

HelloMsg HelloMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    HelloMsg m;
    m.client_version = r.u32();
    m.token = r.bytes();
    r.finish();
    return m;
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
    WireWriter w;
    w.u64(session_id);
    w.bytes(tenant);
    w.u64(max_payload);
    return w.take();
}

HelloAckMsg HelloAckMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    HelloAckMsg m;
    m.session_id = r.u64();
    m.tenant = r.bytes();
    m.max_payload = r.u64();
    r.finish();
    return m;
}

std::vector<std::uint8_t> SubmitJobMsg::encode() const {
    WireWriter w;
    w.u64(job_id);
    w.u8(static_cast<std::uint8_t>(kind));
    w.bytes(name);
    w.bytes(design);
    w.bytes(objective);
    w.u32(num_samples);
    w.u32(top_k);
    w.u32(rounds);
    w.u64(seed);
    std::uint8_t flags = 0;
    flags |= verify ? 1u : 0u;
    flags |= want_progress ? 2u : 0u;
    w.u8(flags);
    w.f64(timeout_seconds);
    return w.take();
}

SubmitJobMsg SubmitJobMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    SubmitJobMsg m;
    m.job_id = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(DesignKind::DesignSpec)) {
        throw ProtocolError(ProtoErr::BadValue,
                            "unknown design kind " + std::to_string(kind));
    }
    m.kind = static_cast<DesignKind>(kind);
    m.name = r.bytes();
    m.design = r.bytes();
    m.objective = r.bytes();
    m.num_samples = r.u32();
    m.top_k = r.u32();
    m.rounds = r.u32();
    m.seed = r.u64();
    const std::uint8_t flags = r.u8();
    if ((flags & ~3u) != 0) {
        throw ProtocolError(ProtoErr::BadValue, "unknown submit flags");
    }
    m.verify = (flags & 1u) != 0;
    m.want_progress = (flags & 2u) != 0;
    m.timeout_seconds = r.f64();
    r.finish();
    return m;
}

std::vector<std::uint8_t> ProgressMsg::encode() const {
    WireWriter w;
    w.u64(job_id);
    w.u32(round);
    w.u64(ands);
    return w.take();
}

ProgressMsg ProgressMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    ProgressMsg m;
    m.job_id = r.u64();
    m.round = r.u32();
    m.ands = r.u64();
    r.finish();
    return m;
}

std::vector<std::uint8_t> ResultMsg::encode() const {
    WireWriter w;
    w.u64(job_id);
    w.u8(static_cast<std::uint8_t>(status));
    w.bytes(message);
    w.bytes(ranked_by);
    w.bytes(objective);
    w.u64(original_ands);
    w.u64(final_ands);
    w.f64(bg_best_ratio);
    w.f64(bg_mean_ratio);
    w.f64(final_ratio);
    w.u32(rounds_run);
    w.u8(static_cast<std::uint8_t>(verdict));
    w.f64(seconds);
    w.bytes(optimized);
    return w.take();
}

ResultMsg ResultMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    ResultMsg m;
    m.job_id = r.u64();
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(JobStatus::Failed)) {
        throw ProtocolError(ProtoErr::BadValue,
                            "unknown job status " + std::to_string(status));
    }
    m.status = static_cast<JobStatus>(status);
    m.message = r.bytes();
    m.ranked_by = r.bytes();
    m.objective = r.bytes();
    m.original_ands = r.u64();
    m.final_ands = r.u64();
    m.bg_best_ratio = r.f64();
    m.bg_mean_ratio = r.f64();
    m.final_ratio = r.f64();
    m.rounds_run = r.u32();
    const std::uint8_t verdict = r.u8();
    if (verdict > static_cast<std::uint8_t>(WireVerdict::ProbablyEquivalent)) {
        throw ProtocolError(ProtoErr::BadValue,
                            "unknown verdict " + std::to_string(verdict));
    }
    m.verdict = static_cast<WireVerdict>(verdict);
    m.seconds = r.f64();
    m.optimized = r.bytes();
    r.finish();
    return m;
}

std::vector<std::uint8_t> CancelMsg::encode() const {
    WireWriter w;
    w.u64(job_id);
    return w.take();
}

CancelMsg CancelMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    CancelMsg m;
    m.job_id = r.u64();
    r.finish();
    return m;
}

std::vector<std::uint8_t> StatsRequestMsg::encode() const { return {}; }

StatsRequestMsg StatsRequestMsg::decode(
    const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    r.finish();
    return {};
}

std::vector<std::uint8_t> StatsReplyMsg::encode() const {
    WireWriter w;
    w.u64(jobs_submitted);
    w.u64(jobs_completed);
    w.u64(jobs_pending);
    w.u64(jobs_cancelled);
    w.u64(jobs_timed_out);
    w.u64(jobs_rejected);
    w.u64(samples_run);
    w.u64(jobs_verified);
    w.u64(jobs_refuted);
    w.u64(jobs_unknown);
    w.f64(uptime_seconds);
    w.f64(p50_latency_seconds);
    w.f64(p95_latency_seconds);
    w.u32(static_cast<std::uint32_t>(tenants.size()));
    for (const auto& t : tenants) {
        w.bytes(t.name);
        w.u64(t.submitted);
        w.u64(t.completed);
        w.u64(t.ok);
        w.u64(t.cancelled);
        w.u64(t.timed_out);
        w.u64(t.failed);
        w.u64(t.rejected);
        w.u64(t.pending);
    }
    return w.take();
}

StatsReplyMsg StatsReplyMsg::decode(
    const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    StatsReplyMsg m;
    m.jobs_submitted = r.u64();
    m.jobs_completed = r.u64();
    m.jobs_pending = r.u64();
    m.jobs_cancelled = r.u64();
    m.jobs_timed_out = r.u64();
    m.jobs_rejected = r.u64();
    m.samples_run = r.u64();
    m.jobs_verified = r.u64();
    m.jobs_refuted = r.u64();
    m.jobs_unknown = r.u64();
    m.uptime_seconds = r.f64();
    m.p50_latency_seconds = r.f64();
    m.p95_latency_seconds = r.f64();
    const std::uint32_t count = r.u32();
    // Each tenant entry is at least 68 bytes; an adversarial count is
    // caught before any allocation scales with it.
    if (static_cast<std::uint64_t>(count) * 68 > r.remaining()) {
        throw ProtocolError(ProtoErr::BadValue,
                            "tenant count exceeds the payload");
    }
    m.tenants.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        TenantStatsWire t;
        t.name = r.bytes();
        t.submitted = r.u64();
        t.completed = r.u64();
        t.ok = r.u64();
        t.cancelled = r.u64();
        t.timed_out = r.u64();
        t.failed = r.u64();
        t.rejected = r.u64();
        t.pending = r.u64();
        m.tenants.push_back(std::move(t));
    }
    r.finish();
    return m;
}

std::vector<std::uint8_t> ErrorMsg::encode() const {
    WireWriter w;
    w.u32(code);
    w.bytes(message);
    return w.take();
}

ErrorMsg ErrorMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    ErrorMsg m;
    m.code = r.u32();
    m.message = r.bytes();
    r.finish();
    return m;
}

std::vector<std::uint8_t> ShutdownMsg::encode() const { return {}; }

ShutdownMsg ShutdownMsg::decode(const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    r.finish();
    return {};
}

std::vector<std::uint8_t> ShutdownAckMsg::encode() const { return {}; }

ShutdownAckMsg ShutdownAckMsg::decode(
    const std::vector<std::uint8_t>& payload) {
    WireReader r(payload);
    r.finish();
    return {};
}

}  // namespace bg::net
