#pragma once

/// \file client.hpp
/// bg::net::FlowClient — the blocking client side of the BGNP protocol.
///
/// One TCP connection, one thread of control: every call runs on the
/// caller's thread (connect + Hello in the constructor, frame reads
/// inline in wait()/stats()).  The server may interleave replies for
/// different jobs on the wire, so wait(job_id) buffers any Result it
/// reads for *other* jobs and hands them out when their ids are waited
/// on — submit several jobs first, then wait in any order.
///
/// Not thread-safe: guard a shared instance externally, or open one
/// client per thread (connections are cheap; tenancy is per-connection).

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace bg::net {

/// A typed Error frame from the server (authentication, unknown tenant,
/// shutdown...).  Protocol-level desync throws ProtocolError instead,
/// transport failure SocketError.
class RpcError : public std::runtime_error {
public:
    RpcError(ErrCode code, const std::string& message)
        : std::runtime_error(message), code_(code) {}
    ErrCode code() const { return code_; }

private:
    ErrCode code_;
};

struct ClientConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Tenant bearer token (empty = the default tenant).
    std::string token;
};

class FlowClient {
public:
    /// Connects and completes the Hello handshake; throws SocketError on
    /// connect failure, RpcError when the server refuses the token.
    explicit FlowClient(ClientConfig cfg);
    ~FlowClient() = default;

    FlowClient(const FlowClient&) = delete;
    FlowClient& operator=(const FlowClient&) = delete;

    const HelloAckMsg& session() const { return session_; }

    /// Send one job.  A zero msg.job_id is replaced with the next unused
    /// client-side id; the (possibly assigned) id is returned and is the
    /// handle for wait()/cancel().
    std::uint64_t submit(SubmitJobMsg msg);

    /// Block until this job's Result arrives.  Progress frames for the
    /// job invoke `on_progress` (when set) on the calling thread; frames
    /// for other jobs are buffered for their own wait() calls.
    ResultMsg wait(std::uint64_t job_id,
                   const std::function<void(const ProgressMsg&)>&
                       on_progress = {});

    /// Request cooperative cancellation (fire-and-forget: the job still
    /// resolves through wait(), typically with JobStatus::Cancelled).
    void cancel(std::uint64_t job_id);

    /// Round-trip a StatsRequest.
    StatsReplyMsg stats();

    /// Ask the server to shut down (wait_shutdown() on the server side
    /// returns); blocks for the ShutdownAck.
    void request_shutdown();

    /// Drop the connection (in-flight jobs get cancelled server-side).
    void close() noexcept { stream_.shutdown_both(); }

private:
    /// Read exactly one frame (blocking).  EOF throws SocketError.
    Frame read_frame();
    void send_frame(MsgType type, const std::vector<std::uint8_t>& payload);
    /// Handle one incoming frame while waiting for `want`: buffers
    /// Results, dispatches Progress, throws on Error frames.  Returns the
    /// frame when it is of the wanted type.
    std::optional<Frame> consume_or_return(
        Frame frame, MsgType want, std::uint64_t progress_job,
        const std::function<void(const ProgressMsg&)>& on_progress);

    ClientConfig cfg_;
    TcpStream stream_;
    FrameDecoder decoder_;
    HelloAckMsg session_;
    std::uint64_t next_job_id_ = 1;
    std::map<std::uint64_t, ResultMsg> done_;  ///< results read early
};

}  // namespace bg::net
