#pragma once

/// \file socket.hpp
/// Minimal RAII TCP primitives for the network front end: a connected
/// stream and a listener.  POSIX-only (the toolchain this repo targets);
/// everything blocking, no select/epoll — concurrency comes from the
/// FlowServer's per-connection reader/writer threads, and unblocking
/// comes from shutdown(2), which makes a parked accept/recv/send return
/// immediately.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace bg::net {

class SocketError : public std::runtime_error {
public:
    explicit SocketError(const std::string& what)
        : std::runtime_error(what) {}
};

/// A connected TCP stream.  Movable, not copyable; closes on destruction.
class TcpStream {
public:
    TcpStream() = default;
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream();

    TcpStream(TcpStream&& other) noexcept;
    TcpStream& operator=(TcpStream&& other) noexcept;
    TcpStream(const TcpStream&) = delete;
    TcpStream& operator=(const TcpStream&) = delete;

    /// Connect to host:port (IPv4 dotted quad or "localhost").
    static TcpStream connect(const std::string& host, std::uint16_t port);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Read up to `n` bytes; returns 0 on orderly EOF, throws SocketError
    /// on failure.  A shutdown() from another thread reads as EOF.
    std::size_t read_some(void* buf, std::size_t n);

    /// Write all `n` bytes or throw SocketError (covers resets and
    /// shutdown-induced failures).
    void write_all(const void* buf, std::size_t n);

    /// Clamp the kernel send/receive buffer (SO_SNDBUF / SO_RCVBUF).
    /// Setting an explicit size disables TCP autotuning for that side,
    /// which bounds how much a slow peer can make the kernel buffer —
    /// the backpressure tests rely on this being deterministic.
    void set_send_buffer(std::size_t bytes);
    void set_recv_buffer(std::size_t bytes);

    /// Disable further sends and receives; any thread blocked in
    /// read_some/write_all on this stream returns/throws promptly.
    /// Safe to call concurrently with reads/writes and repeatedly.
    void shutdown_both() noexcept;

    void close() noexcept;

private:
    int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (or a given address).
class TcpListener {
public:
    /// Bind + listen; port 0 picks an ephemeral port (see port()).
    TcpListener(const std::string& address, std::uint16_t port,
                int backlog = 64);
    ~TcpListener();

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// The bound port (resolves ephemeral port 0 to the real one).
    std::uint16_t port() const { return port_; }

    /// Block for one connection; nullopt once close() was called.
    std::optional<TcpStream> accept();

    /// Unblock any parked accept() and invalidate the listener.
    /// Idempotent and safe from other threads.
    void close() noexcept;

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace bg::net
