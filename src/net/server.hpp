#pragma once

/// \file server.hpp
/// bg::net::FlowServer — the socket front end over core::FlowService.
///
/// Layering: this file knows both the protocol (net/protocol.hpp) and the
/// engine (core/flow_service.hpp); the codec knows neither transport nor
/// engine, and the service knows nothing about sockets.  One acceptor
/// thread hands each connection a dedicated reader thread (decode frames,
/// dispatch) and writer thread (drain a bounded outbound frame queue);
/// the flows themselves run on the service's shared ThreadPool.
///
/// Tenancy: a connection authenticates with Hello{token}; the token must
/// name a registered tenant (empty = default tenant) and every SubmitJob
/// on that connection is admitted under it — weighted-fair queues,
/// quotas, per-tenant model snapshots, all enforced by FlowService.
///
/// Cancellation contract:
///  * a Cancel frame cancels that job's token cooperatively;
///  * a dropped connection cancels every job the connection still has in
///    flight (the client can no longer receive the result);
///  * SubmitJob::timeout_seconds arms the same token with a deadline;
///  * FlowServer::stop() evicts connections and stop_now()s the service,
///    so every accepted job reaches a definite outcome.
///
/// Backpressure: completion callbacks never block on a socket — they
/// enqueue the encoded frame into the connection's bounded outbound
/// queue.  Progress frames are droppable and are discarded when the
/// queue is near capacity; a Result that finds the queue full marks the
/// connection a slow consumer and evicts it (the result still resolved
/// inside the service).  Either way no serving worker ever stalls on one
/// tenant's dead socket.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flow_service.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace bg::net {

struct ServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (see FlowServer::port())
    /// Encoded frames buffered per connection before backpressure kicks
    /// in (progress dropped, slow consumers evicted on a full Result).
    std::size_t outbound_capacity = 256;
    /// Allow DesignKind::DesignSpec submissions (server-side registry /
    /// file resolution).  Off = AIGER blobs only.
    bool allow_specs = true;
    /// Kernel send-buffer clamp (SO_SNDBUF) for accepted sockets;
    /// 0 = OS default with autotuning.  A small explicit value bounds the
    /// bytes a slow reader can park in the kernel before the writer
    /// blocks and the outbound queue starts filling toward eviction.
    std::size_t socket_send_buffer = 0;
    /// The wrapped service (workers, default flow, rounds, ...).
    core::ServiceConfig service;
};

class FlowServer {
public:
    /// Binds and starts accepting immediately.  `tenants` are registered
    /// on the service before the listener opens; their names double as
    /// the Hello bearer tokens.  Throws SocketError when the bind fails.
    FlowServer(ServerConfig cfg, core::ModelSnapshot model,
               std::vector<core::TenantConfig> tenants = {});
    ~FlowServer();  // stop()s

    FlowServer(const FlowServer&) = delete;
    FlowServer& operator=(const FlowServer&) = delete;

    /// The bound port (resolves an ephemeral bind).
    std::uint16_t port() const { return listener_.port(); }
    core::FlowService& service() { return service_; }

    /// Block until a client sent Shutdown or stop() ran; false on
    /// timeout (timeout_seconds 0 = wait forever).
    bool wait_shutdown(double timeout_seconds = 0.0);

    /// Stop accepting, evict every connection (cancelling its in-flight
    /// jobs), stop_now() the service, and join all threads.  Idempotent.
    void stop();

    /// Connections evicted as slow consumers (test/observability hook).
    std::uint64_t slow_consumer_evictions() const {
        return evictions_.load(std::memory_order_relaxed);
    }

private:
    struct ActiveJob {
        std::uint64_t job_id = 0;
        std::shared_ptr<bg::CancelToken> token;
    };

    /// One client connection: socket, its two threads, the bounded
    /// outbound queue, and the jobs still in flight on it.
    struct Connection {
        std::uint64_t id = 0;
        TcpStream stream;
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::vector<std::uint8_t>> outbound;  // encoded frames
        bool closing = false;       ///< no further enqueues; writer drains
        bool authed = false;        ///< Hello completed (reader thread)
        std::string tenant;         ///< resolved at Hello
        std::vector<ActiveJob> active;  ///< jobs awaiting their Result
        std::thread reader;
        std::thread writer;
        std::atomic<bool> reader_done{false};
        std::atomic<bool> writer_done{false};

        bool finished() const {
            return reader_done.load(std::memory_order_acquire) &&
                   writer_done.load(std::memory_order_acquire);
        }
    };

    void accept_loop();
    void reader_loop(const std::shared_ptr<Connection>& conn);
    void writer_loop(const std::shared_ptr<Connection>& conn);
    void dispatch(const std::shared_ptr<Connection>& conn,
                  const Frame& frame);
    void handle_submit(const std::shared_ptr<Connection>& conn,
                       const SubmitJobMsg& msg);
    /// Enqueue an encoded frame; drops droppable frames near capacity,
    /// evicts the connection when a must-deliver frame finds it full.
    /// Returns false when the frame was not queued.
    bool enqueue(const std::shared_ptr<Connection>& conn,
                 std::vector<std::uint8_t> frame, bool droppable);
    void send_error(const std::shared_ptr<Connection>& conn, ErrCode code,
                    const std::string& message);
    void send_result(const std::shared_ptr<Connection>& conn,
                     ResultMsg result);
    /// Mark closing, cancel the connection's in-flight jobs, and unpark
    /// both of its threads.
    void evict(const std::shared_ptr<Connection>& conn);
    void reap_finished_locked();

    ServerConfig cfg_;
    core::FlowService service_;
    TcpListener listener_;
    std::vector<std::string> tenant_names_;  ///< valid Hello tokens

    std::mutex mu_;
    std::condition_variable shutdown_cv_;
    std::vector<std::shared_ptr<Connection>> connections_;
    bool stopping_ = false;
    bool shutdown_requested_ = false;
    bool stopped_ = false;
    std::uint64_t next_connection_id_ = 1;
    std::atomic<std::uint64_t> evictions_{0};

    std::thread acceptor_;
};

}  // namespace bg::net
