#include "circuits/registry.hpp"

#include <stdexcept>

namespace bg::circuits {

const std::vector<BenchmarkInfo>& benchmark_registry() {
    static const std::vector<BenchmarkInfo> table = {
        // ITC'99 control-dominated designs.
        {"b07", Family::Control, 49, 366, 0xB07},
        {"b08", Family::Control, 29, 170, 0xB08},
        {"b09", Family::Control, 28, 160, 0xB09},
        {"b10", Family::Control, 27, 180, 0xB10},
        {"b11", Family::Control, 37, 620, 0xB11},
        {"b12", Family::Control, 125, 1002, 0xB12},
        // ISCAS85 arithmetic/mux-rich designs.
        {"c2670", Family::Arithmetic, 157, 717, 0xC2670},
        {"c5315", Family::Arithmetic, 178, 1773, 0xC5315},
    };
    return table;
}

std::vector<std::string> benchmark_names() {
    std::vector<std::string> out;
    for (const auto& info : benchmark_registry()) {
        out.push_back(info.name);
    }
    return out;
}

const BenchmarkInfo& benchmark_info(const std::string& name) {
    for (const auto& info : benchmark_registry()) {
        if (info.name == name) {
            return info;
        }
    }
    throw std::out_of_range("unknown benchmark: " + name);
}

aig::Aig make_benchmark(const std::string& name) {
    const auto& info = benchmark_info(name);
    GeneratorParams p;
    p.num_pis = info.num_pis;
    p.target_ands = info.target_ands;
    p.family = info.family;
    p.seed = info.seed;
    p.max_pos = std::max<std::size_t>(8, info.num_pis / 2);
    return generate_circuit(p);
}

aig::Aig make_benchmark_scaled(const std::string& name, double scale) {
    const auto& info = benchmark_info(name);
    GeneratorParams p;
    p.num_pis = std::max(8u, static_cast<unsigned>(
                                 static_cast<double>(info.num_pis) * scale));
    p.target_ands = std::max<std::size_t>(
        60, static_cast<std::size_t>(
                static_cast<double>(info.target_ands) * scale));
    p.family = info.family;
    p.seed = info.seed;
    p.max_pos = std::max<std::size_t>(8, p.num_pis / 2);
    return generate_circuit(p);
}

}  // namespace bg::circuits
