#include "circuits/design_source.hpp"

#include <algorithm>
#include <filesystem>

#include "circuits/registry.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "util/glob.hpp"

namespace bg::circuits {

namespace fs = std::filesystem;

namespace {

constexpr const char* k_file_prefix = "file:";

bool is_netlist_path(const std::string& s) {
    return s.ends_with(".aag") || s.ends_with(".aig") ||
           s.ends_with(".bench");
}

aig::Aig read_netlist(const std::string& path) {
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        throw DesignSourceError("design file '" + path +
                                "' does not exist");
    }
    try {
        if (path.ends_with(".bench")) {
            return io::read_bench_file(path);
        }
        // .aag/.aig and anything else: sniff the AIGER magic.
        return io::read_aiger_auto_file(path);
    } catch (const DesignSourceError&) {
        throw;
    } catch (const std::exception& e) {
        throw DesignSourceError("cannot load design file '" + path +
                                "': " + e.what());
    }
}

/// Expand a file:<glob> body: the directory part is literal, the final
/// component is a glob over directory entries.  Matches sort by path so
/// suite order is deterministic across filesystems.
std::vector<std::string> expand_file_glob(const std::string& body) {
    const fs::path pat(body);
    const fs::path dir =
        pat.has_parent_path() ? pat.parent_path() : fs::path(".");
    const std::string leaf = pat.filename().string();
    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec) {
        throw DesignSourceError("design pattern 'file:" + body +
                                "': directory '" + dir.string() +
                                "' does not exist");
    }
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        if (glob_match(leaf, entry.path().filename().string())) {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    if (out.empty()) {
        throw DesignSourceError("design pattern 'file:" + body +
                                "' matches no files");
    }
    return out;
}

std::vector<ResolvedDesign> resolve_file_spec(const std::string& body) {
    if (body.empty()) {
        throw DesignSourceError(
            "empty file: spec (expected file:<path> or file:<glob>)");
    }
    std::vector<ResolvedDesign> out;
    if (has_glob_chars(body)) {
        for (auto& path : expand_file_glob(body)) {
            out.push_back({path, DesignOrigin::File, path, 1.0});
        }
    } else {
        out.push_back({body, DesignOrigin::File, body, 1.0});
    }
    return out;
}

ResolvedDesign resolve_registry_name(const std::string& spec, double scale) {
    std::string name = spec;
    const auto at = spec.find('@');
    if (at != std::string::npos) {
        name = spec.substr(0, at);
        try {
            scale = std::stod(spec.substr(at + 1));
        } catch (const std::exception&) {
            throw DesignSourceError("bad scale suffix in design spec '" +
                                    spec + "'");
        }
        if (scale <= 0.0) {
            throw DesignSourceError("scale must be positive in '" + spec +
                                    "'");
        }
    }
    const auto& names = benchmark_names();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        throw DesignSourceError(
            "unknown design '" + spec +
            "' (not a registry name, file: spec or netlist path; run "
            "'boolgebra_cli list' for registry names)");
    }
    return {spec, DesignOrigin::Registry, name, scale};
}

}  // namespace

aig::Aig ResolvedDesign::load() const {
    if (origin == DesignOrigin::File) {
        return read_netlist(path);
    }
    return make_benchmark_scaled(path, scale);
}

std::vector<ResolvedDesign> resolve_design_spec(const std::string& spec,
                                                double scale) {
    if (spec.starts_with(k_file_prefix)) {
        return resolve_file_spec(spec.substr(sizeof("file:") - 1));
    }
    if (is_netlist_path(spec)) {
        return {{spec, DesignOrigin::File, spec, 1.0}};
    }
    if (has_glob_chars(spec)) {
        std::vector<ResolvedDesign> out;
        for (const auto& info : benchmark_registry()) {
            if (glob_match(spec, info.name)) {
                out.push_back(
                    {info.name, DesignOrigin::Registry, info.name, scale});
            }
        }
        if (out.empty()) {
            throw DesignSourceError(
                "pattern '" + spec +
                "' matches no registry design (run 'boolgebra_cli list' "
                "for the names, or prefix with file: for a file glob)");
        }
        return out;
    }
    return {resolve_registry_name(spec, scale)};
}

std::vector<ResolvedDesign> resolve_design_specs(
    const std::vector<std::string>& specs, bool all, double scale) {
    std::vector<ResolvedDesign> out;
    if (all) {
        for (const auto& info : benchmark_registry()) {
            out.push_back(
                {info.name, DesignOrigin::Registry, info.name, scale});
        }
    }
    for (const auto& spec : specs) {
        for (auto& r : resolve_design_spec(spec, scale)) {
            out.push_back(std::move(r));
        }
    }
    return out;
}

ResolvedDesign resolve_single_design(const std::string& spec, double scale) {
    auto resolved = resolve_design_spec(spec, scale);
    if (resolved.size() != 1) {
        throw DesignSourceError("spec '" + spec + "' resolves to " +
                                std::to_string(resolved.size()) +
                                " designs; exactly one is required here");
    }
    return std::move(resolved.front());
}

aig::Aig load_design_spec(const std::string& spec, double scale) {
    return resolve_single_design(spec, scale).load();
}

}  // namespace bg::circuits
