#include "circuits/generators.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace bg::circuits {

using aig::Aig;
using aig::Lit;
using aig::lit_not;
using aig::lit_not_cond;

namespace {

/// Working state threaded through the block builders.
struct Gen {
    Aig g;
    std::vector<Lit> pool;     ///< signals available as block inputs
    std::vector<Lit> outputs;  ///< block outputs, future PO candidates
    bg::Rng rng;

    explicit Gen(std::uint64_t seed) : rng(seed) {}

    Lit pick() {
        return lit_not_cond(pool[rng.next_below(pool.size())],
                            rng.next_bool(0.4));
    }
    /// k distinct pool signals (random polarity).
    std::vector<Lit> pick_distinct(std::size_t k) {
        const auto idx = rng.sample_indices(pool.size(), std::min(k, pool.size()));
        std::vector<Lit> out;
        out.reserve(idx.size());
        for (const auto i : idx) {
            out.push_back(lit_not_cond(pool[i], rng.next_bool(0.4)));
        }
        return out;
    }
    void publish(Lit l) {
        pool.push_back(l);
        outputs.push_back(l);
    }
};

/// Naively expanded SOP: OR of random cubes built with arbitrary literal
/// association, no sharing.  ISOP+factoring (rf) usually shrinks these.
void block_naive_sop(Gen& s) {
    const auto vars = s.pick_distinct(3 + s.rng.next_below(3));
    if (vars.size() < 2) {
        return;
    }
    const std::size_t num_cubes = 2 + s.rng.next_below(4);
    std::vector<Lit> cubes;
    for (std::size_t c = 0; c < num_cubes; ++c) {
        // Random subset of the vars, random polarities, random association.
        std::vector<Lit> lits;
        for (const Lit v : vars) {
            if (s.rng.next_bool(0.7)) {
                lits.push_back(lit_not_cond(v, s.rng.next_bool()));
            }
        }
        if (lits.empty()) {
            lits.push_back(vars[0]);
        }
        s.rng.shuffle(lits);
        Lit acc = lits[0];
        for (std::size_t i = 1; i < lits.size(); ++i) {
            acc = s.g.and_(acc, lits[i]);  // left-assoc: misses sharing
        }
        cubes.push_back(acc);
    }
    s.rng.shuffle(cubes);
    Lit acc = cubes[0];
    for (std::size_t i = 1; i < cubes.size(); ++i) {
        acc = s.g.or_(acc, cubes[i]);
    }
    s.publish(acc);
}

/// Distributed product a·b + a·c (+ a·d): factoring food.
void block_distributed(Gen& s) {
    const Lit a = s.pick();
    const std::size_t terms = 2 + s.rng.next_below(2);
    Lit acc = aig::lit_false;
    for (std::size_t i = 0; i < terms; ++i) {
        acc = s.g.or_(acc, s.g.and_(a, s.pick()));
    }
    s.publish(acc);
}

/// Mux tree of depth 2; often with agreeing data inputs (c ? x : x == x),
/// which 4-cut rewriting collapses.
void block_mux_tree(Gen& s) {
    const Lit s0 = s.pick();
    const Lit s1 = s.pick();
    const Lit a = s.pick();
    const Lit b = s.rng.next_bool(0.45) ? a : s.pick();  // planted degeneracy
    const Lit c = s.pick();
    const Lit d = s.rng.next_bool(0.45) ? c : s.pick();
    const Lit m0 = s.g.mux_(s0, a, b);
    const Lit m1 = s.g.mux_(s0, c, d);
    s.publish(s.g.mux_(s1, m0, m1));
}

/// Four-input-cone redundancies that 4-cut rewriting resolves locally:
/// absorption (a + a b), consensus (a b + !a c + b c), and distributed
/// two-literal products.
void block_rewrite_food(Gen& s) {
    const Lit a = s.pick();
    const Lit b = s.pick();
    const Lit c = s.pick();
    switch (s.rng.next_below(3)) {
        case 0:  // absorption: a + a b == a (2 gates removable)
            s.publish(s.g.and_(s.g.or_(a, s.g.and_(a, b)), c));
            break;
        case 1: {  // consensus: ab + !a c + b c has a redundant term
            const Lit t0 = s.g.and_(a, b);
            const Lit t1 = s.g.and_(lit_not(a), c);
            const Lit t2 = s.g.and_(b, c);
            s.publish(s.g.or_(t0, s.g.or_(t1, t2)));
            break;
        }
        default: {  // a b + a c, a 3-leaf cut that factors to a (b + c)
            s.publish(s.g.or_(s.g.and_(a, b), s.g.and_(a, c)));
            break;
        }
    }
}

/// Ripple-carry adder slice chain with deliberately unfactored majority
/// carries (ab + ac + bc).
void block_adder(Gen& s) {
    const std::size_t bits = 2 + s.rng.next_below(3);
    Lit carry = s.pick();
    for (std::size_t i = 0; i < bits; ++i) {
        const Lit a = s.pick();
        const Lit b = s.pick();
        const Lit axb = s.g.or_(s.g.and_(a, lit_not(b)),
                                s.g.and_(lit_not(a), b));
        const Lit sum = s.g.or_(s.g.and_(axb, lit_not(carry)),
                                s.g.and_(lit_not(axb), carry));
        const Lit new_carry =
            s.g.or_(s.g.and_(a, b),
                    s.g.or_(s.g.and_(a, carry), s.g.and_(b, carry)));
        s.publish(sum);
        carry = new_carry;
    }
    s.publish(carry);
}

/// The same conjunction derived twice with different association orders —
/// resubstitution finds the equal cone.
void block_rederive(Gen& s) {
    auto vars = s.pick_distinct(3 + s.rng.next_below(2));
    if (vars.size() < 3) {
        return;
    }
    Lit left = vars[0];
    for (std::size_t i = 1; i < vars.size(); ++i) {
        left = s.g.and_(left, vars[i]);
    }
    std::reverse(vars.begin(), vars.end());
    Lit right = vars[0];
    for (std::size_t i = 1; i < vars.size(); ++i) {
        right = s.g.and_(right, vars[i]);
    }
    // Use the two derivations in different contexts so both stay alive.
    s.publish(s.g.and_(left, s.pick()));
    s.publish(s.g.or_(right, s.pick()));
}

/// Parity chain realized through expanded AND/OR forms.
void block_parity(Gen& s) {
    const auto vars = s.pick_distinct(3 + s.rng.next_below(2));
    if (vars.size() < 2) {
        return;
    }
    Lit acc = vars[0];
    for (std::size_t i = 1; i < vars.size(); ++i) {
        const Lit x = vars[i];
        acc = s.g.or_(s.g.and_(acc, lit_not(x)), s.g.and_(lit_not(acc), x));
    }
    s.publish(acc);
}

/// Comparator-ish block: equality of two small vectors, expanded naively.
void block_compare(Gen& s) {
    const std::size_t bits = 2 + s.rng.next_below(2);
    Lit acc = aig::lit_true;
    for (std::size_t i = 0; i < bits; ++i) {
        const Lit a = s.pick();
        const Lit b = s.pick();
        const Lit eq = s.g.or_(s.g.and_(a, b),
                               s.g.and_(lit_not(a), lit_not(b)));
        acc = s.g.and_(acc, eq);
    }
    s.publish(acc);
}

/// Control-style next-state logic: wide OR of guarded conditions.
void block_control(Gen& s) {
    const std::size_t guards = 3 + s.rng.next_below(3);
    Lit acc = aig::lit_false;
    for (std::size_t i = 0; i < guards; ++i) {
        acc = s.g.or_(acc, s.g.and_(s.pick(), s.pick()));
    }
    s.publish(acc);
}

}  // namespace

Aig generate_circuit(const GeneratorParams& params) {
    BG_EXPECTS(params.num_pis >= 4, "need at least 4 PIs");
    BG_EXPECTS(params.target_ands >= 16, "target too small");

    Gen s(params.seed);
    for (unsigned i = 0; i < params.num_pis; ++i) {
        s.pool.push_back(s.g.add_pi());
    }

    // Weighted block mix per family.  Rewrite-findable redundancy is the
    // most common kind (as on the real ITC/ISCAS designs, where ABC's
    // rewrite is the strongest single pass — Table I of the paper).
    using BlockFn = void (*)(Gen&);
    std::vector<BlockFn> mix;
    if (params.family == Family::Control) {
        mix = {block_rewrite_food, block_rewrite_food, block_rewrite_food,
               block_mux_tree,     block_mux_tree,     block_control,
               block_control,      block_naive_sop,    block_distributed,
               block_rederive,     block_parity};
    } else {
        mix = {block_rewrite_food, block_rewrite_food, block_mux_tree,
               block_mux_tree,     block_adder,        block_adder,
               block_compare,      block_distributed,  block_naive_sop,
               block_rederive};
    }

    while (s.g.num_ands() < params.target_ands) {
        mix[s.rng.next_below(mix.size())](s);
    }

    // Primary outputs: the most recent block outputs first (they depend on
    // the deepest logic), folded into at most max_pos outputs.
    std::vector<Lit> pos(s.outputs.rbegin(), s.outputs.rend());
    if (pos.size() > params.max_pos) {
        // Fold the overflow into the last slot with an OR spine so all
        // logic stays observable.
        std::vector<Lit> keep(pos.begin(),
                              pos.begin() +
                                  static_cast<std::ptrdiff_t>(params.max_pos - 1));
        Lit spine = aig::lit_false;
        for (std::size_t i = params.max_pos - 1; i < pos.size(); ++i) {
            spine = s.g.or_(spine, pos[i]);
        }
        keep.push_back(spine);
        pos = std::move(keep);
    }
    for (const Lit l : pos) {
        s.g.add_po(l);
    }
    return s.g.compact();
}

}  // namespace bg::circuits
