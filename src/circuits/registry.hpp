#pragma once

/// \file registry.hpp
/// Named benchmark registry: deterministic stand-ins for the paper's
/// ISCAS85 / ITC-ISCAS99 designs, sized to match the sizes the paper
/// reports or implies (b07=366 and b10=180 are quoted in §IV-A; b12=1002
/// in §III-C; the rest follow the published netlists' AIG sizes).

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "circuits/generators.hpp"

namespace bg::circuits {

struct BenchmarkInfo {
    std::string name;
    Family family = Family::Control;
    unsigned num_pis = 32;
    std::size_t target_ands = 400;
    std::uint64_t seed = 1;
};

/// All registered designs, in the paper's Table I order.
const std::vector<BenchmarkInfo>& benchmark_registry();

std::vector<std::string> benchmark_names();

/// Metadata for one design; throws std::out_of_range for unknown names.
const BenchmarkInfo& benchmark_info(const std::string& name);

/// Build the stand-in circuit for a named design (deterministic).
aig::Aig make_benchmark(const std::string& name);

/// Scale a design down for fast test/bench runs: same family and seed,
/// `scale` times fewer AND nodes (at least 60).
aig::Aig make_benchmark_scaled(const std::string& name, double scale);

}  // namespace bg::circuits
