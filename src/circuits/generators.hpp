#pragma once

/// \file generators.hpp
/// Synthetic benchmark-circuit generation.  The paper evaluates on
/// ISCAS85 / ITC-ISCAS99 netlists, which are not redistributable inside
/// this repository; these generators produce deterministic stand-ins with
/// the properties the experiments actually exercise:
///
///  * sizes matched to the paper's designs,
///  * mixed per-node applicability of rw / rs / rf,
///  * a few percent of *semantic* redundancy (naively expanded SOPs,
///    distributed products, re-derived cones, degenerate muxes) that
///    structural hashing cannot remove but DAG-aware optimization can.
///
/// Users with the real netlists can load them through bg::io::read_bench.

#include <cstdint>
#include <string>

#include "aig/aig.hpp"

namespace bg::circuits {

/// Family knob: ITC'99 b* designs are control-dominated, ISCAS85 c*
/// designs are arithmetic/mux-rich.  The mix of generated blocks differs.
enum class Family {
    Control,     ///< b07..b12-like
    Arithmetic,  ///< c2670 / c5315-like
};

struct GeneratorParams {
    unsigned num_pis = 32;
    /// Stop adding logic blocks once the AND count reaches this value
    /// (the compacted result lands within a few percent of it).
    std::size_t target_ands = 400;
    std::size_t max_pos = 32;
    Family family = Family::Control;
    std::uint64_t seed = 1;
};

/// Generate one circuit; deterministic in `params`.
aig::Aig generate_circuit(const GeneratorParams& params);

}  // namespace bg::circuits
