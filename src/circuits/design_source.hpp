#pragma once

/// \file design_source.hpp
/// Unified design resolution: one spec language shared by every CLI
/// command and by core::jobs_from_specs, covering both the synthetic
/// registry and real AIGER/BENCH netlists on disk.
///
/// Spec forms:
///   name            registry entry (b07 .. c5315)
///   name@scale      registry entry, scaled (e.g. b12@0.25)
///   glob            '*'/'?' pattern over registry names (e.g. 'b1?')
///   file:path       netlist file (.aag/.aig auto-sniffed, .bench by
///                   suffix); relative or absolute
///   file:glob       filesystem glob over the basename (the directory
///                   part is literal), e.g. file:bench/*.aig — matches
///                   sorted by path for determinism
///   path.aag|.aig|.bench   bare netlist path (historical shorthand)
///
/// Every resolution failure — unknown registry name, glob matching
/// nothing, unreadable or malformed file — throws DesignSourceError with
/// a message naming the offending spec; the CLI maps it to exit code 2
/// so scripted suites distinguish "bad invocation" from "flow failed".

#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace bg::circuits {

/// A design spec that cannot be resolved (unknown name, empty glob,
/// unreadable or malformed file).  The what() string names the spec and
/// the reason.
class DesignSourceError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Where a resolved design comes from.
enum class DesignOrigin {
    Registry,  ///< deterministic synthetic generator
    File,      ///< AIGER / BENCH netlist on disk
};

/// One resolved design: display name plus enough to load it on demand.
struct ResolvedDesign {
    std::string name;    ///< display name (registry name or file path)
    DesignOrigin origin = DesignOrigin::Registry;
    std::string path;    ///< filesystem path when origin == File
    double scale = 1.0;  ///< registry scaling factor (identity at 1.0)

    /// Build (registry) or read (file) the AIG.  Throws DesignSourceError
    /// on unreadable or malformed files.
    aig::Aig load() const;
};

/// Resolve one spec (see the file header for the language).  `scale`
/// applies to registry-backed entries that do not carry their own
/// `@scale` suffix.  Returns at least one design or throws
/// DesignSourceError.
std::vector<ResolvedDesign> resolve_design_spec(const std::string& spec,
                                                double scale = 1.0);

/// Resolve a whole command line: `all` prepends every registry design,
/// then each spec expands in order.  Duplicates are kept (running one
/// design twice is a legitimate request).
std::vector<ResolvedDesign> resolve_design_specs(
    const std::vector<std::string>& specs, bool all, double scale = 1.0);

/// Resolve a spec that must name exactly one design (stats/opt/train/cec
/// operands).  Throws DesignSourceError when the spec expands to several.
ResolvedDesign resolve_single_design(const std::string& spec,
                                     double scale = 1.0);

/// Convenience: resolve_single_design + load.
aig::Aig load_design_spec(const std::string& spec, double scale = 1.0);

}  // namespace bg::circuits
