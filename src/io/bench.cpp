#include "io/bench.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace bg::io {

using aig::Aig;
using aig::Lit;

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
    throw std::runtime_error("bench: line " + std::to_string(line_no) + ": " +
                             why);
}

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

struct GateDef {
    std::string output;
    std::string op;  // upper-cased
    std::vector<std::string> inputs;
    std::size_t line_no = 0;
};

}  // namespace

Aig read_bench(std::istream& in) {
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
    std::vector<GateDef> gates;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty()) {
            continue;
        }
        const auto open = line.find('(');
        const auto close = line.rfind(')');
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            // INPUT(x) / OUTPUT(x)
            if (open == std::string::npos || close == std::string::npos ||
                close < open) {
                fail(line_no, "unparsable line: '" + line + "'");
            }
            const std::string kw = upper(trim(line.substr(0, open)));
            const std::string arg =
                trim(line.substr(open + 1, close - open - 1));
            if (kw == "INPUT") {
                input_names.push_back(arg);
            } else if (kw == "OUTPUT") {
                output_names.push_back(arg);
            } else {
                fail(line_no, "unknown directive: " + kw);
            }
            continue;
        }
        // name = OP(a, b, ...)
        if (open == std::string::npos || close == std::string::npos ||
            close < open || open < eq) {
            fail(line_no, "unparsable gate line: '" + line + "'");
        }
        GateDef g;
        g.line_no = line_no;
        g.output = trim(line.substr(0, eq));
        g.op = upper(trim(line.substr(eq + 1, open - eq - 1)));
        std::string args = line.substr(open + 1, close - open - 1);
        std::istringstream ss(args);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            tok = trim(tok);
            if (!tok.empty()) {
                g.inputs.push_back(tok);
            }
        }
        if (g.op == "DFF" || g.op == "DFFSR" || g.op == "LATCH") {
            fail(line_no, "sequential elements are not supported");
        }
        gates.push_back(std::move(g));
    }

    Aig g;
    std::unordered_map<std::string, Lit> sig;
    for (const auto& name : input_names) {
        if (sig.contains(name)) {
            fail(0, "duplicate input: " + name);
        }
        sig.emplace(name, g.add_pi());
    }

    // Elaborate gates; definitions may appear in any order, so iterate to a
    // fixed point (bounded by the gate count to catch cycles).
    std::vector<bool> done(gates.size(), false);
    std::size_t remaining = gates.size();
    bool progressed = true;
    while (remaining > 0 && progressed) {
        progressed = false;
        for (std::size_t gi = 0; gi < gates.size(); ++gi) {
            if (done[gi]) {
                continue;
            }
            const auto& gd = gates[gi];
            std::vector<Lit> ins;
            ins.reserve(gd.inputs.size());
            bool ready = true;
            for (const auto& nm : gd.inputs) {
                const auto it = sig.find(nm);
                if (it == sig.end()) {
                    ready = false;
                    break;
                }
                ins.push_back(it->second);
            }
            if (!ready) {
                continue;
            }
            Lit out = aig::lit_false;
            const auto need = [&](std::size_t lo, std::size_t hi) {
                if (ins.size() < lo || ins.size() > hi) {
                    fail(gd.line_no, gd.op + " arity out of range");
                }
            };
            if (gd.op == "AND") {
                need(1, 64);
                out = g.and_reduce(ins);
            } else if (gd.op == "NAND") {
                need(1, 64);
                out = aig::lit_not(g.and_reduce(ins));
            } else if (gd.op == "OR") {
                need(1, 64);
                out = g.or_reduce(ins);
            } else if (gd.op == "NOR") {
                need(1, 64);
                out = aig::lit_not(g.or_reduce(ins));
            } else if (gd.op == "XOR") {
                need(1, 64);
                out = ins[0];
                for (std::size_t k = 1; k < ins.size(); ++k) {
                    out = g.xor_(out, ins[k]);
                }
            } else if (gd.op == "XNOR") {
                need(2, 64);
                out = ins[0];
                for (std::size_t k = 1; k < ins.size(); ++k) {
                    out = g.xor_(out, ins[k]);
                }
                out = aig::lit_not(out);
            } else if (gd.op == "NOT") {
                need(1, 1);
                out = aig::lit_not(ins[0]);
            } else if (gd.op == "BUF" || gd.op == "BUFF") {
                need(1, 1);
                out = ins[0];
            } else if (gd.op == "CONST0" || gd.op == "GND") {
                out = aig::lit_false;
            } else if (gd.op == "CONST1" || gd.op == "VDD") {
                out = aig::lit_true;
            } else {
                fail(gd.line_no, "unknown gate type: " + gd.op);
            }
            if (sig.contains(gd.output)) {
                fail(gd.line_no, "signal defined twice: " + gd.output);
            }
            sig.emplace(gd.output, out);
            done[gi] = true;
            --remaining;
            progressed = true;
        }
    }
    if (remaining > 0) {
        fail(0, "undefined signals or combinational cycle in gate list");
    }

    for (const auto& name : output_names) {
        const auto it = sig.find(name);
        if (it == sig.end()) {
            fail(0, "undefined output: " + name);
        }
        g.add_po(it->second);
    }
    return g;
}

Aig read_bench_string(const std::string& text) {
    std::istringstream ss(text);
    return read_bench(ss);
}

Aig read_bench_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("bench: cannot open " + path.string());
    }
    return read_bench(in);
}

void write_bench(const Aig& g_in, std::ostream& out) {
    const Aig g = g_in.compact();
    const auto name_of = [&](aig::Var v) { return "n" + std::to_string(v); };
    const auto lit_name = [&](Lit l, std::vector<bool>& inverted_emitted,
                              std::ostream& os) -> std::string {
        const aig::Var v = aig::lit_var(l);
        if (!aig::lit_is_compl(l)) {
            return name_of(v);
        }
        const std::string inv = name_of(v) + "_inv";
        if (!inverted_emitted[v]) {
            os << inv << " = NOT(" << name_of(v) << ")\n";
            inverted_emitted[v] = true;
        }
        return inv;
    };

    out << "# written by BoolGebra\n";
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        out << "INPUT(" << name_of(g.pi(i)) << ")\n";
    }
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        out << "OUTPUT(po" << i << ")\n";
    }
    // Constant driver, if anything references it.
    bool const_needed = false;
    for (const Lit po : g.pos()) {
        const_needed |= aig::lit_var(po) == 0;
    }
    for (const aig::Var v : g.topo_ands()) {
        const_needed |= aig::lit_var(g.fanin0(v)) == 0;
        const_needed |= aig::lit_var(g.fanin1(v)) == 0;
    }
    std::vector<bool> inverted_emitted(g.num_slots(), false);
    std::ostringstream body;
    if (const_needed) {
        if (g.num_pis() == 0) {
            throw std::runtime_error(
                "bench: cannot express a constant without any input "
                "(the format has no constant primitive)");
        }
        // BENCH has no constant primitive; x AND NOT x is the portable idiom.
        body << "n0 = AND(" << name_of(g.pi(0)) << ", n0_notpi)\n";
        body << "n0_notpi = NOT(" << name_of(g.pi(0)) << ")\n";
    }
    for (const aig::Var v : g.topo_ands()) {
        const std::string a = lit_name(g.fanin0(v), inverted_emitted, body);
        const std::string b = lit_name(g.fanin1(v), inverted_emitted, body);
        body << name_of(v) << " = AND(" << a << ", " << b << ")\n";
    }
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        const Lit po = g.po(i);
        if (aig::lit_is_compl(po)) {
            body << "po" << i << " = NOT(" << name_of(aig::lit_var(po))
                 << ")\n";
        } else {
            body << "po" << i << " = BUFF(" << name_of(aig::lit_var(po))
                 << ")\n";
        }
    }
    out << body.str();
}

std::string write_bench_string(const Aig& g) {
    std::ostringstream ss;
    write_bench(g, ss);
    return ss.str();
}

void write_bench_file(const Aig& g, const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("bench: cannot write " + path.string());
    }
    write_bench(g, out);
}

}  // namespace bg::io
