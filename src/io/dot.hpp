#pragma once

/// \file dot.hpp
/// Graphviz DOT export of AIGs for papers, debugging and documentation:
/// PIs as boxes, AND nodes as circles, complemented edges dashed (the
/// conventional AIG rendering).

#include <filesystem>
#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace bg::io {

void write_dot(const aig::Aig& g, std::ostream& out);
std::string write_dot_string(const aig::Aig& g);
void write_dot_file(const aig::Aig& g, const std::filesystem::path& path);

}  // namespace bg::io
