#include "io/aiger.hpp"

#include <fstream>
#include <sstream>

namespace bg::io {

using aig::Aig;
using aig::Lit;
using aig::lit_is_compl;
using aig::lit_not_cond;
using aig::lit_var;

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
    throw std::runtime_error("aiger: line " + std::to_string(line_no) + ": " +
                             why);
}

std::vector<std::uint64_t> parse_uints(const std::string& line,
                                       std::size_t line_no) {
    std::vector<std::uint64_t> out;
    std::istringstream ss(line);
    std::uint64_t v = 0;
    while (ss >> v) {
        out.push_back(v);
    }
    if (!ss.eof()) {
        fail(line_no, "expected unsigned integers: '" + line + "'");
    }
    return out;
}

}  // namespace

Aig read_aiger(std::istream& in) {
    std::string line;
    std::size_t line_no = 0;

    const auto next_line = [&]() -> bool {
        while (std::getline(in, line)) {
            ++line_no;
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            return true;
        }
        return false;
    };

    if (!next_line()) {
        fail(0, "empty document");
    }
    std::istringstream header(line);
    std::string magic;
    std::uint64_t m = 0;
    std::uint64_t i = 0;
    std::uint64_t l = 0;
    std::uint64_t o = 0;
    std::uint64_t a = 0;
    if (!(header >> magic >> m >> i >> l >> o >> a) || magic != "aag") {
        fail(line_no, "expected header 'aag M I L O A'");
    }
    if (l != 0) {
        fail(line_no, "latches are not supported (combinational AIGs only)");
    }
    if (m < i + a) {
        fail(line_no, "M must be at least I + A");
    }

    Aig g;
    g.reserve(static_cast<std::size_t>(m) + 1);
    // AIGER var k corresponds 1:1 to our var k as long as inputs come
    // first; the format guarantees input literals 2,4,...,2I.
    for (std::uint64_t k = 0; k < i; ++k) {
        if (!next_line()) {
            fail(line_no, "missing input line");
        }
        const auto vals = parse_uints(line, line_no);
        if (vals.size() != 1 || vals[0] != 2 * (k + 1)) {
            fail(line_no, "input literal must be " +
                              std::to_string(2 * (k + 1)));
        }
        g.add_pi();
    }

    std::vector<std::uint64_t> out_lits;
    out_lits.reserve(o);
    for (std::uint64_t k = 0; k < o; ++k) {
        if (!next_line()) {
            fail(line_no, "missing output line");
        }
        const auto vals = parse_uints(line, line_no);
        if (vals.size() != 1) {
            fail(line_no, "output line must hold one literal");
        }
        out_lits.push_back(vals[0]);
    }

    // AND definitions; map AIGER vars to our literals.
    std::vector<Lit> var_map(m + 1, aig::null_lit);
    var_map[0] = aig::lit_false;
    for (std::uint64_t k = 0; k < i; ++k) {
        var_map[k + 1] = aig::make_lit(static_cast<aig::Var>(k + 1));
    }
    for (std::uint64_t k = 0; k < a; ++k) {
        if (!next_line()) {
            fail(line_no, "missing AND line");
        }
        const auto vals = parse_uints(line, line_no);
        if (vals.size() != 3) {
            fail(line_no, "AND line must hold three literals");
        }
        const std::uint64_t lhs = vals[0];
        if (lhs % 2 != 0 || lhs / 2 > m) {
            fail(line_no, "invalid AND left-hand literal");
        }
        const auto resolve = [&](std::uint64_t aiger_lit) -> Lit {
            const std::uint64_t var = aiger_lit / 2;
            if (var > m || var_map[var] == aig::null_lit) {
                fail(line_no, "literal references an undefined variable");
            }
            return lit_not_cond(var_map[var], (aiger_lit & 1) != 0);
        };
        const Lit rhs0 = resolve(vals[1]);
        const Lit rhs1 = resolve(vals[2]);
        if (var_map[lhs / 2] != aig::null_lit) {
            fail(line_no, "AND variable defined twice");
        }
        var_map[lhs / 2] = g.and_(rhs0, rhs1);
    }

    for (const std::uint64_t ol : out_lits) {
        const std::uint64_t var = ol / 2;
        if (var > m || var_map[var] == aig::null_lit) {
            fail(line_no, "output references an undefined variable");
        }
        g.add_po(lit_not_cond(var_map[var], (ol & 1) != 0));
    }
    return g;
}

Aig read_aiger_string(const std::string& text) {
    std::istringstream ss(text);
    return read_aiger(ss);
}

Aig read_aiger_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("aiger: cannot open " + path.string());
    }
    return read_aiger(in);
}

void write_aiger(const Aig& g_in, std::ostream& out) {
    const Aig g = g_in.compact();
    // In a compacted AIG, vars are [0 | PIs | ANDs] with ANDs created in
    // topological order, so emitting vars in increasing index order yields
    // exactly the ordering AIGER consumers expect.
    const std::size_t i = g.num_pis();
    const std::size_t a = g.num_ands();
    const std::size_t m = i + a;
    out << "aag " << m << ' ' << i << " 0 " << g.num_pos() << ' ' << a
        << '\n';
    for (std::size_t k = 0; k < i; ++k) {
        out << 2 * (k + 1) << '\n';
    }
    for (const Lit po : g.pos()) {
        out << po << '\n';
    }
    for (aig::Var v = static_cast<aig::Var>(i + 1); v <= m; ++v) {
        BG_ASSERT(g.is_and(v), "compacted AIG must have dense AND indices");
        out << aig::make_lit(v) << ' ' << g.fanin0(v) << ' ' << g.fanin1(v)
            << '\n';
    }
}

std::string write_aiger_string(const Aig& g) {
    std::ostringstream ss;
    write_aiger(g, ss);
    return ss.str();
}

void write_aiger_file(const Aig& g, const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("aiger: cannot write " + path.string());
    }
    write_aiger(g, out);
}

// ---------------------------------------------------------------------------
// Binary AIGER
// ---------------------------------------------------------------------------

namespace {

/// LEB128-style delta encoding used by the binary format.
void put_delta(std::ostream& out, std::uint64_t delta) {
    while (delta >= 0x80) {
        out.put(static_cast<char>(0x80 | (delta & 0x7F)));
        delta >>= 7;
    }
    out.put(static_cast<char>(delta));
}

std::uint64_t get_delta(std::istream& in) {
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
        const int c = in.get();
        if (c == EOF) {
            throw std::runtime_error("aiger: truncated binary delta");
        }
        value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
        if ((c & 0x80) == 0) {
            return value;
        }
        shift += 7;
        if (shift > 63) {
            throw std::runtime_error("aiger: oversized binary delta");
        }
    }
}

}  // namespace

Aig read_aiger_binary(std::istream& in) {
    std::string header;
    if (!std::getline(in, header)) {
        fail(1, "empty binary document");
    }
    std::istringstream hs(header);
    std::string magic;
    std::uint64_t m = 0;
    std::uint64_t i = 0;
    std::uint64_t l = 0;
    std::uint64_t o = 0;
    std::uint64_t a = 0;
    if (!(hs >> magic >> m >> i >> l >> o >> a) || magic != "aig") {
        fail(1, "expected binary header 'aig M I L O A'");
    }
    if (l != 0) {
        fail(1, "latches are not supported (combinational AIGs only)");
    }
    if (m != i + a) {
        fail(1, "binary AIGER requires M == I + A");
    }

    Aig g;
    g.reserve(static_cast<std::size_t>(m) + 1);
    std::vector<Lit> var_map(m + 1, aig::null_lit);
    var_map[0] = aig::lit_false;
    for (std::uint64_t k = 0; k < i; ++k) {
        g.add_pi();
        var_map[k + 1] = aig::make_lit(static_cast<aig::Var>(k + 1));
    }

    // Outputs come as ASCII literal lines before the delta block.
    std::vector<std::uint64_t> out_lits;
    out_lits.reserve(o);
    std::string line;
    for (std::uint64_t k = 0; k < o; ++k) {
        if (!std::getline(in, line)) {
            fail(0, "missing binary output line");
        }
        out_lits.push_back(std::stoull(line));
    }

    for (std::uint64_t k = 0; k < a; ++k) {
        const std::uint64_t lhs = 2 * (i + k + 1);
        const std::uint64_t delta0 = get_delta(in);
        const std::uint64_t delta1 = get_delta(in);
        if (delta0 == 0 || delta0 > lhs) {
            fail(0, "binary AND delta out of range");
        }
        const std::uint64_t rhs0 = lhs - delta0;
        if (delta1 > rhs0) {
            fail(0, "binary AND second delta out of range");
        }
        const std::uint64_t rhs1 = rhs0 - delta1;
        const auto resolve = [&](std::uint64_t alit) -> Lit {
            const std::uint64_t var = alit / 2;
            if (var > m || var_map[var] == aig::null_lit) {
                fail(0, "binary literal references an undefined variable");
            }
            return lit_not_cond(var_map[var], (alit & 1) != 0);
        };
        var_map[lhs / 2] = g.and_(resolve(rhs0), resolve(rhs1));
    }

    for (const std::uint64_t ol : out_lits) {
        const std::uint64_t var = ol / 2;
        if (var > m || var_map[var] == aig::null_lit) {
            fail(0, "binary output references an undefined variable");
        }
        g.add_po(lit_not_cond(var_map[var], (ol & 1) != 0));
    }
    return g;
}

Aig read_aiger_binary_string(const std::string& bytes) {
    std::istringstream ss(bytes);
    return read_aiger_binary(ss);
}

Aig read_aiger_binary_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("aiger: cannot open " + path.string());
    }
    return read_aiger_binary(in);
}

void write_aiger_binary(const Aig& g_in, std::ostream& out) {
    const Aig g = g_in.compact();
    const std::size_t i = g.num_pis();
    const std::size_t a = g.num_ands();
    const std::size_t m = i + a;
    out << "aig " << m << ' ' << i << " 0 " << g.num_pos() << ' ' << a
        << '\n';
    for (const Lit po : g.pos()) {
        out << po << '\n';
    }
    for (aig::Var v = static_cast<aig::Var>(i + 1); v <= m; ++v) {
        BG_ASSERT(g.is_and(v), "compacted AIG must have dense AND indices");
        const std::uint64_t lhs = aig::make_lit(v);
        // The format requires lhs > rhs0 >= rhs1; our fanins are
        // normalized as fanin0 <= fanin1.
        const std::uint64_t rhs0 = g.fanin1(v);
        const std::uint64_t rhs1 = g.fanin0(v);
        put_delta(out, lhs - rhs0);
        put_delta(out, rhs0 - rhs1);
    }
}

std::string write_aiger_binary_string(const Aig& g) {
    std::ostringstream ss;
    write_aiger_binary(g, ss);
    return ss.str();
}

void write_aiger_binary_file(const Aig& g,
                             const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("aiger: cannot write " + path.string());
    }
    write_aiger_binary(g, out);
}

Aig read_aiger_auto_file(const std::filesystem::path& path) {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
        throw std::runtime_error("aiger: cannot open " + path.string());
    }
    std::string magic(3, '\0');
    probe.read(magic.data(), 3);
    probe.close();
    if (magic == "aag") {
        return read_aiger_file(path);
    }
    if (magic == "aig") {
        return read_aiger_binary_file(path);
    }
    throw std::runtime_error("aiger: unrecognized magic in " + path.string());
}

}  // namespace bg::io
