#include "io/dot.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace bg::io {

using aig::Aig;
using aig::Lit;
using aig::Var;

void write_dot(const Aig& g, std::ostream& out) {
    out << "digraph aig {\n"
        << "  rankdir=BT;\n"
        << "  node [fontname=\"Helvetica\"];\n";
    out << "  const0 [label=\"0\", shape=box, style=dotted];\n";
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        out << "  n" << g.pi(i) << " [label=\"x" << i
            << "\", shape=box];\n";
    }
    const auto node_name = [&](Var v) {
        return v == 0 ? std::string("const0") : "n" + std::to_string(v);
    };
    for (const Var v : g.topo_ands()) {
        out << "  n" << v << " [label=\"" << v << "\", shape=circle];\n";
        for (const aig::NodeRef f : g.fanin_refs(v)) {
            out << "  " << node_name(f.index()) << " -> n" << v;
            if (f.complemented()) {
                out << " [style=dashed]";
            }
            out << ";\n";
        }
    }
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        const Lit po = g.po(i);
        out << "  po" << i << " [label=\"y" << i
            << "\", shape=invtriangle];\n";
        out << "  " << node_name(aig::lit_var(po)) << " -> po" << i;
        if (aig::lit_is_compl(po)) {
            out << " [style=dashed]";
        }
        out << ";\n";
    }
    out << "}\n";
}

std::string write_dot_string(const Aig& g) {
    std::ostringstream ss;
    write_dot(g, ss);
    return ss.str();
}

void write_dot_file(const Aig& g, const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("dot: cannot write " + path.string());
    }
    write_dot(g, out);
}

}  // namespace bg::io
