#pragma once

/// \file aiger.hpp
/// ASCII AIGER ("aag") reader and writer for combinational AIGs.  This is
/// the interchange format of the AIGER suite and of ABC, so users can run
/// BoolGebra on the paper's real ISCAS85 / ITC-ISCAS99 netlists whenever
/// they have them on disk.  Latches are not supported (the paper operates
/// on combinational logic).

#include <filesystem>
#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace bg::io {

/// Parse an ASCII AIGER document.  Throws std::runtime_error with a
/// line-oriented message on malformed input.
aig::Aig read_aiger(std::istream& in);
aig::Aig read_aiger_string(const std::string& text);
aig::Aig read_aiger_file(const std::filesystem::path& path);

/// Serialize to ASCII AIGER.  The AIG is compacted first so variable
/// indices are dense and topologically ordered as the format requires.
void write_aiger(const aig::Aig& g, std::ostream& out);
std::string write_aiger_string(const aig::Aig& g);
void write_aiger_file(const aig::Aig& g, const std::filesystem::path& path);

/// Parse the *binary* AIGER format ("aig" header, delta-coded AND gates) —
/// the format the published benchmark archives actually ship.
aig::Aig read_aiger_binary(std::istream& in);
aig::Aig read_aiger_binary_string(const std::string& bytes);
aig::Aig read_aiger_binary_file(const std::filesystem::path& path);

/// Serialize to binary AIGER.
void write_aiger_binary(const aig::Aig& g, std::ostream& out);
std::string write_aiger_binary_string(const aig::Aig& g);
void write_aiger_binary_file(const aig::Aig& g,
                             const std::filesystem::path& path);

/// Load either AIGER flavour by sniffing the header ("aag" vs "aig").
aig::Aig read_aiger_auto_file(const std::filesystem::path& path);

}  // namespace bg::io
