#pragma once

/// \file bench.hpp
/// ISCAS BENCH-format reader and writer.  BENCH is the native distribution
/// format of the ISCAS85 / ITC-ISCAS99 benchmark suites the paper
/// evaluates on, so this module lets a user feed the real b07…c5315
/// netlists into BoolGebra.  Gates supported: AND, OR, NAND, NOR, XOR,
/// XNOR, NOT, BUF/BUFF (arbitrary arity for the symmetric ones); DFFs are
/// rejected (combinational only).

#include <filesystem>
#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace bg::io {

aig::Aig read_bench(std::istream& in);
aig::Aig read_bench_string(const std::string& text);
aig::Aig read_bench_file(const std::filesystem::path& path);

/// Serialize as BENCH using AND/NOT gates (every AIG maps onto these).
void write_bench(const aig::Aig& g, std::ostream& out);
std::string write_bench_string(const aig::Aig& g);
void write_bench_file(const aig::Aig& g, const std::filesystem::path& path);

}  // namespace bg::io
