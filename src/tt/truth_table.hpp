#pragma once

/// \file truth_table.hpp
/// Word-parallel truth tables over up to 20 variables.  Used for cut
/// functions (rewriting), window functions (resubstitution) and collapsed
/// cone functions (refactoring).
///
/// Representation: 2^n bits packed into 64-bit words.  For n < 6 the
/// 2^n-bit pattern is *replicated* to fill the single word, which lets all
/// bitwise and cofactor operations work uniformly on whole words (the same
/// convention ABC's Kit/Tt packages use).

#include <cstdint>
#include <string>
#include <vector>

namespace bg::tt {

/// Practical cap: refactoring collapses cones of at most ~14 leaves and
/// equivalence checks enumerate at most 2^20 patterns.
inline constexpr unsigned max_vars = 20;

class TruthTable {
public:
    /// Constant-0 function of `num_vars` variables.
    explicit TruthTable(unsigned num_vars = 0);

    static TruthTable zeros(unsigned num_vars) { return TruthTable(num_vars); }
    static TruthTable ones(unsigned num_vars);
    /// Projection x_i as a function of `num_vars` variables.
    static TruthTable nth_var(unsigned num_vars, unsigned i);
    /// Lift a 16-bit 4-variable function to `num_vars` >= 4 variables.
    static TruthTable from_u16(std::uint16_t bits, unsigned num_vars = 4);
    /// Parse from hex string as produced by to_hex() (MSB first).
    static TruthTable from_hex(unsigned num_vars, const std::string& hex);

    unsigned num_vars() const { return num_vars_; }
    std::uint64_t num_bits() const { return 1ULL << num_vars_; }
    std::size_t num_words() const { return words_.size(); }

    bool get_bit(std::uint64_t minterm) const;
    void set_bit(std::uint64_t minterm, bool value);

    bool is_const0() const;
    bool is_const1() const;
    std::uint64_t count_ones() const;

    /// True iff the function changes when x_i flips.
    bool depends_on(unsigned i) const;
    /// Bitmask of variables the function depends on.
    std::uint32_t support_mask() const;
    unsigned support_size() const;

    TruthTable cofactor0(unsigned i) const;  ///< f with x_i = 0
    TruthTable cofactor1(unsigned i) const;  ///< f with x_i = 1

    /// Swap the roles of variables i and j.
    TruthTable swap_vars(unsigned i, unsigned j) const;
    /// Complement variable i (f(x_i <- !x_i)).
    TruthTable flip_var(unsigned i) const;

    /// Low 16 bits as a 4-variable function (requires num_vars <= 4).
    std::uint16_t to_u16() const;
    std::string to_hex() const;
    std::string to_binary() const;  ///< MSB(minterm 2^n-1) ... LSB(minterm 0)

    TruthTable operator~() const;
    TruthTable operator&(const TruthTable& o) const;
    TruthTable operator|(const TruthTable& o) const;
    TruthTable operator^(const TruthTable& o) const;
    TruthTable& operator&=(const TruthTable& o);
    TruthTable& operator|=(const TruthTable& o);
    TruthTable& operator^=(const TruthTable& o);
    bool operator==(const TruthTable& o) const;
    bool operator!=(const TruthTable& o) const { return !(*this == o); }

    /// True iff this implies `o` bitwise (this & ~o == 0).
    bool implies(const TruthTable& o) const;

    /// 64-bit mixing hash (for memo tables).
    std::uint64_t hash() const;

    /// Raw word access (word w holds minterms [64w, 64w+63]).
    const std::vector<std::uint64_t>& words() const { return words_; }
    std::vector<std::uint64_t>& words() { return words_; }

private:
    void normalize();  ///< re-establish the replication / masking invariant

    unsigned num_vars_;
    std::vector<std::uint64_t> words_;
};

}  // namespace bg::tt
