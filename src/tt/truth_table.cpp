#include "tt/truth_table.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace bg::tt {

namespace {

/// masks[i] selects the minterms where variable i is 0 (for i < 6).
constexpr std::uint64_t var0_masks[6] = {
    0x5555555555555555ULL, 0x3333333333333333ULL, 0x0F0F0F0F0F0F0F0FULL,
    0x00FF00FF00FF00FFULL, 0x0000FFFF0000FFFFULL, 0x00000000FFFFFFFFULL,
};

std::size_t words_for(unsigned num_vars) {
    return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

}  // namespace

TruthTable::TruthTable(unsigned nv) : num_vars_(nv) {
    BG_EXPECTS(nv <= max_vars, "truth table too wide");
    words_.assign(words_for(nv), 0);
}

void TruthTable::normalize() {
    if (num_vars_ >= 6) {
        return;
    }
    // Replicate the low 2^n-bit pattern across the word.
    const unsigned bits = 1U << num_vars_;
    std::uint64_t w = words_[0] & ((bits == 64) ? ~0ULL : ((1ULL << bits) - 1));
    for (unsigned shift = bits; shift < 64; shift <<= 1) {
        w |= w << shift;
    }
    words_[0] = w;
}

TruthTable TruthTable::ones(unsigned nv) {
    TruthTable t(nv);
    for (auto& w : t.words_) {
        w = ~0ULL;
    }
    return t;
}

TruthTable TruthTable::nth_var(unsigned nv, unsigned i) {
    BG_EXPECTS(i < nv, "projection variable out of range");
    TruthTable t(nv);
    if (i < 6) {
        for (auto& w : t.words_) {
            w = ~var0_masks[i];
        }
        t.normalize();
    } else {
        const std::size_t block = std::size_t{1} << (i - 6);
        for (std::size_t w = 0; w < t.words_.size(); ++w) {
            if ((w / block) & 1U) {
                t.words_[w] = ~0ULL;
            }
        }
    }
    return t;
}

TruthTable TruthTable::from_u16(std::uint16_t bits, unsigned nv) {
    BG_EXPECTS(nv >= 4, "from_u16 needs at least 4 variables");
    TruthTable t(nv);
    std::uint64_t w = bits;
    w |= w << 16;
    w |= w << 32;
    for (auto& word : t.words_) {
        word = w;
    }
    return t;
}

bool TruthTable::get_bit(std::uint64_t m) const {
    BG_EXPECTS(m < num_bits(), "minterm out of range");
    return (words_[m >> 6] >> (m & 63)) & 1ULL;
}

void TruthTable::set_bit(std::uint64_t m, bool value) {
    BG_EXPECTS(m < num_bits(), "minterm out of range");
    if (value) {
        words_[m >> 6] |= 1ULL << (m & 63);
    } else {
        words_[m >> 6] &= ~(1ULL << (m & 63));
    }
    normalize();
}

bool TruthTable::is_const0() const {
    for (const auto w : words_) {
        if (w != 0) {
            return false;
        }
    }
    return true;
}

bool TruthTable::is_const1() const {
    for (const auto w : words_) {
        if (w != ~0ULL) {
            return false;
        }
    }
    return true;
}

std::uint64_t TruthTable::count_ones() const {
    if (num_vars_ < 6) {
        const unsigned bits = 1U << num_vars_;
        const std::uint64_t mask = (1ULL << bits) - 1;
        return static_cast<std::uint64_t>(std::popcount(words_[0] & mask));
    }
    std::uint64_t total = 0;
    for (const auto w : words_) {
        total += static_cast<std::uint64_t>(std::popcount(w));
    }
    return total;
}

bool TruthTable::depends_on(unsigned i) const {
    return cofactor0(i) != cofactor1(i);
}

std::uint32_t TruthTable::support_mask() const {
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < num_vars_; ++i) {
        if (depends_on(i)) {
            mask |= 1U << i;
        }
    }
    return mask;
}

unsigned TruthTable::support_size() const {
    return static_cast<unsigned>(std::popcount(support_mask()));
}

TruthTable TruthTable::cofactor0(unsigned i) const {
    BG_EXPECTS(i < num_vars_, "cofactor variable out of range");
    TruthTable t(*this);
    if (i < 6) {
        const unsigned shift = 1U << i;
        for (auto& w : t.words_) {
            const std::uint64_t lo = w & var0_masks[i];
            w = lo | (lo << shift);
        }
    } else {
        const std::size_t block = std::size_t{1} << (i - 6);
        for (std::size_t w = 0; w < t.words_.size(); w += 2 * block) {
            for (std::size_t k = 0; k < block; ++k) {
                t.words_[w + block + k] = t.words_[w + k];
            }
        }
    }
    return t;
}

TruthTable TruthTable::cofactor1(unsigned i) const {
    BG_EXPECTS(i < num_vars_, "cofactor variable out of range");
    TruthTable t(*this);
    if (i < 6) {
        const unsigned shift = 1U << i;
        for (auto& w : t.words_) {
            const std::uint64_t hi = w & ~var0_masks[i];
            w = hi | (hi >> shift);
        }
    } else {
        const std::size_t block = std::size_t{1} << (i - 6);
        for (std::size_t w = 0; w < t.words_.size(); w += 2 * block) {
            for (std::size_t k = 0; k < block; ++k) {
                t.words_[w + k] = t.words_[w + block + k];
            }
        }
    }
    return t;
}

TruthTable TruthTable::swap_vars(unsigned i, unsigned j) const {
    BG_EXPECTS(i < num_vars_ && j < num_vars_, "swap variable out of range");
    if (i == j) {
        return *this;
    }
    // f = !xi!xj f00 + !xi xj f01 + xi !xj f10 + xi xj f11 ; swap exchanges
    // f01 and f10.
    const TruthTable xi = nth_var(num_vars_, i);
    const TruthTable xj = nth_var(num_vars_, j);
    const TruthTable f00 = cofactor0(i).cofactor0(j);
    const TruthTable f01 = cofactor0(i).cofactor1(j);
    const TruthTable f10 = cofactor1(i).cofactor0(j);
    const TruthTable f11 = cofactor1(i).cofactor1(j);
    return (~xi & ~xj & f00) | (~xi & xj & f10) | (xi & ~xj & f01) |
           (xi & xj & f11);
}

TruthTable TruthTable::flip_var(unsigned i) const {
    BG_EXPECTS(i < num_vars_, "flip variable out of range");
    const TruthTable xi = nth_var(num_vars_, i);
    return (~xi & cofactor1(i)) | (xi & cofactor0(i));
}

std::uint16_t TruthTable::to_u16() const {
    BG_EXPECTS(num_vars_ <= 4, "to_u16 requires at most 4 variables");
    return static_cast<std::uint16_t>(words_[0] & 0xFFFFULL);
}

std::string TruthTable::to_hex() const {
    static const char digits[] = "0123456789ABCDEF";
    const std::uint64_t nibbles = std::max<std::uint64_t>(num_bits() / 4, 1);
    std::string out;
    out.reserve(nibbles);
    for (std::uint64_t n = nibbles; n-- > 0;) {
        const std::uint64_t bit = n * 4;
        const unsigned nib =
            static_cast<unsigned>((words_[bit >> 6] >> (bit & 63)) & 0xF);
        out += digits[num_bits() >= 4 ? nib : (nib & ((1U << num_bits()) - 1))];
    }
    return out;
}

TruthTable TruthTable::from_hex(unsigned nv, const std::string& hex) {
    TruthTable t(nv);
    std::uint64_t bit = 0;
    for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
        const char c = *it;
        unsigned nib = 0;
        if (c >= '0' && c <= '9') {
            nib = static_cast<unsigned>(c - '0');
        } else if (c >= 'A' && c <= 'F') {
            nib = static_cast<unsigned>(c - 'A') + 10;
        } else if (c >= 'a' && c <= 'f') {
            nib = static_cast<unsigned>(c - 'a') + 10;
        } else {
            throw std::runtime_error("invalid hex digit in truth table");
        }
        if (bit < t.num_bits()) {
            t.words_[bit >> 6] |= static_cast<std::uint64_t>(nib) << (bit & 63);
        }
        bit += 4;
    }
    t.normalize();
    return t;
}

std::string TruthTable::to_binary() const {
    std::string out;
    out.reserve(num_bits());
    for (std::uint64_t m = num_bits(); m-- > 0;) {
        out += get_bit(m) ? '1' : '0';
    }
    return out;
}

TruthTable TruthTable::operator~() const {
    TruthTable t(*this);
    for (auto& w : t.words_) {
        w = ~w;
    }
    return t;
}

TruthTable& TruthTable::operator&=(const TruthTable& o) {
    BG_EXPECTS(num_vars_ == o.num_vars_, "width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] &= o.words_[i];
    }
    return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& o) {
    BG_EXPECTS(num_vars_ == o.num_vars_, "width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] |= o.words_[i];
    }
    return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& o) {
    BG_EXPECTS(num_vars_ == o.num_vars_, "width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] ^= o.words_[i];
    }
    return *this;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
    TruthTable t(*this);
    t &= o;
    return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
    TruthTable t(*this);
    t |= o;
    return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
    TruthTable t(*this);
    t ^= o;
    return t;
}

bool TruthTable::operator==(const TruthTable& o) const {
    return num_vars_ == o.num_vars_ && words_ == o.words_;
}

bool TruthTable::implies(const TruthTable& o) const {
    BG_EXPECTS(num_vars_ == o.num_vars_, "width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & ~o.words_[i]) != 0) {
            return false;
        }
    }
    return true;
}

std::uint64_t TruthTable::hash() const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL + num_vars_;
    for (const auto w : words_) {
        std::uint64_t z = w + 0x9E3779B97F4A7C15ULL + h;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        h ^= z ^ (z >> 31);
    }
    return h;
}

}  // namespace bg::tt
