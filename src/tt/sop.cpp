#include "tt/sop.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace bg::tt {

unsigned Cube::num_literals() const {
    return static_cast<unsigned>(std::popcount(pos) + std::popcount(neg));
}

std::size_t Sop::num_literals() const {
    std::size_t total = 0;
    for (const auto& c : cubes_) {
        total += c.num_literals();
    }
    return total;
}

TruthTable cube_to_tt(const Cube& c, unsigned num_vars) {
    BG_EXPECTS((c.pos & c.neg) == 0, "cube has contradictory literals");
    TruthTable t = TruthTable::ones(num_vars);
    for (unsigned v = 0; v < num_vars; ++v) {
        if ((c.pos >> v) & 1U) {
            t &= TruthTable::nth_var(num_vars, v);
        } else if ((c.neg >> v) & 1U) {
            t &= ~TruthTable::nth_var(num_vars, v);
        }
    }
    return t;
}

TruthTable Sop::to_tt() const {
    TruthTable t(num_vars_);
    for (const auto& c : cubes_) {
        t |= cube_to_tt(c, num_vars_);
    }
    return t;
}

std::size_t Sop::literal_occurrences(unsigned var, bool positive) const {
    std::size_t n = 0;
    for (const auto& c : cubes_) {
        const std::uint32_t mask = positive ? c.pos : c.neg;
        n += (mask >> var) & 1U;
    }
    return n;
}

std::string Sop::to_string() const {
    if (cubes_.empty()) {
        return "0";
    }
    const auto var_name = [](unsigned v) {
        std::string s;
        if (v < 26) {
            s += static_cast<char>('a' + v);
        } else {
            s = "x" + std::to_string(v);
        }
        return s;
    };
    std::string out;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        if (i > 0) {
            out += " + ";
        }
        const auto& c = cubes_[i];
        if (c.num_literals() == 0) {
            out += "1";
            continue;
        }
        for (unsigned v = 0; v < num_vars_; ++v) {
            if ((c.pos >> v) & 1U) {
                out += var_name(v);
            } else if ((c.neg >> v) & 1U) {
                out += "!" + var_name(v);
            }
        }
    }
    return out;
}

}  // namespace bg::tt
