#pragma once

/// \file npn.hpp
/// NPN (Negation-Permutation-Negation) canonization of 4-variable
/// functions.  The rewrite library stores one optimized structure per NPN
/// class (there are 222 of them) and instantiates it through the recorded
/// transform, so canonization must be exactly invertible.

#include <array>
#include <cstdint>

namespace bg::tt {

/// An NPN transform T.  Applying T to f yields g with
///   g(x0,x1,x2,x3) = f(y0,y1,y2,y3) ^ output_neg,
/// where input i of f is driven by y_i = x_{perm[i]} ^ input_neg_i.
/// In minterm terms: g[m] = f[s] ^ output_neg with
///   bit_i(s) = bit_{perm[i]}(m) ^ bit_i(input_neg).
struct NpnTransform {
    std::array<std::uint8_t, 4> perm{0, 1, 2, 3};
    std::uint8_t input_neg = 0;  ///< bit i set => input i of f is inverted
    bool output_neg = false;

    bool operator==(const NpnTransform&) const = default;
};

/// Result of canonization: canon == npn_apply(f, to_canon).
struct NpnCanon {
    std::uint16_t canon = 0;
    NpnTransform to_canon;
};

/// Apply a transform to a 4-variable function.
std::uint16_t npn_apply(std::uint16_t f, const NpnTransform& t);

/// Inverse transform: npn_apply(npn_apply(f, t), npn_invert(t)) == f.
NpnTransform npn_invert(const NpnTransform& t);

/// Compose transforms: npn_apply(f, npn_compose(a, b)) ==
/// npn_apply(npn_apply(f, a), b).
NpnTransform npn_compose(const NpnTransform& a, const NpnTransform& b);

/// Canonize by exhaustive search over all 768 transforms (24 permutations
/// x 16 input phases x 2 output phases); the canonical representative is
/// the numerically smallest image.
NpnCanon npn_canonize(std::uint16_t f);

/// Number of distinct NPN classes among all 4-variable functions (222);
/// exposed for tests and documentation.
unsigned npn_num_classes();

}  // namespace bg::tt
