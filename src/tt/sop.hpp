#pragma once

/// \file sop.hpp
/// Sum-of-products (cube cover) representation used between ISOP extraction
/// and algebraic factoring.

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace bg::tt {

/// One product term over up to 32 variables.  A variable may appear as a
/// positive literal (bit set in `pos`), a negative literal (bit in `neg`),
/// or not at all.  A cube with pos == neg == 0 is the constant-1 cube.
struct Cube {
    std::uint32_t pos = 0;
    std::uint32_t neg = 0;

    bool operator==(const Cube&) const = default;

    unsigned num_literals() const;
    bool has_var(unsigned v) const {
        return ((pos | neg) >> v) & 1U;
    }
    /// True if this cube's literal set contains all of `o`'s literals.
    bool contains(const Cube& o) const {
        return (o.pos & ~pos) == 0 && (o.neg & ~neg) == 0;
    }
};

/// A cube cover (disjunction of cubes).  An empty cover is constant 0;
/// a cover containing the empty cube is constant 1 (assuming irredundance).
class Sop {
public:
    explicit Sop(unsigned num_vars = 0) : num_vars_(num_vars) {}
    Sop(unsigned num_vars, std::vector<Cube> cubes)
        : num_vars_(num_vars), cubes_(std::move(cubes)) {}

    unsigned num_vars() const { return num_vars_; }
    const std::vector<Cube>& cubes() const { return cubes_; }
    std::vector<Cube>& cubes() { return cubes_; }
    std::size_t num_cubes() const { return cubes_.size(); }
    bool empty() const { return cubes_.empty(); }

    void add_cube(const Cube& c) { cubes_.push_back(c); }

    /// Total number of literals across all cubes.
    std::size_t num_literals() const;

    /// Evaluate to a truth table over num_vars() variables.
    TruthTable to_tt() const;

    /// Count of cubes containing the given literal.
    std::size_t literal_occurrences(unsigned var, bool positive) const;

    /// Human-readable algebraic form, e.g. "a!b + c".
    std::string to_string() const;

private:
    unsigned num_vars_;
    std::vector<Cube> cubes_;
};

/// Truth table of a single cube over `num_vars` variables.
TruthTable cube_to_tt(const Cube& c, unsigned num_vars);

}  // namespace bg::tt
