#include "tt/factor.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "util/contracts.hpp"

namespace bg::tt {

bool FactorForm::is_constant() const {
    if (root_ < 0) {
        return true;
    }
    const auto k = nodes_[static_cast<std::size_t>(root_)].kind;
    return k == FactorNode::Kind::Const0 || k == FactorNode::Kind::Const1;
}

int FactorForm::add_const(bool one) {
    FactorNode n;
    n.kind = one ? FactorNode::Kind::Const1 : FactorNode::Kind::Const0;
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
}

int FactorForm::add_lit(unsigned var, bool negated) {
    BG_EXPECTS(var < num_vars_, "literal variable out of range");
    FactorNode n;
    n.kind = FactorNode::Kind::Lit;
    n.var = var;
    n.negated = negated;
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
}

int FactorForm::add_and(int left, int right) {
    const auto kind_of = [&](int i) {
        return nodes_[static_cast<std::size_t>(i)].kind;
    };
    if (kind_of(left) == FactorNode::Kind::Const0 ||
        kind_of(right) == FactorNode::Kind::Const0) {
        return add_const(false);
    }
    if (kind_of(left) == FactorNode::Kind::Const1) {
        return right;
    }
    if (kind_of(right) == FactorNode::Kind::Const1) {
        return left;
    }
    FactorNode n;
    n.kind = FactorNode::Kind::And;
    n.left = left;
    n.right = right;
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
}

int FactorForm::add_or(int left, int right) {
    const auto kind_of = [&](int i) {
        return nodes_[static_cast<std::size_t>(i)].kind;
    };
    if (kind_of(left) == FactorNode::Kind::Const1 ||
        kind_of(right) == FactorNode::Kind::Const1) {
        return add_const(true);
    }
    if (kind_of(left) == FactorNode::Kind::Const0) {
        return right;
    }
    if (kind_of(right) == FactorNode::Kind::Const0) {
        return left;
    }
    FactorNode n;
    n.kind = FactorNode::Kind::Or;
    n.left = left;
    n.right = right;
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
}

std::size_t FactorForm::literal_count() const {
    std::size_t n = 0;
    std::function<void(int)> walk = [&](int i) {
        if (i < 0) {
            return;
        }
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        if (node.kind == FactorNode::Kind::Lit) {
            ++n;
        } else if (node.kind == FactorNode::Kind::And ||
                   node.kind == FactorNode::Kind::Or) {
            walk(node.left);
            walk(node.right);
        }
    };
    walk(root_);
    return n;
}

std::size_t FactorForm::aig_node_count() const {
    std::size_t n = 0;
    std::function<void(int)> walk = [&](int i) {
        if (i < 0) {
            return;
        }
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        if (node.kind == FactorNode::Kind::And ||
            node.kind == FactorNode::Kind::Or) {
            ++n;
            walk(node.left);
            walk(node.right);
        }
    };
    walk(root_);
    return n;
}

std::size_t FactorForm::depth() const {
    std::function<std::size_t(int)> walk = [&](int i) -> std::size_t {
        if (i < 0) {
            return 0;
        }
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        if (node.kind == FactorNode::Kind::And ||
            node.kind == FactorNode::Kind::Or) {
            return 1 + std::max(walk(node.left), walk(node.right));
        }
        return 0;
    };
    return walk(root_);
}

TruthTable FactorForm::to_tt() const {
    std::function<TruthTable(int)> eval = [&](int i) -> TruthTable {
        BG_ASSERT(i >= 0, "evaluating an empty factored form");
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        switch (node.kind) {
            case FactorNode::Kind::Const0:
                return TruthTable::zeros(num_vars_);
            case FactorNode::Kind::Const1:
                return TruthTable::ones(num_vars_);
            case FactorNode::Kind::Lit: {
                auto t = TruthTable::nth_var(num_vars_, node.var);
                return node.negated ? ~t : t;
            }
            case FactorNode::Kind::And:
                return eval(node.left) & eval(node.right);
            case FactorNode::Kind::Or:
                return eval(node.left) | eval(node.right);
        }
        return TruthTable::zeros(num_vars_);
    };
    if (root_ < 0) {
        return TruthTable::zeros(num_vars_);
    }
    return eval(root_);
}

std::string FactorForm::to_string() const {
    const auto var_name = [](unsigned v) -> std::string {
        if (v < 26) {
            return std::string(1, static_cast<char>('a' + v));
        }
        return "x" + std::to_string(v);
    };
    std::function<std::string(int, bool)> render =
        [&](int i, bool parent_and) -> std::string {
        if (i < 0) {
            return "0";
        }
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        switch (node.kind) {
            case FactorNode::Kind::Const0:
                return "0";
            case FactorNode::Kind::Const1:
                return "1";
            case FactorNode::Kind::Lit:
                return (node.negated ? "!" : "") + var_name(node.var);
            case FactorNode::Kind::And:
                return render(node.left, true) + render(node.right, true);
            case FactorNode::Kind::Or: {
                const std::string body = render(node.left, false) + " + " +
                                         render(node.right, false);
                return parent_and ? "(" + body + ")" : body;
            }
        }
        return "?";
    };
    return render(root_, false);
}

namespace {

/// Balanced tree reduction of a list of node indices.
int reduce_balanced(FactorForm& ff, std::vector<int> items, bool is_and) {
    BG_ASSERT(!items.empty(), "cannot reduce an empty list");
    while (items.size() > 1) {
        std::vector<int> next;
        next.reserve((items.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
            next.push_back(is_and ? ff.add_and(items[i], items[i + 1])
                                  : ff.add_or(items[i], items[i + 1]));
        }
        if (items.size() % 2 == 1) {
            next.push_back(items.back());
        }
        items = std::move(next);
    }
    return items[0];
}

/// Build a balanced AND of a cube's literals.
int build_cube(FactorForm& ff, const Cube& cube, unsigned num_vars) {
    std::vector<int> lits;
    for (unsigned v = 0; v < num_vars; ++v) {
        if ((cube.pos >> v) & 1U) {
            lits.push_back(ff.add_lit(v, false));
        } else if ((cube.neg >> v) & 1U) {
            lits.push_back(ff.add_lit(v, true));
        }
    }
    if (lits.empty()) {
        return ff.add_const(true);
    }
    return reduce_balanced(ff, std::move(lits), /*is_and=*/true);
}

/// Most frequent literal across the cover; returns false if no literal
/// appears in two or more cubes (the cover is then literal-disjoint).
bool best_literal(const std::vector<Cube>& cubes, unsigned num_vars,
                  unsigned& var, bool& positive) {
    std::size_t best = 1;  // need at least 2 occurrences to divide
    bool found = false;
    for (unsigned v = 0; v < num_vars; ++v) {
        std::size_t pos_n = 0;
        std::size_t neg_n = 0;
        for (const auto& c : cubes) {
            pos_n += (c.pos >> v) & 1U;
            neg_n += (c.neg >> v) & 1U;
        }
        if (pos_n > best) {
            best = pos_n;
            var = v;
            positive = true;
            found = true;
        }
        if (neg_n > best) {
            best = neg_n;
            var = v;
            positive = false;
            found = true;
        }
    }
    return found;
}

int factor_rec(FactorForm& ff, std::vector<Cube> cubes, unsigned num_vars) {
    BG_ASSERT(!cubes.empty(), "factoring an empty cover");
    // Constant-1 short circuit: an empty cube absorbs everything.
    for (const auto& c : cubes) {
        if (c.num_literals() == 0) {
            return ff.add_const(true);
        }
    }
    if (cubes.size() == 1) {
        return build_cube(ff, cubes[0], num_vars);
    }

    unsigned var = 0;
    bool positive = true;
    if (!best_literal(cubes, num_vars, var, positive)) {
        // No sharable literal: plain balanced OR of cube ANDs.
        std::vector<int> terms;
        terms.reserve(cubes.size());
        for (const auto& c : cubes) {
            terms.push_back(build_cube(ff, c, num_vars));
        }
        return reduce_balanced(ff, std::move(terms), /*is_and=*/false);
    }

    // Weak division by the literal: F = lit * Q + R.
    const std::uint32_t bit = 1U << var;
    std::vector<Cube> quotient;
    std::vector<Cube> remainder;
    for (auto c : cubes) {
        const bool in_q = positive ? ((c.pos & bit) != 0)
                                   : ((c.neg & bit) != 0);
        if (in_q) {
            if (positive) {
                c.pos &= ~bit;
            } else {
                c.neg &= ~bit;
            }
            quotient.push_back(c);
        } else {
            remainder.push_back(c);
        }
    }
    BG_ASSERT(quotient.size() >= 2, "division must strip >= 2 cubes");

    const int lit = ff.add_lit(var, !positive);
    const int q = factor_rec(ff, std::move(quotient), num_vars);
    const int lq = ff.add_and(lit, q);
    if (remainder.empty()) {
        return lq;
    }
    const int r = factor_rec(ff, std::move(remainder), num_vars);
    return ff.add_or(lq, r);
}

}  // namespace

FactorForm factor(const Sop& sop) {
    FactorForm ff(sop.num_vars());
    if (sop.empty()) {
        ff.set_root(ff.add_const(false));
        return ff;
    }
    ff.set_root(factor_rec(ff, sop.cubes(), sop.num_vars()));
    BG_ENSURES(ff.to_tt() == sop.to_tt(),
               "factored form must preserve the cover's function");
    return ff;
}

}  // namespace bg::tt
