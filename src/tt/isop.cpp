#include "tt/isop.hpp"

#include "util/contracts.hpp"

namespace bg::tt {

namespace {

/// Recursive Minato–Morreale.  `on` must imply `on_dc`.  Returns the cover
/// and writes its truth table into `cover_tt` (saves recomputation).
Sop isop_rec(const TruthTable& on, const TruthTable& on_dc,
             TruthTable& cover_tt) {
    const unsigned nv = on.num_vars();
    if (on.is_const0()) {
        cover_tt = TruthTable::zeros(nv);
        return Sop(nv);
    }
    if (on_dc.is_const1()) {
        cover_tt = TruthTable::ones(nv);
        Sop s(nv);
        s.add_cube(Cube{});  // constant-1 cube
        return s;
    }

    // Split on the highest variable in the support of the bounds.
    const std::uint32_t sup = on.support_mask() | on_dc.support_mask();
    BG_ASSERT(sup != 0, "non-constant interval must have support");
    unsigned var = 31 - static_cast<unsigned>(__builtin_clz(sup));

    const TruthTable on0 = on.cofactor0(var);
    const TruthTable on1 = on.cofactor1(var);
    const TruthTable dc0 = on_dc.cofactor0(var);
    const TruthTable dc1 = on_dc.cofactor1(var);

    // Cubes that must carry the literal !var / var.
    TruthTable tt0(nv);
    TruthTable tt1(nv);
    Sop c0 = isop_rec(on0 & ~dc1, dc0, tt0);
    Sop c1 = isop_rec(on1 & ~dc0, dc1, tt1);

    // Remaining minterms, coverable without the split variable.
    const TruthTable on_new = (on0 & ~tt0) | (on1 & ~tt1);
    TruthTable tt2(nv);
    Sop c2 = isop_rec(on_new, dc0 & dc1, tt2);

    Sop result(nv);
    for (auto cube : c0.cubes()) {
        cube.neg |= 1U << var;
        result.add_cube(cube);
    }
    for (auto cube : c1.cubes()) {
        cube.pos |= 1U << var;
        result.add_cube(cube);
    }
    for (const auto& cube : c2.cubes()) {
        result.add_cube(cube);
    }

    const TruthTable xv = TruthTable::nth_var(nv, var);
    cover_tt = (~xv & tt0) | (xv & tt1) | tt2;
    BG_ASSERT(on.implies(cover_tt), "ISOP cover must include the onset");
    BG_ASSERT(cover_tt.implies(on_dc), "ISOP cover must stay within DC bound");
    return result;
}

}  // namespace

Sop isop(const TruthTable& on, const TruthTable& dc) {
    BG_EXPECTS(on.num_vars() == dc.num_vars(), "width mismatch");
    BG_EXPECTS(on.num_vars() <= 32, "ISOP limited to 32 variables");
    BG_EXPECTS((on & dc).is_const0(), "onset and DC-set must be disjoint");
    TruthTable cover_tt(on.num_vars());
    return isop_rec(on, on | dc, cover_tt);
}

Sop isop(const TruthTable& f) {
    return isop(f, TruthTable::zeros(f.num_vars()));
}

Sop isop_best_phase(const TruthTable& f, bool& complemented) {
    Sop pos = isop(f);
    Sop neg = isop(~f);
    // Compare by literal count, then cube count.
    const auto cost = [](const Sop& s) {
        return std::make_pair(s.num_literals(), s.num_cubes());
    };
    if (cost(neg) < cost(pos)) {
        complemented = true;
        return neg;
    }
    complemented = false;
    return pos;
}

}  // namespace bg::tt
