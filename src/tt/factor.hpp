#pragma once

/// \file factor.hpp
/// Algebraic factoring of cube covers into multi-level factored forms —
/// the algebra behind `refactor` (the paper's `rf`): the cut function is
/// collapsed, ISOP'd, factored here, and the factored form is rebuilt as an
/// AIG.  Uses literal-based weak division (the classic quick-factor family).

#include <cstdint>
#include <string>
#include <vector>

#include "tt/sop.hpp"
#include "tt/truth_table.hpp"

namespace bg::tt {

/// Node in a factored-form expression DAG (stored as a vector tree).
struct FactorNode {
    enum class Kind : std::uint8_t { Const0, Const1, Lit, And, Or };

    Kind kind = Kind::Const0;
    unsigned var = 0;      ///< for Kind::Lit
    bool negated = false;  ///< for Kind::Lit
    int left = -1;         ///< child index, for And/Or
    int right = -1;        ///< child index, for And/Or
};

/// A factored Boolean expression over `num_vars` input variables.
class FactorForm {
public:
    explicit FactorForm(unsigned num_vars = 0) : num_vars_(num_vars) {}

    unsigned num_vars() const { return num_vars_; }
    const std::vector<FactorNode>& nodes() const { return nodes_; }
    int root() const { return root_; }
    bool is_constant() const;

    int add_const(bool one);
    int add_lit(unsigned var, bool negated);
    /// Adds an And/Or node; folds constants and single-child cases.
    int add_and(int left, int right);
    int add_or(int left, int right);
    void set_root(int r) { root_ = r; }

    /// Number of literal leaves in the expression.
    std::size_t literal_count() const;
    /// Number of 2-input AND gates an AIG realization needs
    /// (And => 1, Or => 1 by DeMorgan, literals/constants are free).
    std::size_t aig_node_count() const;
    /// Depth in 2-input gates.
    std::size_t depth() const;

    /// Evaluate over truth tables (for verification).
    TruthTable to_tt() const;

    /// Algebraic rendering, e.g. "(a + !b)(c + d!e)".
    std::string to_string() const;

private:
    unsigned num_vars_;
    std::vector<FactorNode> nodes_;
    int root_ = -1;
};

/// Factor a cube cover into a multi-level form.  The result's truth table
/// equals sop.to_tt() (asserted internally).  Balanced AND/OR trees are
/// produced for cube interiors to keep depth low.
FactorForm factor(const Sop& sop);

}  // namespace bg::tt
