#pragma once

/// \file isop.hpp
/// Minato–Morreale irredundant sum-of-products extraction from truth
/// tables.  This is the entry point refactoring uses to turn a collapsed
/// cone function back into algebra, and the rewrite library uses it as one
/// of its structure candidates.

#include "tt/sop.hpp"
#include "tt/truth_table.hpp"

namespace bg::tt {

/// Compute an irredundant SOP cover of `on` with don't-cares allowed by
/// `dc` (i.e. the cover f satisfies on <= f <= on | dc).
/// Requires on & dc == 0 and at most 32 variables.
Sop isop(const TruthTable& on, const TruthTable& dc);

/// Irredundant SOP of exactly `f` (no don't-cares).
Sop isop(const TruthTable& f);

/// Convenience: pick the cheaper of covering f or ~f; returns the cover
/// and sets `complemented` accordingly (cover of ~f means the caller must
/// invert the result).
Sop isop_best_phase(const TruthTable& f, bool& complemented);

}  // namespace bg::tt
