#include "tt/npn.hpp"

#include <algorithm>
#include <unordered_set>

namespace bg::tt {

namespace {

constexpr std::array<std::array<std::uint8_t, 4>, 24> all_perms() {
    std::array<std::array<std::uint8_t, 4>, 24> out{};
    std::array<std::uint8_t, 4> p{0, 1, 2, 3};
    for (std::size_t i = 0; i < 24; ++i) {
        out[i] = p;
        std::next_permutation(p.begin(), p.end());
    }
    return out;
}

const auto& perms() {
    static const auto table = all_perms();
    return table;
}

}  // namespace

std::uint16_t npn_apply(std::uint16_t f, const NpnTransform& t) {
    std::uint16_t g = 0;
    for (unsigned m = 0; m < 16; ++m) {
        unsigned s = 0;
        for (unsigned i = 0; i < 4; ++i) {
            const unsigned bit = ((m >> t.perm[i]) & 1U) ^
                                 ((t.input_neg >> i) & 1U);
            s |= bit << i;
        }
        unsigned bit = (f >> s) & 1U;
        bit ^= t.output_neg ? 1U : 0U;
        g = static_cast<std::uint16_t>(g | (bit << m));
    }
    return g;
}

NpnTransform npn_invert(const NpnTransform& t) {
    NpnTransform inv;
    for (unsigned i = 0; i < 4; ++i) {
        inv.perm[t.perm[i]] = static_cast<std::uint8_t>(i);
    }
    // Input i of the forward transform reads x_{perm[i]} ^ neg_i; inverting
    // moves the phase bit to the permuted position.
    inv.input_neg = 0;
    for (unsigned i = 0; i < 4; ++i) {
        if ((t.input_neg >> i) & 1U) {
            inv.input_neg = static_cast<std::uint8_t>(
                inv.input_neg | (1U << t.perm[i]));
        }
    }
    inv.output_neg = t.output_neg;
    return inv;
}

NpnTransform npn_compose(const NpnTransform& a, const NpnTransform& b) {
    // npn_apply(f, a) gives g with g[m] = f[s_a(m)] ^ a.oc.
    // npn_apply(g, b) gives h with h[m] = g[s_b(m)] ^ b.oc
    //                              = f[s_a(s_b(m))] ^ a.oc ^ b.oc.
    // s_a(m): bit_i(s) = bit_{a.perm[i]}(m) ^ a.neg_i.
    // Composition: bit_i(s_a(s_b(m))) = bit_{a.perm[i]}(s_b(m)) ^ a.neg_i
    //   = bit_{b.perm[a.perm[i]]}(m) ^ b.neg_{a.perm[i]} ^ a.neg_i.
    NpnTransform c;
    for (unsigned i = 0; i < 4; ++i) {
        c.perm[i] = b.perm[a.perm[i]];
    }
    c.input_neg = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const unsigned neg = ((a.input_neg >> i) & 1U) ^
                             ((b.input_neg >> a.perm[i]) & 1U);
        c.input_neg = static_cast<std::uint8_t>(c.input_neg | (neg << i));
    }
    c.output_neg = a.output_neg != b.output_neg;
    return c;
}

NpnCanon npn_canonize(std::uint16_t f) {
    NpnCanon best;
    best.canon = 0xFFFF;
    bool first = true;
    for (const auto& perm : perms()) {
        for (unsigned neg = 0; neg < 16; ++neg) {
            for (unsigned oc = 0; oc < 2; ++oc) {
                NpnTransform t;
                t.perm = perm;
                t.input_neg = static_cast<std::uint8_t>(neg);
                t.output_neg = oc != 0;
                const std::uint16_t image = npn_apply(f, t);
                if (first || image < best.canon) {
                    best.canon = image;
                    best.to_canon = t;
                    first = false;
                }
            }
        }
    }
    return best;
}

unsigned npn_num_classes() {
    std::unordered_set<std::uint16_t> classes;
    for (unsigned f = 0; f <= 0xFFFF; ++f) {
        classes.insert(npn_canonize(static_cast<std::uint16_t>(f)).canon);
    }
    return static_cast<unsigned>(classes.size());
}

}  // namespace bg::tt
