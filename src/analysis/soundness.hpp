#pragma once

/// \file soundness.hpp
/// The footprint soundness auditor (see docs/static-analysis.md).
///
/// `opt::orchestrate_parallel` consumes a speculated check result only
/// when no later commit changed an aspect the check *declared* it read.
/// That guarantee is exactly as strong as the hand-placed `fp_touch`
/// declarations in the cut/opt layers — this module turns it into a
/// machine-checked property:
///
///  - `verify_read_soundness` compares a speculation's declared
///    `ReadFootprint` against the shadow set of reads the Aig accessors
///    actually observed (audit builds record them via BG_AUDIT_READ) and
///    fails fast with a (var, class, op) diagnostic on under-declaration.
///  - `WriteAudit` snapshots the externally observable mutable state of
///    the graph before a commit and proves afterwards that every state
///    change is covered by a `set_change_log` journal entry of the
///    matching class — the journal is what invalidates stale
///    speculations, so an unjournaled write is the write-side twin of an
///    undeclared read.
///
/// Everything here is build-mode independent (unit-testable everywhere);
/// only the accessor hooks that *feed* the shadow recorder are gated
/// behind BOOLGEBRA_AUDIT.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "aig/aig.hpp"
#include "aig/audit.hpp"
#include "aig/footprint.hpp"

namespace bg::analysis {

/// Human-readable Read-class name ("Struct" / "Ref" / "Fanout").
std::string_view read_class_name(aig::Read k);

/// Verify one speculation: every read the shadow recorder observed must
/// be declared in `declared` with the exact same (var, class).  Throws
/// ContractViolation naming the first undeclared read, the op and the
/// candidate root.  An overflowed declared footprint is vacuously sound
/// (the orchestrator treats it as always-stale and re-checks inline); a
/// shadow overflow or a PO-array read observed during speculation fails
/// outright.
void verify_read_soundness(const aig::ReadFootprint& declared,
                           const aig::audit::ShadowSet& actual,
                           aig::Var root, std::string_view op_name);

/// Write-completeness auditor: `capture` snapshots every mutable aspect
/// the read classes cover (fanins + dead flag, ref and PO-ref counts,
/// fanout lists, the PO array) through public accessors only; `verify`
/// diffs the snapshot against the post-commit graph and requires a
/// journal entry of the matching class for every changed aspect.
///
/// The cost is O(slots + fanout edges) per capture/verify pair, which is
/// why the orchestrator only engages it in audit builds.
class WriteAudit {
public:
    void capture(const aig::Aig& g);
    /// `journal` holds `fp_encode(var, class)` entries exactly as
    /// emitted between capture() and now by the attached change log.
    void verify(const aig::Aig& g, std::span<const aig::Var> journal,
                std::string_view context) const;

private:
    std::size_t slots_ = 0;
    std::vector<std::uint64_t> fanins_;  ///< fanin0 raw << 32 | fanin1 raw
    std::vector<std::uint8_t> dead_;
    std::vector<std::uint32_t> refs_;
    std::vector<std::uint32_t> po_refs_;
    std::vector<std::uint32_t> fanout_off_;  ///< slots_ + 1 offsets
    std::vector<aig::Var> fanout_data_;
    std::vector<aig::Lit> pos_;
};

}  // namespace bg::analysis
