#include "analysis/soundness.hpp"

#include <algorithm>
#include <string>

#include "util/contracts.hpp"

namespace bg::analysis {

using aig::Aig;
using aig::Lit;
using aig::Read;
using aig::Var;

std::string_view read_class_name(Read k) {
    switch (k) {
        case Read::Struct:
            return "Struct";
        case Read::Ref:
            return "Ref";
        case Read::Fanout:
            return "Fanout";
    }
    return "?";
}

void verify_read_soundness(const aig::ReadFootprint& declared,
                           const aig::audit::ShadowSet& actual,
                           Var root, std::string_view op_name) {
    if (declared.overflow) {
        return;  // never consumed: the orchestrator re-checks inline
    }
    const auto ctx = [&] {
        return " [op=" + std::string(op_name) +
               " root=" + std::to_string(root) + "]";
    };
    BG_ASSERT(!actual.overflow,
              "audit shadow set overflowed — raise ShadowSet::cap to audit "
              "this speculation" +
                  ctx());
    BG_ASSERT(!actual.po_read,
              "speculation read the PO array, which no footprint class can "
              "declare — such a check cannot be speculated soundly" +
                  ctx());
    std::vector<std::uint32_t> decl(declared.vars);
    std::sort(decl.begin(), decl.end());
    decl.erase(std::unique(decl.begin(), decl.end()), decl.end());
    for (const std::uint32_t e : actual.entries) {
        if (!std::binary_search(decl.begin(), decl.end(), e)) {
            const Var v = aig::fp_entry_var(e);
            const auto k = static_cast<Read>(aig::fp_entry_kind(e));
            BG_ASSERT(false,
                      "undeclared speculative read: var " + std::to_string(v) +
                          " class " + std::string(read_class_name(k)) +
                          " was read but never fp_touch-declared" + ctx());
        }
    }
}

void WriteAudit::capture(const Aig& g) {
    slots_ = g.num_slots();
    fanins_.resize(slots_);
    dead_.resize(slots_);
    refs_.resize(slots_);
    po_refs_.resize(slots_);
    fanout_off_.resize(slots_ + 1);
    fanout_data_.clear();
    for (Var v = 0; v < slots_; ++v) {
        fanins_[v] =
            (static_cast<std::uint64_t>(g.fanin0_ref(v).raw()) << 32) |
            g.fanin1_ref(v).raw();
        dead_[v] = g.is_dead(v) ? 1 : 0;
        refs_[v] = g.ref_count(v);
        po_refs_[v] = static_cast<std::uint32_t>(g.po_refs(v));
        fanout_off_[v] = static_cast<std::uint32_t>(fanout_data_.size());
        const auto list = g.fanouts(v);
        fanout_data_.insert(fanout_data_.end(), list.begin(), list.end());
    }
    fanout_off_[slots_] = static_cast<std::uint32_t>(fanout_data_.size());
    const auto pos = g.pos();
    pos_.assign(pos.begin(), pos.end());
}

void WriteAudit::verify(const Aig& g, std::span<const Var> journal,
                        std::string_view context) const {
    std::vector<std::uint32_t> j(journal.begin(), journal.end());
    std::sort(j.begin(), j.end());
    const auto journaled = [&](Var v, Read k) {
        return std::binary_search(j.begin(), j.end(), aig::fp_encode(v, k));
    };
    const auto require = [&](Var v, Read k, const char* what) {
        if (!journaled(v, k)) {
            BG_ASSERT(false,
                      "unjournaled mutation: " + std::string(what) +
                          " of var " + std::to_string(v) +
                          " changed with no " +
                          std::string(read_class_name(k)) +
                          "-class journal entry [" + std::string(context) +
                          "]");
        }
    };

    BG_ASSERT(g.num_slots() >= slots_,
              "node slots shrank between capture and verify [" +
                  std::string(context) + "]");
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (v >= slots_) {
            // Created since the snapshot: creation itself is a Struct
            // write, and any references / fanouts it accumulated are Ref /
            // Fanout writes in their own right.
            require(v, Read::Struct, "creation");
            if (g.ref_count(v) != 0) {
                require(v, Read::Ref, "reference count");
            }
            if (!g.fanouts(v).empty()) {
                require(v, Read::Fanout, "fanout list");
            }
            continue;
        }
        const std::uint64_t fan =
            (static_cast<std::uint64_t>(g.fanin0_ref(v).raw()) << 32) |
            g.fanin1_ref(v).raw();
        if (fan != fanins_[v] || (g.is_dead(v) ? 1 : 0) != dead_[v]) {
            require(v, Read::Struct, "structure (fanins / dead flag)");
        }
        if (g.ref_count(v) != refs_[v] ||
            static_cast<std::uint32_t>(g.po_refs(v)) != po_refs_[v]) {
            require(v, Read::Ref, "reference count");
        }
        // Exact-sequence comparison: even a pure reorder implies a
        // remove/append pair ran, each of which must have journaled.
        const auto list = g.fanouts(v);
        const auto old_begin = fanout_data_.begin() + fanout_off_[v];
        const auto old_end = fanout_data_.begin() + fanout_off_[v + 1];
        if (!std::equal(list.begin(), list.end(), old_begin, old_end)) {
            require(v, Read::Fanout, "fanout list");
        }
    }
    // PO rewiring manifests as Ref-class journal entries on both drivers
    // (replace() derefs the old driver and refs the new one).
    const auto pos = g.pos();
    BG_ASSERT(pos.size() >= pos_.size(),
              "PO count shrank between capture and verify [" +
                  std::string(context) + "]");
    for (std::size_t i = 0; i < pos.size(); ++i) {
        if (i >= pos_.size()) {
            require(aig::lit_var(pos[i]), Read::Ref, "new PO driver");
            continue;
        }
        if (pos[i] != pos_[i]) {
            require(aig::lit_var(pos_[i]), Read::Ref, "old PO driver");
            require(aig::lit_var(pos[i]), Read::Ref, "new PO driver");
        }
    }
}

}  // namespace bg::analysis
