#pragma once

/// \file cut_enum.hpp
/// K-feasible cut enumeration and cone-function computation.  Rewriting
/// consumes 4-feasible cuts; refactoring and resubstitution consume one
/// reconvergence-driven cut per node (ABC's Abc_NodeFindCut heuristic).

#include <unordered_map>  // bg-lint: allow(container): cone_functions API
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace bg::cut {

/// A cut of some root node: the sorted leaf variables plus the root's
/// function expressed over those leaves (leaf i = variable i).
struct Cut {
    std::vector<aig::Var> leaves;
    tt::TruthTable function;
};

/// Enumerate the k-feasible cuts of `root` (excluding the trivial cut
/// {root}) by leaf-expansion closure.  At most `max_cuts` cuts are
/// returned, discovered in BFS order (small cuts first).  Functions are
/// computed for every returned cut.
std::vector<Cut> enumerate_cuts(const aig::Aig& g, aig::Var root, unsigned k,
                                std::size_t max_cuts);

/// Grow one reconvergence-driven cut of `root` with at most `max_leaves`
/// leaves: repeatedly expand the leaf whose expansion adds the fewest new
/// leaves.  Returns an empty vector when the root cannot be expanded at
/// all (e.g. root is a PI).
std::vector<aig::Var> reconv_cut(const aig::Aig& g, aig::Var root,
                                 unsigned max_leaves);

/// Truth table of `root` over the given leaves (leaf i maps to variable
/// i).  Every path from root to a PI must cross a leaf; violations throw.
tt::TruthTable cone_function(const aig::Aig& g, aig::Var root,
                             std::span<const aig::Var> leaves);

/// Truth tables of every node in the cone of `root` bounded by `leaves`
/// (inclusive of leaves and root), over the leaf variables.  The map is
/// window-sized (tens of entries) and returned by value; a flat
/// epoch-stamped alternative would need num_slots-sized scratch per walk.
// bg-lint: allow(container): window-sized value-returned map
std::unordered_map<aig::Var, tt::TruthTable> cone_functions(
    const aig::Aig& g, aig::Var root, std::span<const aig::Var> leaves);

}  // namespace bg::cut
