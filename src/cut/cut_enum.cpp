#include "cut/cut_enum.hpp"

#include <algorithm>
#include <deque>

#include "aig/footprint.hpp"
#include "util/contracts.hpp"

namespace bg::cut {

using aig::Aig;
using aig::Lit;
using aig::Var;
using tt::TruthTable;

std::vector<Cut> enumerate_cuts(const Aig& g, Var root, unsigned k,
                                std::size_t max_cuts) {
    BG_EXPECTS(k >= 2 && k <= 8, "cut size must be in [2, 8]");
    BG_EXPECTS(g.is_and(root), "cuts are enumerated for AND nodes");

    aig::fp_touch(root, aig::Read::Struct);
    std::vector<Cut> out;
    // Seen leaf-sets: the expansion budget keeps this small (a few
    // hundred short sorted vectors), so a flat vector with linear lookup
    // replaces the old node-based std::set on this per-candidate path.
    std::vector<std::vector<Var>> seen;
    std::deque<std::vector<Var>> frontier;
    frontier.push_back({root});
    seen.push_back({root});

    // Bound the total expansion work independently of max_cuts.
    std::size_t budget = std::max<std::size_t>(max_cuts * 8, 256);

    while (!frontier.empty() && out.size() < max_cuts && budget-- > 0) {
        const auto cut = frontier.front();
        frontier.pop_front();
        // Try expanding each AND leaf.
        for (std::size_t i = 0; i < cut.size(); ++i) {
            const Var leaf = cut[i];
            aig::fp_touch(leaf, aig::Read::Struct);
            if (!g.is_and(leaf)) {
                continue;
            }
            std::vector<Var> next;
            next.reserve(cut.size() + 1);
            for (std::size_t j = 0; j < cut.size(); ++j) {
                if (j != i) {
                    next.push_back(cut[j]);
                }
            }
            for (const aig::NodeRef f : g.fanin_refs(leaf)) {
                const Var u = f.index();
                aig::fp_touch(u, aig::Read::Struct);
                if (u != 0 &&
                    std::find(next.begin(), next.end(), u) == next.end()) {
                    next.push_back(u);
                }
            }
            if (next.size() > k) {
                continue;
            }
            std::sort(next.begin(), next.end());
            if (std::find(seen.begin(), seen.end(), next) != seen.end()) {
                continue;
            }
            seen.push_back(next);
            frontier.push_back(next);
            // The trivial cut {root} is skipped; everything else is real.
            if (!(next.size() == 1 && next[0] == root)) {
                Cut c;
                c.leaves = next;
                c.function = cone_function(g, root, c.leaves);
                out.push_back(std::move(c));
                if (out.size() >= max_cuts) {
                    break;
                }
            }
        }
    }
    return out;
}

std::vector<Var> reconv_cut(const Aig& g, Var root, unsigned max_leaves) {
    BG_EXPECTS(max_leaves >= 2, "a cut needs at least two leaves");
    aig::fp_touch(root, aig::Read::Struct);
    if (!g.is_and(root)) {
        return {};
    }
    std::vector<Var> leaves{root};

    const auto expansion_cost = [&](Var leaf) {
        aig::fp_touch(leaf, aig::Read::Struct);
        int fresh = 0;
        for (const aig::NodeRef f : g.fanin_refs(leaf)) {
            const Var u = f.index();
            aig::fp_touch(u, aig::Read::Struct);
            if (u != 0 &&
                std::find(leaves.begin(), leaves.end(), u) == leaves.end()) {
                ++fresh;
            }
        }
        return fresh - 1;  // removing the leaf itself
    };

    while (true) {
        Var best = aig::null_var;
        int best_cost = 1000;
        for (const Var leaf : leaves) {
            if (!g.is_and(leaf)) {
                continue;
            }
            const int cost = expansion_cost(leaf);
            if (cost < best_cost) {
                best_cost = cost;
                best = leaf;
            }
        }
        if (best == aig::null_var) {
            break;  // all leaves are PIs
        }
        if (leaves.size() + static_cast<std::size_t>(
                                std::max(best_cost, 0)) > max_leaves &&
            best_cost > 0) {
            break;
        }
        // Expand `best`.
        leaves.erase(std::find(leaves.begin(), leaves.end(), best));
        for (const aig::NodeRef f : g.fanin_refs(best)) {
            const Var u = f.index();
            aig::fp_touch(u, aig::Read::Struct);
            if (u != 0 &&
                std::find(leaves.begin(), leaves.end(), u) == leaves.end()) {
                leaves.push_back(u);
            }
        }
        BG_ASSERT(leaves.size() <= max_leaves, "cut expansion overflow");
    }
    if (leaves.size() == 1 && leaves[0] == root) {
        return {};
    }
    std::sort(leaves.begin(), leaves.end());
    return leaves;
}

// bg-lint: allow(container): window-sized value-returned map (see header)
std::unordered_map<Var, TruthTable> cone_functions(
    const Aig& g, Var root, std::span<const Var> leaves) {
    BG_EXPECTS(leaves.size() <= 16, "cone function capped at 16 leaves");
    const unsigned nv = static_cast<unsigned>(leaves.size());
    // bg-lint: allow(container): window-sized value-returned map
    std::unordered_map<Var, TruthTable> fn;
    fn.reserve(leaves.size() * 4);
    for (unsigned i = 0; i < nv; ++i) {
        fn.emplace(leaves[i], TruthTable::nth_var(nv, i));
    }
    // Iterative post-order evaluation from the root.
    aig::fp_touch(root, aig::Read::Struct);
    std::vector<Var> stack{root};
    while (!stack.empty()) {
        const Var v = stack.back();
        if (fn.contains(v)) {
            stack.pop_back();
            continue;
        }
        BG_ASSERT(g.is_and(v),
                  "cone walk escaped the cut (leaves do not form a cut)");
        const auto [f0, f1] = g.fanin_refs(v);
        aig::fp_touch(v, aig::Read::Struct);
        const Var u0 = f0.index();
        const Var u1 = f1.index();
        aig::fp_touch(u0, aig::Read::Struct);
        aig::fp_touch(u1, aig::Read::Struct);
        const bool need0 = u0 != 0 && !fn.contains(u0);
        const bool need1 = u1 != 0 && !fn.contains(u1);
        if (need0) {
            stack.push_back(u0);
        }
        if (need1) {
            stack.push_back(u1);
        }
        if (need0 || need1) {
            continue;
        }
        stack.pop_back();
        const auto value_of = [&](aig::NodeRef r) {
            const Var u = r.index();
            TruthTable t =
                u == 0 ? TruthTable::zeros(nv) : fn.at(u);
            return r.complemented() ? ~t : t;
        };
        fn.emplace(v, value_of(f0) & value_of(f1));
    }
    return fn;
}

TruthTable cone_function(const Aig& g, Var root,
                         std::span<const Var> leaves) {
    return cone_functions(g, root, leaves).at(root);
}

}  // namespace bg::cut
