#include "util/progress.hpp"

#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/contracts.hpp"

namespace bg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    BG_EXPECTS(cells.size() == headers_.size(),
               "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string TablePrinter::str() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    emit(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        rule.emplace_back(widths[c], '-');
    }
    emit(rule);
    for (const auto& row : rows_) {
        emit(row);
    }
    return os.str();
}

void TablePrinter::print() const {
    std::fputs(str().c_str(), stdout);
}

bool full_scale_requested() {
    const char* env = std::getenv("BOOLGEBRA_FULL");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
}

bool full_scale_requested(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            return true;
        }
    }
    return full_scale_requested();
}

}  // namespace bg
