#pragma once

/// \file parallel.hpp
/// Deterministic fork-join parallelism: parallel_for runs f(i) for
/// i in [0, n) across a bounded set of worker threads.  Results must be
/// written to pre-sized per-index slots so the output is independent of
/// scheduling; all BoolGebra uses follow that pattern (sample evaluation,
/// per-node feature checks).

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace bg {

/// Number of workers to use by default (hardware concurrency, at least 1).
std::size_t default_worker_count();

/// Run f(i) for every i in [0, n), using up to `workers` threads
/// (0 = default_worker_count()).  f must be safe to call concurrently for
/// distinct i.  Exceptions thrown by f terminate the process (workers are
/// plain threads); keep f noexcept in spirit.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& f, std::size_t workers = 0) {
    if (n == 0) {
        return;
    }
    if (workers == 0) {
        workers = default_worker_count();
    }
    workers = std::min(workers, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            f(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) {
                    return;
                }
                f(i);
            }
        });
    }
    for (auto& t : pool) {
        t.join();
    }
}

}  // namespace bg
