#pragma once

/// \file parallel.hpp
/// Deterministic fork-join parallelism.
///
///  * parallel_for runs f(i) for i in [0, n) across a bounded set of
///    freshly-spawned worker threads — convenient for one-shot loops.
///  * ThreadPool keeps a persistent set of workers alive across many
///    submissions, avoiding per-call thread spawn/join cost on hot paths
///    (the FlowEngine runs whole design batches on one pool).
///
/// Results must be written to pre-sized per-index slots so the output is
/// independent of scheduling; all BoolGebra uses follow that pattern
/// (sample evaluation, per-node feature checks, per-design flows).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bg {

/// Number of workers to use by default (hardware concurrency, at least 1).
std::size_t default_worker_count();

/// Run f(i) for every i in [0, n), using up to `workers` threads
/// (0 = default_worker_count()).  f must be safe to call concurrently for
/// distinct i.  Exceptions thrown by f terminate the process (workers are
/// plain threads); keep f noexcept in spirit.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& f, std::size_t workers = 0) {
    if (n == 0) {
        return;
    }
    if (workers == 0) {
        workers = default_worker_count();
    }
    workers = std::min(workers, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            f(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) {
                    return;
                }
                f(i);
            }
        });
    }
    for (auto& t : pool) {
        t.join();
    }
}

/// A persistent worker pool.  Threads are spawned once and reused across
/// submissions; destruction drains the queue and joins the workers.
///
/// for_each() is the fork-join primitive: the *calling* thread always
/// participates in draining the index range, so nesting a for_each inside
/// a pool job (e.g. per-sample loops inside a per-design flow job) makes
/// progress even when every worker is busy — helper jobs that arrive late
/// simply find the range exhausted.
class ThreadPool {
public:
    /// `workers` = number of pool threads (0 = default_worker_count()).
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Enqueue an arbitrary job.  The future reports completion and
    /// re-throws any exception the job raised.
    std::future<void> submit(std::function<void()> job);

    /// Deterministic fork-join: f(i) for every i in [0, n) exactly once.
    /// Safe to call concurrently from several threads and to nest inside
    /// pool jobs: the caller participates in draining the range, and it
    /// waits for *iterations* to complete, never for the helper jobs
    /// themselves — a helper that is still queued when the range is
    /// exhausted runs as a no-op whenever a worker gets to it.  f must be
    /// safe to call concurrently for distinct i.  If f throws, remaining
    /// iterations are skipped and the first exception is rethrown on the
    /// calling thread once every claimed iteration has finished (the
    /// caller never unwinds while helpers still reference f).
    template <typename Fn>
    void for_each(std::size_t n, Fn&& f) {
        if (n == 0) {
            return;
        }
        if (n == 1 || threads_.empty()) {
            for (std::size_t i = 0; i < n; ++i) {
                f(i);
            }
            return;
        }
        struct State {
            std::atomic<std::size_t> next{0};
            std::atomic<std::size_t> done{0};
            std::atomic<bool> failed{false};
            std::mutex mutex;
            std::condition_variable all_done;
            std::exception_ptr error;  // first failure, guarded by mutex
        };
        auto st = std::make_shared<State>();
        // Stragglers outlive this call, so the lambda may hold a dangling
        // &f once every iteration is done — by then i >= n on every fetch
        // and f is never touched again.
        const auto drain = [st, n, &f] {
            while (true) {
                const std::size_t i =
                    st->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) {
                    return;
                }
                if (!st->failed.load(std::memory_order_relaxed)) {
                    try {
                        f(i);
                    } catch (...) {
                        st->failed.store(true, std::memory_order_relaxed);
                        const std::lock_guard<std::mutex> lock(st->mutex);
                        if (st->error == nullptr) {
                            st->error = std::current_exception();
                        }
                    }
                }
                if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                    n) {
                    const std::lock_guard<std::mutex> lock(st->mutex);
                    st->all_done.notify_all();
                }
            }
        };
        const std::size_t helpers = std::min(threads_.size(), n - 1);
        for (std::size_t h = 0; h < helpers; ++h) {
            (void)submit(drain);
        }
        drain();  // caller thread works too
        std::unique_lock<std::mutex> lock(st->mutex);
        st->all_done.wait(lock, [&] {
            return st->done.load(std::memory_order_acquire) == n;
        });
        if (st->error != nullptr) {
            std::rethrow_exception(st->error);
        }
    }

private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace bg
