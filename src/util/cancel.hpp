#pragma once

/// \file cancel.hpp
/// Cooperative cancellation shared by the optimization passes, the flow
/// engine and the serving stack.
///
/// A CancelToken carries two independent stop signals:
///  * an explicit flag (`request_cancel`), set by a client Cancel frame,
///    a dropped connection, or `FlowService::stop_now`;
///  * an optional deadline against `std::chrono::steady_clock`, armed by
///    `SubmitOptions::timeout_seconds`.
///
/// Both are plain atomics so workers may poll from any thread without a
/// lock.  Long-running loops (orchestrate node walks, run_flow stage
/// boundaries, SAT conflict loops) call `throw_if_stopped`, which raises
/// CancelledError; the serving layer maps the exception's reason onto a
/// definite JobStatus.  Polling is strictly observational: a null token
/// (the default everywhere) compiles down to a pointer test, keeping
/// cancel-free runs bit-identical to the pre-cancellation code paths.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bg {

/// Why a cancelled computation stopped.
enum class CancelReason : std::uint8_t {
    Cancelled = 0,  ///< explicit request_cancel()
    TimedOut = 1,   ///< deadline expired
};

/// Thrown from cancel points; carries the reason so the serving layer can
/// report Cancelled vs TimedOut without string matching.
class CancelledError : public std::runtime_error {
public:
    CancelledError(CancelReason reason, const std::string& where)
        : std::runtime_error(
              (reason == CancelReason::TimedOut ? "timed out in "
                                                : "cancelled in ") +
              where),
          reason_(reason) {}

    CancelReason reason() const { return reason_; }

private:
    CancelReason reason_;
};

class CancelToken {
public:
    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    void request_cancel() noexcept {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /// Arm (or re-arm) the deadline `seconds` from now; non-positive
    /// values disarm it.
    void set_deadline_after(double seconds) noexcept {
        if (seconds <= 0.0) {
            deadline_ns_.store(0, std::memory_order_relaxed);
            return;
        }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const auto delta = std::chrono::nanoseconds(
            static_cast<std::int64_t>(seconds * 1e9));
        deadline_ns_.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                    .count() +
                delta.count(),
            std::memory_order_relaxed);
    }

    bool cancel_requested() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }

    bool deadline_expired() const noexcept {
        const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
        if (d == 0) {
            return false;
        }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        return std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                   .count() >= d;
    }

    bool should_stop() const noexcept {
        return cancel_requested() || deadline_expired();
    }

    /// The reason a stopped token stopped; explicit cancellation wins
    /// when both signals fired.
    CancelReason stop_reason() const noexcept {
        return cancel_requested() ? CancelReason::Cancelled
                                  : CancelReason::TimedOut;
    }

    /// Cancel point: raises CancelledError when either signal fired.
    void throw_if_stopped(const char* where) const {
        if (cancel_requested()) {
            throw CancelledError(CancelReason::Cancelled, where);
        }
        if (deadline_expired()) {
            throw CancelledError(CancelReason::TimedOut, where);
        }
    }

private:
    std::atomic<bool> cancelled_{false};
    /// steady_clock deadline in ns since epoch; 0 = disarmed.
    std::atomic<std::int64_t> deadline_ns_{0};
};

/// Null-safe cancel point for the common `const CancelToken*` plumbing.
inline void poll_cancel(const CancelToken* token, const char* where) {
    if (token != nullptr) {
        token->throw_if_stopped(where);
    }
}

}  // namespace bg
