#pragma once

/// \file progress.hpp
/// Small console reporting helpers shared by examples and bench harnesses:
/// aligned table printing and elapsed-time measurement.

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace bg {

/// Wall-clock stopwatch.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    /// Seconds since construction / last reset.
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Fixed-column ASCII table builder for paper-style result tables.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Render with a header rule, e.g.:
    ///   Design  rewrite  resub
    ///   ------  -------  -----
    ///   b07     0.981    0.975
    std::string str() const;

    /// Render and write to stdout.
    void print() const;

    static std::string fmt(double v, int precision = 3);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// True when the environment requests paper-scale experiment parameters
/// (BOOLGEBRA_FULL=1) rather than the quick defaults.
bool full_scale_requested();

/// True when `--full` appears among the CLI args or BOOLGEBRA_FULL=1.
bool full_scale_requested(int argc, char** argv);

}  // namespace bg
