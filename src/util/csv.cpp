#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bg {

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            *os_ << ',';
        }
        *os_ << csv_escape(cells[i]);
    }
    *os_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells) {
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (const double v : cells) {
        std::ostringstream ss;
        ss.precision(17);
        ss << v;
        out.push_back(ss.str());
    }
    write_row(out);
}

namespace {

std::vector<std::vector<std::string>> parse_rows(const std::string& text) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool cell_started = false;

    const auto flush_cell = [&] {
        row.push_back(cell);
        cell.clear();
        cell_started = false;
    };
    const auto flush_row = [&] {
        flush_cell();
        // Skip rows that are completely empty (e.g. trailing newline).
        if (!(row.size() == 1 && row[0].empty())) {
            rows.push_back(row);
        }
        row.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        switch (c) {
            case '"':
                in_quotes = true;
                cell_started = true;
                break;
            case ',':
                flush_cell();
                break;
            case '\r':
                break;  // handled with the following \n (or ignored)
            case '\n':
                flush_row();
                break;
            default:
                cell += c;
                cell_started = true;
                break;
        }
    }
    if (cell_started || !cell.empty() || !row.empty()) {
        flush_row();
    }
    return rows;
}

}  // namespace

CsvTable parse_csv(const std::string& text, bool has_header) {
    CsvTable table;
    auto rows = parse_rows(text);
    if (has_header && !rows.empty()) {
        table.header = std::move(rows.front());
        rows.erase(rows.begin());
    }
    table.rows = std::move(rows);
    return table;
}

CsvTable load_csv(const std::filesystem::path& path, bool has_header) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open CSV file: " + path.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_csv(ss.str(), has_header);
}

void save_csv(const std::filesystem::path& path, const CsvTable& table) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("cannot write CSV file: " + path.string());
    }
    CsvWriter w(out);
    if (!table.header.empty()) {
        w.write_row(table.header);
    }
    for (const auto& row : table.rows) {
        w.write_row(row);
    }
}

}  // namespace bg
