#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.  Every stochastic
/// component in BoolGebra (sampling, circuit generation, weight init,
/// dropout) draws from an explicitly seeded bg::Rng so experiments are
/// reproducible run-to-run and machine-to-machine.

#include <cstdint>
#include <vector>

namespace bg {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded through splitmix64 so any 64-bit seed gives a good state.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed);

    /// Uniform 64-bit word.
    std::uint64_t next_u64();

    // UniformRandomBitGenerator interface (usable with <random> adaptors).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next_u64(); }

    /// Uniform integer in [0, bound), bound > 0.  Uses Lemire reduction.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform float in [0, 1).
    float next_float() { return static_cast<float>(next_double()); }

    /// Bernoulli(p).
    bool next_bool(double p = 0.5) { return next_double() < p; }

    /// Standard normal via Box-Muller (cached second value).
    double next_gaussian();

    /// Fork an independent stream (for per-thread / per-design use).
    Rng split();

    /// Fisher-Yates shuffle of a vector.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// k distinct indices from [0, n), k <= n (partial Fisher-Yates).
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

private:
    std::uint64_t s_[4]{};
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

}  // namespace bg
