#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace bg {

double mean(std::span<const double> values) {
    if (values.empty()) {
        return 0.0;
    }
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
    if (values.size() < 2) {
        return 0.0;
    }
    const double m = mean(values);
    double acc = 0.0;
    for (const double v : values) {
        acc += (v - m) * (v - m);
    }
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double percentile(std::span<const double> values, double q) {
    BG_EXPECTS(q >= 0.0 && q <= 1.0, "percentile q must lie in [0,1]");
    if (values.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) {
        return s;
    }
    s.mean = mean(values);
    s.stddev = stddev(values);
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    s.min = *mn;
    s.max = *mx;
    s.median = percentile(values, 0.5);
    s.p10 = percentile(values, 0.1);
    s.p90 = percentile(values, 0.9);
    return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
    BG_EXPECTS(x.size() == y.size(), "pearson requires equal-length samples");
    const std::size_t n = x.size();
    if (n < 2) {
        return 0.0;
    }
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) {
        return 0.0;
    }
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> values) {
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a] < values[b];
    });
    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
            ++j;
        }
        // Average rank over the tie group [i, j].
        const double avg_rank = (static_cast<double>(i) +
                                 static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) {
            out[order[k]] = avg_rank;
        }
        i = j + 1;
    }
    return out;
}

double spearman(std::span<const double> x, std::span<const double> y) {
    BG_EXPECTS(x.size() == y.size(), "spearman requires equal-length samples");
    const auto rx = ranks(x);
    const auto ry = ranks(y);
    return pearson(rx, ry);
}

double mse(std::span<const double> pred, std::span<const double> truth) {
    BG_EXPECTS(pred.size() == truth.size(), "mse requires equal lengths");
    if (pred.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        const double d = pred[i] - truth[i];
        acc += d * d;
    }
    return acc / static_cast<double>(pred.size());
}

double mae(std::span<const double> pred, std::span<const double> truth) {
    BG_EXPECTS(pred.size() == truth.size(), "mae requires equal lengths");
    if (pred.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        acc += std::abs(pred[i] - truth[i]);
    }
    return acc / static_cast<double>(pred.size());
}

Histogram histogram(std::span<const double> values, std::size_t bins,
                    double lo, double hi) {
    BG_EXPECTS(bins > 0, "histogram needs at least one bin");
    BG_EXPECTS(hi >= lo, "histogram range must be ordered");
    Histogram h;
    h.lo = lo;
    h.hi = hi;
    h.counts.assign(bins, 0);
    const double width = (hi > lo) ? (hi - lo) : 1.0;
    for (const double v : values) {
        double t = (v - lo) / width;
        t = std::clamp(t, 0.0, 1.0);
        auto idx = static_cast<std::size_t>(t * static_cast<double>(bins));
        if (idx == bins) {
            idx = bins - 1;
        }
        ++h.counts[idx];
    }
    return h;
}

Histogram histogram(std::span<const double> values, std::size_t bins) {
    if (values.empty()) {
        return histogram(values, bins, 0.0, 1.0);
    }
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    return histogram(values, bins, *mn, *mx);
}

std::vector<double> Histogram::densities() const {
    std::vector<double> out(counts.size(), 0.0);
    const auto total = std::accumulate(counts.begin(), counts.end(),
                                       std::size_t{0});
    if (total == 0) {
        return out;
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
        out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
    }
    return out;
}

std::string sparkline(const Histogram& h) {
    static const char* levels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
    const auto peak = h.counts.empty()
                          ? std::size_t{0}
                          : *std::max_element(h.counts.begin(), h.counts.end());
    std::string out;
    for (const std::size_t c : h.counts) {
        if (peak == 0) {
            out += levels[0];
            continue;
        }
        const auto idx = (c * 8 + peak - 1) / peak;  // ceil to 0..8
        out += levels[std::min<std::size_t>(idx, 8)];
    }
    return out;
}

}  // namespace bg
