#pragma once

/// \file csv.hpp
/// Minimal CSV reading/writing.  The paper stores the per-node manipulation
/// decision vector D in CSV; datasets and experiment outputs use the same
/// format so results can be inspected with standard tooling.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace bg {

/// A parsed CSV table: optional header row plus string cells.
struct CsvTable {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/// Incremental CSV writer with RFC-4180-style quoting.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& os) : os_(&os) {}

    void write_row(const std::vector<std::string>& cells);

    /// Convenience: format doubles with full round-trip precision.
    void write_row_numeric(const std::vector<double>& cells);

private:
    std::ostream* os_;
};

/// Parse CSV text. If `has_header` the first row becomes `header`.
/// Handles quoted cells, embedded commas/quotes and both \n and \r\n.
CsvTable parse_csv(const std::string& text, bool has_header);

/// Load a CSV file; throws std::runtime_error if the file cannot be read.
CsvTable load_csv(const std::filesystem::path& path, bool has_header);

/// Write a whole table to a file (creates parent directories).
void save_csv(const std::filesystem::path& path, const CsvTable& table);

/// Escape one cell per RFC 4180 (quote iff it contains , " or newline).
std::string csv_escape(const std::string& cell);

}  // namespace bg
