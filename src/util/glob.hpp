#pragma once

/// \file glob.hpp
/// Shell-style glob matching ('*' = any run including empty, '?' = any
/// single character, everything else literal) — the pattern language used
/// by both the benchmark registry (core::expand_registry_pattern) and
/// file-backed design specs (circuits::resolve_design_spec).

#include <string>

namespace bg {

inline bool glob_match(const std::string& pattern, const std::string& text) {
    // Iterative '*'/'?' matcher with single-star backtracking.
    const char* pat = pattern.c_str();
    const char* str = text.c_str();
    const char* star = nullptr;
    const char* resume = nullptr;
    while (*str != '\0') {
        if (*pat == *str || *pat == '?') {
            ++pat;
            ++str;
        } else if (*pat == '*') {
            star = pat++;
            resume = str;
        } else if (star != nullptr) {
            pat = star + 1;
            str = ++resume;
        } else {
            return false;
        }
    }
    while (*pat == '*') {
        ++pat;
    }
    return *pat == '\0';
}

/// True when the string contains glob metacharacters.
inline bool has_glob_chars(const std::string& s) {
    return s.find_first_of("*?") != std::string::npos;
}

}  // namespace bg
