#include "util/parallel.hpp"

namespace bg {

std::size_t default_worker_count() {
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

}  // namespace bg
