#include "util/parallel.hpp"

namespace bg {

std::size_t default_worker_count() {
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) {
        workers = default_worker_count();
    }
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
        t.join();
    }
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
    std::packaged_task<void()> task(std::move(job));
    auto fut = task.get_future();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void ThreadPool::worker_loop() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

}  // namespace bg
