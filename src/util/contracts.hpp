#pragma once

/// \file contracts.hpp
/// Lightweight precondition / invariant checking in the spirit of the
/// C++ Core Guidelines' Expects()/Ensures().  Violations throw
/// bg::ContractViolation so they are testable and never silently corrupt
/// a Boolean network.

#include <stdexcept>
#include <string>

namespace bg {

/// Thrown when a BG_ASSERT / BG_EXPECTS / BG_ENSURES condition fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* cond,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace bg

/// Check an invariant; active in all build types (Boolean-network corruption
/// is never acceptable, and the checks are cheap).
#define BG_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bg::detail::contract_fail("assertion", #cond, __FILE__,        \
                                        __LINE__, (msg));                    \
        }                                                                    \
    } while (false)

/// Precondition on a public API argument.
#define BG_EXPECTS(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bg::detail::contract_fail("precondition", #cond, __FILE__,     \
                                        __LINE__, (msg));                    \
        }                                                                    \
    } while (false)

/// Postcondition check.
#define BG_ENSURES(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bg::detail::contract_fail("postcondition", #cond, __FILE__,    \
                                        __LINE__, (msg));                    \
        }                                                                    \
    } while (false)
