#pragma once

/// \file stats.hpp
/// Descriptive statistics and correlation measures used by the experiment
/// harnesses (Fig 2 densities, Fig 5/6 scatter correlations, Table I means).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bg {

/// Summary of a sample of real values.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p10 = 0.0;  ///< 10th percentile
    double p90 = 0.0;  ///< 90th percentile
};

/// Compute a full summary of `values` (empty input yields a zero Summary).
Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

/// Linear interpolation percentile, q in [0, 1].
double percentile(std::span<const double> values, double q);

/// Pearson linear correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
double spearman(std::span<const double> x, std::span<const double> y);

/// Mean squared error between predictions and targets.
double mse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error.
double mae(std::span<const double> pred, std::span<const double> truth);

/// Equal-width histogram over [lo, hi] with `bins` buckets.
struct Histogram {
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::size_t> counts;

    /// Fraction of samples per bin (empty histogram => empty vector).
    std::vector<double> densities() const;
};

Histogram histogram(std::span<const double> values, std::size_t bins);
Histogram histogram(std::span<const double> values, std::size_t bins,
                    double lo, double hi);

/// Render a one-line ASCII sparkline of bin densities, e.g. "▂▃▆█▅▂".
std::string sparkline(const Histogram& h);

/// Fractional ranks (average over ties), values unchanged.
std::vector<double> ranks(std::span<const double> values);

}  // namespace bg
