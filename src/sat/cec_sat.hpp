#pragma once

/// \file cec_sat.hpp
/// SAT-backed combinational equivalence checking: a definitive verdict
/// for designs whose PI count is beyond exhaustive simulation.  A SAT
/// counterexample is re-validated by simulation before NotEquivalent is
/// reported, so a solver bug can never produce a false rejection.

#include "aig/cec.hpp"
#include "sat/cnf.hpp"

namespace bg::sat {

struct SatCecOptions {
    /// Conflict budget before falling back to ProbablyEquivalent
    /// (< 0 = unlimited).
    std::int64_t conflict_budget = 200000;
};

/// Proven verdicts for equivalence/inequivalence; ProbablyEquivalent only
/// when the conflict budget runs out.
aig::CecVerdict check_equivalence_sat(const aig::Aig& a, const aig::Aig& b,
                                      const SatCecOptions& opts = {});

}  // namespace bg::sat
