#pragma once

/// \file cec_sat.hpp
/// SAT-backed combinational equivalence checking: a definitive verdict
/// for designs whose PI count is beyond exhaustive simulation.
///
/// The core is *incremental*: one solver instance holds the shared-input
/// miter, and the per-output XOR selectors are discharged one by one
/// under assumptions, so learned clauses from output i prune the search
/// for output i+1 (what makes multi-output miters cheap).  Every SAT
/// counterexample is re-validated by simulating it against *all* output
/// pairs before NotEquivalent is reported — validation doubles as
/// counterexample reuse (a pattern found for output i refutes via any
/// output it distinguishes), and a solver bug can never produce a false
/// rejection: a counterexample that fails simulation degrades the verdict
/// to ProbablyEquivalent (after a bounded re-solve with that input
/// pattern blocked), it never throws.

#include <atomic>
#include <vector>

#include "aig/cec.hpp"
#include "sat/cnf.hpp"

namespace bg::sat {

struct SatCecOptions {
    /// Lifetime conflict budget for the whole check, shared by every
    /// per-output solve on the incremental instance; falls back to
    /// ProbablyEquivalent when exhausted (< 0 = unlimited).
    std::int64_t conflict_budget = 200000;
    /// Bounded re-solves after a spurious (simulation-refuted)
    /// counterexample: the offending input pattern — proven non-differing
    /// by simulation — is blocked and the output re-solved at most this
    /// many times before the verdict degrades to ProbablyEquivalent.
    int max_spurious_retries = 1;
    /// Cooperative cancellation, polled inside the solver; a set flag
    /// degrades the verdict to ProbablyEquivalent.  Must outlive the call.
    const std::atomic<bool>* cancel = nullptr;
    /// Wall-clock budget in seconds (0 = unlimited).
    double timeout_seconds = 0.0;
    /// Approximate heap cap for the solver instance (miter CNF + learned
    /// clauses, which this solver never deletes); 0 = unlimited.  A hard
    /// miter that crosses the cap degrades to ProbablyEquivalent
    /// (SatCecStats::memory_limited) instead of growing without bound —
    /// the per-engine budget the multi-tenant server relies on.
    std::size_t max_memory_bytes = 512u << 20;
};

/// Work accounting of one SAT equivalence check.
struct SatCecStats {
    std::size_t outputs_total = 0;
    std::size_t outputs_proven = 0;  ///< per-output Unsat results
    std::size_t cex_found = 0;       ///< SAT models extracted
    std::size_t spurious_cex = 0;    ///< models that failed simulation
    std::uint64_t conflicts = 0;     ///< solver conflicts spent
    std::size_t memory_bytes = 0;    ///< solver footprint estimate
    bool memory_limited = false;     ///< degraded by max_memory_bytes
};

/// Full outcome of a SAT equivalence check.
struct SatCecResult {
    aig::CecVerdict verdict = aig::CecVerdict::ProbablyEquivalent;
    /// Simulation-validated PI assignment; set exactly when verdict ==
    /// NotEquivalent.
    std::vector<bool> counterexample;
    SatCecStats stats;
};

/// Proven verdicts for equivalence/inequivalence; ProbablyEquivalent only
/// when the conflict budget runs out, the check is cancelled/timed out,
/// or the solver misbehaves (spurious counterexamples).
aig::CecVerdict check_equivalence_sat(const aig::Aig& a, const aig::Aig& b,
                                      const SatCecOptions& opts = {});

/// As check_equivalence_sat, additionally reporting the validated
/// counterexample and work stats.
SatCecResult check_equivalence_sat_full(const aig::Aig& a, const aig::Aig& b,
                                        const SatCecOptions& opts = {});

/// The verdict path for one solver-reported counterexample, exposed for
/// fault-injection tests: simulates `cex` (indexed by PI position) on
/// both designs and returns NotEquivalent when any output pair differs,
/// ProbablyEquivalent otherwise.  Never throws on a bogus counterexample
/// — this is the contract a buggy solver result must not be able to
/// break.
aig::CecVerdict resolve_sat_counterexample(const aig::Aig& a,
                                           const aig::Aig& b,
                                           const std::vector<bool>& cex);

}  // namespace bg::sat
