#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace bg::sat {

namespace {

/// Approximate per-variable footprint: the per-var entries plus two
/// watcher-list headers (their elements are charged per clause).
constexpr std::size_t kBytesPerVar =
    sizeof(std::int8_t) * 2 + sizeof(int) + sizeof(std::int32_t) +
    sizeof(double) + 2 * sizeof(std::vector<int>);  // list headers

/// Approximate footprint of one attached clause: header, literal
/// storage, and its two watcher entries.
std::size_t clause_bytes(std::size_t num_lits) {
    return 2 * sizeof(void*) + num_lits * sizeof(Lit) + 32;
}

}  // namespace

Var Solver::new_var() {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(2);
    phase_.push_back(0);
    level_.push_back(0);
    reason_.push_back(-1);
    activity_.push_back(0.0);
    watches_.emplace_back();
    watches_.emplace_back();
    mem_bytes_ += kBytesPerVar;
    return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
    BG_EXPECTS(decision_level() == 0, "clauses must be added at level 0");
    if (unsat_) {
        return false;
    }
    // Normalize: sort, dedup, drop false literals, detect tautologies and
    // satisfied clauses.
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    std::vector<Lit> out;
    out.reserve(lits.size());
    for (std::size_t i = 0; i < lits.size(); ++i) {
        const Lit l = lits[i];
        BG_EXPECTS(lit_var(l) < num_vars(), "clause references unknown var");
        if (i + 1 < lits.size() && lits[i + 1] == lit_neg(l)) {
            return true;  // tautology: x | !x
        }
        const auto val = value(l);
        if (val == 1) {
            return true;  // already satisfied at level 0
        }
        if (val != 0) {
            out.push_back(l);  // unassigned
        }
    }
    if (out.empty()) {
        unsat_ = true;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], -1);
        if (propagate() != -1) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    mem_bytes_ += clause_bytes(out.size());
    clauses_.push_back(Clause{std::move(out), false});
    attach(static_cast<std::int32_t>(clauses_.size()) - 1);
    return true;
}

void Solver::attach(std::int32_t ci) {
    const auto& c = clauses_[static_cast<std::size_t>(ci)].lits;
    watches_[static_cast<std::size_t>(lit_neg(c[0]))].push_back(
        Watcher{ci, c[1]});
    watches_[static_cast<std::size_t>(lit_neg(c[1]))].push_back(
        Watcher{ci, c[0]});
}

void Solver::enqueue(Lit l, std::int32_t reason) {
    const Var v = lit_var(l);
    BG_ASSERT(assigns_[static_cast<std::size_t>(v)] == 2,
              "enqueue of an assigned literal");
    assigns_[static_cast<std::size_t>(v)] = lit_sign(l) ? 0 : 1;
    phase_[static_cast<std::size_t>(v)] =
        assigns_[static_cast<std::size_t>(v)];
    level_[static_cast<std::size_t>(v)] = decision_level();
    reason_[static_cast<std::size_t>(v)] = reason;
    trail_.push_back(l);
}

std::int32_t Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++propagations_;
        auto& ws = watches_[static_cast<std::size_t>(p)];
        std::size_t keep = 0;
        for (std::size_t wi = 0; wi < ws.size(); ++wi) {
            const Watcher w = ws[wi];
            if (value(w.blocker) == 1) {
                ws[keep++] = w;
                continue;
            }
            auto& c = clauses_[static_cast<std::size_t>(w.clause)].lits;
            // Make sure c[0] is the other watched literal.
            const Lit false_lit = lit_neg(p);
            if (c[0] == false_lit) {
                std::swap(c[0], c[1]);
            }
            if (value(c[0]) == 1) {
                ws[keep++] = Watcher{w.clause, c[0]};
                continue;
            }
            // Find a replacement watch.
            bool moved = false;
            for (std::size_t k = 2; k < c.size(); ++k) {
                if (value(c[k]) != 0) {
                    std::swap(c[1], c[k]);
                    watches_[static_cast<std::size_t>(lit_neg(c[1]))]
                        .push_back(Watcher{w.clause, c[0]});
                    moved = true;
                    break;
                }
            }
            if (moved) {
                continue;
            }
            // Clause is unit or conflicting under c[0].
            ws[keep++] = Watcher{w.clause, c[0]};
            if (value(c[0]) == 0) {
                // Conflict: restore remaining watchers and report.
                for (std::size_t rest = wi + 1; rest < ws.size(); ++rest) {
                    ws[keep++] = ws[rest];
                }
                ws.resize(keep);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(c[0], w.clause);
        }
        ws.resize(keep);
    }
    return -1;
}

void Solver::bump(Var v) {
    activity_[static_cast<std::size_t>(v)] += var_inc_;
    if (activity_[static_cast<std::size_t>(v)] > 1e100) {
        for (auto& a : activity_) {
            a *= 1e-100;
        }
        var_inc_ *= 1e-100;
    }
}

void Solver::analyze(std::int32_t conflict, std::vector<Lit>& learned,
                     int& backtrack_level) {
    learned.clear();
    learned.push_back(0);  // slot for the asserting literal
    std::vector<bool> seen(static_cast<std::size_t>(num_vars()), false);
    int counter = 0;
    Lit p = -1;
    std::size_t index = trail_.size();
    std::int32_t reason = conflict;

    do {
        BG_ASSERT(reason != -1, "conflict analysis ran out of reasons");
        const auto& c = clauses_[static_cast<std::size_t>(reason)].lits;
        for (const Lit q : c) {
            if (p != -1 && q == p) {
                continue;
            }
            const Var v = lit_var(q);
            if (!seen[static_cast<std::size_t>(v)] &&
                level_[static_cast<std::size_t>(v)] > 0) {
                seen[static_cast<std::size_t>(v)] = true;
                bump(v);
                if (level_[static_cast<std::size_t>(v)] >= decision_level()) {
                    ++counter;
                } else {
                    learned.push_back(q);
                }
            }
        }
        // Find the next seen literal on the trail.
        while (!seen[static_cast<std::size_t>(lit_var(trail_[index - 1]))]) {
            --index;
        }
        --index;
        p = trail_[index];
        seen[static_cast<std::size_t>(lit_var(p))] = false;
        reason = reason_[static_cast<std::size_t>(lit_var(p))];
        --counter;
    } while (counter > 0);
    learned[0] = lit_neg(p);

    // Backtrack to the second-highest level in the learned clause.
    backtrack_level = 0;
    if (learned.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learned.size(); ++i) {
            if (level_[static_cast<std::size_t>(lit_var(learned[i]))] >
                level_[static_cast<std::size_t>(lit_var(learned[max_i]))]) {
                max_i = i;
            }
        }
        std::swap(learned[1], learned[max_i]);
        backtrack_level =
            level_[static_cast<std::size_t>(lit_var(learned[1]))];
    }
}

void Solver::backtrack(int target_level) {
    if (decision_level() <= target_level) {
        return;
    }
    const std::size_t lim =
        trail_lim_[static_cast<std::size_t>(target_level)];
    for (std::size_t i = trail_.size(); i-- > lim;) {
        const Var v = lit_var(trail_[i]);
        assigns_[static_cast<std::size_t>(v)] = 2;
        reason_[static_cast<std::size_t>(v)] = -1;
    }
    trail_.resize(lim);
    trail_lim_.resize(static_cast<std::size_t>(target_level));
    qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
    // Linear activity scan — simple and adequate at this library's miter
    // sizes (a few thousand variables).
    Var best = -1;
    double best_act = -1.0;
    for (Var v = 0; v < num_vars(); ++v) {
        if (assigns_[static_cast<std::size_t>(v)] == 2 &&
            activity_[static_cast<std::size_t>(v)] > best_act) {
            best_act = activity_[static_cast<std::size_t>(v)];
            best = v;
        }
    }
    if (best < 0) {
        return -1;
    }
    return mk_lit(best, phase_[static_cast<std::size_t>(best)] == 0);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t conflict_budget) {
    if (unsat_) {
        return Result::Unsat;
    }
    backtrack(0);
    if (propagate() != -1) {
        unsat_ = true;
        return Result::Unsat;
    }
    if (interrupt_ && interrupt_()) {
        return Result::Unknown;
    }
    // An instance already over budget (a miter bigger than the cap)
    // degrades immediately instead of on the first conflict.
    if (memory_limit_ != 0 && mem_bytes_ > memory_limit_) {
        memory_limit_hit_ = true;
        return Result::Unknown;
    }

    std::uint64_t restart_limit = 128;
    std::uint64_t conflicts_since_restart = 0;

    while (true) {
        const std::int32_t conflict = propagate();
        if (conflict != -1) {
            ++conflicts_;
            ++conflicts_since_restart;
            if (decision_level() == 0) {
                unsat_ = true;
                return Result::Unsat;
            }
            if (conflict_budget >= 0 &&
                conflicts_ > static_cast<std::uint64_t>(conflict_budget)) {
                backtrack(0);
                return Result::Unknown;
            }
            if ((conflicts_ & 255) == 0 && interrupt_ && interrupt_()) {
                backtrack(0);
                return Result::Unknown;
            }
            if (memory_limit_ != 0 && mem_bytes_ > memory_limit_) {
                // The learned-clause database (never reduced in this
                // solver) crossed the per-engine budget: degrade, don't
                // grow — the caller treats Unknown exactly like an
                // exhausted conflict budget.
                memory_limit_hit_ = true;
                backtrack(0);
                return Result::Unknown;
            }
            std::vector<Lit> learned;
            int bt_level = 0;
            analyze(conflict, learned, bt_level);
            backtrack(bt_level);
            if (learned.size() == 1) {
                enqueue(learned[0], -1);
            } else {
                mem_bytes_ += clause_bytes(learned.size());
                clauses_.push_back(Clause{learned, true});
                const auto ci =
                    static_cast<std::int32_t>(clauses_.size()) - 1;
                attach(ci);
                enqueue(learned[0], ci);
            }
            decay();
            continue;
        }

        if (conflicts_since_restart >= restart_limit) {
            conflicts_since_restart = 0;
            restart_limit += restart_limit / 2;
            backtrack(0);
            continue;
        }

        // Apply pending assumptions, then decide.
        Lit next = -1;
        for (const Lit a : assumptions) {
            const auto val = value(a);
            if (val == 0) {
                return Result::Unsat;  // assumption falsified
            }
            if (val == 2) {
                next = a;
                break;
            }
        }
        if (next == -1) {
            next = pick_branch();
        }
        if (next == -1) {
            // Full assignment: record the model.
            model_ = assigns_;
            backtrack(0);
            return Result::Sat;
        }
        ++decisions_;
        trail_lim_.push_back(trail_.size());
        enqueue(next, -1);
    }
}

}  // namespace bg::sat
