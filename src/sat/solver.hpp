#pragma once

/// \file solver.hpp
/// A compact CDCL SAT solver (two-watched literals, 1UIP clause learning,
/// VSIDS-style activities, phase saving, geometric restarts) — the engine
/// behind SAT-based combinational equivalence checking.  Deliberately
/// minimal: no clause-database reduction or preprocessing; miters from
/// this library's circuit sizes are comfortably in range.

#include <cstdint>
#include <functional>
#include <vector>

namespace bg::sat {

using Var = std::int32_t;
using Lit = std::int32_t;  ///< 2*var + sign (sign 1 = negated)

constexpr Lit mk_lit(Var v, bool negated = false) {
    return 2 * v + (negated ? 1 : 0);
}
constexpr Var lit_var(Lit l) { return l >> 1; }
constexpr bool lit_sign(Lit l) { return (l & 1) != 0; }
constexpr Lit lit_neg(Lit l) { return l ^ 1; }

enum class Result {
    Sat,
    Unsat,
    Unknown,  ///< conflict budget exhausted
};

class Solver {
public:
    Solver() = default;

    /// Allocate a fresh variable; returns its index.
    Var new_var();
    int num_vars() const { return static_cast<int>(assigns_.size()); }

    /// Add a clause (empty clause makes the instance trivially UNSAT).
    /// Returns false when the database is already known unsatisfiable.
    bool add_clause(std::vector<Lit> lits);

    /// Solve under optional assumptions.  `conflict_budget` < 0 means
    /// unlimited; the budget counts *lifetime* conflicts, so incremental
    /// callers share one budget across a sequence of solve() calls.
    Result solve(const std::vector<Lit>& assumptions = {},
                 std::int64_t conflict_budget = -1);

    /// Cooperative interruption: `cb` is polled every few hundred
    /// conflicts (and at restarts); returning true makes the current and
    /// any later solve() return Result::Unknown.  Pass nullptr to clear.
    /// The portfolio prover uses this for early-cancel and wall-clock
    /// timeouts.
    void set_interrupt(std::function<bool()> cb) {
        interrupt_ = std::move(cb);
    }

    /// Cap the solver's approximate heap footprint (0 = unlimited).  The
    /// estimate (memory_estimate()) accounts variables, clause literals
    /// and watcher lists — the structures that actually grow on hard
    /// instances, dominated by learned clauses since this solver never
    /// deletes them.  When a solve() crosses the cap it backtracks to
    /// level 0 and returns Result::Unknown with memory_limit_hit() set —
    /// a degrade-don't-die budget, same contract as the conflict budget.
    void set_memory_limit(std::size_t bytes) { memory_limit_ = bytes; }
    std::size_t memory_limit() const { return memory_limit_; }
    /// Approximate bytes held by variables, clauses and watchers.
    std::size_t memory_estimate() const { return mem_bytes_; }
    /// True once any solve() returned Unknown because of the memory cap.
    bool memory_limit_hit() const { return memory_limit_hit_; }

    /// Model access after Result::Sat.
    bool model_value(Var v) const { return model_[static_cast<std::size_t>(v)] == 1; }

    std::uint64_t num_conflicts() const { return conflicts_; }
    std::uint64_t num_decisions() const { return decisions_; }
    std::uint64_t num_propagations() const { return propagations_; }

private:
    struct Clause {
        std::vector<Lit> lits;
        bool learned = false;
    };
    struct Watcher {
        std::int32_t clause = 0;
        Lit blocker = 0;
    };

    // Values: 0 = false, 1 = true, 2 = unassigned (per literal polarity
    // handled by value()).
    std::int8_t value(Lit l) const {
        const std::int8_t a = assigns_[static_cast<std::size_t>(lit_var(l))];
        return a == 2 ? 2 : static_cast<std::int8_t>(a ^ (lit_sign(l) ? 1 : 0));
    }

    void enqueue(Lit l, std::int32_t reason);
    std::int32_t propagate();  ///< returns conflicting clause idx or -1
    void analyze(std::int32_t conflict, std::vector<Lit>& learned,
                 int& backtrack_level);
    void backtrack(int level);
    Lit pick_branch();
    void bump(Var v);
    void decay() { var_inc_ /= 0.95; }
    int decision_level() const { return static_cast<int>(trail_lim_.size()); }
    void attach(std::int32_t ci);

    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  // indexed by literal
    std::vector<std::int8_t> assigns_;           // per var: 0/1/2
    std::vector<std::int8_t> phase_;             // saved polarity
    std::vector<int> level_;
    std::vector<std::int32_t> reason_;
    std::vector<Lit> trail_;
    std::vector<std::size_t> trail_lim_;
    std::size_t qhead_ = 0;
    std::vector<double> activity_;
    double var_inc_ = 1.0;
    std::vector<std::int8_t> model_;
    bool unsat_ = false;
    std::function<bool()> interrupt_;
    std::size_t memory_limit_ = 0;  ///< bytes; 0 = unlimited
    std::size_t mem_bytes_ = 0;     ///< running footprint estimate
    bool memory_limit_hit_ = false;

    std::uint64_t conflicts_ = 0;
    std::uint64_t decisions_ = 0;
    std::uint64_t propagations_ = 0;
};

}  // namespace bg::sat
