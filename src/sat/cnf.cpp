#include "sat/cnf.hpp"

#include "util/contracts.hpp"

namespace bg::sat {

std::vector<Var> encode_aig(Solver& solver, const aig::Aig& g) {
    std::vector<Var> map(g.num_slots(), -1);
    // Constant-FALSE node: a variable forced to 0.
    map[0] = solver.new_var();
    solver.add_clause({mk_lit(map[0], true)});
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        map[g.pi(i)] = solver.new_var();
    }
    for (const aig::Var v : g.topo_ands()) {
        map[v] = solver.new_var();
        const Lit x = mk_lit(map[v]);
        const auto [f0, f1] = g.fanin_refs(v);
        const Lit a = lit_for(map, f0);
        const Lit b = lit_for(map, f1);
        solver.add_clause({lit_neg(x), a});
        solver.add_clause({lit_neg(x), b});
        solver.add_clause({x, lit_neg(a), lit_neg(b)});
    }
    return map;
}

Lit lit_for(const std::vector<Var>& mapping, aig::Lit l) {
    const Var v = mapping[aig::lit_var(l)];
    BG_EXPECTS(v >= 0, "AIG literal was not encoded");
    return mk_lit(v, aig::lit_is_compl(l));
}

Lit lit_for(const std::vector<Var>& mapping, aig::NodeRef r) {
    const Var v = mapping[r.index()];
    BG_EXPECTS(v >= 0, "AIG reference was not encoded");
    return mk_lit(v, r.complemented());
}

MiterEncoding encode_miter(Solver& solver, const aig::Aig& a,
                           const aig::Aig& b) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "miter requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "miter requires matching PO counts");
    MiterEncoding enc;
    enc.map_a = encode_aig(solver, a);

    // Encode b over the SAME input variables.
    enc.map_b.assign(b.num_slots(), -1);
    enc.map_b[0] = enc.map_a[0];
    for (std::size_t i = 0; i < b.num_pis(); ++i) {
        enc.map_b[b.pi(i)] = enc.map_a[a.pi(i)];
    }
    for (const aig::Var v : b.topo_ands()) {
        enc.map_b[v] = solver.new_var();
        const Lit x = mk_lit(enc.map_b[v]);
        const auto [f0, f1] = b.fanin_refs(v);
        const Lit fa = lit_for(enc.map_b, f0);
        const Lit fb = lit_for(enc.map_b, f1);
        solver.add_clause({lit_neg(x), fa});
        solver.add_clause({lit_neg(x), fb});
        solver.add_clause({x, lit_neg(fa), lit_neg(fb)});
    }

    // XOR selector per PO pair (nothing asserted about the selectors).
    for (std::size_t i = 0; i < a.num_pos(); ++i) {
        const Lit pa = lit_for(enc.map_a, a.po(i));
        const Lit pb = lit_for(enc.map_b, b.po(i));
        const Var x = solver.new_var();
        const Lit xl = mk_lit(x);
        // x <-> (pa XOR pb)
        solver.add_clause({lit_neg(xl), pa, pb});
        solver.add_clause({lit_neg(xl), lit_neg(pa), lit_neg(pb)});
        solver.add_clause({xl, lit_neg(pa), pb});
        solver.add_clause({xl, pa, lit_neg(pb)});
        enc.diff_lits.push_back(xl);
    }
    return enc;
}

MiterResult prove_equivalence(const aig::Aig& a, const aig::Aig& b,
                              std::int64_t conflict_budget) {
    Solver solver;
    const auto enc = encode_miter(solver, a, b);
    const auto& map_a = enc.map_a;

    // OR of all xors asserted true: "some output pair differs".
    if (!solver.add_clause(enc.diff_lits)) {
        // Immediately unsatisfiable (e.g. zero POs): proven equivalent.
        return MiterResult{Result::Unsat, {}};
    }

    MiterResult out;
    out.result = solver.solve({}, conflict_budget);
    if (out.result == Result::Sat) {
        out.counterexample.resize(a.num_pis());
        for (std::size_t i = 0; i < a.num_pis(); ++i) {
            out.counterexample[i] = solver.model_value(map_a[a.pi(i)]);
        }
    }
    return out;
}

}  // namespace bg::sat
