#include "sat/cec_sat.hpp"

#include <chrono>
#include <utility>

#include "aig/simulation.hpp"
#include "util/contracts.hpp"

namespace bg::sat {

aig::CecVerdict resolve_sat_counterexample(const aig::Aig& a,
                                           const aig::Aig& b,
                                           const std::vector<bool>& cex) {
    // A malformed counterexample can only come from a solver bug; treat it
    // like any other spurious model instead of propagating garbage.
    if (cex.size() != a.num_pis() || a.num_pis() != b.num_pis() ||
        a.num_pos() != b.num_pos()) {
        return aig::CecVerdict::ProbablyEquivalent;
    }
    aig::SimVectors pats(a.num_pis());
    for (std::size_t i = 0; i < a.num_pis(); ++i) {
        pats[i].assign(1, cex[i] ? 1ULL : 0ULL);
    }
    const auto pa = aig::po_signatures(a, aig::simulate(a, pats));
    const auto pb = aig::po_signatures(b, aig::simulate(b, pats));
    for (std::size_t i = 0; i < pa.size(); ++i) {
        if ((pa[i][0] & 1ULL) != (pb[i][0] & 1ULL)) {
            return aig::CecVerdict::NotEquivalent;
        }
    }
    return aig::CecVerdict::ProbablyEquivalent;
}

SatCecResult check_equivalence_sat_full(const aig::Aig& a, const aig::Aig& b,
                                        const SatCecOptions& opts) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "SAT CEC requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "SAT CEC requires matching PO counts");

    SatCecResult res;
    res.stats.outputs_total = a.num_pos();

    Solver solver;
    solver.set_memory_limit(opts.max_memory_bytes);
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline = Clock::time_point::max();
    if (opts.timeout_seconds > 0.0) {
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(opts.timeout_seconds));
    }
    if (opts.cancel != nullptr || opts.timeout_seconds > 0.0) {
        solver.set_interrupt([cancel = opts.cancel, deadline]() {
            if (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) {
                return true;
            }
            return Clock::now() >= deadline;
        });
    }

    const MiterEncoding enc = encode_miter(solver, a, b);
    if (enc.diff_lits.empty()) {
        // Zero POs: no observable behaviour, trivially equivalent.
        res.verdict = aig::CecVerdict::Equivalent;
        return res;
    }

    // One solve per output on the same instance.  Learned clauses persist
    // across iterations, and conflict_budget counts lifetime conflicts, so
    // the budget is global across all outputs.
    for (const Lit diff : enc.diff_lits) {
        int retries = 0;
        while (true) {
            const Result r = solver.solve({diff}, opts.conflict_budget);
            res.stats.conflicts = solver.num_conflicts();
            res.stats.memory_bytes = solver.memory_estimate();
            res.stats.memory_limited = solver.memory_limit_hit();
            if (r == Result::Unsat) {
                ++res.stats.outputs_proven;
                break;
            }
            if (r == Result::Unknown) {
                // Budget exhausted (conflicts or memory), cancelled, or
                // timed out.
                res.verdict = aig::CecVerdict::ProbablyEquivalent;
                return res;
            }
            ++res.stats.cex_found;
            std::vector<bool> cex(a.num_pis());
            for (std::size_t j = 0; j < a.num_pis(); ++j) {
                cex[j] = solver.model_value(enc.map_a[a.pi(j)]);
            }
            // Validate against *all* output pairs — also the reuse step:
            // a pattern found for this output refutes through any output
            // it distinguishes, skipping their solves entirely.
            if (resolve_sat_counterexample(a, b, cex) ==
                aig::CecVerdict::NotEquivalent) {
                res.verdict = aig::CecVerdict::NotEquivalent;
                res.counterexample = std::move(cex);
                return res;
            }
            // Spurious: the solver produced a model simulation refutes.
            // Never throw from a verdict path — block the offending input
            // pattern (sound: simulation just proved it non-differing),
            // re-solve a bounded number of times, then degrade honestly.
            ++res.stats.spurious_cex;
            if (retries >= opts.max_spurious_retries) {
                res.verdict = aig::CecVerdict::ProbablyEquivalent;
                return res;
            }
            ++retries;
            std::vector<Lit> block;
            block.reserve(a.num_pis());
            for (std::size_t j = 0; j < a.num_pis(); ++j) {
                block.push_back(mk_lit(enc.map_a[a.pi(j)], cex[j]));
            }
            if (!solver.add_clause(std::move(block))) {
                // Blocking collapsed the instance (e.g. zero PIs); the
                // solver state is no longer trustworthy here.
                res.verdict = aig::CecVerdict::ProbablyEquivalent;
                return res;
            }
        }
    }
    res.verdict = aig::CecVerdict::Equivalent;
    return res;
}

aig::CecVerdict check_equivalence_sat(const aig::Aig& a, const aig::Aig& b,
                                      const SatCecOptions& opts) {
    return check_equivalence_sat_full(a, b, opts).verdict;
}

}  // namespace bg::sat
