#include "sat/cec_sat.hpp"

#include "aig/simulation.hpp"
#include "util/contracts.hpp"

namespace bg::sat {

aig::CecVerdict check_equivalence_sat(const aig::Aig& a, const aig::Aig& b,
                                      const SatCecOptions& opts) {
    const auto miter = prove_equivalence(a, b, opts.conflict_budget);
    switch (miter.result) {
        case Result::Unsat:
            return aig::CecVerdict::Equivalent;
        case Result::Unknown:
            return aig::CecVerdict::ProbablyEquivalent;
        case Result::Sat:
            break;
    }
    // Validate the counterexample by simulating one pattern.
    aig::SimVectors pats(a.num_pis());
    for (std::size_t i = 0; i < a.num_pis(); ++i) {
        pats[i].assign(1, miter.counterexample[i] ? 1ULL : 0ULL);
    }
    const auto pa = aig::po_signatures(a, aig::simulate(a, pats));
    const auto pb = aig::po_signatures(b, aig::simulate(b, pats));
    for (std::size_t i = 0; i < pa.size(); ++i) {
        if ((pa[i][0] & 1ULL) != (pb[i][0] & 1ULL)) {
            return aig::CecVerdict::NotEquivalent;
        }
    }
    BG_ASSERT(false, "SAT counterexample failed simulation validation");
    return aig::CecVerdict::NotEquivalent;
}

}  // namespace bg::sat
