#pragma once

/// \file cnf.hpp
/// Tseitin encoding of AIGs into CNF and miter construction for SAT-based
/// combinational equivalence checking (what ABC's `cec` does).

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace bg::sat {

/// Encode all live nodes of `g` into `solver`.  Returns the SAT variable
/// of each AIG var (index = aig::Var; unused slots hold -1).  PIs become
/// free variables; every AND gate contributes the three Tseitin clauses
///   (!x | a) (!x | b) (x | !a | !b).
std::vector<Var> encode_aig(Solver& solver, const aig::Aig& g);

/// SAT literal for an AIG literal under a mapping from encode_aig.
Lit lit_for(const std::vector<Var>& mapping, aig::Lit l);
/// Same, for a packed fanin reference (avoids the Lit round trip on the
/// encode hot path).
Lit lit_for(const std::vector<Var>& mapping, aig::NodeRef r);

/// Outcome of a miter proof.
struct MiterResult {
    Result result = Result::Unknown;
    /// PI assignment witnessing inequivalence (valid when result == Sat).
    std::vector<bool> counterexample;
};

/// A miter of two AIGs encoded into one solver: both networks share the
/// PI variables, and each PO pair i carries a selector literal with
/// diff_lits[i] <-> (po_a[i] XOR po_b[i]).  Nothing is asserted about the
/// selectors themselves, so the caller chooses the proof style:
///  * assert OR(diff_lits) and solve once (prove_equivalence), or
///  * solve per output under assumption diff_lits[i] on the same solver
///    instance, keeping learned clauses across outputs (the incremental
///    SAT CEC in sat/cec_sat.cpp).
struct MiterEncoding {
    std::vector<Var> map_a;      ///< AIG var -> SAT var for `a`
    std::vector<Var> map_b;      ///< AIG var -> SAT var for `b`
    std::vector<Lit> diff_lits;  ///< one per PO pair
};

/// Encode the shared-input miter of two interface-identical AIGs.
MiterEncoding encode_miter(Solver& solver, const aig::Aig& a,
                           const aig::Aig& b);

/// Prove or refute PO-wise equivalence of two AIGs with identical
/// interfaces: builds XOR miters over shared inputs and asks the solver
/// whether any output pair can differ.  Unsat == proven equivalent.
MiterResult prove_equivalence(const aig::Aig& a, const aig::Aig& b,
                              std::int64_t conflict_budget = -1);

}  // namespace bg::sat
