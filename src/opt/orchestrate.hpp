#pragma once

/// \file orchestrate.hpp
/// Algorithm 1 of the paper: a single topological traversal of the AIG in
/// which every node carries its own manipulation decision D[v] from
/// {rw, rs, rf} (or none).  Each node is checked for transformability
/// w.r.t. its assigned operation and, when applicable, the transformation
/// is applied and the graph updated before moving to the next unseen node.

#include <filesystem>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "opt/objective.hpp"
#include "opt/transform.hpp"

namespace bg {
class ThreadPool;
}  // namespace bg

namespace bg::opt {

/// Per-node decision vector; index = Var id of the graph at entry.
using DecisionVector = std::vector<OpKind>;

struct OrchestrationResult {
    std::size_t original_size = 0;   ///< AND count before the pass
    std::size_t final_size = 0;      ///< AND count after the pass
    std::uint32_t original_depth = 0;
    std::uint32_t final_depth = 0;
    /// Operation actually applied at each original var (None elsewhere) —
    /// this is exactly the paper's *dynamic* feature source.
    std::vector<OpKind> applied;
    std::size_t num_checked = 0;
    std::size_t num_applied = 0;
    /// Applicable candidates the objective vetoed (always 0 under the
    /// default SizeObjective, which accepts whatever the check accepts).
    std::size_t num_rejected = 0;

    /// Intra-design parallel statistics (zero on the sequential path).
    std::size_t num_regions = 0;     ///< MFFC-disjoint regions partitioned
    std::size_t num_speculated = 0;  ///< checks speculated on the pool
    std::size_t num_conflicts = 0;   ///< speculations invalidated, re-checked
    /// Vars structurally touched by the committed transforms (sorted,
    /// deduplicated) — the dirty set incremental feature maintenance
    /// consumes.  Populated by orchestrate_parallel (including its
    /// sequential fallback); plain orchestrate leaves it empty.
    std::vector<aig::Var> touched;

    int reduction() const {
        return static_cast<int>(original_size) -
               static_cast<int>(final_size);
    }
    int depth_reduction() const {
        return static_cast<int>(original_depth) -
               static_cast<int>(final_depth);
    }
};

/// Run Algorithm 1 in place.  `decisions` must cover every var id present
/// at entry (g.num_slots()); vars created during the pass are not visited
/// (they are "unseen" nodes in the paper's terminology).  The objective
/// gates which applicable candidates are committed: the default
/// SizeObjective applies every one (pre-objective behavior, bit-identical
/// results); depth-aware objectives keep the level annotation fresh so
/// each check's local depth delta is meaningful, and veto candidates
/// whose local gain they reject (counted in num_rejected).
OrchestrationResult orchestrate(aig::Aig& g,
                                std::span<const OpKind> decisions,
                                const OptParams& params = {},
                                const Objective& objective = size_objective());

/// Knobs of the intra-design parallel orchestrator.
struct IntraParallel {
    /// Pool the speculation waves run on; nullptr (or a pool with fewer
    /// than two workers) falls back to the sequential path.
    ThreadPool* pool = nullptr;
    /// Upper bound on candidates speculated per wave — bounds the
    /// footprint memory held at once.  The orchestrator additionally caps
    /// waves at 16 candidates per pool worker: commits stale their wave's
    /// tail, so oversized waves only buy redundant re-speculation.
    std::size_t spec_batch = 2048;
    /// Preferred roots per MFFC-disjoint region (the parallel work unit).
    std::size_t region_roots = 32;
    /// Per-candidate read-footprint cap; overflowing candidates are
    /// simply re-checked at commit time.
    std::size_t footprint_cap = 64 * 1024;
};

/// Algorithm 1 with partition/speculate/ordered-commit parallelism:
/// candidate checks are speculated region-parallel on the pool against a
/// frozen graph, then committed one at a time in the exact sequential
/// topological order.  A commit journals every var it structurally
/// touches; a speculated check whose recorded read-set intersects a
/// later commit is invalidated and transparently re-checked inline, so
/// the committed result — graph, counters, applied vector — is
/// bit-identical to `orchestrate` at any worker count.  Depth-aware
/// objectives (which refresh levels mid-pass) take the sequential path.
OrchestrationResult orchestrate_parallel(
    aig::Aig& g, std::span<const OpKind> decisions,
    const OptParams& params = {},
    const Objective& objective = size_objective(),
    const IntraParallel& intra = {});

/// Uniform decision vector (the same operation everywhere).
DecisionVector uniform_decisions(const aig::Aig& g, OpKind op);

/// Persist / load a decision vector in the paper's CSV form
/// (columns: node, decision; decision in {0, 1, 2, 3} = rw/rs/rf/none).
void save_decisions_csv(const std::filesystem::path& path,
                        std::span<const OpKind> decisions);
DecisionVector load_decisions_csv(const std::filesystem::path& path);

}  // namespace bg::opt
