#pragma once

/// \file lut_map.hpp
/// K-LUT technology mapping — the "technology-dependent stage" the
/// paper's conclusion names as BoolGebra's next target.  Classic
/// depth-oriented structural mapping: enumerate priority cuts bottom-up,
/// pick each node's best (arrival, fanin-count) cut, then cover the
/// network from the POs.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace bg::opt {

struct LutMapParams {
    unsigned k = 6;             ///< LUT input count (FPGA-style K)
    std::size_t max_cuts = 10;  ///< priority cuts kept per node
};

/// One mapped LUT: a root node, its cut leaves and the implemented
/// function over those leaves.
struct Lut {
    aig::Var root = 0;
    std::vector<aig::Var> leaves;
    tt::TruthTable function;
};

struct LutMapping {
    std::vector<Lut> luts;
    std::uint32_t depth = 0;  ///< LUT levels on the critical path

    std::size_t num_luts() const { return luts.size(); }
};

/// Map `g` onto K-input LUTs.  Every PO is driven by a mapped LUT root,
/// a PI, or the constant; functions are verified against the AIG cones.
LutMapping map_to_luts(const aig::Aig& g, const LutMapParams& params = {});

}  // namespace bg::opt
