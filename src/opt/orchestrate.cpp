#include "opt/orchestrate.hpp"

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Var;

OrchestrationResult orchestrate(Aig& g, std::span<const OpKind> decisions,
                                const OptParams& params,
                                const Objective& objective) {
    BG_EXPECTS(decisions.size() >= g.num_slots(),
               "decision vector must cover every var id");
    params.validate();
    OrchestrationResult res;
    res.original_size = g.num_ands();
    res.original_depth = g.depth();  // freshens levels as a side effect
    res.applied.assign(g.num_slots(), OpKind::None);

    // Depth-aware objectives read each check's local depth delta, which is
    // only meaningful against fresh levels; refresh lazily after applies.
    const bool track_levels = objective.needs_depth();
    bool levels_stale = false;

    // Snapshot the traversal order; nodes created by transformations get
    // higher ids and are deliberately not revisited in this pass.
    const auto order = g.topo_ands();
    for (const Var v : order) {
        if (g.is_dead(v)) {
            continue;  // consumed by an earlier transformation
        }
        const OpKind op = decisions[v];
        if (op == OpKind::None) {
            continue;
        }
        ++res.num_checked;
        if (track_levels && levels_stale) {
            g.update_levels();
            levels_stale = false;
        }
        const CheckResult check = check_op(g, v, op, params);
        if (!check.applicable) {
            continue;
        }
        if (!objective.accepts(check.gain)) {
            ++res.num_rejected;
            continue;
        }
        apply_candidate(g, v, check.cand);
        levels_stale = true;
        res.applied[v] = op;
        ++res.num_applied;
    }
    res.final_size = g.num_ands();
    res.final_depth = g.depth();
    return res;
}

DecisionVector uniform_decisions(const Aig& g, OpKind op) {
    return DecisionVector(g.num_slots(), op);
}

void save_decisions_csv(const std::filesystem::path& path,
                        std::span<const OpKind> decisions) {
    CsvTable t;
    t.header = {"node", "decision"};
    for (std::size_t v = 0; v < decisions.size(); ++v) {
        t.rows.push_back(
            {std::to_string(v), std::to_string(op_index(decisions[v]))});
    }
    save_csv(path, t);
}

DecisionVector load_decisions_csv(const std::filesystem::path& path) {
    const auto t = load_csv(path, /*has_header=*/true);
    DecisionVector out;
    out.reserve(t.rows.size());
    for (const auto& row : t.rows) {
        if (row.size() != 2) {
            throw std::runtime_error("decision CSV rows need 2 columns");
        }
        const std::size_t v = std::stoul(row[0]);
        if (v != out.size()) {
            throw std::runtime_error("decision CSV must be densely indexed");
        }
        out.push_back(op_from_index(std::stoi(row[1])));
    }
    return out;
}

}  // namespace bg::opt
