#include "opt/orchestrate.hpp"

#include <algorithm>
#include <array>

#include "aig/footprint.hpp"
#include "opt/partition.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"

#ifdef BOOLGEBRA_AUDIT
// Audit builds cross-check every speculation's shadow read-set against
// its declared footprint and every commit's state diff against the
// journal (docs/static-analysis.md).  Normal builds compile none of it.
#include "aig/audit.hpp"
#include "analysis/soundness.hpp"
#endif

namespace bg::opt {

using aig::Aig;
using aig::Var;

OrchestrationResult orchestrate(Aig& g, std::span<const OpKind> decisions,
                                const OptParams& params,
                                const Objective& objective) {
    BG_EXPECTS(decisions.size() >= g.num_slots(),
               "decision vector must cover every var id");
    params.validate();
    OrchestrationResult res;
    res.original_size = g.num_ands();
    res.original_depth = g.depth();  // freshens levels as a side effect
    res.applied.assign(g.num_slots(), OpKind::None);

    // Depth-aware objectives read each check's local depth delta, which is
    // only meaningful against fresh levels; refresh lazily after applies.
    const bool track_levels = objective.needs_depth();
    bool levels_stale = false;

    // Snapshot the traversal order; nodes created by transformations get
    // higher ids and are deliberately not revisited in this pass.
    const auto order = g.topo_ands();
    for (const Var v : order) {
        if (g.is_dead(v)) {
            continue;  // consumed by an earlier transformation
        }
        const OpKind op = decisions[v];
        if (op == OpKind::None) {
            continue;
        }
        poll_cancel(params.cancel, "orchestrate");
        ++res.num_checked;
        if (track_levels && levels_stale) {
            g.update_levels();
            levels_stale = false;
        }
        const CheckResult check = check_op(g, v, op, params);
        if (!check.applicable) {
            continue;
        }
        if (!objective.accepts(check.gain)) {
            ++res.num_rejected;
            continue;
        }
        apply_candidate(g, v, check.cand);
        levels_stale = true;
        res.applied[v] = op;
        ++res.num_applied;
    }
    res.final_size = g.num_ands();
    res.final_depth = g.depth();
    return res;
}

OrchestrationResult orchestrate_parallel(Aig& g,
                                         std::span<const OpKind> decisions,
                                         const OptParams& params,
                                         const Objective& objective,
                                         const IntraParallel& intra) {
    // Depth-aware objectives refresh levels mid-pass, which speculative
    // checks cannot replay; they (and poolless calls) take the sequential
    // path, which is the definition of correct.  The fallback still
    // journals so `touched` is populated either way.
    if (intra.pool == nullptr || intra.pool->size() < 2 ||
        objective.needs_depth()) {
        std::vector<Var> journal;
        g.set_change_log(&journal);
        struct LogGuard {
            Aig& g;
            ~LogGuard() { g.set_change_log(nullptr); }
        } log_guard{g};
#ifdef BOOLGEBRA_AUDIT
        analysis::WriteAudit write_audit;
        write_audit.capture(g);
#endif
        OrchestrationResult res = orchestrate(g, decisions, params, objective);
#ifdef BOOLGEBRA_AUDIT
        write_audit.verify(g, journal, "orchestrate sequential-fallback pass");
#endif
        for (Var& e : journal) {
            e = aig::fp_entry_var(e);  // touched is var-granular
        }
        std::sort(journal.begin(), journal.end());
        journal.erase(std::unique(journal.begin(), journal.end()),
                      journal.end());
        res.touched = std::move(journal);
        return res;
    }
    BG_EXPECTS(decisions.size() >= g.num_slots(),
               "decision vector must cover every var id");
    BG_EXPECTS(intra.spec_batch >= 1 && intra.region_roots >= 1,
               "speculation batch and region size must be positive");
    params.validate();
    OrchestrationResult res;
    res.original_size = g.num_ands();
    res.original_depth = g.depth();  // freshens levels, as sequential does
    res.applied.assign(g.num_slots(), OpKind::None);

    // Candidate roots in the exact sequential visit order.
    const auto order = g.topo_ands();
    std::vector<Var> roots;
    roots.reserve(order.size());
    for (const Var v : order) {
        if (decisions[v] != OpKind::None) {
            roots.push_back(v);
        }
    }
    PartitionOptions popts;
    popts.target_roots = intra.region_roots;
    const PartitionResult part = partition_regions(g, roots, popts);
    res.num_regions = part.regions.size();

    // One speculation slot per candidate: the check result, the recorded
    // read-set, and the commit count it was speculated against.
    struct Spec {
        CheckResult check;
        aig::ReadFootprint fp;
        std::uint64_t epoch = 0;
    };
    std::vector<Spec> specs(roots.size());

    // dirty[k][u] = index (1-based) of the last commit that changed
    // aspect k of var u; a speculation is valid iff no aspect it read was
    // changed after its epoch.  The split matters: deref walks repaint
    // reference counts across whole shared cones, and without it they
    // invalidate every neighbor that merely enumerated cuts through them.
    std::array<std::vector<std::uint64_t>, 3> dirty;
    for (auto& d : dirty) {
        d.assign(g.num_slots(), 0);
    }
    std::uint64_t commits_done = 0;
    std::vector<Var> journal;
    g.set_change_log(&journal);
    struct LogGuard {
        Aig& g;
        ~LogGuard() { g.set_change_log(nullptr); }
    } log_guard{g};

    // Dense decision vectors make every node a root, so MFFCs nest and
    // overlap merges routinely collapse most of the design into a few
    // giant regions.  Waves therefore cap at spec_batch *candidates* and
    // split oversized regions across waves — speculation is read-only and
    // the commit walk stays in candidate order, so slicing a region is
    // semantics-free; what it buys is a fresh epoch every spec_batch
    // commits, which is what keeps the conflict rate low.
    // A speculation is consumable iff no aspect it read changed after its
    // epoch (overflowed footprints read "everything" and are never
    // consumable).
    const auto spec_valid = [&dirty](const Spec& s) {
        if (s.fp.overflow) {
            return false;
        }
        for (const auto e : s.fp.vars) {
            if (dirty[aig::fp_entry_kind(e)][aig::fp_entry_var(e)] >
                s.epoch) {
                return false;
            }
        }
        return true;
    };

    // Waves cap at 16 candidates per worker regardless of spec_batch:
    // every commit inside a wave can stale the wave's tail, so oversized
    // waves just re-speculate the same candidates over and over (measured
    // ~2.7x redundant check work at 2048 vs ~1.8x at 16 per worker on a
    // 4-worker pool, with no utilization win).
    const std::size_t wave_cap =
        std::min(intra.spec_batch, 16 * intra.pool->size());
#ifdef BOOLGEBRA_AUDIT
    analysis::WriteAudit write_audit;
#endif
    std::size_t first = 0;
    std::size_t region_idx = 0;  // region containing candidate `first`
    std::vector<std::pair<std::size_t, std::size_t>> slices;
    std::vector<std::size_t> stale;
    while (first < roots.size()) {
        const std::size_t last = std::min(first + wave_cap, roots.size());
        const std::uint64_t epoch = commits_done;

        // Task slices of [first, last): aligned to region boundaries when
        // regions are small, split further when one region spans the whole
        // wave so every worker stays busy.
        slices.clear();
        const std::size_t grain = std::max<std::size_t>(
            8, (last - first) / (intra.pool->size() * 4));
        std::size_t s = first;
        while (s < last) {
            while (part.regions[region_idx].first +
                       part.regions[region_idx].count <=
                   s) {
                ++region_idx;
            }
            const Region& region = part.regions[region_idx];
            const std::size_t e =
                std::min({last, region.first + region.count, s + grain});
            slices.emplace_back(s, e);
            s = e;
        }

        // Read-only speculation: nothing mutates the graph until the
        // commit walk below, so concurrent slice checks see a frozen
        // graph.  Dead candidates stay dead for the rest of the pass, so
        // skipping them here can never desynchronize from the commit walk.
        intra.pool->for_each(slices.size(), [&](std::size_t k) {
            for (std::size_t c = slices[k].first; c < slices[k].second;
                 ++c) {
                const Var v = roots[c];
                if (g.is_dead(v)) {
                    continue;
                }
                Spec& s = specs[c];
                s.fp.cap = intra.footprint_cap;
                s.fp.clear();
                s.epoch = epoch;
#ifdef BOOLGEBRA_AUDIT
                thread_local aig::audit::ShadowSet shadow;
                shadow.clear();
                const aig::audit::ShadowScope audit_scope(shadow);
#endif
                const aig::FootprintScope scope(s.fp);
                s.check = check_op(g, v, decisions[v], params);
#ifdef BOOLGEBRA_AUDIT
                analysis::verify_read_soundness(s.fp, shadow, v,
                                                to_string(decisions[v]));
#endif
            }
        });
        res.num_speculated += last - first;

        // Ordered commit: candidates in sequential order; a speculation
        // whose read-set a prior commit touched is rolled back and
        // re-checked against the current graph (speculation is read-only,
        // so rollback is just discarding the stale result) — in parallel
        // re-speculation rounds when a whole tail went stale, inline when
        // it is just a straggler.
        for (std::size_t c = first; c < last; ++c) {
            const Var v = roots[c];
            if (g.is_dead(v)) {
                continue;  // consumed by an earlier transformation
            }
            poll_cancel(params.cancel, "orchestrate_parallel");
            ++res.num_checked;
            if (!spec_valid(specs[c])) {
                ++res.num_conflicts;
                // Re-speculation round: the trip point is stale, and the
                // commits that staled it usually staled a tail of the
                // wave with it.  Re-check every stale uncommitted
                // candidate in parallel at the fresh epoch instead of
                // paying for each one inline on the commit thread; tiny
                // tails are not worth a pool barrier and stay inline.
                stale.clear();
                for (std::size_t j = c; j < last; ++j) {
                    if (!g.is_dead(roots[j]) && !spec_valid(specs[j])) {
                        stale.push_back(j);
                    }
                }
                if (stale.size() >= 4) {
                    const std::uint64_t epoch_now = commits_done;
                    intra.pool->for_each(stale.size(), [&](std::size_t k) {
                        const std::size_t j = stale[k];
                        Spec& sj = specs[j];
                        sj.fp.cap = intra.footprint_cap;
                        sj.fp.clear();
                        sj.epoch = epoch_now;
#ifdef BOOLGEBRA_AUDIT
                        thread_local aig::audit::ShadowSet shadow;
                        shadow.clear();
                        const aig::audit::ShadowScope audit_scope(shadow);
#endif
                        const aig::FootprintScope scope(sj.fp);
                        sj.check = check_op(g, roots[j], decisions[roots[j]],
                                            params);
#ifdef BOOLGEBRA_AUDIT
                        analysis::verify_read_soundness(
                            sj.fp, shadow, roots[j],
                            to_string(decisions[roots[j]]));
#endif
                    });
                    res.num_speculated += stale.size();
                } else {
                    Spec& sc = specs[c];
                    sc.fp.clear();
                    sc.fp.overflow = false;
                    sc.epoch = commits_done;
                    sc.check = check_op(g, v, decisions[v], params);
                }
            }
            CheckResult check = std::move(specs[c].check);
            if (!check.applicable) {
                continue;
            }
            if (!objective.accepts(check.gain)) {
                ++res.num_rejected;
                continue;
            }
#ifdef BOOLGEBRA_AUDIT
            write_audit.capture(g);
#endif
            apply_candidate(g, v, check.cand);
#ifdef BOOLGEBRA_AUDIT
            write_audit.verify(g, journal,
                               "orchestrate_parallel commit of var " +
                                   std::to_string(v));
#endif
            res.applied[v] = decisions[v];
            ++res.num_applied;
            ++commits_done;
            if (g.num_slots() > dirty[0].size()) {
                for (auto& d : dirty) {
                    d.resize(g.num_slots(), 0);
                }
            }
            for (const Var e : journal) {
                dirty[aig::fp_entry_kind(e)][aig::fp_entry_var(e)] =
                    commits_done;
            }
            journal.clear();
        }
        first = last;
    }

    g.set_change_log(nullptr);
    // Some aspect of u stamped iff some commit journaled u: that is
    // exactly the touched set, and scanning the stamps yields it
    // pre-sorted.
    for (std::size_t u = 0; u < dirty[0].size(); ++u) {
        if (dirty[0][u] != 0 || dirty[1][u] != 0 || dirty[2][u] != 0) {
            res.touched.push_back(static_cast<Var>(u));
        }
    }
    res.final_size = g.num_ands();
    res.final_depth = g.depth();
    return res;
}

DecisionVector uniform_decisions(const Aig& g, OpKind op) {
    return DecisionVector(g.num_slots(), op);
}

void save_decisions_csv(const std::filesystem::path& path,
                        std::span<const OpKind> decisions) {
    CsvTable t;
    t.header = {"node", "decision"};
    for (std::size_t v = 0; v < decisions.size(); ++v) {
        t.rows.push_back(
            {std::to_string(v), std::to_string(op_index(decisions[v]))});
    }
    save_csv(path, t);
}

DecisionVector load_decisions_csv(const std::filesystem::path& path) {
    const auto t = load_csv(path, /*has_header=*/true);
    DecisionVector out;
    out.reserve(t.rows.size());
    for (const auto& row : t.rows) {
        if (row.size() != 2) {
            throw std::runtime_error("decision CSV rows need 2 columns");
        }
        const std::size_t v = std::stoul(row[0]);
        if (v != out.size()) {
            throw std::runtime_error("decision CSV must be densely indexed");
        }
        out.push_back(op_from_index(std::stoi(row[1])));
    }
    return out;
}

}  // namespace bg::opt
