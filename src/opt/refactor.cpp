#include "cut/cut_enum.hpp"
#include "opt/transform.hpp"
#include "tt/factor.hpp"
#include "tt/isop.hpp"
#include "util/contracts.hpp"

/// \file refactor.cpp
/// `rf` — refactoring (Brayton, IWLS'06 style): grow one large
/// reconvergence-driven cut, collapse the cone into a truth table, extract
/// an irredundant SOP in the cheaper phase, factor it algebraically, and
/// replace the cone when the factored form is smaller.

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

namespace {

Candidate candidate_from_factor_form(const tt::FactorForm& ff,
                                     std::vector<Var> operands,
                                     bool complement_out) {
    RecipeBuilder b(operands.size());
    std::vector<Lit> map(ff.nodes().size(), 0);
    for (std::size_t i = 0; i < ff.nodes().size(); ++i) {
        const auto& n = ff.nodes()[i];
        switch (n.kind) {
            case tt::FactorNode::Kind::Const0:
                map[i] = 0;
                break;
            case tt::FactorNode::Kind::Const1:
                map[i] = 1;
                break;
            case tt::FactorNode::Kind::Lit:
                map[i] = Candidate::operand_lit(n.var, n.negated);
                break;
            case tt::FactorNode::Kind::And:
                map[i] = b.add_and(map[static_cast<std::size_t>(n.left)],
                                   map[static_cast<std::size_t>(n.right)]);
                break;
            case tt::FactorNode::Kind::Or:
                map[i] = b.add_or(map[static_cast<std::size_t>(n.left)],
                                  map[static_cast<std::size_t>(n.right)]);
                break;
        }
    }
    Lit out = ff.root() >= 0 ? map[static_cast<std::size_t>(ff.root())] : 0;
    if (complement_out) {
        out = aig::lit_not(out);
    }
    return std::move(b).build(std::move(operands), out);
}

}  // namespace

CheckResult check_refactor(const Aig& g, Var v, const OptParams& params) {
    params.validate();
    if (!g.is_and(v) || g.is_dead(v)) {
        return {};
    }
    const auto leaves = cut::reconv_cut(g, v, params.refactor_max_leaves);
    if (leaves.size() < 2) {
        return {};
    }
    const auto f = cut::cone_function(g, v, leaves);

    bool complement_out = false;
    const auto cover = tt::isop_best_phase(f, complement_out);
    const auto ff = tt::factor(cover);
    Candidate cand = candidate_from_factor_form(ff, leaves, complement_out);

    const MffcResult dying = mffc(g, v, leaves);
    const int added = count_added_nodes(g, v, cand, dying);
    if (added < 0) {
        return {};
    }
    const int gain = dying.size() - added;
    const int min_gain = params.allow_zero_gain ? 0 : 1;
    if (gain < min_gain) {
        return {};
    }
    CheckResult res;
    res.applicable = true;
    res.gain.size_delta = gain;
    cand.est_gain = gain;
    res.cand = std::move(cand);
    res.gain.depth_delta = estimate_depth_delta(g, v, res.cand);
    return res;
}

}  // namespace bg::opt
