#include "opt/lut_map.hpp"

#include <algorithm>

#include "cut/cut_enum.hpp"
#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

namespace {

struct NodeCuts {
    /// Leaf sets of the priority cuts (sorted vars); index 0 is the best.
    std::vector<std::vector<Var>> cuts;
    std::uint32_t arrival = 0;  ///< LUT depth of the best cut
};

/// Merge two leaf sets; returns false when the union exceeds k.
bool merge_leaves(const std::vector<Var>& a, const std::vector<Var>& b,
                  unsigned k, std::vector<Var>& out) {
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() || j < b.size()) {
        Var next = 0;
        if (i < a.size() && (j >= b.size() || a[i] <= b[j])) {
            next = a[i];
            if (j < b.size() && b[j] == next) {
                ++j;
            }
            ++i;
        } else {
            next = b[j];
            ++j;
        }
        out.push_back(next);
        if (out.size() > k) {
            return false;
        }
    }
    return true;
}

}  // namespace

LutMapping map_to_luts(const Aig& g, const LutMapParams& params) {
    BG_EXPECTS(params.k >= 2 && params.k <= 8, "LUT size must be in [2, 8]");
    BG_EXPECTS(params.max_cuts >= 1, "need at least one cut per node");

    // ---- bottom-up priority-cut enumeration ----------------------------
    std::vector<NodeCuts> node_cuts(g.num_slots());
    node_cuts[0].cuts = {{}};  // constant: empty cut
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        node_cuts[g.pi(i)].cuts = {{g.pi(i)}};
        node_cuts[g.pi(i)].arrival = 0;
    }

    const auto order = g.topo_ands();
    for (const Var v : order) {
        const Var u0 = g.fanin0_ref(v).index();
        const Var u1 = g.fanin1_ref(v).index();
        struct Scored {
            std::vector<Var> leaves;
            std::uint32_t arrival;
        };
        std::vector<Scored> candidates;
        std::vector<Var> merged;
        const auto arrival_of = [&](const std::vector<Var>& leaves) {
            std::uint32_t a = 0;
            for (const Var leaf : leaves) {
                if (g.is_and(leaf)) {
                    a = std::max(a, node_cuts[leaf].arrival + 1);
                } else {
                    a = std::max(a, 1u);
                }
            }
            return a;
        };
        for (const auto& ca : node_cuts[u0].cuts) {
            for (const auto& cb : node_cuts[u1].cuts) {
                if (!merge_leaves(ca, cb, params.k, merged)) {
                    continue;
                }
                candidates.push_back(Scored{merged, arrival_of(merged)});
            }
        }
        BG_ASSERT(!candidates.empty(),
                  "every AND has at least the fanin-pair cut for k >= 2");
        std::sort(candidates.begin(), candidates.end(),
                  [](const Scored& a, const Scored& b) {
                      if (a.arrival != b.arrival) {
                          return a.arrival < b.arrival;
                      }
                      return a.leaves.size() < b.leaves.size();
                  });
        auto& nc = node_cuts[v];
        // At most (max_cuts + 1)^2 candidates per node: a flat vector with
        // linear lookup dedupes cheaper than a hash set here.
        std::vector<std::size_t> seen_hashes;
        for (const auto& c : candidates) {
            std::size_t h = 0;
            for (const Var leaf : c.leaves) {
                h = h * 1000003 + leaf;
            }
            if (std::find(seen_hashes.begin(), seen_hashes.end(), h) !=
                seen_hashes.end()) {
                continue;
            }
            seen_hashes.push_back(h);
            nc.cuts.push_back(c.leaves);
            if (nc.cuts.size() >= params.max_cuts) {
                break;
            }
        }
        // Keep the trivial cut available for covering fallbacks.
        nc.cuts.push_back({v});
        nc.arrival = candidates.front().arrival;
    }

    // ---- covering from the POs ------------------------------------------
    LutMapping mapping;
    std::vector<bool> mapped(g.num_slots(), false);
    std::vector<Var> frontier;
    for (const Lit po : g.pos()) {
        const Var v = aig::lit_var(po);
        if (g.is_and(v) && !mapped[v]) {
            mapped[v] = true;
            frontier.push_back(v);
        }
    }
    std::vector<std::uint32_t> lut_level(g.num_slots(), 0);
    while (!frontier.empty()) {
        const Var v = frontier.back();
        frontier.pop_back();
        const auto& best = node_cuts[v].cuts.front();
        Lut lut;
        lut.root = v;
        lut.leaves = best;
        lut.function = cut::cone_function(g, v, lut.leaves);
        mapping.luts.push_back(std::move(lut));
        for (const Var leaf : best) {
            if (g.is_and(leaf) && !mapped[leaf]) {
                mapped[leaf] = true;
                frontier.push_back(leaf);
            }
        }
    }

    // ---- LUT-level depth over the realized cover ------------------------
    // Process LUTs in AIG topological order (roots respect it).
    std::vector<const Lut*> by_root(g.num_slots(), nullptr);
    for (const auto& lut : mapping.luts) {
        by_root[lut.root] = &lut;
    }
    for (const Var v : order) {
        const Lut* lut = by_root[v];
        if (lut == nullptr) {
            continue;
        }
        std::uint32_t lvl = 0;
        for (const Var leaf : lut->leaves) {
            lvl = std::max(lvl, lut_level[leaf]);
        }
        lut_level[v] = lvl + 1;
    }
    for (const Lit po : g.pos()) {
        mapping.depth = std::max(mapping.depth, lut_level[aig::lit_var(po)]);
    }
    return mapping;
}

}  // namespace bg::opt
