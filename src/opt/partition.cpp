#include "opt/partition.hpp"

#include <algorithm>

#include "aig/visited.hpp"
#include "opt/mffc.hpp"
#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Var;

namespace {

constexpr std::size_t k_unowned = ~std::size_t{0};

/// Union-find over region ids with path halving; merges always point the
/// later id at the earlier one, so find() yields the surviving interval.
std::size_t find_region(std::vector<std::size_t>& parent, std::size_t id) {
    while (parent[id] != id) {
        parent[id] = parent[parent[id]];
        id = parent[id];
    }
    return id;
}

/// Union of the fanin cones (inclusive TFI down to PIs) of a region's
/// roots, deduplicated via epoch marks.
std::vector<Var> fanin_cone_union(const Aig& g, std::span<const Var> roots) {
    thread_local aig::EpochMarks seen;
    seen.reset(g.num_slots());
    std::vector<Var> cone;
    std::vector<Var> stack;
    for (const Var r : roots) {
        if (seen.insert(r)) {
            stack.push_back(r);
            cone.push_back(r);
        }
    }
    while (!stack.empty()) {
        const Var v = stack.back();
        stack.pop_back();
        if (!g.is_and(v)) {
            continue;
        }
        for (const aig::NodeRef f : g.fanin_refs(v)) {
            const Var u = f.index();
            if (seen.insert(u)) {
                stack.push_back(u);
                cone.push_back(u);
            }
        }
    }
    std::sort(cone.begin(), cone.end());
    return cone;
}

}  // namespace

PartitionResult partition_regions(const Aig& g, std::span<const Var> roots,
                                  const PartitionOptions& opts) {
    BG_EXPECTS(opts.target_roots >= 1, "regions need at least one root");
    PartitionResult res;
    if (roots.empty()) {
        return res;
    }

    // Interval starts (index into `roots`) of each surviving region, plus
    // a union-find over all region ids ever opened (merged ids map to the
    // surviving earlier id).  `id_start` maps a region id to the root
    // index where it opened — ids survive merges, `starts` entries do not.
    std::vector<std::size_t> starts{0};
    std::vector<std::size_t> parent{0};
    std::vector<std::size_t> id_start{0};
    std::vector<std::size_t> owner(g.num_slots(), k_unowned);
    std::size_t open_roots = 0;  // roots in the currently open region

    for (std::size_t i = 0; i < roots.size(); ++i) {
        const Var root = roots[i];
        BG_EXPECTS(g.is_and(root) && !g.is_dead(root),
                   "partition roots must be live AND nodes");
        std::size_t cur = find_region(parent, parent.size() - 1);
        const MffcResult m = mffc(g, root);
        for (const Var v : m.nodes) {
            if (owner[v] == k_unowned) {
                continue;
            }
            const std::size_t other = find_region(parent, owner[v]);
            if (other == cur) {
                continue;
            }
            // Overlap with an earlier region: collapse every interval
            // after it into one.  `other` is always earlier because
            // owners are stamped in root order.
            BG_ASSERT(other < cur, "owner region must precede current");
            for (std::size_t id = other + 1; id < parent.size(); ++id) {
                parent[find_region(parent, id)] = other;
            }
            while (starts.size() > 1 && starts.back() > id_start[other]) {
                starts.pop_back();
            }
            // Roots between the merged region's start and i all belong to
            // the collapsed interval now.
            open_roots = i - starts.back();
            ++res.merges;
            cur = other;
        }
        for (const Var v : m.nodes) {
            owner[v] = cur;
        }
        ++open_roots;
        if (open_roots >= opts.target_roots && i + 1 < roots.size()) {
            starts.push_back(i + 1);
            parent.push_back(parent.size());
            id_start.push_back(i + 1);
            open_roots = 0;
        }
    }

    res.regions.reserve(starts.size());
    for (std::size_t k = 0; k < starts.size(); ++k) {
        Region r;
        r.first = starts[k];
        r.count = (k + 1 < starts.size() ? starts[k + 1] : roots.size()) -
                  starts[k];
        res.regions.push_back(std::move(r));
    }

    if (opts.with_footprints) {
        for (Region& r : res.regions) {
            const auto span = roots.subspan(r.first, r.count);
            thread_local aig::EpochMarks in_mffc;
            in_mffc.reset(g.num_slots());
            for (const Var root : span) {
                for (const Var v : mffc(g, root).nodes) {
                    if (in_mffc.insert(v)) {
                        r.mffc_nodes.push_back(v);
                    }
                }
            }
            std::sort(r.mffc_nodes.begin(), r.mffc_nodes.end());
            r.footprint = fanin_cone_union(g, span);
        }
    }
    return res;
}

}  // namespace bg::opt
