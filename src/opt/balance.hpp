#pragma once

/// \file balance.hpp
/// AND-tree balancing (ABC's `balance`): rebuild the network bottom-up,
/// collecting each maximal single-fanout AND tree into a flat conjunction
/// and re-associating it as a level-balanced tree.  Size never increases
/// (structural hashing still applies); depth — the paper's second AIG
/// metric — typically drops substantially on chain-heavy logic.

#include "aig/aig.hpp"

namespace bg::opt {

/// Balanced copy of `g` (same PIs/POs, equivalent function).
aig::Aig balance(const aig::Aig& g);

/// Convenience: balance in place, returning the depth change
/// (positive = shallower).
int balance_in_place(aig::Aig& g);

}  // namespace bg::opt
