#include "opt/balance.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

namespace {

struct Balancer {
    const Aig& old;
    Aig out;
    std::vector<Lit> memo;         ///< old var -> new literal (regular)
    std::vector<std::uint32_t> level;  ///< new-graph levels, by new var

    explicit Balancer(const Aig& g)
        : old(g), memo(g.num_slots(), aig::null_lit) {
        memo[0] = aig::lit_false;
        level.assign(1, 0);
    }

    std::uint32_t level_of(Lit l) const { return level[aig::lit_var(l)]; }

    Lit new_and(Lit a, Lit b) {
        const auto slots_before = out.num_slots();
        const Lit r = out.and_(a, b);
        if (out.num_slots() > slots_before) {
            level.push_back(1 + std::max(level_of(a), level_of(b)));
        }
        return r;
    }

    /// Collect the maximal AND-tree rooted at old var `v`: expand fanins
    /// that are non-complemented single-fanout AND nodes; everything else
    /// becomes a leaf literal (in old-graph space).
    void collect_leaves(Var v, std::vector<Lit>& leaves) const {
        for (const aig::NodeRef f : old.fanin_refs(v)) {
            const Var u = f.index();
            if (!f.complemented() && old.is_and(u) &&
                old.ref_count(u) == 1) {
                collect_leaves(u, leaves);
            } else {
                leaves.push_back(f.lit());
            }
        }
    }

    /// Translate old literal to the new graph, balancing on the way.
    Lit build(Lit old_lit) {
        const Var v = aig::lit_var(old_lit);
        if (memo[v] == aig::null_lit) {
            BG_ASSERT(old.is_and(v), "PIs must be pre-seeded");
            std::vector<Lit> leaves;
            collect_leaves(v, leaves);
            // Translate leaves first.
            std::vector<Lit> ops;
            ops.reserve(leaves.size());
            for (const Lit l : leaves) {
                ops.push_back(build(l));
            }
            // Greedy balanced re-association: repeatedly AND the two
            // shallowest operands (Huffman-style on levels).
            while (ops.size() > 1) {
                std::sort(ops.begin(), ops.end(), [&](Lit a, Lit b) {
                    return level_of(a) > level_of(b);
                });
                const Lit b = ops.back();
                ops.pop_back();
                const Lit a = ops.back();
                ops.pop_back();
                ops.push_back(new_and(a, b));
            }
            memo[v] = ops.empty() ? aig::lit_true : ops[0];
        }
        return aig::lit_not_cond(memo[v], aig::lit_is_compl(old_lit));
    }
};

}  // namespace

Aig balance(const Aig& g) {
    Balancer b(g);
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        const Lit pi = b.out.add_pi();
        b.memo[g.pi(i)] = pi;
        b.level.push_back(0);
    }
    for (const Lit po : g.pos()) {
        b.out.add_po(b.build(po));
    }
    return b.out;
}

int balance_in_place(Aig& g) {
    const auto before = static_cast<int>(g.depth());
    Aig balanced = balance(g);
    const auto after = static_cast<int>(balanced.depth());
    g = std::move(balanced);
    return before - after;
}

}  // namespace bg::opt
