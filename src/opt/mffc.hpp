#pragma once

/// \file mffc.hpp
/// Maximum fanout-free cone computation.  The MFFC of a node w.r.t. a cut
/// is the set of AND nodes that die when the node is replaced: every node
/// whose fanouts all lie inside the cone.  All three optimizations compute
/// their gain as |MFFC| minus the nodes a replacement structure adds.
/// The computation here is strictly read-only (simulated dereferencing).

#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace bg::opt {

struct MffcResult {
    /// Nodes that would die, root first (a superset-free exact set under
    /// the cut boundary; nodes below the leaves are never included).
    std::vector<aig::Var> nodes;

    int size() const { return static_cast<int>(nodes.size()); }
    bool contains(aig::Var v) const;
};

/// MFFC of `root` bounded below by `leaves` (recursion never crosses a
/// leaf).  `root` itself is always part of the result.
MffcResult mffc(const aig::Aig& g, aig::Var root,
                std::span<const aig::Var> leaves);

/// Unbounded MFFC (recursion stops only at PIs and shared nodes).
MffcResult mffc(const aig::Aig& g, aig::Var root);

}  // namespace bg::opt
