#include "opt/rewrite_lib.hpp"

#include <bit>

#include "tt/factor.hpp"
#include "tt/isop.hpp"
#include "tt/npn.hpp"
#include "tt/truth_table.hpp"
#include "util/contracts.hpp"

namespace bg::opt {

using aig::Lit;
using aig::Var;

namespace {

constexpr std::uint16_t proj[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

std::uint16_t cof0(std::uint16_t f, unsigned i) {
    const std::uint16_t lo = f & static_cast<std::uint16_t>(~proj[i]);
    return static_cast<std::uint16_t>(lo | (lo << (1U << i)));
}

std::uint16_t cof1(std::uint16_t f, unsigned i) {
    const std::uint16_t hi = f & proj[i];
    return static_cast<std::uint16_t>(hi | (hi >> (1U << i)));
}

unsigned support_of(std::uint16_t f) {
    unsigned mask = 0;
    for (unsigned i = 0; i < 4; ++i) {
        if (cof0(f, i) != cof1(f, i)) {
            mask |= 1U << i;
        }
    }
    return mask;
}

/// Replay a sub-structure into a builder, returning the mapped output.
Lit emit(const RewriteLibrary::Structure& s, RecipeBuilder& b) {
    std::vector<Lit> map(5 + s.steps.size());
    map[0] = 0;  // const0
    for (std::size_t i = 0; i < 4; ++i) {
        map[1 + i] = Candidate::operand_lit(i);
    }
    const auto resolve = [&](Lit rl) {
        return aig::lit_not_cond(map[aig::lit_var(rl)],
                                 aig::lit_is_compl(rl));
    };
    for (std::size_t i = 0; i < s.steps.size(); ++i) {
        map[5 + i] = b.add_and(resolve(s.steps[i].in0),
                               resolve(s.steps[i].in1));
    }
    return resolve(s.out);
}

/// Convert a factored form over <= 4 variables into a structure.
RewriteLibrary::Structure from_factor_form(const tt::FactorForm& ff,
                                           bool complement_out) {
    RecipeBuilder b(4);
    std::vector<Lit> map(ff.nodes().size(), 0);
    for (std::size_t i = 0; i < ff.nodes().size(); ++i) {
        const auto& n = ff.nodes()[i];
        switch (n.kind) {
            case tt::FactorNode::Kind::Const0:
                map[i] = 0;
                break;
            case tt::FactorNode::Kind::Const1:
                map[i] = 1;
                break;
            case tt::FactorNode::Kind::Lit:
                map[i] = Candidate::operand_lit(n.var, n.negated);
                break;
            case tt::FactorNode::Kind::And:
                map[i] = b.add_and(map[static_cast<std::size_t>(n.left)],
                                   map[static_cast<std::size_t>(n.right)]);
                break;
            case tt::FactorNode::Kind::Or:
                map[i] = b.add_or(map[static_cast<std::size_t>(n.left)],
                                  map[static_cast<std::size_t>(n.right)]);
                break;
        }
    }
    Lit out = ff.root() >= 0 ? map[static_cast<std::size_t>(ff.root())] : 0;
    if (complement_out) {
        out = aig::lit_not(out);
    }
    Candidate c = std::move(b).build({0, 0, 0, 0}, out);
    RewriteLibrary::Structure s;
    s.steps = std::move(c.steps);
    s.out = c.out;
    return s;
}

}  // namespace

std::uint16_t RewriteLibrary::evaluate(const Structure& s) {
    std::vector<std::uint16_t> val(5 + s.steps.size(), 0);
    for (unsigned i = 0; i < 4; ++i) {
        val[1 + i] = proj[i];
    }
    const auto resolve = [&](Lit rl) -> std::uint16_t {
        const std::uint16_t v = val[aig::lit_var(rl)];
        return aig::lit_is_compl(rl) ? static_cast<std::uint16_t>(~v) : v;
    };
    for (std::size_t i = 0; i < s.steps.size(); ++i) {
        val[5 + i] = static_cast<std::uint16_t>(resolve(s.steps[i].in0) &
                                                resolve(s.steps[i].in1));
    }
    return resolve(s.out);
}

RewriteLibrary& RewriteLibrary::instance() {
    // One library per thread: the memo tables are not synchronized, and a
    // per-thread rebuild costs little (222 canonical classes).
    static thread_local RewriteLibrary lib;
    return lib;
}

RewriteLibrary::Structure RewriteLibrary::decompose(std::uint16_t f) {
    if (const auto it = decomp_cache_.find(f); it != decomp_cache_.end()) {
        return it->second;
    }
    Structure best;
    bool have_best = false;
    const auto consider = [&](Structure s) {
        if (!have_best || s.num_gates() < best.num_gates()) {
            best = std::move(s);
            have_best = true;
        }
    };

    // Constants and single literals.
    if (f == 0x0000 || f == 0xFFFF) {
        Structure s;
        s.out = f == 0x0000 ? 0U : 1U;
        decomp_cache_.emplace(f, s);
        return s;
    }
    for (unsigned i = 0; i < 4; ++i) {
        if (f == proj[i] ||
            f == static_cast<std::uint16_t>(~proj[i])) {
            Structure s;
            s.out = Candidate::operand_lit(i, f != proj[i]);
            decomp_cache_.emplace(f, s);
            return s;
        }
    }

    // Shannon-style decompositions on every support variable.
    const unsigned sup = support_of(f);
    for (unsigned i = 0; i < 4; ++i) {
        if (((sup >> i) & 1U) == 0) {
            continue;
        }
        const std::uint16_t f0 = cof0(f, i);
        const std::uint16_t f1 = cof1(f, i);
        RecipeBuilder b(4);
        const Lit x = Candidate::operand_lit(i);
        Lit out = 0;
        if (f0 == 0x0000) {
            out = b.add_and(x, emit(decompose(f1), b));
        } else if (f1 == 0x0000) {
            out = b.add_and(aig::lit_not(x), emit(decompose(f0), b));
        } else if (f0 == 0xFFFF) {
            out = aig::lit_not(
                b.add_and(x, aig::lit_not(emit(decompose(f1), b))));
        } else if (f1 == 0xFFFF) {
            out = aig::lit_not(b.add_and(
                aig::lit_not(x), aig::lit_not(emit(decompose(f0), b))));
        } else if (f0 == static_cast<std::uint16_t>(~f1)) {
            // f = !x f0 + x !f0 = x XOR f0.
            out = b.add_xor(x, emit(decompose(f0), b));
        } else {
            const Lit m1 = emit(decompose(f1), b);
            const Lit m0 = emit(decompose(f0), b);
            out = b.add_or(b.add_and(x, m1),
                           b.add_and(aig::lit_not(x), m0));
        }
        Candidate c = std::move(b).build({0, 0, 0, 0}, out);
        Structure s;
        s.steps = std::move(c.steps);
        s.out = c.out;
        consider(std::move(s));
    }

    // Factored-ISOP candidates in both phases.
    const auto t = tt::TruthTable::from_u16(f, 4);
    consider(from_factor_form(tt::factor(tt::isop(t)), false));
    consider(from_factor_form(tt::factor(tt::isop(~t)), true));

    BG_ASSERT(have_best, "decomposition must yield at least one structure");
    BG_ASSERT(evaluate(best) == f, "decomposed structure mis-evaluates");
    decomp_cache_.emplace(f, best);
    return best;
}

const RewriteLibrary::Structure& RewriteLibrary::structure_for(
    std::uint16_t func) {
    if (const auto it = cache_.find(func); it != cache_.end()) {
        return it->second;
    }
    const auto canon = tt::npn_canonize(func);
    auto cit = canon_cache_.find(canon.canon);
    if (cit == canon_cache_.end()) {
        cit = canon_cache_.emplace(canon.canon, decompose(canon.canon)).first;
    }
    const Structure& canon_struct = cit->second;

    // func == npn_apply(canon, inverse(to_canon)); realizing `func` means
    // feeding canon's leaf slot j with x_{it.perm[j]} ^ it.neg_j and
    // complementing the output by it.output_neg.
    const auto inv = tt::npn_invert(canon.to_canon);
    Structure s = canon_struct;
    const auto remap = [&](Lit rl) -> Lit {
        const Var idx = aig::lit_var(rl);
        if (idx >= 1 && idx <= 4) {
            const unsigned slot = idx - 1;
            const unsigned new_slot = inv.perm[slot];
            const bool neg = ((inv.input_neg >> slot) & 1U) != 0;
            return Candidate::operand_lit(new_slot,
                                          aig::lit_is_compl(rl) != neg);
        }
        return rl;
    };
    for (auto& step : s.steps) {
        step.in0 = remap(step.in0);
        step.in1 = remap(step.in1);
        // Keep the in0 <= in1 normalization recipes rely upon for dedup.
        if (step.in0 > step.in1) {
            std::swap(step.in0, step.in1);
        }
    }
    s.out = remap(s.out);
    if (inv.output_neg) {
        s.out = aig::lit_not(s.out);
    }
    BG_ASSERT(evaluate(s) == func,
              "NPN-mapped rewrite structure mis-evaluates");
    return cache_.emplace(func, std::move(s)).first->second;
}

}  // namespace bg::opt
