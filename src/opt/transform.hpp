#pragma once

/// \file transform.hpp
/// The unified transformation model shared by rewrite / resub / refactor:
///
///  * a Candidate is a small recipe that rebuilds the root's function from
///    existing nodes (cut leaves or divisors) plus fresh AND steps;
///  * check_op() evaluates one operation at one node *read-only* and
///    returns (applicable, gain, candidate) — this feeds both the paper's
///    static node features and the orchestrated traversal;
///  * apply_candidate() materializes a candidate through the structural
///    hash and redirects the root (ABC's Dec_GraphUpdateNetwork step).
///
/// Gain accounting is exact: gain = |MFFC(root, operands)| - nodes the
/// recipe adds, where a structural-hash hit inside the dying MFFC counts
/// as an addition (the node survives by being reused).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "opt/mffc.hpp"
#include "util/cancel.hpp"

namespace bg::opt {

/// The paper's per-node manipulation decisions (§III-B): 0=rw, 1=rs, 2=rf.
enum class OpKind : std::uint8_t {
    Rewrite = 0,
    Resub = 1,
    Refactor = 2,
    None = 3,
};

/// Encode as the paper's integer indices (rw=0, rs=1, rf=2; none=3).
int op_index(OpKind op);
OpKind op_from_index(int idx);
std::string to_string(OpKind op);

/// Tuning knobs for the three operations (defaults follow ABC's).
struct OptParams {
    unsigned rewrite_cut_size = 4;
    std::size_t rewrite_max_cuts = 24;
    unsigned refactor_max_leaves = 10;
    unsigned resub_max_leaves = 8;
    std::size_t resub_max_divisors = 48;
    /// Accept transformations with zero gain (ABC's -z); default off.
    bool allow_zero_gain = false;

    /// Cooperative cancel point, polled by the orchestrate node walks
    /// (sequential loop and parallel commit walk) and by run_flow stage
    /// boundaries.  Null (the default) compiles to a pointer test and
    /// leaves results bit-identical to the cancel-free code path; a
    /// stopped token raises bg::CancelledError.  Not an optimization
    /// knob: validate() ignores it.
    const bg::CancelToken* cancel = nullptr;

    /// Largest reconvergence cut the refactor/resub windows may grow to;
    /// beyond this the 2^leaves truth tables dominate the runtime.
    static constexpr unsigned max_window_leaves = 16;

    /// Reject out-of-range limits with a ContractViolation instead of
    /// silently misbehaving (a cut size of 0 enumerates nothing, one above
    /// 4 overruns the NPN rewrite library, oversized windows explode).
    /// Every pass entry point (check_op, orchestrate, standalone_pass,
    /// compute_static_features, run_flow) validates once.
    void validate() const;
};

/// Multi-metric outcome of one local transformation, replacing the old
/// bare `int gain`.  `size_delta` is the paper's exact AND-count gain;
/// `depth_delta` is a *local* estimate — the root's level minus the level
/// the replacement recipe would have, computed from the operands' current
/// level annotation (see Aig::update_levels; meaningless when levels are
/// stale).  Positive deltas are improvements on both axes.
struct Gain {
    int size_delta = 0;
    int depth_delta = 0;
};

/// A replacement recipe for one root node.
///
/// Recipe-space literals: index 0 is constant false, indices 1..P refer to
/// operands[0..P-1] (existing live vars), index P+1+i refers to steps[i].
/// A literal is 2*index + complement, as in the AIG itself.
struct Candidate {
    struct Step {
        aig::Lit in0 = 0;
        aig::Lit in1 = 0;
    };

    std::vector<aig::Var> operands;
    std::vector<Step> steps;
    aig::Lit out = 0;  ///< recipe-space literal of the replacement
    int est_gain = 0;  ///< |MFFC| - added nodes, exact absent cascades

    std::size_t num_steps() const { return steps.size(); }
    /// Recipe literal for operand i.
    static aig::Lit operand_lit(std::size_t i, bool compl_edge = false) {
        return aig::make_lit(static_cast<aig::Var>(i + 1), compl_edge);
    }
    aig::Lit step_lit(std::size_t i, bool compl_edge = false) const {
        return aig::make_lit(
            static_cast<aig::Var>(operands.size() + 1 + i), compl_edge);
    }
};

/// Outcome of a read-only applicability check.
struct CheckResult {
    bool applicable = false;
    /// Meaningful when applicable (size_delta >= 1, or 0 with -z).
    Gain gain;
    Candidate cand;
};

/// Helper used by the op engines: builds recipes with local structural
/// hashing and constant folding in recipe space.
class RecipeBuilder {
public:
    explicit RecipeBuilder(std::size_t num_operands)
        : num_operands_(num_operands) {}

    aig::Lit const0() const { return 0; }
    aig::Lit operand(std::size_t i, bool compl_edge = false) const;
    aig::Lit add_and(aig::Lit a, aig::Lit b);
    aig::Lit add_or(aig::Lit a, aig::Lit b) {
        return aig::lit_not(add_and(aig::lit_not(a), aig::lit_not(b)));
    }
    aig::Lit add_xor(aig::Lit a, aig::Lit b) {
        return add_or(add_and(a, aig::lit_not(b)),
                      add_and(aig::lit_not(a), b));
    }

    /// Finish: move the accumulated steps into a candidate.
    Candidate build(std::vector<aig::Var> operands, aig::Lit out) &&;

    std::size_t num_steps() const { return steps_.size(); }

private:
    std::size_t num_operands_;
    std::vector<Candidate::Step> steps_;
    std::vector<std::uint64_t> keys_;  // parallel to steps_, for dedup
};

/// Count the AND nodes the candidate would add to `g`, treating a
/// structural-hash hit on a node in `dying` as an addition (reuse keeps it
/// alive).  Returns -1 when the recipe resolves to the root itself (no-op).
int count_added_nodes(const aig::Aig& g, aig::Var root, const Candidate& cand,
                      const MffcResult& dying);

/// Local depth delta of replacing `root` by `cand`: the root's current
/// level minus the recipe output's level, where each recipe step sits one
/// level above its deepest input and operands keep their graph levels.
/// Valid only while g's level annotation is fresh.
int estimate_depth_delta(const aig::Aig& g, aig::Var root,
                         const Candidate& cand);

/// Materialize the candidate and redirect `root`.  Returns the measured
/// AND-count change plus the pre-apply local depth estimate (positive =
/// smaller / shallower); cascading merges can make size_delta exceed
/// est_gain.  When the recipe resolves to root itself the graph is left
/// untouched and a zero Gain is returned.
Gain apply_candidate(aig::Aig& g, aig::Var root, const Candidate& cand);

/// Read-only applicability check of one operation at one node.
CheckResult check_op(const aig::Aig& g, aig::Var v, OpKind op,
                     const OptParams& params = {});

// Individual engines (exposed for tests and benchmarks).
CheckResult check_rewrite(const aig::Aig& g, aig::Var v,
                          const OptParams& params = {});
CheckResult check_refactor(const aig::Aig& g, aig::Var v,
                           const OptParams& params = {});
CheckResult check_resub(const aig::Aig& g, aig::Var v,
                        const OptParams& params = {});

}  // namespace bg::opt
