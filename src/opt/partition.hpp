#pragma once

/// \file partition.hpp
/// MFFC-disjoint region partitioning for intra-design parallel
/// optimization.
///
/// A *region* is a contiguous run of the candidate root list (which the
/// orchestrator takes in topological order), chosen so that no two
/// regions contain roots with overlapping MFFCs: a transform committed at
/// a root only ever deletes nodes inside that root's MFFC, so
/// MFFC-disjoint regions can be *speculated* concurrently — their
/// structural deletions cannot collide.  Contiguity is the determinism
/// lever: committing region-by-region in order visits roots in exactly
/// the sequential topological order, which is what pins the parallel
/// orchestrator bit-identical to the sequential one.
///
/// Overlap handling: MFFCs are computed root-by-root in topological
/// order with owner stamping.  When a root's MFFC reaches into a node
/// already owned by an earlier region, the two MFFCs overlap — and since
/// an MFFC overlap implies one root lies in the other's cone, the
/// offending region is always a *recent* one, so regions r..current
/// collapse into one contiguous interval (tracked by `merges`).

#include <cstddef>
#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace bg::opt {

struct Region {
    std::size_t first = 0;  ///< index of the first root in the root list
    std::size_t count = 0;  ///< number of roots in the region

    /// Populated only when PartitionOptions::with_footprints is set
    /// (invariant tests and diagnostics; the runtime conflict mechanism
    /// is the recorded per-candidate read-set, not these):
    std::vector<aig::Var> mffc_nodes;  ///< union of the roots' MFFCs
    std::vector<aig::Var> footprint;   ///< union of the roots' fanin cones
};

struct PartitionOptions {
    /// Preferred roots per region; regions may exceed this through
    /// overlap merges and the final region may fall short of it.
    std::size_t target_roots = 32;
    /// Also compute mffc_nodes / footprint per region (costs an extra
    /// cone walk per root; off on the runtime path).
    bool with_footprints = false;
};

struct PartitionResult {
    std::vector<Region> regions;
    std::size_t merges = 0;  ///< overlap-triggered region collapses
};

/// Partition `roots` (topologically ordered candidate roots, e.g.
/// `g.topo_ands()`) into MFFC-disjoint contiguous regions.  Every root
/// lands in exactly one region and region order preserves root order.
PartitionResult partition_regions(const aig::Aig& g,
                                  std::span<const aig::Var> roots,
                                  const PartitionOptions& opts = {});

}  // namespace bg::opt
