#include <algorithm>

#include "cut/cut_enum.hpp"
#include "opt/rewrite_lib.hpp"
#include "opt/transform.hpp"
#include "util/contracts.hpp"

/// \file rewrite.cpp
/// `rw` — DAG-aware 4-cut rewriting (Mishchenko et al., DAC'06): enumerate
/// the 4-feasible cuts of a node, look the cut function up in the
/// pre-optimized structure library, and keep the cut whose replacement
/// (with structural-hash reuse) frees the most nodes.

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

namespace {

/// Lift a cut function over L <= 4 leaves to a 16-bit 4-variable function.
/// The replication invariant of TruthTable makes this a truncation.
std::uint16_t lift_to_u16(const tt::TruthTable& t) {
    BG_ASSERT(t.num_vars() <= 4, "rewrite cut function too wide");
    return static_cast<std::uint16_t>(t.words()[0] & 0xFFFFULL);
}

}  // namespace

CheckResult check_rewrite(const Aig& g, Var v, const OptParams& params) {
    params.validate();
    if (!g.is_and(v) || g.is_dead(v)) {
        return {};
    }
    const auto cuts = cut::enumerate_cuts(g, v, params.rewrite_cut_size,
                                          params.rewrite_max_cuts);
    auto& lib = RewriteLibrary::instance();

    CheckResult best;
    for (const auto& c : cuts) {
        const std::uint16_t func = lift_to_u16(c.function);
        const auto& structure = lib.structure_for(func);

        Candidate cand;
        // Pad operands to the library's four slots; padding slots are
        // never referenced (the function does not depend on them).
        cand.operands = c.leaves;
        while (cand.operands.size() < 4) {
            cand.operands.push_back(c.leaves.front());
        }
        cand.steps = structure.steps;
        cand.out = structure.out;

        const MffcResult dying = mffc(g, v, c.leaves);
        const int added = count_added_nodes(g, v, cand, dying);
        if (added < 0) {
            continue;  // recipe resolves to the root itself
        }
        const int gain = dying.size() - added;
        if (!best.applicable || gain > best.gain.size_delta) {
            best.applicable = true;
            best.gain.size_delta = gain;
            cand.est_gain = gain;
            best.cand = std::move(cand);
        }
    }
    const int min_gain = params.allow_zero_gain ? 0 : 1;
    if (!best.applicable || best.gain.size_delta < min_gain) {
        return {};
    }
    best.gain.depth_delta = estimate_depth_delta(g, v, best.cand);
    return best;
}

}  // namespace bg::opt
