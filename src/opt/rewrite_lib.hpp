#pragma once

/// \file rewrite_lib.hpp
/// Pre-computed replacement structures for 4-input cut functions, the
/// ingredient that makes `rw` fast (ABC ships an equivalent table of
/// optimized subgraphs per NPN class).
///
/// Structures are built lazily: a function is NPN-canonized, the canonical
/// class is synthesized once by a memoized decomposition search (Shannon /
/// AND / OR / XOR special cases, plus factored-ISOP candidates), and the
/// result is mapped back through the inverse transform.  Every structure
/// is verified by evaluation before being cached, so a transform-direction
/// bug cannot silently corrupt a network.

#include <cstdint>
#include <unordered_map>  // bg-lint: allow(container): lazy NPN caches

#include "opt/transform.hpp"

namespace bg::opt {

class RewriteLibrary {
public:
    /// A recipe over exactly four leaf slots (operand indices 0..3).
    struct Structure {
        std::vector<Candidate::Step> steps;
        aig::Lit out = 0;

        std::size_t num_gates() const { return steps.size(); }
    };

    RewriteLibrary() = default;

    /// Structure computing the 4-variable function `func` over the leaf
    /// slots.  Cached; subsequent calls are O(1).
    const Structure& structure_for(std::uint16_t func);

    /// Number of fully cached functions (diagnostics).
    std::size_t cache_size() const { return cache_.size(); }
    /// Number of canonical classes synthesized so far (diagnostics).
    std::size_t classes_built() const { return canon_cache_.size(); }

    /// Process-wide shared instance (single-threaded use).
    static RewriteLibrary& instance();

    /// Evaluate a structure over the four projection functions; exposed
    /// for tests.
    static std::uint16_t evaluate(const Structure& s);

private:
    Structure decompose(std::uint16_t func);

    // Lazily grown, never walked on the hot path (one O(1) probe per
    // structure_for call); a 64k-slot direct-index array per cache per
    // thread would trade ~6 MB/thread for nothing measurable.
    // bg-lint: allow(container): lazy NPN caches, O(1) probes only
    std::unordered_map<std::uint16_t, Structure> cache_;
    // bg-lint: allow(container): lazy NPN caches, O(1) probes only
    std::unordered_map<std::uint16_t, Structure> canon_cache_;
    // bg-lint: allow(container): lazy NPN caches, O(1) probes only
    std::unordered_map<std::uint16_t, Structure> decomp_cache_;
};

}  // namespace bg::opt
