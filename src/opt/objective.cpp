#include "opt/objective.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace bg::opt {

CostVector Objective::measure(const aig::Aig& g) const {
    CostVector c;
    c.size = g.num_ands();
    c.depth = g.depth();
    c.value = scalar(c.size, c.depth);
    return c;
}

CostVector MappedLutObjective::measure(const aig::Aig& g) const {
    CostVector c;
    c.size = g.num_ands();
    c.depth = g.depth();
    c.value = static_cast<double>(map_to_luts(g, params_).num_luts());
    return c;
}

WeightedObjective::WeightedObjective(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
    if (alpha < 0.0 || beta < 0.0 || (alpha == 0.0 && beta == 0.0)) {
        throw std::invalid_argument(
            "weighted objective needs alpha, beta >= 0 and not both zero");
    }
}

std::string WeightedObjective::name() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "weighted:%g,%g", alpha_, beta_);
    return buf;
}

const Objective& size_objective() {
    static const SizeObjective obj;
    return obj;
}

namespace {

double parse_number(const std::string& s) {
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (s.empty() || used != s.size()) {
        throw std::invalid_argument("objective spec: bad number '" + s + "'");
    }
    return v;
}

}  // namespace

ObjectivePtr make_objective(const std::string& spec) {
    if (spec == "size") {
        return std::make_shared<SizeObjective>();
    }
    if (spec == "depth") {
        return std::make_shared<DepthObjective>();
    }
    if (spec == "luts") {
        return std::make_shared<MappedLutObjective>();
    }
    if (spec.starts_with("luts:")) {
        // The bound mirrors map_to_luts' own contract so a bad K fails
        // here, at spec-parse time, not inside the first flow.
        const double k = parse_number(spec.substr(5));
        if (k < 2.0 || k > 8.0 || k != static_cast<unsigned>(k)) {
            throw std::invalid_argument(
                "objective spec: LUT K must be an integer in [2, 8]");
        }
        LutMapParams p;
        p.k = static_cast<unsigned>(k);
        return std::make_shared<MappedLutObjective>(p);
    }
    if (spec.starts_with("weighted:")) {
        const std::string rest = spec.substr(9);
        const auto comma = rest.find(',');
        if (comma == std::string::npos) {
            throw std::invalid_argument(
                "objective spec: weighted needs 'weighted:alpha,beta'");
        }
        return std::make_shared<WeightedObjective>(
            parse_number(rest.substr(0, comma)),
            parse_number(rest.substr(comma + 1)));
    }
    throw std::invalid_argument(
        "unknown objective '" + spec +
        "' (use size | depth | luts[:K] | weighted:alpha,beta)");
}

}  // namespace bg::opt
