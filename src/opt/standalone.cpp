#include "opt/standalone.hpp"

namespace bg::opt {

OrchestrationResult standalone_pass(aig::Aig& g, OpKind op,
                                    const OptParams& params) {
    const auto decisions = uniform_decisions(g, op);
    return orchestrate(g, decisions, params);
}

int standalone_to_convergence(aig::Aig& g, OpKind op, unsigned max_rounds,
                              const OptParams& params) {
    int total = 0;
    for (unsigned round = 0; round < max_rounds; ++round) {
        const auto res = standalone_pass(g, op, params);
        total += res.reduction();
        if (res.reduction() <= 0) {
            break;
        }
    }
    return total;
}

}  // namespace bg::opt
