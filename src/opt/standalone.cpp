#include "opt/standalone.hpp"

namespace bg::opt {

OrchestrationResult standalone_pass(aig::Aig& g, OpKind op,
                                    const OptParams& params,
                                    const Objective& objective) {
    const auto decisions = uniform_decisions(g, op);
    return orchestrate(g, decisions, params, objective);
}

int standalone_to_convergence(aig::Aig& g, OpKind op, unsigned max_rounds,
                              const OptParams& params,
                              const Objective& objective) {
    int total = 0;
    for (unsigned round = 0; round < max_rounds; ++round) {
        const auto res = standalone_pass(g, op, params, objective);
        total += res.reduction();
        // Under size this is the historical `reduction() <= 0` stop; other
        // objectives keep iterating while their own metric improves.
        const Gain round_gain{res.reduction(), res.depth_reduction()};
        if (objective.local_gain(round_gain) <= 0.0) {
            break;
        }
    }
    return total;
}

}  // namespace bg::opt
