#include <algorithm>

#include "aig/footprint.hpp"
#include "aig/visited.hpp"
#include "cut/cut_enum.hpp"
#include "opt/transform.hpp"
#include "util/contracts.hpp"

/// \file resub.cpp
/// `rs` — window-based resubstitution: express a node as a small function
/// of *divisors* (other nodes already present in the window) so its MFFC
/// can be freed.  Checks 0-resub (equal / complemented divisor), 1-resub
/// (AND/OR of two divisors in any polarity) and 2-resub (three-divisor
/// two-level forms).  Divisor and root functions are computed over the
/// same window leaves, so a truth-table match implies global equivalence.

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;
using tt::TruthTable;

namespace {

/// Transitive fanout of v (including v) marked into epoch scratch —
/// replaces the per-call hash set; thread_local at the call site keeps
/// concurrent region walks independent.  Every member's fanout list is
/// read, so every member is footprint-touched: a later fanout change
/// anywhere in the TFO invalidates a speculated check.
void tfo_mark(const Aig& g, Var v, aig::EpochMarks& out) {
    out.reset(g.num_slots());
    out.set(v);
    std::vector<Var> stack{v};
    while (!stack.empty()) {
        const Var u = stack.back();
        stack.pop_back();
        aig::fp_touch(u, aig::Read::Fanout);
        for (const Var w : g.fanouts(u)) {
            if (out.insert(w)) {
                stack.push_back(w);
            }
        }
    }
}

}  // namespace

CheckResult check_resub(const Aig& g, Var v, const OptParams& params) {
    params.validate();
    if (!g.is_and(v) || g.is_dead(v)) {
        return {};
    }
    const auto leaves = cut::reconv_cut(g, v, params.resub_max_leaves);
    if (leaves.size() < 2) {
        return {};
    }
    auto fns = cut::cone_functions(g, v, leaves);
    const MffcResult dying = mffc(g, v, leaves);
    thread_local aig::EpochMarks dying_set;
    dying_set.reset(g.num_slots());
    for (const Var d : dying.nodes) {
        dying_set.set(d);
    }

    // Divisors: window nodes outside the dying cone, plus side nodes whose
    // support lies inside the window and that are not in the root's TFO.
    std::vector<Var> divisors;
    for (const auto& [var, fn] : fns) {
        if (var != v && !dying_set.test(var)) {
            divisors.push_back(var);
        }
    }
    std::sort(divisors.begin(), divisors.end());  // deterministic order

    thread_local aig::EpochMarks tfo;
    tfo_mark(g, v, tfo);
    bool grew = true;
    while (grew && divisors.size() < params.resub_max_divisors) {
        grew = false;
        const auto snapshot = divisors;
        for (const Var d : snapshot) {
            aig::fp_touch(d, aig::Read::Fanout);  // scans d's fanout list
            for (const Var w : g.fanouts(d)) {
                aig::fp_touch(w, aig::Read::Struct);  // reads w's fanins
                if (fns.contains(w) || tfo.test(w) ||
                    dying_set.test(w)) {
                    continue;
                }
                const auto [f0, f1] = g.fanin_refs(w);
                if (!fns.contains(f0.index()) || !fns.contains(f1.index())) {
                    continue;
                }
                const auto val = [&](aig::NodeRef r) {
                    const auto t = fns.at(r.index());
                    return r.complemented() ? ~t : t;
                };
                fns.emplace(w, val(f0) & val(f1));
                divisors.push_back(w);
                grew = true;
                if (divisors.size() >= params.resub_max_divisors) {
                    break;
                }
            }
            if (divisors.size() >= params.resub_max_divisors) {
                break;
            }
        }
    }

    const TruthTable& target = fns.at(v);
    const int saved = dying.size();
    const int min_gain = params.allow_zero_gain ? 0 : 1;

    CheckResult best;
    const auto consider = [&](Candidate cand) {
        const int added = count_added_nodes(g, v, cand, dying);
        if (added < 0) {
            return;
        }
        const int gain = saved - added;
        if (!best.applicable || gain > best.gain.size_delta) {
            best.applicable = true;
            best.gain.size_delta = gain;
            cand.est_gain = gain;
            best.cand = std::move(cand);
        }
    };

    // Flatten the divisor functions into contiguous word buffers so the
    // pair/triple matching loops below run without heap allocation (this
    // is the hot path of the whole library).
    const std::size_t words = target.num_words();
    const std::size_t nd = divisors.size();
    std::vector<std::uint64_t> div_words(nd * words);
    for (std::size_t i = 0; i < nd; ++i) {
        const auto& w = fns.at(divisors[i]).words();
        std::copy(w.begin(), w.end(), div_words.begin() +
                                          static_cast<std::ptrdiff_t>(i * words));
    }
    const std::uint64_t* tgt = target.words().data();
    const auto dw = [&](std::size_t i) { return &div_words[i * words]; };

    // match: value == target (r=+1), == ~target (r=-1), else 0; where
    // value[w] = (a[w]^ca) & (b[w]^cb)  [cb2/c used for the 3-input forms].
    const auto match2 = [&](const std::uint64_t* a, std::uint64_t ca,
                            const std::uint64_t* b, std::uint64_t cb) -> int {
        bool pos = true;
        bool neg = true;
        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t val = (a[w] ^ ca) & (b[w] ^ cb);
            pos &= val == tgt[w];
            neg &= val == ~tgt[w];
            if (!pos && !neg) {
                return 0;
            }
        }
        return pos ? 1 : -1;
    };
    const auto match3 = [&](const std::uint64_t* a, std::uint64_t ca,
                            const std::uint64_t* b, std::uint64_t cb,
                            const std::uint64_t* c, std::uint64_t cc,
                            bool inner_or) -> int {
        bool pos = true;
        bool neg = true;
        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t bb = b[w] ^ cb;
            const std::uint64_t ccw = c[w] ^ cc;
            const std::uint64_t inner = inner_or ? (bb | ccw) : (bb & ccw);
            const std::uint64_t val = (a[w] ^ ca) & inner;
            pos &= val == tgt[w];
            neg &= val == ~tgt[w];
            if (!pos && !neg) {
                return 0;
            }
        }
        return pos ? 1 : -1;
    };
    constexpr std::uint64_t cmask[2] = {0ULL, ~0ULL};

    // --- 0-resub: a single divisor already computes the function. -------
    for (std::size_t i = 0; i < nd; ++i) {
        bool pos = true;
        bool neg = true;
        for (std::size_t w = 0; w < words; ++w) {
            pos &= dw(i)[w] == tgt[w];
            neg &= dw(i)[w] == ~tgt[w];
        }
        if (pos || neg) {
            Candidate cand;
            cand.operands = {divisors[i]};
            cand.out = Candidate::operand_lit(0, neg);
            cand.est_gain = saved;
            CheckResult res;
            res.applicable = saved >= min_gain;
            res.gain.size_delta = saved;
            res.cand = std::move(cand);
            if (res.applicable) {
                res.gain.depth_delta = estimate_depth_delta(g, v, res.cand);
                return res;
            }
            return {};
        }
    }

    // --- 1-resub: target == (d1^p1 & d2^p2) ^ q ------------------------
    for (std::size_t i = 0; i < nd; ++i) {
        for (std::size_t j = i + 1; j < nd; ++j) {
            for (unsigned pol = 0; pol < 4; ++pol) {
                const int m = match2(dw(i), cmask[pol & 1U], dw(j),
                                     cmask[(pol >> 1) & 1U]);
                if (m == 0) {
                    continue;
                }
                Candidate cand;
                cand.operands = {divisors[i], divisors[j]};
                cand.steps = {{Candidate::operand_lit(0, (pol & 1U) != 0),
                               Candidate::operand_lit(1, (pol & 2U) != 0)}};
                cand.out = cand.step_lit(0, m < 0);
                consider(std::move(cand));
            }
        }
    }
    if (best.applicable && best.gain.size_delta >= saved) {
        // Cannot do better than freeing the whole MFFC.
        if (best.gain.size_delta < min_gain) {
            return {};
        }
        best.gain.depth_delta = estimate_depth_delta(g, v, best.cand);
        return best;
    }

    // --- 2-resub: three-divisor two-level forms -------------------------
    // target == (d1^p1 & (d2^p2 & d3^p3)) ^ q      (3-input AND)
    // target == (d1^p1 & (d2^p2 | d3^p3)) ^ q      (AND-OR)
    // Budgeted: windows are small, but the cube of divisors is not.
    std::size_t budget = 20000;
    for (std::size_t i = 0; i < nd && budget > 0; ++i) {
        for (std::size_t j = i + 1; j < nd && budget > 0; ++j) {
            for (std::size_t k = j + 1; k < nd && budget > 0; ++k) {
                for (unsigned pol = 0; pol < 8 && budget > 0; ++pol) {
                    --budget;
                    const std::uint64_t ca = cmask[pol & 1U];
                    const std::uint64_t cb = cmask[(pol >> 1) & 1U];
                    const std::uint64_t cc = cmask[(pol >> 2) & 1U];
                    for (const bool inner_or : {false, true}) {
                        const int m = match3(dw(i), ca, dw(j), cb, dw(k), cc,
                                             inner_or);
                        if (m == 0) {
                            continue;
                        }
                        Candidate cand;
                        cand.operands = {divisors[i], divisors[j],
                                         divisors[k]};
                        const Lit la =
                            Candidate::operand_lit(0, (pol & 1U) != 0);
                        const Lit lb =
                            Candidate::operand_lit(1, (pol & 2U) != 0);
                        const Lit lc =
                            Candidate::operand_lit(2, (pol & 4U) != 0);
                        if (inner_or) {
                            // b | c == !(!b & !c)
                            cand.steps = {{aig::lit_not(lb), aig::lit_not(lc)},
                                          {la, 0}};
                            cand.steps[1].in1 = cand.step_lit(0, true);
                        } else {
                            cand.steps = {{lb, lc}, {la, 0}};
                            cand.steps[1].in1 = cand.step_lit(0, false);
                        }
                        cand.out = cand.step_lit(1, m < 0);
                        consider(std::move(cand));
                    }
                }
            }
        }
    }

    if (!best.applicable || best.gain.size_delta < min_gain) {
        return {};
    }
    best.gain.depth_delta = estimate_depth_delta(g, v, best.cand);
    return best;
}

}  // namespace bg::opt
