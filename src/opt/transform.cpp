#include "opt/transform.hpp"

#include <algorithm>
#include <utility>

#include "aig/footprint.hpp"
#include "aig/visited.hpp"
#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

int op_index(OpKind op) {
    return static_cast<int>(op);
}

OpKind op_from_index(int idx) {
    BG_EXPECTS(idx >= 0 && idx <= 3, "operation index out of range");
    return static_cast<OpKind>(idx);
}

void OptParams::validate() const {
    BG_EXPECTS(rewrite_cut_size >= 2 && rewrite_cut_size <= 4,
               "rewrite_cut_size must lie in [2, 4]: the NPN rewrite "
               "library covers exactly the 4-input functions");
    BG_EXPECTS(rewrite_max_cuts >= 1,
               "rewrite_max_cuts of 0 would enumerate no cut at all");
    BG_EXPECTS(refactor_max_leaves >= 2 &&
                   refactor_max_leaves <= max_window_leaves,
               "refactor_max_leaves must lie in [2, 16]: windows below 2 "
               "leaves are degenerate, above 16 the truth tables explode");
    BG_EXPECTS(resub_max_leaves >= 2 && resub_max_leaves <= max_window_leaves,
               "resub_max_leaves must lie in [2, 16]: windows below 2 "
               "leaves are degenerate, above 16 the truth tables explode");
    BG_EXPECTS(resub_max_divisors >= 1,
               "resub_max_divisors of 0 leaves nothing to substitute");
}

std::string to_string(OpKind op) {
    switch (op) {
        case OpKind::Rewrite:
            return "rw";
        case OpKind::Resub:
            return "rs";
        case OpKind::Refactor:
            return "rf";
        case OpKind::None:
            return "none";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// RecipeBuilder
// ---------------------------------------------------------------------------

Lit RecipeBuilder::operand(std::size_t i, bool compl_edge) const {
    BG_EXPECTS(i < num_operands_, "operand index out of range");
    return Candidate::operand_lit(i, compl_edge);
}

Lit RecipeBuilder::add_and(Lit a, Lit b) {
    // Recipe-space constant folding mirrors Aig::and_.
    if (a == 0 || b == 0) {
        return 0;
    }
    if (a == 1) {
        return b;
    }
    if (b == 1) {
        return a;
    }
    if (a == b) {
        return a;
    }
    if (a == aig::lit_not(b)) {
        return 0;
    }
    if (a > b) {
        std::swap(a, b);
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) {
            return aig::make_lit(
                static_cast<Var>(num_operands_ + 1 + i));
        }
    }
    steps_.push_back(Candidate::Step{a, b});
    keys_.push_back(key);
    return aig::make_lit(
        static_cast<Var>(num_operands_ + 1 + steps_.size() - 1));
}

Candidate RecipeBuilder::build(std::vector<Var> operands, Lit out) && {
    BG_EXPECTS(operands.size() == num_operands_,
               "operand count changed between builder and build()");
    Candidate c;
    c.operands = std::move(operands);
    c.steps = std::move(steps_);
    c.out = out;
    return c;
}

// ---------------------------------------------------------------------------
// Dry-run gain accounting
// ---------------------------------------------------------------------------

namespace {

/// Extended literal: either a concrete graph literal or a virtual node id
/// for recipe steps that do not exist yet.
struct ExtLit {
    Lit lit = aig::null_lit;  ///< concrete when != null_lit
    std::uint32_t virt = 0;   ///< virtual literal otherwise

    bool concrete() const { return lit != aig::null_lit; }
    std::uint64_t key() const {
        return concrete() ? static_cast<std::uint64_t>(lit)
                          : (1ULL << 40) | virt;
    }
    ExtLit complemented(bool c) const {
        ExtLit e = *this;
        if (!c) {
            return e;
        }
        if (e.concrete()) {
            e.lit = aig::lit_not(e.lit);
        } else {
            e.virt ^= 1U;
        }
        return e;
    }
};

}  // namespace

int count_added_nodes(const Aig& g, Var root, const Candidate& cand,
                      const MffcResult& dying) {
    // Epoch-stamped scratch replaces the per-call hash sets; checks run
    // once per node per op and, in the parallel orchestrator, on many
    // threads at once — thread_local keeps each walk's marks private.
    thread_local aig::EpochMarks dying_set;
    thread_local aig::EpochMarks revived;
    dying_set.reset(g.num_slots());
    revived.reset(g.num_slots());
    for (const Var v : dying.nodes) {
        dying_set.set(v);
    }
    int added = 0;
    std::uint32_t next_virtual = 2;  // virtual var ids start at 1
    // Virtual strash over recipe steps: recipes are tiny (cut leaves plus
    // factored steps), so a flat vector with a linear probe beats any
    // node-based map on this hot path.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> virtual_keys;
    std::vector<ExtLit> virtual_vals;

    std::vector<ExtLit> value(1 + cand.operands.size() + cand.steps.size());
    value[0] = ExtLit{aig::lit_false, 0};
    for (std::size_t i = 0; i < cand.operands.size(); ++i) {
        value[1 + i] = ExtLit{aig::make_lit(cand.operands[i]), 0};
    }

    const auto resolve = [&](Lit rl) {
        const Var idx = aig::lit_var(rl);
        BG_ASSERT(idx < value.size(), "recipe literal out of range");
        return value[idx].complemented(aig::lit_is_compl(rl));
    };
    const auto is_const0 = [](const ExtLit& e) {
        return e.concrete() && e.lit == aig::lit_false;
    };
    const auto is_const1 = [](const ExtLit& e) {
        return e.concrete() && e.lit == aig::lit_true;
    };

    for (std::size_t s = 0; s < cand.steps.size(); ++s) {
        ExtLit a = resolve(cand.steps[s].in0);
        ExtLit b = resolve(cand.steps[s].in1);
        auto& slot = value[1 + cand.operands.size() + s];
        // Constant folding in extended-literal space.
        if (is_const0(a) || is_const0(b)) {
            slot = ExtLit{aig::lit_false, 0};
            continue;
        }
        if (is_const1(a)) {
            slot = b;
            continue;
        }
        if (is_const1(b)) {
            slot = a;
            continue;
        }
        if (a.key() == b.key()) {
            slot = a;
            continue;
        }
        if (a.key() == b.complemented(true).key()) {
            slot = ExtLit{aig::lit_false, 0};
            continue;
        }
        if (a.concrete() && b.concrete()) {
            // Strash reads: any strash-key change over (a, b) — creation,
            // death, or an in-place patch producing that key — journals a
            // fanout-edge change on at least one operand var, so
            // fanout-class reads of both operands keep a miss-result
            // speculation sound; a hit's node is recorded Struct so its
            // death or patch invalidates.
            aig::fp_touch(aig::lit_var(a.lit), aig::Read::Fanout);
            aig::fp_touch(aig::lit_var(b.lit), aig::Read::Fanout);
            const Lit hit = g.lookup_and(a.lit, b.lit);
            if (hit != aig::null_lit) {
                aig::fp_touch(aig::lit_var(hit), aig::Read::Struct);
                slot = ExtLit{hit, 0};
                const Var hv = aig::lit_var(hit);
                if (g.is_and(hv) && dying_set.test(hv) &&
                    revived.insert(hv)) {
                    ++added;  // reuse keeps a dying node alive
                }
                continue;
            }
        }
        if (a.key() > b.key()) {
            std::swap(a, b);
        }
        const auto key = std::make_pair(a.key(), b.key());
        const auto it =
            std::find(virtual_keys.begin(), virtual_keys.end(), key);
        if (it != virtual_keys.end()) {
            slot = virtual_vals[static_cast<std::size_t>(
                it - virtual_keys.begin())];
            continue;
        }
        ++added;
        slot = ExtLit{aig::null_lit, next_virtual};
        next_virtual += 2;
        virtual_keys.push_back(key);
        virtual_vals.push_back(slot);
    }

    const ExtLit out = resolve(cand.out);
    if (out.concrete() && aig::lit_var(out.lit) == root) {
        return -1;  // the recipe rebuilds the root itself: no-op
    }
    return added;
}

int estimate_depth_delta(const Aig& g, Var root, const Candidate& cand) {
    // Recipe-space levels: index 0 (const) at 0, operands at their graph
    // levels, each step one above its deepest input.  Complement edges are
    // free, exactly as in Aig::update_levels.  Recipes are small (cut
    // leaves + factored steps), so a stack buffer covers the hot path —
    // this runs once per applicable check inside the static-feature scan.
    const std::size_t n = 1 + cand.operands.size() + cand.steps.size();
    std::uint32_t stack_levels[64];
    std::vector<std::uint32_t> heap_levels;
    std::uint32_t* levels = stack_levels;
    if (n > std::size(stack_levels)) {
        heap_levels.resize(n);
        levels = heap_levels.data();
    }
    levels[0] = 0;
    for (std::size_t i = 0; i < cand.operands.size(); ++i) {
        levels[1 + i] = g.level(cand.operands[i]);
    }
    for (std::size_t s = 0; s < cand.steps.size(); ++s) {
        const auto lv = [&](aig::Lit l) { return levels[aig::lit_var(l)]; };
        levels[1 + cand.operands.size() + s] =
            1 + std::max(lv(cand.steps[s].in0), lv(cand.steps[s].in1));
    }
    return static_cast<int>(g.level(root)) -
           static_cast<int>(levels[aig::lit_var(cand.out)]);
}

// ---------------------------------------------------------------------------
// Apply
// ---------------------------------------------------------------------------

Gain apply_candidate(Aig& g, Var root, const Candidate& cand) {
    BG_EXPECTS(g.is_and(root) && !g.is_dead(root),
               "apply target must be a live AND node");
    // The depth estimate needs the pre-apply levels; replace() invalidates
    // them.
    const int depth_est = estimate_depth_delta(g, root, cand);
    const auto before = static_cast<int>(g.num_ands());

    std::vector<Lit> value(1 + cand.operands.size() + cand.steps.size(),
                           aig::null_lit);
    value[0] = aig::lit_false;
    for (std::size_t i = 0; i < cand.operands.size(); ++i) {
        const Var ov = cand.operands[i];
        BG_EXPECTS(!g.is_dead(ov), "candidate operand is dead");
        value[1 + i] = aig::make_lit(ov);
    }
    const auto resolve = [&](Lit rl) {
        const Lit base = value[aig::lit_var(rl)];
        BG_ASSERT(base != aig::null_lit, "recipe resolved out of order");
        return aig::lit_not_cond(base, aig::lit_is_compl(rl));
    };

    std::vector<Var> created;
    for (std::size_t s = 0; s < cand.steps.size(); ++s) {
        const auto slots_before = g.num_slots();
        const Lit r = g.and_(resolve(cand.steps[s].in0),
                             resolve(cand.steps[s].in1));
        if (g.num_slots() > slots_before) {
            created.push_back(aig::lit_var(r));
        }
        value[1 + cand.operands.size() + s] = r;
    }
    const Lit out = resolve(cand.out);

    const auto cleanup_created = [&] {
        for (auto it = created.rbegin(); it != created.rend(); ++it) {
            g.delete_unreferenced(*it);
        }
    };

    if (aig::lit_var(out) == root) {
        cleanup_created();
        return {};
    }
    g.replace(root, out);
    cleanup_created();  // defensive: recipe steps not reachable from out
    return Gain{before - static_cast<int>(g.num_ands()), depth_est};
}

CheckResult check_op(const Aig& g, Var v, OpKind op, const OptParams& params) {
    switch (op) {
        case OpKind::Rewrite:
            return check_rewrite(g, v, params);
        case OpKind::Resub:
            return check_resub(g, v, params);
        case OpKind::Refactor:
            return check_refactor(g, v, params);
        case OpKind::None:
            return {};
    }
    return {};
}

}  // namespace bg::opt
