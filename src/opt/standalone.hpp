#pragma once

/// \file standalone.hpp
/// The SOTA baselines of Table I: stand-alone single-operation passes
/// (every node is checked against the same operation during one DAG-aware
/// traversal), exactly what `rewrite` / `resub` / `refactor` do in ABC.

#include "opt/orchestrate.hpp"

namespace bg::opt {

/// One stand-alone pass of `op` over the whole AIG, committing under
/// `objective` (default: size, the pre-objective behavior).
OrchestrationResult standalone_pass(aig::Aig& g, OpKind op,
                                    const OptParams& params = {},
                                    const Objective& objective =
                                        size_objective());

/// Repeat stand-alone passes until no further improvement under the
/// objective (or `max_rounds`).  Returns the cumulative size reduction.
int standalone_to_convergence(aig::Aig& g, OpKind op, unsigned max_rounds = 8,
                              const OptParams& params = {},
                              const Objective& objective = size_objective());

}  // namespace bg::opt
