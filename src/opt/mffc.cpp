#include "opt/mffc.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

bool MffcResult::contains(Var v) const {
    return std::find(nodes.begin(), nodes.end(), v) != nodes.end();
}

namespace {

void deref_rec(const Aig& g, Var v,
               const std::unordered_set<Var>& leaf_set,
               std::unordered_map<Var, std::uint32_t>& deficit,
               std::vector<Var>& out) {
    out.push_back(v);
    for (const aig::NodeRef f : g.fanin_refs(v)) {
        const Var u = f.index();
        const std::uint32_t d = ++deficit[u];
        BG_ASSERT(d <= g.ref_count(u), "MFFC deficit exceeds reference count");
        if (d == g.ref_count(u) && g.is_and(u) && !leaf_set.contains(u)) {
            deref_rec(g, u, leaf_set, deficit, out);
        }
    }
}

}  // namespace

MffcResult mffc(const Aig& g, Var root, std::span<const Var> leaves) {
    BG_EXPECTS(g.is_and(root), "MFFC is defined for AND nodes");
    BG_EXPECTS(!g.is_dead(root), "MFFC of a dead node");
    const std::unordered_set<Var> leaf_set(leaves.begin(), leaves.end());
    BG_EXPECTS(!leaf_set.contains(root), "root cannot be its own leaf");
    std::unordered_map<Var, std::uint32_t> deficit;
    MffcResult res;
    deref_rec(g, root, leaf_set, deficit, res.nodes);
    return res;
}

MffcResult mffc(const Aig& g, Var root) {
    return mffc(g, root, {});
}

}  // namespace bg::opt
