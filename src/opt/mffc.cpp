#include "opt/mffc.hpp"

#include <algorithm>

#include "aig/footprint.hpp"
#include "aig/visited.hpp"
#include "util/contracts.hpp"

namespace bg::opt {

using aig::Aig;
using aig::Lit;
using aig::Var;

bool MffcResult::contains(Var v) const {
    return std::find(nodes.begin(), nodes.end(), v) != nodes.end();
}

namespace {

// Per-thread walk scratch (epoch-stamped, so each call clears in O(1)
// instead of rebuilding hash sets).  thread_local keeps concurrent
// region walks independent.
struct MffcScratch {
    aig::EpochMarks leaf_set;
    aig::EpochMap<std::uint32_t> deficit;
};

MffcScratch& scratch() {
    thread_local MffcScratch s;
    return s;
}

void deref_rec(const Aig& g, Var v, MffcScratch& s, std::vector<Var>& out) {
    out.push_back(v);
    for (const aig::NodeRef f : g.fanin_refs(v)) {
        const Var u = f.index();
        // The deficit test reads u's reference count, and u's fanins are
        // walked if it joins the cone.
        aig::fp_touch(u, aig::Read::Ref);
        aig::fp_touch(u, aig::Read::Struct);
        const std::uint32_t d = ++s.deficit.slot(u);
        BG_ASSERT(d <= g.ref_count(u), "MFFC deficit exceeds reference count");
        if (d == g.ref_count(u) && g.is_and(u) && !s.leaf_set.test(u)) {
            deref_rec(g, u, s, out);
        }
    }
}

}  // namespace

MffcResult mffc(const Aig& g, Var root, std::span<const Var> leaves) {
    BG_EXPECTS(g.is_and(root), "MFFC is defined for AND nodes");
    BG_EXPECTS(!g.is_dead(root), "MFFC of a dead node");
    MffcScratch& s = scratch();
    s.leaf_set.reset(g.num_slots());
    s.deficit.reset(g.num_slots());
    for (const Var l : leaves) {
        s.leaf_set.set(l);
    }
    BG_EXPECTS(!s.leaf_set.test(root), "root cannot be its own leaf");
    aig::fp_touch(root, aig::Read::Struct);
    MffcResult res;
    deref_rec(g, root, s, res.nodes);
    return res;
}

MffcResult mffc(const Aig& g, Var root) {
    return mffc(g, root, {});
}

}  // namespace bg::opt
