#pragma once

/// \file objective.hpp
/// Pluggable cost models for Boolean optimization.  BoolGebra's flow
/// (§III-D) ranks decision vectors purely by AND-count reduction; an
/// Objective generalizes that single metric into a small vtable so the
/// same transform -> orchestrate -> flow -> service stack can optimize
/// for depth (delay-oriented synthesis), mapped LUT count (FPGA area
/// after technology mapping) or a weighted blend — the cost axes
/// BoolSkeleton (arXiv:2511.02196) and Boolean-aware GNN classification
/// (arXiv:2411.10481) evaluate.
///
/// Contract: every objective is immutable and thread-safe after
/// construction (flows share one instance read-only, exactly like the
/// model snapshot), and `SizeObjective` — the default everywhere — must
/// reproduce the pre-objective behavior bit for bit: same accepted
/// candidates, same comparator decisions, same ratios.

#include <cstdint>
#include <memory>
#include <string>

#include "aig/aig.hpp"
#include "opt/lut_map.hpp"
#include "opt/transform.hpp"

namespace bg::opt {

enum class ObjectiveKind : std::uint8_t {
    Size = 0,
    Depth = 1,
    MappedLuts = 2,
    Weighted = 3,
};

/// Full measurement of one graph under an objective.  `size` and `depth`
/// are always the raw AND count and level count (the per-metric ratios
/// every FlowResult reports); `value` is the objective's scalar, lower is
/// better.
struct CostVector {
    double value = 0.0;
    std::size_t size = 0;
    std::uint32_t depth = 0;
};

/// Weights over the learned metric heads (core::MetricHead order: size,
/// depth, mapped-LUT) a flow should rank candidates with under an
/// objective.  The flow maps these onto whatever heads the model actually
/// carries and falls back to the size head — the paper's size-as-proxy
/// behavior — when the requested heads are missing (e.g. a legacy
/// single-head checkpoint).
struct PredictionWeights {
    double size = 0.0;
    double depth = 0.0;
    double luts = 0.0;
};

class Objective {
public:
    virtual ~Objective() = default;

    virtual ObjectiveKind kind() const = 0;
    /// CLI-round-trippable name ("size", "depth", "luts", "weighted:a,b").
    virtual std::string name() const = 0;

    /// Scalar from an already-measured (size, depth) pair.  Objectives
    /// whose scalar needs the graph itself (MappedLuts) override
    /// measure() and fall back to size here.
    virtual double scalar(std::size_t size, std::uint32_t depth) const = 0;

    /// Which learned metric head(s) should produce the pruning scores for
    /// this objective.  Default: the size head alone (the paper's
    /// predictor).
    virtual PredictionWeights prediction_weights() const {
        return {1.0, 0.0, 0.0};
    }

    /// True when per-node level annotations must be kept fresh during
    /// orchestration (local depth deltas feed accepts()).
    virtual bool needs_depth() const { return false; }
    /// True when measure() needs the concrete graph (not just size/depth).
    virtual bool needs_graph() const { return false; }

    /// Measure a whole graph: AND count, depth, and the scalar.
    virtual CostVector measure(const aig::Aig& g) const;
    /// Scalar cost of a whole graph; lower is better.
    double cost(const aig::Aig& g) const { return measure(g).value; }

    /// Objective-space value of a local transform; positive = improvement.
    virtual double local_gain(const Gain& gain) const {
        return gain.size_delta;
    }
    /// Whether orchestration should apply an applicable candidate with
    /// this local gain.  The size threshold (min gain 1, or 0 with -z)
    /// was already enforced by the check; SizeObjective therefore accepts
    /// everything — the pre-objective behavior.
    virtual bool accepts(const Gain& gain) const {
        (void)gain;
        return true;
    }

    /// Strictly-better comparator over measured costs.  Candidate
    /// evaluation keeps the *first* candidate no later one strictly
    /// beats, so ties preserve prediction order (and size parity).
    virtual bool better(const CostVector& a, const CostVector& b) const {
        return a.value < b.value;
    }
};

/// Exact AND count — the paper's metric and the default everywhere.
class SizeObjective final : public Objective {
public:
    ObjectiveKind kind() const override { return ObjectiveKind::Size; }
    std::string name() const override { return "size"; }
    double scalar(std::size_t size, std::uint32_t depth) const override {
        (void)depth;
        return static_cast<double>(size);
    }
};

/// Levels first, AND count as tiebreak (delay-oriented synthesis).
class DepthObjective final : public Objective {
public:
    ObjectiveKind kind() const override { return ObjectiveKind::Depth; }
    std::string name() const override { return "depth"; }
    double scalar(std::size_t size, std::uint32_t depth) const override {
        (void)size;
        return static_cast<double>(depth);
    }
    PredictionWeights prediction_weights() const override {
        return {0.0, 1.0, 0.0};
    }
    bool needs_depth() const override { return true; }
    double local_gain(const Gain& gain) const override {
        return gain.depth_delta;
    }
    bool accepts(const Gain& gain) const override {
        // Never trade depth away; among depth-neutral candidates keep the
        // size improvements (the check guarantees size_delta >= min gain).
        return gain.depth_delta >= 0;
    }
    bool better(const CostVector& a, const CostVector& b) const override {
        return a.depth < b.depth ||
               (a.depth == b.depth && a.size < b.size);
    }
};

/// Cost = LUT count of a K-LUT technology mapping of the graph (the
/// "technology-dependent stage" the paper's conclusion targets).  Local
/// gains have no per-node LUT estimate, so orchestration accepts on size
/// like the default; only the whole-graph comparator changes.
class MappedLutObjective final : public Objective {
public:
    explicit MappedLutObjective(LutMapParams params = {}) : params_(params) {}

    ObjectiveKind kind() const override { return ObjectiveKind::MappedLuts; }
    std::string name() const override { return "luts"; }
    double scalar(std::size_t size, std::uint32_t depth) const override {
        (void)depth;
        return static_cast<double>(size);  // graph-free fallback
    }
    PredictionWeights prediction_weights() const override {
        return {0.0, 0.0, 1.0};
    }
    bool needs_graph() const override { return true; }
    CostVector measure(const aig::Aig& g) const override;
    bool better(const CostVector& a, const CostVector& b) const override {
        return a.value < b.value || (a.value == b.value && a.size < b.size);
    }

    const LutMapParams& lut_params() const { return params_; }

private:
    LutMapParams params_;
};

/// alpha * size + beta * depth.
class WeightedObjective final : public Objective {
public:
    WeightedObjective(double alpha, double beta);

    ObjectiveKind kind() const override { return ObjectiveKind::Weighted; }
    std::string name() const override;
    double scalar(std::size_t size, std::uint32_t depth) const override {
        return alpha_ * static_cast<double>(size) +
               beta_ * static_cast<double>(depth);
    }
    PredictionWeights prediction_weights() const override {
        return {alpha_, beta_, 0.0};
    }
    bool needs_depth() const override { return true; }
    double local_gain(const Gain& gain) const override {
        return alpha_ * gain.size_delta + beta_ * gain.depth_delta;
    }
    bool accepts(const Gain& gain) const override {
        return local_gain(gain) > 0.0;
    }

    double alpha() const { return alpha_; }
    double beta() const { return beta_; }

private:
    double alpha_;
    double beta_;
};

/// The process-wide default objective — pre-redesign behavior.
const Objective& size_objective();

/// Shared handle threaded through FlowConfig / ServiceConfig; a null
/// handle means size_objective().
using ObjectivePtr = std::shared_ptr<const Objective>;

/// Parse a CLI spec: "size" | "depth" | "luts" | "luts:K" |
/// "weighted:alpha,beta".  Throws std::invalid_argument on anything else.
ObjectivePtr make_objective(const std::string& spec);

}  // namespace bg::opt
