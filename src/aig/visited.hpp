#pragma once

/// \file visited.hpp
/// Epoch-stamped traversal scratch: the inline visited-ID replacement for
/// the per-walk `std::vector<char>` / hash-set marks the MFFC, cut and
/// partition walks used to allocate on every call.  A walk bumps the
/// epoch (O(1) clear), stamps nodes as it visits them, and the next walk
/// reuses the same backing array.  Intended to live in thread_local
/// storage at each call-site so concurrent region walks never share
/// scratch.

#include <cstdint>
#include <vector>

namespace bg::aig {

/// A reusable visited set over dense u32 keys.  `clear()` bumps the epoch
/// instead of touching the array; a stamp matches only when it equals the
/// current epoch.  On epoch wraparound (once per ~4 billion clears with
/// the default 32-bit epoch) the array is zero-filled and the epoch
/// restarts at 1, so stale stamps from the previous cycle can never read
/// as visited.  The epoch type is a template parameter so the wrap path
/// is unit-testable with a small type (test_visited.cpp pins it with
/// std::uint8_t); production call-sites use the `EpochMarks` alias.
template <typename Epoch = std::uint32_t>
class BasicEpochMarks {
public:
    /// Start a fresh walk over a key space of `n` keys.
    void reset(std::size_t n) {
        if (stamps_.size() < n) {
            stamps_.resize(n, 0);
        }
        if (++epoch_ == 0) {  // wrapped: stale stamps now ambiguous
            stamps_.assign(stamps_.size(), 0);
            epoch_ = 1;
        }
    }

    bool test(std::uint32_t key) const { return stamps_[key] == epoch_; }

    void set(std::uint32_t key) { stamps_[key] = epoch_; }

    /// Mark `key`; returns true when it was not yet marked this walk.
    bool insert(std::uint32_t key) {
        if (stamps_[key] == epoch_) {
            return false;
        }
        stamps_[key] = epoch_;
        return true;
    }

    /// The current epoch value — exposed so the wraparound tests can
    /// observe where in the cycle the instance is.
    Epoch epoch() const { return epoch_; }

private:
    std::vector<Epoch> stamps_;
    Epoch epoch_ = 0;
};

using EpochMarks = BasicEpochMarks<>;

/// An epoch-stamped map over dense u32 keys: the hash-map replacement for
/// per-walk `unordered_map<Var, T>` scratch (e.g. MFFC reference
/// deficits).  Values from earlier walks are treated as absent; `slot()`
/// lazily re-initializes a stale slot to `init` on first touch.  Same
/// wraparound contract and epoch-type parameter as BasicEpochMarks.
template <typename T, typename Epoch = std::uint32_t>
class EpochMap {
public:
    void reset(std::size_t n, T init = T{}) {
        init_ = init;
        if (values_.size() < n) {
            values_.resize(n, init_);
            stamps_.resize(n, 0);
        }
        if (++epoch_ == 0) {
            stamps_.assign(stamps_.size(), 0);
            epoch_ = 1;
        }
    }

    bool contains(std::uint32_t key) const { return stamps_[key] == epoch_; }

    /// The value slot for `key` this walk (fresh slots start at `init`).
    T& slot(std::uint32_t key) {
        if (stamps_[key] != epoch_) {
            stamps_[key] = epoch_;
            values_[key] = init_;
        }
        return values_[key];
    }

    /// Read-only access; `key` must be contained this walk.
    const T& at(std::uint32_t key) const { return values_[key]; }

    /// The current epoch value (see BasicEpochMarks::epoch).
    Epoch epoch() const { return epoch_; }

private:
    std::vector<T> values_;
    std::vector<Epoch> stamps_;
    Epoch epoch_ = 0;
    T init_{};
};

}  // namespace bg::aig
