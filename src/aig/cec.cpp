#include "aig/cec.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "aig/simulation.hpp"
#include "util/rng.hpp"

namespace bg::aig {

std::string to_string(CecVerdict v) {
    switch (v) {
        case CecVerdict::Equivalent:
            return "equivalent";
        case CecVerdict::ProbablyEquivalent:
            return "probably-equivalent";
        case CecVerdict::NotEquivalent:
            return "NOT-equivalent";
    }
    return "?";
}

namespace {

/// Location of the first differing pattern between two PO signature sets.
struct Mismatch {
    bool found = false;
    std::size_t word = 0;
    unsigned bit = 0;
};

Mismatch find_mismatch(const Aig& a, const Aig& b, const SimVectors& pats,
                       std::uint64_t valid_mask_last_word) {
    const auto sa = po_signatures(a, simulate(a, pats));
    const auto sb = po_signatures(b, simulate(b, pats));
    for (std::size_t i = 0; i < sa.size(); ++i) {
        const auto& ra = sa[i];
        const auto& rb = sb[i];
        for (std::size_t w = 0; w < ra.size(); ++w) {
            std::uint64_t diff = ra[w] ^ rb[w];
            if (w + 1 == ra.size()) {
                diff &= valid_mask_last_word;
            }
            if (diff != 0) {
                Mismatch mm;
                mm.found = true;
                mm.word = w;
                mm.bit = static_cast<unsigned>(
                    std::countr_zero(diff));
                return mm;
            }
        }
    }
    return {};
}

}  // namespace

CecResult check_equivalence_full(const Aig& a, const Aig& b,
                                 const CecOptions& opts) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "equivalence check requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "equivalence check requires matching PO counts");

    CecResult res;
    const std::size_t n = a.num_pis();
    if (n <= opts.exhaustive_pi_limit) {
        const auto pats = exhaustive_patterns(n);
        const std::uint64_t mask =
            n >= 6 ? ~0ULL : ((1ULL << (std::size_t{1} << n)) - 1);
        const Mismatch mm = find_mismatch(a, b, pats, mask);
        if (!mm.found) {
            res.verdict = CecVerdict::Equivalent;
            return res;
        }
        // Minterm index encodes the PI assignment directly.
        const std::uint64_t minterm = 64 * mm.word + mm.bit;
        res.counterexample.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            res.counterexample[i] = ((minterm >> i) & 1ULL) != 0;
        }
        res.verdict = CecVerdict::NotEquivalent;
        return res;
    }

    const auto start = std::chrono::steady_clock::now();
    const auto stopped = [&] {
        if (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_relaxed)) {
            return true;
        }
        if (opts.timeout_seconds > 0.0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            return elapsed.count() > opts.timeout_seconds;
        }
        return false;
    };

    // Counterexample-guided pre-pass: simulate the caller's seed patterns
    // (refutations pooled from earlier jobs) before spending any of the
    // random budget — a recurring near-miss bug falls here immediately.
    if (opts.seed_patterns != nullptr && !opts.seed_patterns->empty()) {
        std::vector<const std::vector<bool>*> seeds;
        for (const auto& s : *opts.seed_patterns) {
            if (s.size() == n) {
                seeds.push_back(&s);
            }
        }
        if (!seeds.empty()) {
            const std::size_t words = (seeds.size() + 63) / 64;
            SimVectors pats(n, std::vector<std::uint64_t>(words, 0));
            for (std::size_t p = 0; p < seeds.size(); ++p) {
                for (std::size_t i = 0; i < n; ++i) {
                    if ((*seeds[p])[i]) {
                        pats[i][p / 64] |= 1ULL << (p % 64);
                    }
                }
            }
            const std::uint64_t mask =
                seeds.size() % 64 == 0
                    ? ~0ULL
                    : (1ULL << (seeds.size() % 64)) - 1;
            res.words_simulated += words;
            const Mismatch mm = find_mismatch(a, b, pats, mask);
            if (mm.found) {
                res.counterexample.resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                    res.counterexample[i] =
                        ((pats[i][mm.word] >> mm.bit) & 1ULL) != 0;
                }
                res.verdict = CecVerdict::NotEquivalent;
                return res;
            }
        }
    }

    bg::Rng rng(opts.seed);
    // Chunk the budget to bound peak memory, but honor opts.random_words
    // exactly: the final chunk carries whatever remainder is left (the old
    // fixed-round split silently dropped remainders and over-ran budgets
    // smaller than the round count).
    const std::size_t chunk =
        std::max<std::size_t>(1, (opts.random_words + 3) / 4);
    std::size_t remaining = opts.random_words;
    while (remaining > 0) {
        if (stopped()) {
            return res;  // ProbablyEquivalent, words so far
        }
        const std::size_t words = std::min(chunk, remaining);
        const auto pats = random_patterns(n, words, rng);
        res.words_simulated += words;
        remaining -= words;
        const Mismatch mm = find_mismatch(a, b, pats, ~0ULL);
        if (mm.found) {
            res.counterexample.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                res.counterexample[i] =
                    ((pats[i][mm.word] >> mm.bit) & 1ULL) != 0;
            }
            res.verdict = CecVerdict::NotEquivalent;
            return res;
        }
    }
    return res;  // ProbablyEquivalent after the full budget
}

CecVerdict check_equivalence(const Aig& a, const Aig& b,
                             const CecOptions& opts) {
    return check_equivalence_full(a, b, opts).verdict;
}

bool likely_equivalent(const Aig& a, const Aig& b, const CecOptions& opts) {
    return check_equivalence(a, b, opts) != CecVerdict::NotEquivalent;
}

std::uint64_t structural_fingerprint(const Aig& g) {
    // splitmix64-style mixing over a numbering-independent rendering:
    // nodes are renumbered densely (const = 0, PI i = 1 + i, ANDs in
    // topological order after), so tombstones and historical var ids do
    // not perturb the fingerprint.
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    const auto mix = [&h](std::uint64_t v) {
        v += 0x9E3779B97F4A7C15ULL;
        v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
        v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
        v ^= v >> 31;
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    std::vector<std::uint32_t> renum(g.num_slots(), 0);
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        renum[g.pi(i)] = static_cast<std::uint32_t>(1 + i);
    }
    std::uint32_t next = static_cast<std::uint32_t>(1 + g.num_pis());
    mix(g.num_pis());
    mix(g.num_pos());
    const auto mapped = [&renum](NodeRef r) {
        return (static_cast<std::uint64_t>(renum[r.index()]) << 1) |
               (r.complemented() ? 1ULL : 0ULL);
    };
    for (const Var v : g.topo_ands()) {
        const auto [f0, f1] = g.fanin_refs(v);
        mix((mapped(f0) << 32) | mapped(f1));
        renum[v] = next++;
    }
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        mix(mapped(g.po_ref(i)));
    }
    return h;
}

}  // namespace bg::aig
