#include "aig/cec.hpp"

#include "aig/simulation.hpp"
#include "util/rng.hpp"

namespace bg::aig {

std::string to_string(CecVerdict v) {
    switch (v) {
        case CecVerdict::Equivalent:
            return "equivalent";
        case CecVerdict::ProbablyEquivalent:
            return "probably-equivalent";
        case CecVerdict::NotEquivalent:
            return "NOT-equivalent";
    }
    return "?";
}

namespace {

bool po_signatures_match(const Aig& a, const Aig& b, const SimVectors& pats,
                         std::uint64_t valid_mask_last_word) {
    const auto sa = po_signatures(a, simulate(a, pats));
    const auto sb = po_signatures(b, simulate(b, pats));
    for (std::size_t i = 0; i < sa.size(); ++i) {
        const auto& ra = sa[i];
        const auto& rb = sb[i];
        for (std::size_t w = 0; w < ra.size(); ++w) {
            std::uint64_t diff = ra[w] ^ rb[w];
            if (w + 1 == ra.size()) {
                diff &= valid_mask_last_word;
            }
            if (diff != 0) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

CecVerdict check_equivalence(const Aig& a, const Aig& b,
                             const CecOptions& opts) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "equivalence check requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "equivalence check requires matching PO counts");

    const std::size_t n = a.num_pis();
    if (n <= opts.exhaustive_pi_limit) {
        const auto pats = exhaustive_patterns(n);
        const std::uint64_t mask =
            n >= 6 ? ~0ULL : ((1ULL << (std::size_t{1} << n)) - 1);
        return po_signatures_match(a, b, pats, mask)
                   ? CecVerdict::Equivalent
                   : CecVerdict::NotEquivalent;
    }

    bg::Rng rng(opts.seed);
    // Split the budget into a few rounds to bound peak memory.
    const std::size_t rounds = 4;
    const std::size_t words_per_round =
        std::max<std::size_t>(1, opts.random_words / rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto pats = random_patterns(n, words_per_round, rng);
        if (!po_signatures_match(a, b, pats, ~0ULL)) {
            return CecVerdict::NotEquivalent;
        }
    }
    return CecVerdict::ProbablyEquivalent;
}

bool likely_equivalent(const Aig& a, const Aig& b, const CecOptions& opts) {
    return check_equivalence(a, b, opts) != CecVerdict::NotEquivalent;
}

}  // namespace bg::aig
