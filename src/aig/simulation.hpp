#pragma once

/// \file simulation.hpp
/// Word-parallel (64 patterns per word) simulation of AIGs.  Used for
/// semi-formal equivalence checking, window function computation and the
/// test suite's functional-preservation properties.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace bg::aig {

/// One simulation signature per variable; signature[v][w] holds patterns
/// [64w, 64w+63] of var v.
using SimVectors = std::vector<std::vector<std::uint64_t>>;

/// Simulate all live nodes given per-PI input words.  `pi_patterns` must
/// contain num_pis() rows of equal width.  The result is indexed by Var;
/// dead slots hold empty vectors.
SimVectors simulate(const Aig& g, const SimVectors& pi_patterns);

/// Per-PO signatures derived from a full simulation.
SimVectors po_signatures(const Aig& g, const SimVectors& node_sigs);

/// Exhaustive patterns: PI i carries the projection function x_i over
/// 2^num_pis minterms.  Requires num_pis <= 20 (1 MiB of words per node at
/// the limit).
SimVectors exhaustive_patterns(std::size_t num_pis);

/// `words` words of uniform random patterns per PI.
SimVectors random_patterns(std::size_t num_pis, std::size_t words, bg::Rng& rng);

}  // namespace bg::aig
