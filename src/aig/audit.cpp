#include "aig/audit.hpp"

namespace bg::aig::audit::detail {

thread_local ShadowSet* active_shadow = nullptr;

}  // namespace bg::aig::audit::detail
