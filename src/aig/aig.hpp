#pragma once

/// \file aig.hpp
/// And-Inverter Graph with structural hashing, reference counting, fanout
/// tracking and in-place node replacement with cascading merges — the
/// substrate every optimization in BoolGebra manipulates (the equivalent
/// of ABC's Aig_Man_t / Dec_GraphUpdateNetwork machinery).
///
/// Encoding is AIGER-style: a *literal* is 2*var + complement; var 0 is the
/// constant-FALSE node, so literal 0 is FALSE and literal 1 is TRUE.
/// Primary inputs are vars without fanins; AND nodes have exactly two fanin
/// literals.  Dead (deleted) nodes are tombstoned until compact().
///
/// Storage layout (the packed-node redesign; see
/// docs/aig-api-migration.md):
///  - NodeRef packs a 31-bit node index and a 1-bit complement flag into
///    one 32-bit word whose raw value coincides with the AIGER literal, so
///    Lit <-> NodeRef conversion is free and comparisons agree.
///  - Each node is a fixed 16-byte record (two NodeRef fanins, a 32-bit
///    reference count, and level/is_pi/dead bit-packed into one word) in a
///    single flat array — tens of millions of nodes fit in memory and
///    traversals walk contiguous storage.
///  - Fanout lists live in one rebuildable arena (mockturtle/ABC-style)
///    instead of a vector-of-vectors; per-node lists stay contiguous, so
///    fanouts(v) still hands out a span.
///  - Structural hashing uses an open-addressing table instead of
///    std::unordered_map (no per-bucket allocations, one probe per lookup
///    in the common case).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aig/audit.hpp"
#include "aig/footprint.hpp"
#include "util/contracts.hpp"

namespace bg::aig {

using Var = std::uint32_t;
using Lit = std::uint32_t;

inline constexpr Lit lit_false = 0;
inline constexpr Lit lit_true = 1;
inline constexpr Lit null_lit = 0xFFFFFFFFU;
inline constexpr Var null_var = 0xFFFFFFFFU;

constexpr Var lit_var(Lit l) { return l >> 1; }
constexpr bool lit_is_compl(Lit l) { return (l & 1U) != 0; }
constexpr Lit make_lit(Var v, bool compl_edge = false) {
    return (v << 1) | (compl_edge ? 1U : 0U);
}
constexpr Lit lit_not(Lit l) { return l ^ 1U; }
constexpr Lit lit_not_cond(Lit l, bool c) { return c ? (l ^ 1U) : l; }
constexpr Lit lit_regular(Lit l) { return l & ~1U; }

/// A packed signal reference: 31-bit node index + 1-bit complement flag —
/// the storage-boundary type of the AIG (mockturtle's node_pointer /
/// signal).  The raw word is bit-identical to the literal encoding
/// (index << 1 | complement), so converting to and from Lit costs nothing
/// and ordering matches literal ordering exactly.
class NodeRef {
public:
    constexpr NodeRef() = default;
    constexpr NodeRef(Var index, bool complemented)
        : data_(make_lit(index, complemented)) {}

    static constexpr NodeRef from_lit(Lit l) { return NodeRef(l, raw_tag{}); }

    /// The referenced node's index into the flat node array.
    constexpr Var index() const { return data_ >> 1; }
    /// True when the edge inverts the node's function.
    constexpr bool complemented() const { return (data_ & 1U) != 0; }
    /// The AIGER-style literal this reference encodes (same bits).
    constexpr Lit lit() const { return data_; }
    constexpr std::uint32_t raw() const { return data_; }

    constexpr bool is_null() const { return data_ == null_lit; }
    constexpr bool is_const0() const { return data_ == lit_false; }
    constexpr bool is_const1() const { return data_ == lit_true; }

    /// Complement the edge.
    constexpr NodeRef operator!() const {
        return NodeRef(data_ ^ 1U, raw_tag{});
    }
    /// Conditionally complement the edge.
    constexpr NodeRef operator^(bool c) const {
        return NodeRef(c ? data_ ^ 1U : data_, raw_tag{});
    }
    /// The positive-phase reference to the same node.
    constexpr NodeRef regular() const {
        return NodeRef(data_ & ~1U, raw_tag{});
    }

    friend constexpr bool operator==(NodeRef a, NodeRef b) {
        return a.data_ == b.data_;
    }
    friend constexpr bool operator!=(NodeRef a, NodeRef b) {
        return a.data_ != b.data_;
    }
    /// Literal ordering — what and_() uses to normalize fanin pairs.
    friend constexpr bool operator<(NodeRef a, NodeRef b) {
        return a.data_ < b.data_;
    }

private:
    struct raw_tag {};
    constexpr NodeRef(std::uint32_t raw, raw_tag) : data_(raw) {}

    std::uint32_t data_ = null_lit;
};

inline constexpr NodeRef null_ref = NodeRef::from_lit(null_lit);

static_assert(sizeof(NodeRef) == 4, "NodeRef must stay one packed word");

namespace detail {

/// Per-node fanout lists packed into one growable arena.  Each list is a
/// contiguous block with vector semantics (append at the end, remove by
/// swap-with-back), so iteration order is identical to the historical
/// vector-of-vectors layout; a block that outgrows its capacity moves to
/// the arena tail and the hole is reclaimed by the next repack.
class FanoutArena {
public:
    void add_node() { heads_.push_back({}); }

    std::span<const Var> list(Var v) const {
        const Head& h = heads_[v];
        return {arena_.data() + h.off, h.size};
    }
    bool empty(Var v) const { return heads_[v].size == 0; }
    Var front(Var v) const { return arena_[heads_[v].off]; }

    void push_back(Var v, Var f);
    /// Remove the first occurrence of `f` (swap-with-back, like the old
    /// vector layout).  Asserts that the record exists.
    void remove(Var v, Var f);
    void clear(Var v) {
        live_ -= heads_[v].size;
        heads_[v].size = 0;
    }

    void reserve(std::size_t nodes, std::size_t edges) {
        heads_.reserve(nodes);
        arena_.reserve(edges);
    }

    /// Structural audit of the arena itself: every block lies inside the
    /// arena, sizes fit capacities, live blocks never overlap, and the
    /// live-slot accounting matches the per-block sizes.  Throws
    /// ContractViolation on the first inconsistency.
    void validate() const;

    std::size_t arena_slots() const { return arena_.size(); }
    std::size_t live_slots() const { return live_; }
    std::size_t bytes() const {
        return arena_.capacity() * sizeof(Var) +
               heads_.capacity() * sizeof(Head);
    }

private:
    struct Head {
        std::uint32_t off = 0;
        std::uint32_t size = 0;
        std::uint32_t cap = 0;
    };

    /// Repack every list densely (dropping leaked blocks); list contents
    /// and order are preserved, only offsets change.
    void repack();

    std::vector<Head> heads_;
    std::vector<Var> arena_;
    std::size_t live_ = 0;
};

/// Open-addressing hash map from packed (fanin0, fanin1) keys to node
/// indices — the structural-hashing table.  Linear probing, power-of-two
/// capacity, tombstone deletion (tombstones are dropped on rehash).  Keys
/// 0 and ~0 are reserved as empty/tombstone markers; real strash keys
/// always carry a nonzero regular fanin literal in the upper word, so the
/// reserved values can never collide with one.
class StrashMap {
public:
    /// Returns null_var when the key is absent.
    Var find(std::uint64_t key) const;
    void insert(std::uint64_t key, Var v);
    void erase(std::uint64_t key);
    std::size_t size() const { return size_; }
    /// Visit every live (key, var) entry — strict integrity walks the
    /// table to prove each entry names a live AND with that exact key.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != k_empty && keys_[i] != k_tombstone) {
                fn(keys_[i], vals_[i]);
            }
        }
    }
    void reserve(std::size_t n);
    std::size_t bytes() const {
        return keys_.capacity() * sizeof(std::uint64_t) +
               vals_.capacity() * sizeof(Var);
    }

private:
    static constexpr std::uint64_t k_empty = 0;
    static constexpr std::uint64_t k_tombstone = ~0ULL;

    static std::size_t mix(std::uint64_t k) {
        // splitmix64 finalizer: full-avalanche in three multiplies.
        k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ULL;
        k = (k ^ (k >> 27)) * 0x94D049BB133111EBULL;
        return static_cast<std::size_t>(k ^ (k >> 31));
    }
    void rehash(std::size_t new_cap);

    std::vector<std::uint64_t> keys_;
    std::vector<Var> vals_;
    std::size_t size_ = 0;  ///< live entries
    std::size_t used_ = 0;  ///< live + tombstones
};

}  // namespace detail

class Aig {
public:
    Aig();

    /// Size in bytes of one packed node record — the bytes-per-node
    /// self-check target of the compact layout.
    static constexpr std::size_t node_bytes() { return sizeof(Node); }

    /// Auxiliary-storage accounting for diagnostics and benches.
    struct MemoryStats {
        std::size_t node_array_bytes = 0;   ///< flat node records
        std::size_t fanout_bytes = 0;       ///< fanout arena + heads
        std::size_t strash_bytes = 0;       ///< open-addressing table
        std::size_t po_count_bytes = 0;     ///< per-node PO ref counts
        std::size_t total() const {
            return node_array_bytes + fanout_bytes + strash_bytes +
                   po_count_bytes;
        }
    };
    MemoryStats memory_stats() const;

    /// Pre-size every internal array for `nodes` slots (and roughly
    /// 2*nodes fanout edges) — the bulk-ingestion fast path used by the
    /// AIGER readers.
    void reserve(std::size_t nodes);

    // -- construction ------------------------------------------------------

    /// Create a primary input; returns its (positive) literal.
    Lit add_pi();
    /// Create `n` primary inputs, returning their literals.
    std::vector<Lit> add_pis(std::size_t n);
    /// Register a primary output driven by `l`; returns the PO index.
    std::size_t add_po(Lit l);

    /// Structurally hashed AND with constant/idempotence simplification.
    Lit and_(Lit a, Lit b);
    Lit or_(Lit a, Lit b) { return lit_not(and_(lit_not(a), lit_not(b))); }
    Lit nand_(Lit a, Lit b) { return lit_not(and_(a, b)); }
    Lit nor_(Lit a, Lit b) { return and_(lit_not(a), lit_not(b)); }
    Lit xor_(Lit a, Lit b);
    Lit xnor_(Lit a, Lit b) { return lit_not(xor_(a, b)); }
    /// if c then t else e.
    Lit mux_(Lit c, Lit t, Lit e);
    /// Majority of three.
    Lit maj_(Lit a, Lit b, Lit c);
    /// Balanced AND / OR over a list (empty list gives the identity).
    Lit and_reduce(std::span<const Lit> lits);
    Lit or_reduce(std::span<const Lit> lits);

    /// Strash lookup *without* node creation; returns null_lit when the
    /// AND(a, b) node does not already exist and is not trivially reducible.
    Lit lookup_and(Lit a, Lit b) const;

    // -- queries -----------------------------------------------------------

    std::size_t num_pis() const { return pis_.size(); }
    std::size_t num_pos() const { return pos_.size(); }
    /// Number of live AND nodes — the "size" metric of the paper.
    std::size_t num_ands() const { return num_ands_; }
    /// Total slots including PIs, constant and tombstones.
    std::size_t num_slots() const { return nodes_.size(); }

    // Accessors that read a *mutable* aspect of a node carry a
    // BG_AUDIT_READ hook: in audit builds (-DBOOLGEBRA_AUDIT=ON) they
    // report the actual (var, Read-class) to the thread-local shadow
    // recorder (audit.hpp); in normal builds the hook expands to nothing
    // and the bodies are the exact pre-audit code.  is_pi / pis / pi are
    // immutable per-var facts and deliberately unhooked.
    bool is_const0(Var v) const { return v == 0; }
    bool is_pi(Var v) const { return nodes_[v].is_pi(); }
    bool is_and(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].is_and();
    }
    bool is_dead(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].dead();
    }
    std::uint32_t ref_count(Var v) const {
        BG_AUDIT_READ(v, Read::Ref);
        return nodes_[v].ref;
    }

    /// Fanins as packed references — the primary accessors of the new
    /// storage API (index() + complemented() replace the lit_var /
    /// lit_is_compl dance on the traversal hot paths).
    NodeRef fanin0_ref(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].fanin0;
    }
    NodeRef fanin1_ref(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].fanin1;
    }
    std::array<NodeRef, 2> fanin_refs(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return {nodes_[v].fanin0, nodes_[v].fanin1};
    }

    /// Fanins in the stable public literal encoding.
    Lit fanin0(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].fanin0.lit();
    }
    Lit fanin1(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].fanin1.lit();
    }

    std::span<const Var> pis() const { return pis_; }
    std::span<const Lit> pos() const {
        BG_AUDIT_READ_PO();
        return pos_;
    }
    Lit po(std::size_t i) const {
        BG_AUDIT_READ_PO();
        return pos_[i];
    }
    NodeRef po_ref(std::size_t i) const {
        BG_AUDIT_READ_PO();
        return NodeRef::from_lit(pos_[i]);
    }
    Var pi(std::size_t i) const { return pis_[i]; }

    /// Live AND-node fanouts of v (PO references are not listed here).
    /// The span is invalidated by any mutating operation.
    std::span<const Var> fanouts(Var v) const {
        BG_AUDIT_READ(v, Read::Fanout);
        return fanouts_.list(v);
    }
    /// Number of POs driven by v (either phase) — O(1), maintained
    /// incrementally by add_po / replace / compact.
    std::size_t po_refs(Var v) const {
        BG_AUDIT_READ(v, Read::Ref);
        return po_ref_counts_[v];
    }

    // -- levels / depth ----------------------------------------------------

    /// Recompute levels of all live nodes (PI level 0, AND = 1 + max fanin).
    void update_levels();
    /// The cached level.  Audited as a Struct read: levels are refreshed
    /// only by update_levels(), which never runs during a parallel pass,
    /// so during speculation a var's level is a function of the frozen
    /// structure reachable from it — and every level() consumer reads it
    /// for vars whose structure it has already declared.
    std::uint32_t level(Var v) const {
        BG_AUDIT_READ(v, Read::Struct);
        return nodes_[v].level();
    }
    /// Longest PI-to-PO path in AND nodes; calls update_levels().
    std::uint32_t depth();
    /// Same metric without touching the cached levels — usable on shared
    /// read-only graphs (cost models measure const Aigs concurrently).
    std::uint32_t depth() const;

    // -- traversal ---------------------------------------------------------

    /// Live AND vars in a topological order (fanins before fanouts).
    std::vector<Var> topo_ands() const;
    /// All live vars (const, PIs, ANDs) in topological order.
    std::vector<Var> topo_all() const;
    /// True if `descendant` is in the transitive fanin cone of `root`
    /// (inclusive of root itself).
    bool is_in_tfi(Var root, Var descendant) const;

    // -- restructuring -----------------------------------------------------

    /// Redirect every reference to `v` (AND fanouts and POs) to `repl`,
    /// propagating trivial simplifications and structural-hash merges
    /// upward, and deleting cones that become unreferenced.  `repl` must
    /// not contain `v` in its transitive fanin (checked).
    void replace(Var v, Lit repl);

    /// Recursively delete an unreferenced AND node and any fanin cone that
    /// becomes unreferenced.  No-op for PIs/constant.
    void delete_unreferenced(Var v);

    /// Rebuild into a dense, topologically ordered AIG without tombstones.
    /// `old_to_new` (optional) receives the literal mapping.
    Aig compact(std::vector<Lit>* old_to_new = nullptr) const;

    // -- diagnostics -------------------------------------------------------

    /// How deep check_integrity digs.
    enum class CheckLevel {
        /// Ref counts, fanout symmetry, strash forward-consistency, PO
        /// ref counts, acyclicity, no references to dead nodes.
        Basic,
        /// Everything Basic checks, plus: FanoutArena block accounting
        /// (bounds, overlap, live-slot totals) with every per-node list
        /// compared against the fanouts recomputed from fanins; a full
        /// StrashMap walk proving each live entry names a live AND whose
        /// recomputed key matches (no stale or tombstoned hits reachable);
        /// and po_ref_counts_ re-derived from a full PO scan.
        Strict,
    };

    /// Full structural audit; throws ContractViolation with a diagnostic
    /// on the first inconsistency found.
    void check_integrity(CheckLevel level = CheckLevel::Basic) const;

#ifdef BOOLGEBRA_AUDIT
    /// Deliberate corruption for negative-path auditor tests (audit
    /// builds only): mutate internal state *without* journaling so the
    /// write-completeness audit / strict integrity must flag it.
    enum class Corrupt {
        RefCount,    ///< bump a ref count (basic integrity catches)
        FanoutDup,   ///< duplicate a fanout entry (only strict catches)
        StrashDrop,  ///< erase a live AND's strash entry
    };
    void audit_corrupt_for_test(Corrupt kind, Var v);
#endif

    // -- mutation journal --------------------------------------------------

    /// Attach a mutation journal: every structural change appends the
    /// affected var(s) — reference-count changes, fanout-edge changes,
    /// node creation and death, PO attachment.  Entries are encoded
    /// `fp_encode(var, Read)` (footprint.hpp) so readers can match each
    /// change against the aspect a speculation actually read; entries may
    /// repeat and readers dedupe.  Detach with nullptr.  The journal
    /// pointer never follows a copy of the graph (speculative copies must
    /// not write into the original's journal), so `Aig copy = g;` is
    /// always journal-free.
    void set_change_log(std::vector<Var>* log) { change_log_.log = log; }

    /// One-line description, e.g. "aig: pis=5 pos=2 ands=37 depth=9".
    std::string to_string() const;

private:
    /// The packed per-node record: 16 bytes, cache-line friendly.  Level,
    /// is_pi and dead share one word (level:30 | is_pi:1 | dead:1).
    struct Node {
        NodeRef fanin0 = null_ref;  ///< null for const / PI
        NodeRef fanin1 = null_ref;  ///< null for const / PI
        std::uint32_t ref = 0;      ///< AND-fanout count + PO references
        std::uint32_t packed = 0;

        bool is_and() const { return !fanin0.is_null(); }
        bool dead() const { return (packed & 1U) != 0; }
        bool is_pi() const { return (packed & 2U) != 0; }
        std::uint32_t level() const { return packed >> 2; }
        void set_dead(bool d) {
            packed = (packed & ~1U) | (d ? 1U : 0U);
        }
        void set_pi(bool p) { packed = (packed & ~2U) | (p ? 2U : 0U); }
        void set_level(std::uint32_t l) {
            packed = (packed & 3U) | (l << 2);
        }
    };
    static_assert(sizeof(Node) == 16,
                  "packed node record must stay within 16 bytes");

    /// Non-owning journal pointer whose copy operations reset to null:
    /// graph copies (including `current = current.compact()` assignments)
    /// must never inherit the original's journal.
    struct ChangeLogPtr {
        std::vector<Var>* log = nullptr;
        ChangeLogPtr() = default;
        ChangeLogPtr(const ChangeLogPtr& /*other*/) {}
        ChangeLogPtr& operator=(const ChangeLogPtr& /*other*/) {
            log = nullptr;
            return *this;
        }
        ChangeLogPtr(ChangeLogPtr&& other) noexcept { other.log = nullptr; }
        ChangeLogPtr& operator=(ChangeLogPtr&& other) noexcept {
            log = nullptr;
            other.log = nullptr;
            return *this;
        }
    };

    void touch(Var v, Read k) {
        if (change_log_.log != nullptr) [[unlikely]] {
            change_log_.log->push_back(fp_encode(v, k));
        }
    }

    Var new_node();
    static std::uint64_t strash_key(Lit a, Lit b) {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }
    void ref_var(Var v) {
        touch(v, Read::Ref);
        ++nodes_[v].ref;
    }
    void deref_var(Var v) {
        BG_ASSERT(nodes_[v].ref > 0, "reference count underflow");
        touch(v, Read::Ref);
        --nodes_[v].ref;
    }
    // A fanout-edge change alters the fanin endpoint's fanout list (and
    // the strash-key population over it) and the fanout endpoint's fanin
    // structure — two different read classes.
    void fanout_add(Var fanin, Var fanout) {
        touch(fanin, Read::Fanout);
        touch(fanout, Read::Struct);
        fanouts_.push_back(fanin, fanout);
    }
    void fanout_remove(Var fanin, Var fanout) {
        touch(fanin, Read::Fanout);
        touch(fanout, Read::Struct);
        fanouts_.remove(fanin, fanout);
    }
    /// Patch one fanout of `v` during replace(); may recurse.
    void patch_fanout(Var fanout, Var v, Lit repl);

    std::vector<Node> nodes_;
    detail::FanoutArena fanouts_;
    std::vector<Var> pis_;
    std::vector<Lit> pos_;
    /// Per-var count of PO references (either phase) — keeps po_refs() at
    /// O(1) on the hot traversal paths.
    std::vector<std::uint32_t> po_ref_counts_;
    detail::StrashMap strash_;
    std::size_t num_ands_ = 0;
    ChangeLogPtr change_log_;
};

}  // namespace bg::aig
