#pragma once

/// \file aig.hpp
/// And-Inverter Graph with structural hashing, reference counting, fanout
/// tracking and in-place node replacement with cascading merges — the
/// substrate every optimization in BoolGebra manipulates (the equivalent
/// of ABC's Aig_Man_t / Dec_GraphUpdateNetwork machinery).
///
/// Encoding is AIGER-style: a *literal* is 2*var + complement; var 0 is the
/// constant-FALSE node, so literal 0 is FALSE and literal 1 is TRUE.
/// Primary inputs are vars without fanins; AND nodes have exactly two fanin
/// literals.  Dead (deleted) nodes are tombstoned until compact().

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"

namespace bg::aig {

using Var = std::uint32_t;
using Lit = std::uint32_t;

inline constexpr Lit lit_false = 0;
inline constexpr Lit lit_true = 1;
inline constexpr Lit null_lit = 0xFFFFFFFFU;
inline constexpr Var null_var = 0xFFFFFFFFU;

constexpr Var lit_var(Lit l) { return l >> 1; }
constexpr bool lit_is_compl(Lit l) { return (l & 1U) != 0; }
constexpr Lit make_lit(Var v, bool compl_edge = false) {
    return (v << 1) | (compl_edge ? 1U : 0U);
}
constexpr Lit lit_not(Lit l) { return l ^ 1U; }
constexpr Lit lit_not_cond(Lit l, bool c) { return c ? (l ^ 1U) : l; }
constexpr Lit lit_regular(Lit l) { return l & ~1U; }

class Aig {
public:
    struct Node {
        Lit fanin0 = null_lit;      ///< null for const / PI
        Lit fanin1 = null_lit;      ///< null for const / PI
        std::uint32_t ref = 0;      ///< AND-fanout count + PO references
        std::uint32_t level = 0;    ///< maintained by update_levels()
        bool dead = false;
        bool is_pi = false;

        bool is_and() const { return fanin0 != null_lit; }
    };

    Aig();

    // -- construction ------------------------------------------------------

    /// Create a primary input; returns its (positive) literal.
    Lit add_pi();
    /// Create `n` primary inputs, returning their literals.
    std::vector<Lit> add_pis(std::size_t n);
    /// Register a primary output driven by `l`; returns the PO index.
    std::size_t add_po(Lit l);

    /// Structurally hashed AND with constant/idempotence simplification.
    Lit and_(Lit a, Lit b);
    Lit or_(Lit a, Lit b) { return lit_not(and_(lit_not(a), lit_not(b))); }
    Lit nand_(Lit a, Lit b) { return lit_not(and_(a, b)); }
    Lit nor_(Lit a, Lit b) { return and_(lit_not(a), lit_not(b)); }
    Lit xor_(Lit a, Lit b);
    Lit xnor_(Lit a, Lit b) { return lit_not(xor_(a, b)); }
    /// if c then t else e.
    Lit mux_(Lit c, Lit t, Lit e);
    /// Majority of three.
    Lit maj_(Lit a, Lit b, Lit c);
    /// Balanced AND / OR over a list (empty list gives the identity).
    Lit and_reduce(std::span<const Lit> lits);
    Lit or_reduce(std::span<const Lit> lits);

    /// Strash lookup *without* node creation; returns null_lit when the
    /// AND(a, b) node does not already exist and is not trivially reducible.
    Lit lookup_and(Lit a, Lit b) const;

    // -- queries -----------------------------------------------------------

    std::size_t num_pis() const { return pis_.size(); }
    std::size_t num_pos() const { return pos_.size(); }
    /// Number of live AND nodes — the "size" metric of the paper.
    std::size_t num_ands() const { return num_ands_; }
    /// Total slots including PIs, constant and tombstones.
    std::size_t num_slots() const { return nodes_.size(); }

    const Node& node(Var v) const { return nodes_[v]; }
    bool is_const0(Var v) const { return v == 0; }
    bool is_pi(Var v) const { return nodes_[v].is_pi; }
    bool is_and(Var v) const { return nodes_[v].is_and(); }
    bool is_dead(Var v) const { return nodes_[v].dead; }
    std::uint32_t ref_count(Var v) const { return nodes_[v].ref; }
    Lit fanin0(Var v) const { return nodes_[v].fanin0; }
    Lit fanin1(Var v) const { return nodes_[v].fanin1; }

    std::span<const Var> pis() const { return pis_; }
    std::span<const Lit> pos() const { return pos_; }
    Lit po(std::size_t i) const { return pos_[i]; }
    Var pi(std::size_t i) const { return pis_[i]; }

    /// Live AND-node fanouts of v (PO references are not listed here).
    std::span<const Var> fanouts(Var v) const { return fanouts_[v]; }
    /// Number of POs driven by v (either phase).
    std::size_t po_refs(Var v) const;

    // -- levels / depth ----------------------------------------------------

    /// Recompute levels of all live nodes (PI level 0, AND = 1 + max fanin).
    void update_levels();
    std::uint32_t level(Var v) const { return nodes_[v].level; }
    /// Longest PI-to-PO path in AND nodes; calls update_levels().
    std::uint32_t depth();
    /// Same metric without touching the cached levels — usable on shared
    /// read-only graphs (cost models measure const Aigs concurrently).
    std::uint32_t depth() const;

    // -- traversal ---------------------------------------------------------

    /// Live AND vars in a topological order (fanins before fanouts).
    std::vector<Var> topo_ands() const;
    /// All live vars (const, PIs, ANDs) in topological order.
    std::vector<Var> topo_all() const;
    /// True if `descendant` is in the transitive fanin cone of `root`
    /// (inclusive of root itself).
    bool is_in_tfi(Var root, Var descendant) const;

    // -- restructuring -----------------------------------------------------

    /// Redirect every reference to `v` (AND fanouts and POs) to `repl`,
    /// propagating trivial simplifications and structural-hash merges
    /// upward, and deleting cones that become unreferenced.  `repl` must
    /// not contain `v` in its transitive fanin (checked).
    void replace(Var v, Lit repl);

    /// Recursively delete an unreferenced AND node and any fanin cone that
    /// becomes unreferenced.  No-op for PIs/constant.
    void delete_unreferenced(Var v);

    /// Rebuild into a dense, topologically ordered AIG without tombstones.
    /// `old_to_new` (optional) receives the literal mapping.
    Aig compact(std::vector<Lit>* old_to_new = nullptr) const;

    // -- diagnostics -------------------------------------------------------

    /// Full structural audit: ref counts, fanout symmetry, strash
    /// consistency, acyclicity, no references to dead nodes.  Throws
    /// ContractViolation on the first inconsistency.
    void check_integrity() const;

    /// One-line description, e.g. "aig: pis=5 pos=2 ands=37 depth=9".
    std::string to_string() const;

private:
    friend class ReplaceScope;

    Var new_node();
    static std::uint64_t strash_key(Lit a, Lit b) {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }
    void ref_var(Var v) { ++nodes_[v].ref; }
    void deref_var(Var v) {
        BG_ASSERT(nodes_[v].ref > 0, "reference count underflow");
        --nodes_[v].ref;
    }
    void fanout_add(Var fanin, Var fanout);
    void fanout_remove(Var fanin, Var fanout);
    /// Patch one fanout of `v` during replace(); may recurse.
    void patch_fanout(Var fanout, Var v, Lit repl);

    std::vector<Node> nodes_;
    std::vector<std::vector<Var>> fanouts_;
    std::vector<Var> pis_;
    std::vector<Lit> pos_;
    std::unordered_map<std::uint64_t, Var> strash_;
    std::size_t num_ands_ = 0;
};

}  // namespace bg::aig
