#include "aig/simulation.hpp"

namespace bg::aig {

SimVectors simulate(const Aig& g, const SimVectors& pi_patterns) {
    BG_EXPECTS(pi_patterns.size() == g.num_pis(),
               "one pattern row required per PI");
    const std::size_t words = pi_patterns.empty() ? 1 : pi_patterns[0].size();
    for (const auto& row : pi_patterns) {
        BG_EXPECTS(row.size() == words, "pattern rows must have equal width");
    }

    SimVectors sigs(g.num_slots());
    sigs[0].assign(words, 0);  // constant false
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        sigs[g.pi(i)] = pi_patterns[i];
    }
    for (const Var v : g.topo_ands()) {
        const auto [f0, f1] = g.fanin_refs(v);
        const auto& a = sigs[f0.index()];
        const auto& b = sigs[f1.index()];
        BG_ASSERT(!a.empty() && !b.empty(), "fanin simulated out of order");
        auto& out = sigs[v];
        out.resize(words);
        const std::uint64_t ca = f0.complemented() ? ~0ULL : 0ULL;
        const std::uint64_t cb = f1.complemented() ? ~0ULL : 0ULL;
        for (std::size_t w = 0; w < words; ++w) {
            out[w] = (a[w] ^ ca) & (b[w] ^ cb);
        }
    }
    return sigs;
}

SimVectors po_signatures(const Aig& g, const SimVectors& node_sigs) {
    SimVectors out(g.num_pos());
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        const Lit po = g.po(i);
        const auto& sig = node_sigs[lit_var(po)];
        out[i] = sig;
        if (lit_is_compl(po)) {
            for (auto& w : out[i]) {
                w = ~w;
            }
        }
        // Mask tail bits beyond the pattern count is the caller's concern;
        // all comparisons in this library are word-aligned.
    }
    return out;
}

SimVectors exhaustive_patterns(std::size_t num_pis) {
    BG_EXPECTS(num_pis <= 20, "exhaustive simulation capped at 20 PIs");
    const std::size_t bits = std::size_t{1} << num_pis;
    const std::size_t words = bits <= 64 ? 1 : bits / 64;
    SimVectors rows(num_pis);
    static constexpr std::uint64_t small[6] = {
        0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
        0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
    };
    for (std::size_t i = 0; i < num_pis; ++i) {
        rows[i].resize(words);
        if (i < 6) {
            for (auto& w : rows[i]) {
                w = small[i];
            }
        } else {
            const std::size_t block = std::size_t{1} << (i - 6);
            for (std::size_t w = 0; w < words; ++w) {
                rows[i][w] = ((w / block) & 1U) ? ~0ULL : 0ULL;
            }
        }
    }
    return rows;
}

SimVectors random_patterns(std::size_t num_pis, std::size_t words,
                           bg::Rng& rng) {
    SimVectors rows(num_pis);
    for (auto& row : rows) {
        row.resize(words);
        for (auto& w : row) {
            w = rng.next_u64();
        }
    }
    return rows;
}

}  // namespace bg::aig
