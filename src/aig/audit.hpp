#pragma once

/// \file audit.hpp
/// Shadow read-recording for the footprint soundness auditor.
///
/// The parallel orchestrator's bit-exactness rests on hand-maintained
/// `fp_touch` declarations in the cut/opt layers: a forgotten tag lets a
/// stale speculation be consumed silently.  Audit builds
/// (`-DBOOLGEBRA_AUDIT=ON`) close that gap: every `Aig` accessor that
/// reads a mutable aspect of a node reports the *actual* read
/// `(var, Read-class)` to a thread-local shadow recorder via the
/// `BG_AUDIT_READ` hook, and `analysis::verify_read_soundness` checks the
/// shadow set against the declared footprint after every speculation.
///
/// Two layers keep normal builds untouched:
///  - The recording machinery below (ShadowSet / ShadowScope /
///    shadow_read) is compiled in every build, so the auditor logic is
///    unit-testable everywhere.
///  - The accessor *hooks* expand to nothing unless BOOLGEBRA_AUDIT is
///    defined, so normal builds compile the exact pre-audit accessor
///    bodies (`enabled()` is constant-false and pinned by a
///    static_assert in the tests).
///
/// Read-class semantics match footprint.hpp / the Aig mutation journal:
///  - Struct: existence, dead flag, fanin literals, cached level
///  - Ref:    reference count, PO reference count
///  - Fanout: fanout list (and strash-key presence over a var's ANDs)
///
/// Deliberately *not* hooked (documented limitations of the audit):
///  - immutable per-var facts (`is_pi`, `pis`) and global counters
///    (`num_slots`, `num_ands`, `num_pis`) — footprints cannot express
///    them, and speculation uses them only for scratch sizing;
///  - the PO array (`po`, `pos`, `po_ref`), which *is* hooked, but as a
///    hard failure: a speculated check has no footprint class to declare
///    a PO-array read with, so reading it during speculation is unsound
///    by construction.

#include <cstdint>
#include <vector>

#include "aig/footprint.hpp"

namespace bg::aig::audit {

/// True in audit builds (-DBOOLGEBRA_AUDIT=ON): accessor hooks are live.
constexpr bool enabled() {
#ifdef BOOLGEBRA_AUDIT
    return true;
#else
    return false;
#endif
}

/// The shadow record of one audited computation: every accessor-observed
/// read, encoded `fp_encode(var, kind)` exactly like ReadFootprint
/// entries.  Entries repeat freely; the verifier dedupes.
struct ShadowSet {
    std::vector<std::uint32_t> entries;
    bool overflow = false;  ///< cap exceeded; the audit cannot conclude
    bool po_read = false;   ///< PO-array read observed (always unsound)
    std::size_t cap = 4u * 1024u * 1024u;

    void clear() {
        entries.clear();
        overflow = false;
        po_read = false;
    }
};

namespace detail {
/// The active shadow recorder of the current thread, or nullptr (every
/// non-audited computation, and every thread in normal builds).
extern thread_local ShadowSet* active_shadow;
}  // namespace detail

/// Report that the running computation actually read aspect `k` of `v`.
/// Same shape as fp_touch: one thread-local load and a predictable branch.
inline void shadow_read(std::uint32_t v, Read k) {
    ShadowSet* s = detail::active_shadow;
    if (s == nullptr) [[likely]] {
        return;
    }
    if (s->entries.size() >= s->cap) {
        s->overflow = true;
        return;
    }
    s->entries.push_back(fp_encode(v, k));
}

/// Report a PO-array read — inexpressible in footprints, so any audited
/// computation that performs one fails verification outright.
inline void shadow_read_po() {
    ShadowSet* s = detail::active_shadow;
    if (s != nullptr) [[unlikely]] {
        s->po_read = true;
    }
}

/// True while a shadow recorder is active on this thread.
inline bool shadow_active() { return detail::active_shadow != nullptr; }

/// RAII activation of a shadow recorder on the current thread.  Scopes do
/// not nest (the orchestrator audits one speculation at a time per
/// thread); the previous recorder is restored on exit regardless.
class ShadowScope {
public:
    explicit ShadowScope(ShadowSet& s) {
        prev_ = detail::active_shadow;
        detail::active_shadow = &s;
    }
    ~ShadowScope() { detail::active_shadow = prev_; }

    ShadowScope(const ShadowScope&) = delete;
    ShadowScope& operator=(const ShadowScope&) = delete;

private:
    ShadowSet* prev_ = nullptr;
};

}  // namespace bg::aig::audit

/// Accessor hooks: compiled to nothing in normal builds so every Aig
/// accessor keeps its exact pre-audit body (see enabled()).
#ifdef BOOLGEBRA_AUDIT
#define BG_AUDIT_READ(v, k) ::bg::aig::audit::shadow_read((v), (k))
#define BG_AUDIT_READ_PO() ::bg::aig::audit::shadow_read_po()
#else
#define BG_AUDIT_READ(v, k) static_cast<void>(0)
#define BG_AUDIT_READ_PO() static_cast<void>(0)
#endif
