#pragma once

/// \file footprint.hpp
/// Read-footprint recording for speculative candidate checks.
///
/// The parallel orchestrator speculates `check_op` results against a
/// graph snapshot and must know, per candidate, exactly which vars the
/// check *read* — a committed change touching any of them invalidates the
/// speculation.  Rather than threading a recorder through every signature
/// in the cut/opt layers, the engines call `fp_touch(v)` at each point
/// where a var's structure enters the computation (cut enumeration, MFFC
/// walks, strash lookups, TFO scans, divisor expansion).  `fp_touch` is a
/// thread-local pointer load plus a predictable branch — free when no
/// recorder is active, which is every non-speculative call.
///
/// A footprint caps its var list (default 64k entries); on overflow it
/// degrades to "reads everything", which the orchestrator treats as
/// always-invalid (the candidate is simply re-checked at commit time).
///
/// Reads and journal writes are classified so a commit only invalidates
/// speculations that read the *aspect* of a var it changed: a deref walk
/// re-counting references across a shared cone must not invalidate a
/// neighbor that merely enumerated cuts through it.  Entries are encoded
/// `(var << 2) | Read` in both footprints and the Aig mutation journal.

#include <cstdint>
#include <vector>

namespace bg::aig {

/// Which aspect of a var a read (or journaled write) concerns.
enum class Read : std::uint32_t {
    Struct = 0,  ///< existence, dead flag, fanin literals
    Ref = 1,     ///< reference count (AND fanouts + PO refs)
    Fanout = 2,  ///< fanout list (also strash-key presence of its ANDs)
};

constexpr std::uint32_t fp_encode(std::uint32_t v, Read k) {
    return (v << 2) | static_cast<std::uint32_t>(k);
}
constexpr std::uint32_t fp_entry_var(std::uint32_t e) { return e >> 2; }
constexpr std::uint32_t fp_entry_kind(std::uint32_t e) { return e & 3U; }

/// The recorded read-set of one speculative check: encoded
/// `fp_encode(var, kind)` entries.  Entries may repeat; consumers dedupe
/// (or bloom-hash) as needed.
struct ReadFootprint {
    std::vector<std::uint32_t> vars;
    bool overflow = false;
    std::size_t cap = 64 * 1024;

    void clear() {
        vars.clear();
        overflow = false;
    }
};

namespace detail {
/// The active recorder of the current thread, or nullptr (the common
/// case: nothing is being speculated on this thread).
extern thread_local ReadFootprint* active_footprint;
}  // namespace detail

/// Record that the running computation read aspect `k` of var `v`.
inline void fp_touch(std::uint32_t v, Read k) {
    ReadFootprint* fp = detail::active_footprint;
    if (fp == nullptr) [[likely]] {
        return;
    }
    if (fp->vars.size() >= fp->cap) {
        fp->overflow = true;
        return;
    }
    fp->vars.push_back(fp_encode(v, k));
}

/// True while a recorder is active on this thread (used by call-sites
/// that want to skip building a touch list entirely).
inline bool fp_active() { return detail::active_footprint != nullptr; }

/// RAII activation of a footprint recorder on the current thread.
/// Scopes may not nest (the orchestrator records one candidate at a
/// time per thread).
class FootprintScope {
public:
    explicit FootprintScope(ReadFootprint& fp) {
        prev_ = detail::active_footprint;
        detail::active_footprint = &fp;
    }
    ~FootprintScope() { detail::active_footprint = prev_; }

    FootprintScope(const FootprintScope&) = delete;
    FootprintScope& operator=(const FootprintScope&) = delete;

private:
    ReadFootprint* prev_ = nullptr;
};

}  // namespace bg::aig
