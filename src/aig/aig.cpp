#include "aig/aig.hpp"

#include <algorithm>
#include <sstream>

#include "aig/footprint.hpp"
#include "aig/visited.hpp"

namespace bg::aig {

// ---------------------------------------------------------------------------
// FanoutArena
// ---------------------------------------------------------------------------

namespace detail {

void FanoutArena::push_back(Var v, Var f) {
    Head& h = heads_[v];
    if (h.size == h.cap) {
        // Repack first when the arena is mostly leaked blocks, so
        // replace()-heavy workloads cannot grow it without bound.
        if (arena_.size() >= 4096 && arena_.size() > 4 * (live_ + 1)) {
            repack();
        }
        Head& hh = heads_[v];  // repack() may have moved the block
        const std::uint32_t new_cap = std::max<std::uint32_t>(2, hh.cap * 2);
        const std::uint32_t new_off = static_cast<std::uint32_t>(
            arena_.size());
        arena_.resize(arena_.size() + new_cap);
        std::copy_n(arena_.begin() + hh.off, hh.size,
                    arena_.begin() + new_off);
        hh.off = new_off;
        hh.cap = new_cap;
        arena_[hh.off + hh.size++] = f;
        ++live_;
        return;
    }
    arena_[h.off + h.size++] = f;
    ++live_;
}

void FanoutArena::remove(Var v, Var f) {
    Head& h = heads_[v];
    Var* const begin = arena_.data() + h.off;
    Var* const end = begin + h.size;
    Var* const it = std::find(begin, end, f);
    BG_ASSERT(it != end, "fanout record missing during removal");
    *it = end[-1];  // swap-with-back, as the vector layout did
    --h.size;
    --live_;
}

void FanoutArena::validate() const {
    std::size_t live = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;
    for (const Head& h : heads_) {
        BG_ASSERT(h.size <= h.cap, "fanout block size exceeds its capacity");
        BG_ASSERT(static_cast<std::size_t>(h.off) + h.cap <= arena_.size(),
                  "fanout block extends past the arena");
        live += h.size;
        if (h.cap > 0) {
            blocks.emplace_back(h.off, h.cap);
        }
    }
    BG_ASSERT(live == live_, "fanout live-slot accounting out of sync");
    // Allocated blocks (cap > 0) must never overlap; leaked regions from
    // tail-relocation are unowned and harmless.
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
        BG_ASSERT(blocks[i].first + blocks[i].second <= blocks[i + 1].first,
                  "fanout arena blocks overlap");
    }
}

void FanoutArena::repack() {
    std::vector<Var> packed;
    packed.reserve(live_ + live_ / 2 + heads_.size());
    for (Head& h : heads_) {
        const std::uint32_t off = static_cast<std::uint32_t>(packed.size());
        packed.insert(packed.end(), arena_.begin() + h.off,
                      arena_.begin() + h.off + h.size);
        // A little headroom per list so the next push does not immediately
        // move the block back to the tail.
        const std::uint32_t cap =
            std::max<std::uint32_t>(2, h.size + h.size / 2);
        packed.resize(packed.size() + (cap - h.size));
        h.off = off;
        h.cap = cap;
    }
    arena_ = std::move(packed);
}

// ---------------------------------------------------------------------------
// StrashMap
// ---------------------------------------------------------------------------

Var StrashMap::find(std::uint64_t key) const {
    if (keys_.empty()) {
        return null_var;
    }
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
        const std::uint64_t k = keys_[i];
        if (k == key) {
            return vals_[i];
        }
        if (k == k_empty) {
            return null_var;
        }
        i = (i + 1) & mask;
    }
}

void StrashMap::insert(std::uint64_t key, Var v) {
    if ((used_ + 1) * 2 > keys_.size()) {
        rehash(std::max<std::size_t>(16, (size_ + 1) * 4));
    }
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    std::size_t slot = ~std::size_t{0};
    while (true) {
        const std::uint64_t k = keys_[i];
        BG_ASSERT(k != key, "strash insert over an existing key");
        if (k == k_tombstone && slot == ~std::size_t{0}) {
            slot = i;  // reuse the first tombstone on the probe path
        }
        if (k == k_empty) {
            if (slot == ~std::size_t{0}) {
                slot = i;
                ++used_;  // consuming a fresh slot, not a tombstone
            }
            break;
        }
        i = (i + 1) & mask;
    }
    keys_[slot] = key;
    vals_[slot] = v;
    ++size_;
}

void StrashMap::erase(std::uint64_t key) {
    BG_ASSERT(!keys_.empty(), "strash erase on an empty table");
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
        const std::uint64_t k = keys_[i];
        if (k == key) {
            keys_[i] = k_tombstone;
            --size_;
            return;
        }
        BG_ASSERT(k != k_empty, "strash erase of a missing key");
        i = (i + 1) & mask;
    }
}

void StrashMap::reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap < n * 2) {
        cap *= 2;
    }
    if (cap > keys_.size()) {
        rehash(cap);
    }
}

void StrashMap::rehash(std::size_t new_cap) {
    std::size_t cap = 16;
    while (cap < new_cap) {
        cap *= 2;
    }
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Var> old_vals = std::move(vals_);
    keys_.assign(cap, k_empty);
    vals_.assign(cap, null_var);
    const std::size_t mask = cap - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
        const std::uint64_t k = old_keys[j];
        if (k == k_empty || k == k_tombstone) {
            continue;
        }
        std::size_t i = mix(k) & mask;
        while (keys_[i] != k_empty) {
            i = (i + 1) & mask;
        }
        keys_[i] = k;
        vals_[i] = old_vals[j];
    }
    used_ = size_;  // tombstones dropped
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Aig
// ---------------------------------------------------------------------------

Aig::Aig() {
    // Slot 0 is the constant-FALSE node.
    nodes_.emplace_back();
    fanouts_.add_node();
    po_ref_counts_.push_back(0);
}

Aig::MemoryStats Aig::memory_stats() const {
    MemoryStats m;
    m.node_array_bytes = nodes_.capacity() * sizeof(Node);
    m.fanout_bytes = fanouts_.bytes();
    m.strash_bytes = strash_.bytes();
    m.po_count_bytes = po_ref_counts_.capacity() * sizeof(std::uint32_t);
    return m;
}

void Aig::reserve(std::size_t nodes) {
    nodes_.reserve(nodes);
    po_ref_counts_.reserve(nodes);
    fanouts_.reserve(nodes, 2 * nodes);
    strash_.reserve(nodes);
}

Var Aig::new_node() {
    nodes_.emplace_back();
    fanouts_.add_node();
    po_ref_counts_.push_back(0);
    const Var v = static_cast<Var>(nodes_.size() - 1);
    touch(v, Read::Struct);
    return v;
}

Lit Aig::add_pi() {
    const Var v = new_node();
    nodes_[v].set_pi(true);
    pis_.push_back(v);
    return make_lit(v);
}

std::vector<Lit> Aig::add_pis(std::size_t n) {
    std::vector<Lit> lits;
    lits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        lits.push_back(add_pi());
    }
    return lits;
}

std::size_t Aig::add_po(Lit l) {
    BG_EXPECTS(lit_var(l) < nodes_.size(), "PO literal out of range");
    BG_EXPECTS(!is_dead(lit_var(l)), "PO driven by a dead node");
    ref_var(lit_var(l));
    ++po_ref_counts_[lit_var(l)];
    pos_.push_back(l);
    return pos_.size() - 1;
}

Lit Aig::lookup_and(Lit a, Lit b) const {
    BG_EXPECTS(lit_var(a) < nodes_.size() && lit_var(b) < nodes_.size(),
               "AND fanin literal out of range");
    // Trivial simplifications mirror and_().
    if (a == lit_false || b == lit_false) {
        return lit_false;
    }
    if (a == lit_true) {
        return b;
    }
    if (b == lit_true) {
        return a;
    }
    if (a == b) {
        return a;
    }
    if (a == lit_not(b)) {
        return lit_false;
    }
    if (a > b) {
        std::swap(a, b);
    }
    // A strash probe's result is covered by the fanout class of both
    // operand vars (any key change over (a, b) journals a fanout-edge
    // change on at least one of them) plus, on a hit, the hit node's
    // structure — mirror exactly that into the audit shadow.
    BG_AUDIT_READ(lit_var(a), Read::Fanout);
    BG_AUDIT_READ(lit_var(b), Read::Fanout);
    const Var hit = strash_.find(strash_key(a, b));
    if (hit == null_var) {
        return null_lit;
    }
    BG_AUDIT_READ(hit, Read::Struct);
    return make_lit(hit);
}

Lit Aig::and_(Lit a, Lit b) {
    const Lit found = lookup_and(a, b);
    if (found != null_lit) {
        return found;
    }
    BG_EXPECTS(!is_dead(lit_var(a)) && !is_dead(lit_var(b)),
               "AND over a dead fanin");
    if (a > b) {
        std::swap(a, b);
    }
    const Var v = new_node();
    nodes_[v].fanin0 = NodeRef::from_lit(a);
    nodes_[v].fanin1 = NodeRef::from_lit(b);
    ref_var(lit_var(a));
    ref_var(lit_var(b));
    fanout_add(lit_var(a), v);
    fanout_add(lit_var(b), v);
    strash_.insert(strash_key(a, b), v);
    ++num_ands_;
    return make_lit(v);
}

Lit Aig::xor_(Lit a, Lit b) {
    // a ^ b = !(!(a & !b) & !(!a & b))
    const Lit t0 = and_(a, lit_not(b));
    const Lit t1 = and_(lit_not(a), b);
    return or_(t0, t1);
}

Lit Aig::mux_(Lit c, Lit t, Lit e) {
    const Lit t0 = and_(c, t);
    const Lit t1 = and_(lit_not(c), e);
    return or_(t0, t1);
}

Lit Aig::maj_(Lit a, Lit b, Lit c) {
    return or_(and_(a, b), or_(and_(a, c), and_(b, c)));
}

Lit Aig::and_reduce(std::span<const Lit> lits) {
    if (lits.empty()) {
        return lit_true;
    }
    std::vector<Lit> cur(lits.begin(), lits.end());
    while (cur.size() > 1) {
        std::vector<Lit> next;
        next.reserve((cur.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
            next.push_back(and_(cur[i], cur[i + 1]));
        }
        if (cur.size() % 2 == 1) {
            next.push_back(cur.back());
        }
        cur = std::move(next);
    }
    return cur[0];
}

Lit Aig::or_reduce(std::span<const Lit> lits) {
    std::vector<Lit> inv;
    inv.reserve(lits.size());
    for (const Lit l : lits) {
        inv.push_back(lit_not(l));
    }
    return lit_not(and_reduce(inv));
}

void Aig::update_levels() {
    for (const Var v : topo_all()) {
        auto& n = nodes_[v];
        if (n.is_and()) {
            n.set_level(1 + std::max(nodes_[n.fanin0.index()].level(),
                                     nodes_[n.fanin1.index()].level()));
        } else {
            n.set_level(0);
        }
    }
}

std::uint32_t Aig::depth() {
    update_levels();
    std::uint32_t d = 0;
    for (const Lit po : pos_) {
        d = std::max(d, nodes_[lit_var(po)].level());
    }
    return d;
}

std::uint32_t Aig::depth() const {
    std::vector<std::uint32_t> levels(nodes_.size(), 0);
    for (const Var v : topo_all()) {
        const auto& n = nodes_[v];
        if (n.is_and()) {
            levels[v] = 1 + std::max(levels[n.fanin0.index()],
                                     levels[n.fanin1.index()]);
        }
    }
    std::uint32_t d = 0;
    for (const Lit po : pos_) {
        d = std::max(d, levels[lit_var(po)]);
    }
    return d;
}

std::vector<Var> Aig::topo_all() const {
    // Kahn's algorithm over live nodes; const and PIs lead.
    std::vector<Var> order;
    order.reserve(nodes_.size());
    std::vector<std::uint32_t> pending(nodes_.size(), 0);
    std::vector<Var> ready;
    for (Var v = 0; v < nodes_.size(); ++v) {
        if (nodes_[v].dead()) {
            continue;
        }
        if (nodes_[v].is_and()) {
            pending[v] = 2;
        } else {
            ready.push_back(v);
        }
    }
    while (!ready.empty()) {
        const Var v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const Var f : fanouts_.list(v)) {
            if (nodes_[f].dead()) {
                continue;
            }
            // A node may appear twice in a fanout list only if both fanins
            // share the var, which and_() precludes; decrement once.
            BG_ASSERT(pending[f] > 0, "topological ordering underflow");
            if (--pending[f] == 0) {
                ready.push_back(f);
            }
        }
    }
    return order;
}

std::vector<Var> Aig::topo_ands() const {
    auto all = topo_all();
    std::vector<Var> ands;
    ands.reserve(all.size());
    for (const Var v : all) {
        if (nodes_[v].is_and()) {
            ands.push_back(v);
        }
    }
    return ands;
}

bool Aig::is_in_tfi(Var root, Var descendant) const {
    if (root == descendant) {
        return true;
    }
    // Epoch-marked scratch instead of a per-call vector<bool>: TFI walks
    // run per candidate, and per region once walks go parallel.  Each
    // thread owns its scratch, so concurrent walks never share marks.
    thread_local EpochMarks seen;
    thread_local std::vector<Var> stack;
    seen.reset(nodes_.size());
    stack.clear();
    stack.push_back(root);
    seen.set(root);
    fp_touch(root, Read::Struct);
    while (!stack.empty()) {
        const Var v = stack.back();
        stack.pop_back();
        if (!nodes_[v].is_and()) {
            continue;
        }
        for (const NodeRef f : fanin_refs(v)) {
            const Var u = f.index();
            if (u == descendant) {
                return true;
            }
            if (seen.insert(u)) {
                fp_touch(u, Read::Struct);
                stack.push_back(u);
            }
        }
    }
    return false;
}

void Aig::delete_unreferenced(Var v) {
    auto& n = nodes_[v];
    if (n.dead() || !n.is_and() || n.ref > 0) {
        return;
    }
    // Death changes every aspect at once: the node vanishes, its (zero)
    // reference count stops being readable, and its fanout list clears.
    touch(v, Read::Struct);
    touch(v, Read::Ref);
    touch(v, Read::Fanout);
    n.set_dead(true);
    --num_ands_;
    strash_.erase(strash_key(n.fanin0.lit(), n.fanin1.lit()));
    for (const NodeRef f : {n.fanin0, n.fanin1}) {
        const Var u = f.index();
        fanout_remove(u, v);
        deref_var(u);
        delete_unreferenced(u);
    }
    fanouts_.clear(v);
}

void Aig::patch_fanout(Var fanout, Var v, Lit repl) {
    auto& fn = nodes_[fanout];
    BG_ASSERT(!fn.dead(), "patching a dead fanout");
    const bool on0 = fn.fanin0.index() == v;
    const bool on1 = fn.fanin1.index() == v;
    BG_ASSERT(on0 != on1, "fanout must reference v on exactly one fanin");

    const Lit other = on0 ? fn.fanin1.lit() : fn.fanin0.lit();
    const Lit mine = on0 ? fn.fanin0.lit() : fn.fanin1.lit();
    const Lit substituted = lit_not_cond(repl, lit_is_compl(mine));

    // Would the patched node be trivial or a duplicate?
    const Lit merged = lookup_and(substituted, other);
    if (merged != null_lit && lit_var(merged) != fanout) {
        // The fanout collapses to a constant / existing node: cascade.
        replace(fanout, merged);
        return;
    }

    // Physical in-place patch.
    strash_.erase(strash_key(fn.fanin0.lit(), fn.fanin1.lit()));
    Lit a = substituted;
    Lit b = other;
    if (a > b) {
        std::swap(a, b);
    }
    fn.fanin0 = NodeRef::from_lit(a);
    fn.fanin1 = NodeRef::from_lit(b);
    strash_.insert(strash_key(a, b), fanout);
    fanout_remove(v, fanout);
    deref_var(v);
    fanout_add(lit_var(repl), fanout);
    ref_var(lit_var(repl));
}

void Aig::replace(Var v, Lit repl) {
    BG_EXPECTS(v < nodes_.size(), "replace: var out of range");
    BG_EXPECTS(!nodes_[v].dead(), "replace: v is dead");
    BG_EXPECTS(nodes_[v].is_and(), "replace: only AND nodes can be replaced");
    BG_EXPECTS(!nodes_[lit_var(repl)].dead(), "replace: repl is dead");
    BG_EXPECTS(lit_var(repl) != v, "replace: self-replacement");
    BG_EXPECTS(!is_in_tfi(lit_var(repl), v),
               "replace would create a combinational cycle");

    // Keep the replacement alive throughout, even if cascading merges
    // temporarily strip all its other references.
    const Var rv = lit_var(repl);
    ref_var(rv);

    // Patch AND fanouts one at a time; each patch removes exactly one
    // occurrence of v from its fanout list (possibly recursively).
    while (!fanouts_.empty(v)) {
        patch_fanout(fanouts_.front(v), v, repl);
    }

    // Patch PO references.
    for (auto& po : pos_) {
        if (lit_var(po) == v) {
            po = lit_not_cond(repl, lit_is_compl(po));
            --po_ref_counts_[v];
            ++po_ref_counts_[lit_var(po)];
            deref_var(v);
            ref_var(lit_var(po));
        }
    }

    delete_unreferenced(v);
    deref_var(rv);
    delete_unreferenced(rv);
}

Aig Aig::compact(std::vector<Lit>* old_to_new) const {
    Aig out;
    out.reserve(1 + num_pis() + num_ands());
    std::vector<Lit> map(nodes_.size(), null_lit);
    map[0] = lit_false;
    for (const Var v : pis_) {
        map[v] = out.add_pi();
    }
    for (const Var v : topo_ands()) {
        const Lit f0 = map[nodes_[v].fanin0.index()];
        const Lit f1 = map[nodes_[v].fanin1.index()];
        BG_ASSERT(f0 != null_lit && f1 != null_lit,
                  "compact: fanin not yet mapped");
        map[v] =
            out.and_(lit_not_cond(f0, nodes_[v].fanin0.complemented()),
                     lit_not_cond(f1, nodes_[v].fanin1.complemented()));
    }
    for (const Lit po : pos_) {
        const Lit m = map[lit_var(po)];
        BG_ASSERT(m != null_lit, "compact: PO driver not mapped");
        out.add_po(lit_not_cond(m, lit_is_compl(po)));
    }
    if (old_to_new != nullptr) {
        *old_to_new = std::move(map);
    }
    return out;
}

void Aig::check_integrity(CheckLevel level) const {
    if (level == CheckLevel::Strict) {
        // Arena/strash audits run first so their targeted diagnostics win
        // over the secondary symptoms (e.g. a duplicated fanout entry also
        // breaks the topological-order walk below).
        fanouts_.validate();
        BG_ASSERT(fanouts_.live_slots() == 2 * num_ands_,
                  "fanout arena live slots != 2 * live AND count");
        // Every per-node fanout list must equal (as a multiset — removal
        // is swap-with-back, so order is historical) the fanouts
        // recomputed from fanins.
        std::vector<std::vector<Var>> expected_fanouts(nodes_.size());
        for (Var v = 0; v < nodes_.size(); ++v) {
            const auto& n = nodes_[v];
            if (n.dead() || !n.is_and()) {
                continue;
            }
            expected_fanouts[n.fanin0.index()].push_back(v);
            expected_fanouts[n.fanin1.index()].push_back(v);
        }
        for (Var v = 0; v < nodes_.size(); ++v) {
            const auto list = fanouts_.list(v);
            std::vector<Var> got(list.begin(), list.end());
            std::sort(got.begin(), got.end());
            std::sort(expected_fanouts[v].begin(), expected_fanouts[v].end());
            BG_ASSERT(got == expected_fanouts[v],
                      "fanout list diverges from recomputed fanouts at var " +
                          std::to_string(v));
        }
        // Walk the whole strash table: every live entry must name a live
        // AND whose recomputed key matches — no stale or tombstoned hit
        // is reachable.
        std::size_t strash_entries = 0;
        strash_.for_each([&](std::uint64_t key, Var v) {
            ++strash_entries;
            BG_ASSERT(v < nodes_.size(), "strash entry names an unknown var");
            const auto& n = nodes_[v];
            BG_ASSERT(!n.dead() && n.is_and(),
                      "strash entry names a dead or non-AND node: var " +
                          std::to_string(v));
            BG_ASSERT(strash_key(n.fanin0.lit(), n.fanin1.lit()) == key,
                      "strash entry key diverges from its node's fanins: "
                      "var " +
                          std::to_string(v));
        });
        BG_ASSERT(strash_entries == num_ands_,
                  "strash live-entry walk count != live AND count");
    }
    std::vector<std::uint32_t> expected_refs(nodes_.size(), 0);
    std::vector<std::uint32_t> expected_po_refs(nodes_.size(), 0);
    std::size_t live_ands = 0;

    for (Var v = 0; v < nodes_.size(); ++v) {
        const auto& n = nodes_[v];
        if (n.dead()) {
            BG_ASSERT(fanouts_.list(v).empty(), "dead node retains fanouts");
            continue;
        }
        if (!n.is_and()) {
            continue;
        }
        ++live_ands;
        const Var u0 = n.fanin0.index();
        const Var u1 = n.fanin1.index();
        BG_ASSERT(u0 < nodes_.size() && u1 < nodes_.size(),
                  "fanin out of range");
        BG_ASSERT(!nodes_[u0].dead() && !nodes_[u1].dead(),
                  "live node references a dead fanin");
        BG_ASSERT(n.fanin0.lit() <= n.fanin1.lit(), "fanins not normalized");
        BG_ASSERT(u0 != u1, "fanins share a variable");
        ++expected_refs[u0];
        ++expected_refs[u1];
        // Fanout symmetry.
        for (const Var u : {u0, u1}) {
            const auto list = fanouts_.list(u);
            BG_ASSERT(std::find(list.begin(), list.end(), v) != list.end(),
                      "fanin lacks the fanout back-reference");
        }
        // Strash consistency.
        BG_ASSERT(strash_.find(strash_key(n.fanin0.lit(), n.fanin1.lit())) ==
                      v,
                  "strash table out of sync with node");
    }
    for (const Lit po : pos_) {
        BG_ASSERT(!nodes_[lit_var(po)].dead(), "PO references a dead node");
        ++expected_refs[lit_var(po)];
        ++expected_po_refs[lit_var(po)];
    }
    for (Var v = 0; v < nodes_.size(); ++v) {
        BG_ASSERT(po_ref_counts_[v] == expected_po_refs[v],
                  "PO reference count mismatch at var " + std::to_string(v));
        if (nodes_[v].dead()) {
            continue;
        }
        BG_ASSERT(nodes_[v].ref == expected_refs[v],
                  "reference count mismatch at var " + std::to_string(v));
        for (const Var f : fanouts_.list(v)) {
            BG_ASSERT(!nodes_[f].dead(), "fanout list references a dead node");
            BG_ASSERT(nodes_[f].fanin0.index() == v ||
                          nodes_[f].fanin1.index() == v,
                      "fanout back-reference without matching fanin");
        }
    }
    BG_ASSERT(live_ands == num_ands_, "live AND-node count out of sync");
    BG_ASSERT(strash_.size() == num_ands_, "strash size out of sync");
    // Acyclicity: a full topological order must exist.
    std::size_t live_total = 0;
    for (Var v = 0; v < nodes_.size(); ++v) {
        live_total += nodes_[v].dead() ? 0 : 1;
    }
    BG_ASSERT(topo_all().size() == live_total,
              "graph contains a combinational cycle");
}

#ifdef BOOLGEBRA_AUDIT
void Aig::audit_corrupt_for_test(Corrupt kind, Var v) {
    switch (kind) {
        case Corrupt::RefCount:
            ++nodes_[v].ref;  // unjournaled on purpose
            break;
        case Corrupt::FanoutDup:
            BG_EXPECTS(!fanouts_.list(v).empty(),
                       "FanoutDup needs a node with fanouts");
            fanouts_.push_back(v, fanouts_.front(v));
            break;
        case Corrupt::StrashDrop:
            BG_EXPECTS(nodes_[v].is_and() && !nodes_[v].dead(),
                       "StrashDrop needs a live AND node");
            strash_.erase(
                strash_key(nodes_[v].fanin0.lit(), nodes_[v].fanin1.lit()));
            break;
    }
}
#endif

std::string Aig::to_string() const {
    std::ostringstream os;
    os << "aig: pis=" << num_pis() << " pos=" << num_pos()
       << " ands=" << num_ands();
    return os.str();
}

}  // namespace bg::aig
