#include "aig/aig.hpp"

#include <algorithm>
#include <sstream>

namespace bg::aig {

Aig::Aig() {
    // Slot 0 is the constant-FALSE node.
    nodes_.emplace_back();
    fanouts_.emplace_back();
}

Var Aig::new_node() {
    nodes_.emplace_back();
    fanouts_.emplace_back();
    return static_cast<Var>(nodes_.size() - 1);
}

Lit Aig::add_pi() {
    const Var v = new_node();
    nodes_[v].is_pi = true;
    pis_.push_back(v);
    return make_lit(v);
}

std::vector<Lit> Aig::add_pis(std::size_t n) {
    std::vector<Lit> lits;
    lits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        lits.push_back(add_pi());
    }
    return lits;
}

std::size_t Aig::add_po(Lit l) {
    BG_EXPECTS(lit_var(l) < nodes_.size(), "PO literal out of range");
    BG_EXPECTS(!is_dead(lit_var(l)), "PO driven by a dead node");
    ref_var(lit_var(l));
    pos_.push_back(l);
    return pos_.size() - 1;
}

Lit Aig::lookup_and(Lit a, Lit b) const {
    BG_EXPECTS(lit_var(a) < nodes_.size() && lit_var(b) < nodes_.size(),
               "AND fanin literal out of range");
    // Trivial simplifications mirror and_().
    if (a == lit_false || b == lit_false) {
        return lit_false;
    }
    if (a == lit_true) {
        return b;
    }
    if (b == lit_true) {
        return a;
    }
    if (a == b) {
        return a;
    }
    if (a == lit_not(b)) {
        return lit_false;
    }
    if (a > b) {
        std::swap(a, b);
    }
    const auto it = strash_.find(strash_key(a, b));
    if (it == strash_.end()) {
        return null_lit;
    }
    return make_lit(it->second);
}

Lit Aig::and_(Lit a, Lit b) {
    const Lit found = lookup_and(a, b);
    if (found != null_lit) {
        return found;
    }
    BG_EXPECTS(!is_dead(lit_var(a)) && !is_dead(lit_var(b)),
               "AND over a dead fanin");
    if (a > b) {
        std::swap(a, b);
    }
    const Var v = new_node();
    nodes_[v].fanin0 = a;
    nodes_[v].fanin1 = b;
    ref_var(lit_var(a));
    ref_var(lit_var(b));
    fanout_add(lit_var(a), v);
    fanout_add(lit_var(b), v);
    strash_.emplace(strash_key(a, b), v);
    ++num_ands_;
    return make_lit(v);
}

Lit Aig::xor_(Lit a, Lit b) {
    // a ^ b = !(!(a & !b) & !(!a & b))
    const Lit t0 = and_(a, lit_not(b));
    const Lit t1 = and_(lit_not(a), b);
    return or_(t0, t1);
}

Lit Aig::mux_(Lit c, Lit t, Lit e) {
    const Lit t0 = and_(c, t);
    const Lit t1 = and_(lit_not(c), e);
    return or_(t0, t1);
}

Lit Aig::maj_(Lit a, Lit b, Lit c) {
    return or_(and_(a, b), or_(and_(a, c), and_(b, c)));
}

Lit Aig::and_reduce(std::span<const Lit> lits) {
    if (lits.empty()) {
        return lit_true;
    }
    std::vector<Lit> cur(lits.begin(), lits.end());
    while (cur.size() > 1) {
        std::vector<Lit> next;
        next.reserve((cur.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
            next.push_back(and_(cur[i], cur[i + 1]));
        }
        if (cur.size() % 2 == 1) {
            next.push_back(cur.back());
        }
        cur = std::move(next);
    }
    return cur[0];
}

Lit Aig::or_reduce(std::span<const Lit> lits) {
    std::vector<Lit> inv;
    inv.reserve(lits.size());
    for (const Lit l : lits) {
        inv.push_back(lit_not(l));
    }
    return lit_not(and_reduce(inv));
}

std::size_t Aig::po_refs(Var v) const {
    std::size_t n = 0;
    for (const Lit po : pos_) {
        n += lit_var(po) == v ? 1 : 0;
    }
    return n;
}

void Aig::fanout_add(Var fanin, Var fanout) {
    fanouts_[fanin].push_back(fanout);
}

void Aig::fanout_remove(Var fanin, Var fanout) {
    auto& list = fanouts_[fanin];
    const auto it = std::find(list.begin(), list.end(), fanout);
    BG_ASSERT(it != list.end(), "fanout record missing during removal");
    *it = list.back();
    list.pop_back();
}

void Aig::update_levels() {
    for (const Var v : topo_all()) {
        auto& n = nodes_[v];
        if (n.is_and()) {
            n.level = 1 + std::max(nodes_[lit_var(n.fanin0)].level,
                                   nodes_[lit_var(n.fanin1)].level);
        } else {
            n.level = 0;
        }
    }
}

std::uint32_t Aig::depth() {
    update_levels();
    std::uint32_t d = 0;
    for (const Lit po : pos_) {
        d = std::max(d, nodes_[lit_var(po)].level);
    }
    return d;
}

std::uint32_t Aig::depth() const {
    std::vector<std::uint32_t> levels(nodes_.size(), 0);
    for (const Var v : topo_all()) {
        const auto& n = nodes_[v];
        if (n.is_and()) {
            levels[v] = 1 + std::max(levels[lit_var(n.fanin0)],
                                     levels[lit_var(n.fanin1)]);
        }
    }
    std::uint32_t d = 0;
    for (const Lit po : pos_) {
        d = std::max(d, levels[lit_var(po)]);
    }
    return d;
}

std::vector<Var> Aig::topo_all() const {
    // Kahn's algorithm over live nodes; const and PIs lead.
    std::vector<Var> order;
    order.reserve(nodes_.size());
    std::vector<std::uint32_t> pending(nodes_.size(), 0);
    std::vector<Var> ready;
    for (Var v = 0; v < nodes_.size(); ++v) {
        if (nodes_[v].dead) {
            continue;
        }
        if (nodes_[v].is_and()) {
            pending[v] = 2;
        } else {
            ready.push_back(v);
        }
    }
    while (!ready.empty()) {
        const Var v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const Var f : fanouts_[v]) {
            if (nodes_[f].dead) {
                continue;
            }
            // A node may appear twice in a fanout list only if both fanins
            // share the var, which and_() precludes; decrement once.
            BG_ASSERT(pending[f] > 0, "topological ordering underflow");
            if (--pending[f] == 0) {
                ready.push_back(f);
            }
        }
    }
    return order;
}

std::vector<Var> Aig::topo_ands() const {
    auto all = topo_all();
    std::vector<Var> ands;
    ands.reserve(all.size());
    for (const Var v : all) {
        if (nodes_[v].is_and()) {
            ands.push_back(v);
        }
    }
    return ands;
}

bool Aig::is_in_tfi(Var root, Var descendant) const {
    if (root == descendant) {
        return true;
    }
    std::vector<Var> stack{root};
    std::vector<bool> seen(nodes_.size(), false);
    seen[root] = true;
    while (!stack.empty()) {
        const Var v = stack.back();
        stack.pop_back();
        if (!nodes_[v].is_and()) {
            continue;
        }
        for (const Lit f : {nodes_[v].fanin0, nodes_[v].fanin1}) {
            const Var u = lit_var(f);
            if (u == descendant) {
                return true;
            }
            if (!seen[u]) {
                seen[u] = true;
                stack.push_back(u);
            }
        }
    }
    return false;
}

void Aig::delete_unreferenced(Var v) {
    auto& n = nodes_[v];
    if (n.dead || !n.is_and() || n.ref > 0) {
        return;
    }
    n.dead = true;
    --num_ands_;
    strash_.erase(strash_key(n.fanin0, n.fanin1));
    for (const Lit f : {n.fanin0, n.fanin1}) {
        const Var u = lit_var(f);
        fanout_remove(u, v);
        deref_var(u);
        delete_unreferenced(u);
    }
    fanouts_[v].clear();
}

void Aig::patch_fanout(Var fanout, Var v, Lit repl) {
    auto& fn = nodes_[fanout];
    BG_ASSERT(!fn.dead, "patching a dead fanout");
    const bool on0 = lit_var(fn.fanin0) == v;
    const bool on1 = lit_var(fn.fanin1) == v;
    BG_ASSERT(on0 != on1, "fanout must reference v on exactly one fanin");

    const Lit other = on0 ? fn.fanin1 : fn.fanin0;
    const Lit mine = on0 ? fn.fanin0 : fn.fanin1;
    const Lit substituted = lit_not_cond(repl, lit_is_compl(mine));

    // Would the patched node be trivial or a duplicate?
    const Lit merged = lookup_and(substituted, other);
    if (merged != null_lit && lit_var(merged) != fanout) {
        // The fanout collapses to a constant / existing node: cascade.
        replace(fanout, merged);
        return;
    }

    // Physical in-place patch.
    strash_.erase(strash_key(fn.fanin0, fn.fanin1));
    Lit a = substituted;
    Lit b = other;
    if (a > b) {
        std::swap(a, b);
    }
    fn.fanin0 = a;
    fn.fanin1 = b;
    strash_.emplace(strash_key(a, b), fanout);
    fanout_remove(v, fanout);
    deref_var(v);
    fanout_add(lit_var(repl), fanout);
    ref_var(lit_var(repl));
}

void Aig::replace(Var v, Lit repl) {
    BG_EXPECTS(v < nodes_.size(), "replace: var out of range");
    BG_EXPECTS(!nodes_[v].dead, "replace: v is dead");
    BG_EXPECTS(nodes_[v].is_and(), "replace: only AND nodes can be replaced");
    BG_EXPECTS(!nodes_[lit_var(repl)].dead, "replace: repl is dead");
    BG_EXPECTS(lit_var(repl) != v, "replace: self-replacement");
    BG_EXPECTS(!is_in_tfi(lit_var(repl), v),
               "replace would create a combinational cycle");

    // Keep the replacement alive throughout, even if cascading merges
    // temporarily strip all its other references.
    const Var rv = lit_var(repl);
    ref_var(rv);

    // Patch AND fanouts one at a time; each patch removes exactly one
    // occurrence of v from its fanout list (possibly recursively).
    while (!fanouts_[v].empty()) {
        patch_fanout(fanouts_[v].front(), v, repl);
    }

    // Patch PO references.
    for (auto& po : pos_) {
        if (lit_var(po) == v) {
            po = lit_not_cond(repl, lit_is_compl(po));
            deref_var(v);
            ref_var(rv);
        }
    }

    delete_unreferenced(v);
    deref_var(rv);
    delete_unreferenced(rv);
}

Aig Aig::compact(std::vector<Lit>* old_to_new) const {
    Aig out;
    std::vector<Lit> map(nodes_.size(), null_lit);
    map[0] = lit_false;
    for (const Var v : pis_) {
        map[v] = out.add_pi();
    }
    for (const Var v : topo_ands()) {
        const Lit f0 = map[lit_var(nodes_[v].fanin0)];
        const Lit f1 = map[lit_var(nodes_[v].fanin1)];
        BG_ASSERT(f0 != null_lit && f1 != null_lit,
                  "compact: fanin not yet mapped");
        map[v] = out.and_(lit_not_cond(f0, lit_is_compl(nodes_[v].fanin0)),
                          lit_not_cond(f1, lit_is_compl(nodes_[v].fanin1)));
    }
    for (const Lit po : pos_) {
        const Lit m = map[lit_var(po)];
        BG_ASSERT(m != null_lit, "compact: PO driver not mapped");
        out.add_po(lit_not_cond(m, lit_is_compl(po)));
    }
    if (old_to_new != nullptr) {
        *old_to_new = std::move(map);
    }
    return out;
}

void Aig::check_integrity() const {
    std::vector<std::uint32_t> expected_refs(nodes_.size(), 0);
    std::size_t live_ands = 0;

    for (Var v = 0; v < nodes_.size(); ++v) {
        const auto& n = nodes_[v];
        if (n.dead) {
            BG_ASSERT(fanouts_[v].empty(), "dead node retains fanouts");
            continue;
        }
        if (!n.is_and()) {
            continue;
        }
        ++live_ands;
        const Var u0 = lit_var(n.fanin0);
        const Var u1 = lit_var(n.fanin1);
        BG_ASSERT(u0 < nodes_.size() && u1 < nodes_.size(),
                  "fanin out of range");
        BG_ASSERT(!nodes_[u0].dead && !nodes_[u1].dead,
                  "live node references a dead fanin");
        BG_ASSERT(n.fanin0 <= n.fanin1, "fanins not normalized");
        BG_ASSERT(u0 != u1, "fanins share a variable");
        ++expected_refs[u0];
        ++expected_refs[u1];
        // Fanout symmetry.
        for (const Var u : {u0, u1}) {
            const auto& list = fanouts_[u];
            BG_ASSERT(std::find(list.begin(), list.end(), v) != list.end(),
                      "fanin lacks the fanout back-reference");
        }
        // Strash consistency.
        const auto it = strash_.find(strash_key(n.fanin0, n.fanin1));
        BG_ASSERT(it != strash_.end() && it->second == v,
                  "strash table out of sync with node");
    }
    for (const Lit po : pos_) {
        BG_ASSERT(!nodes_[lit_var(po)].dead, "PO references a dead node");
        ++expected_refs[lit_var(po)];
    }
    for (Var v = 0; v < nodes_.size(); ++v) {
        if (nodes_[v].dead) {
            continue;
        }
        BG_ASSERT(nodes_[v].ref == expected_refs[v],
                  "reference count mismatch at var " + std::to_string(v));
        for (const Var f : fanouts_[v]) {
            BG_ASSERT(!nodes_[f].dead, "fanout list references a dead node");
            BG_ASSERT(lit_var(nodes_[f].fanin0) == v ||
                          lit_var(nodes_[f].fanin1) == v,
                      "fanout back-reference without matching fanin");
        }
    }
    BG_ASSERT(live_ands == num_ands_, "live AND-node count out of sync");
    BG_ASSERT(strash_.size() == num_ands_, "strash size out of sync");
    // Acyclicity: a full topological order must exist.
    std::size_t live_total = 0;
    for (Var v = 0; v < nodes_.size(); ++v) {
        live_total += nodes_[v].dead ? 0 : 1;
    }
    BG_ASSERT(topo_all().size() == live_total,
              "graph contains a combinational cycle");
}

std::string Aig::to_string() const {
    std::ostringstream os;
    os << "aig: pis=" << num_pis() << " pos=" << num_pos()
       << " ands=" << num_ands();
    return os.str();
}

}  // namespace bg::aig
