#include "aig/footprint.hpp"

namespace bg::aig::detail {

thread_local ReadFootprint* active_footprint = nullptr;

}  // namespace bg::aig::detail
