#pragma once

/// \file cec.hpp
/// Combinational equivalence checking between two AIGs with identical
/// PI/PO interfaces.  Small-input pairs are decided exactly by exhaustive
/// simulation; larger pairs fall back to extensive random simulation,
/// which can prove inequivalence and otherwise reports "probably
/// equivalent".  Every BoolGebra transformation is additionally correct by
/// construction (window-local truth-table equality), so the random mode is
/// a safety net, not the primary argument.

#include <cstdint>
#include <string>

#include "aig/aig.hpp"

namespace bg::aig {

enum class CecVerdict {
    Equivalent,          ///< proven by exhaustive simulation
    ProbablyEquivalent,  ///< no counterexample among random patterns
    NotEquivalent,       ///< counterexample found (definitive)
};

std::string to_string(CecVerdict v);

struct CecOptions {
    /// Use exhaustive simulation when num_pis <= this bound.
    unsigned exhaustive_pi_limit = 14;
    /// Random words per PI in the fallback (64 patterns each).
    std::size_t random_words = 2048;
    std::uint64_t seed = 0xB001'6EB2A;
};

/// Check that a and b implement the same multi-output function.
/// Throws ContractViolation when the PI/PO counts differ.
CecVerdict check_equivalence(const Aig& a, const Aig& b,
                             const CecOptions& opts = {});

/// Convenience predicate: Equivalent or ProbablyEquivalent.
bool likely_equivalent(const Aig& a, const Aig& b,
                       const CecOptions& opts = {});

}  // namespace bg::aig
