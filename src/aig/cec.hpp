#pragma once

/// \file cec.hpp
/// Combinational equivalence checking between two AIGs with identical
/// PI/PO interfaces.  Small-input pairs are decided exactly by exhaustive
/// simulation; larger pairs fall back to extensive random simulation,
/// which can prove inequivalence and otherwise reports "probably
/// equivalent".  Every BoolGebra transformation is additionally correct by
/// construction (window-local truth-table equality), so the random mode is
/// a safety net, not the primary argument.
///
/// This engine is one of three interchangeable CEC back ends (simulation
/// here, BDD in bdd/cec_bdd.hpp, SAT in sat/cec_sat.hpp) raced by
/// bg::verify::PortfolioCec; the `cancel`/`timeout_seconds` options are
/// the cooperative early-stop hooks the portfolio drives.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace bg::aig {

enum class CecVerdict {
    Equivalent,          ///< proven (exhaustive simulation / BDD / SAT)
    ProbablyEquivalent,  ///< no counterexample within the budget
    NotEquivalent,       ///< counterexample found (definitive)
};

std::string to_string(CecVerdict v);

struct CecOptions {
    /// Use exhaustive simulation when num_pis <= this bound.
    unsigned exhaustive_pi_limit = 14;
    /// Random words per PI in the fallback (64 patterns each).  Honored
    /// exactly: the budget is split into chunks to bound peak memory, but
    /// precisely this many words are simulated overall.
    std::size_t random_words = 2048;
    std::uint64_t seed = 0xB001'6EB2A;
    /// Cooperative cancellation: checked between simulation chunks; a set
    /// flag degrades the verdict to ProbablyEquivalent.  The pointee must
    /// outlive the call (the portfolio prover owns it).
    const std::atomic<bool>* cancel = nullptr;
    /// Wall-clock budget in seconds (0 = unlimited), checked at the same
    /// points as `cancel`.
    double timeout_seconds = 0.0;
    /// Counterexample-guided seeds: PI assignments simulated *before* the
    /// random budget on the non-exhaustive path (patterns whose size does
    /// not match the design's PI count are skipped).  The portfolio
    /// prover feeds refuting patterns from earlier jobs here, so a near-
    /// miss rewrite bug that SAT once caught is refuted by simulation in
    /// microseconds on every later job.  The pointee must outlive the
    /// call.
    const std::vector<std::vector<bool>>* seed_patterns = nullptr;
};

/// Full outcome of a simulation equivalence check.
struct CecResult {
    CecVerdict verdict = CecVerdict::ProbablyEquivalent;
    /// One differing PI assignment (indexed by PI position); set exactly
    /// when verdict == NotEquivalent.  Real by construction: it was found
    /// by simulating both designs.
    std::vector<bool> counterexample;
    /// Pattern words actually simulated (seed words + random words) —
    /// equals opts.random_words plus the packed seed words unless the
    /// check refuted, was cancelled or timed out early; 0 on the
    /// exhaustive path.
    std::size_t words_simulated = 0;
};

/// Check that a and b implement the same multi-output function.
/// Throws ContractViolation when the PI/PO counts differ.
CecVerdict check_equivalence(const Aig& a, const Aig& b,
                             const CecOptions& opts = {});

/// As check_equivalence, additionally reporting the counterexample and
/// the exact pattern-budget accounting.
CecResult check_equivalence_full(const Aig& a, const Aig& b,
                                 const CecOptions& opts = {});

/// Convenience predicate: Equivalent or ProbablyEquivalent.
bool likely_equivalent(const Aig& a, const Aig& b,
                       const CecOptions& opts = {});

/// Order-stable 64-bit fingerprint of an AIG's structure: the constant,
/// PI count, every live AND's (renumbered) fanin literal pair in
/// topological order, and the PO literals.  Equal graphs always collide;
/// distinct graphs collide with 2^-64 probability — the key the portfolio
/// prover's result cache uses for "same miter asked twice".
std::uint64_t structural_fingerprint(const Aig& g);

}  // namespace bg::aig
