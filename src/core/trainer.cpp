#include "core/trainer.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace bg::core {

using nn::Matrix;

namespace {

/// Stack selected samples into a (B*N, F) input plus per-head label and
/// mask matrices (B, H) in the model's head-column order.  Heads the
/// dataset never measured (e.g. LUTs on records evaluated without
/// mapping) get mask 0, so old single-label datasets train the size head
/// and leave the rest untouched — the per-head masking that keeps
/// multi-head training backward compatible.
void make_batch(const Dataset& ds, std::span<const std::size_t> idx,
                const ModelConfig& cfg, Matrix& x, Matrix& labels,
                Matrix& mask) {
    const std::size_t n = ds.num_nodes();
    const std::size_t h = cfg.heads.size();
    x = Matrix(idx.size() * n, static_cast<std::size_t>(cfg.in_dim));
    labels = Matrix(idx.size(), h);
    mask = Matrix(idx.size(), h);
    for (std::size_t s = 0; s < idx.size(); ++s) {
        const auto& sample = ds.samples()[idx[s]];
        std::copy(sample.features.begin(), sample.features.end(),
                  x.row(s * n));
        for (std::size_t c = 0; c < h; ++c) {
            const auto m = static_cast<std::size_t>(cfg.heads[c]);
            labels.at(s, c) = sample.labels[m];
            mask.at(s, c) = sample.mask[m];
        }
    }
}

}  // namespace

double evaluate_loss(BoolGebraModel& model, const Dataset& ds,
                     std::span<const std::size_t> indices,
                     std::size_t batch_size) {
    if (indices.empty()) {
        return 0.0;
    }
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t start = 0; start < indices.size(); start += batch_size) {
        const std::size_t b = std::min(batch_size, indices.size() - start);
        Matrix x;
        Matrix labels;
        Matrix mask;
        make_batch(ds, indices.subspan(start, b), model.config(), x, labels,
                   mask);
        const Matrix pred = model.forward(x, ds.csr(), b, /*train=*/false);
        total += nn::masked_mse_value(pred, labels, mask) *
                 static_cast<double>(b);
        count += b;
    }
    return total / static_cast<double>(count);
}

std::vector<double> evaluate_head_losses(BoolGebraModel& model,
                                         const Dataset& ds,
                                         std::span<const std::size_t> indices,
                                         std::size_t batch_size) {
    std::vector<double> total(model.num_heads(), 0.0);
    if (indices.empty()) {
        return total;
    }
    std::vector<double> weight(model.num_heads(), 0.0);
    for (std::size_t start = 0; start < indices.size(); start += batch_size) {
        const std::size_t b = std::min(batch_size, indices.size() - start);
        Matrix x;
        Matrix labels;
        Matrix mask;
        make_batch(ds, indices.subspan(start, b), model.config(), x, labels,
                   mask);
        const Matrix pred = model.forward(x, ds.csr(), b, /*train=*/false);
        // Weight each batch by its per-column *unmasked* count: weighting
        // by b would deflate a partially-labelled column (a batch with no
        // LUT measurements contributes loss 0 at full weight).
        std::vector<std::size_t> counts;
        const auto losses =
            nn::masked_mse_per_column(pred, labels, mask, &counts);
        for (std::size_t h = 0; h < losses.size(); ++h) {
            total[h] += losses[h] * static_cast<double>(counts[h]);
            weight[h] += static_cast<double>(counts[h]);
        }
    }
    for (std::size_t h = 0; h < total.size(); ++h) {
        total[h] = weight[h] > 0.0 ? total[h] / weight[h] : 0.0;
    }
    return total;
}

TrainResult train_model(BoolGebraModel& model, const Dataset& ds,
                        const TrainConfig& cfg) {
    BG_EXPECTS(ds.size() >= 2, "training needs at least two samples");
    TrainResult result;
    result.split = ds.split(cfg.train_fraction, cfg.seed);
    auto& train_idx = result.split.train;
    const auto& test_idx = result.split.test;
    BG_EXPECTS(!train_idx.empty(), "empty training split");

    // Fit the input standardization on the training split.
    if (model.config().standardize_inputs) {
        const auto f = static_cast<std::size_t>(model.config().in_dim);
        std::vector<double> mean(f, 0.0);
        std::vector<double> var(f, 0.0);
        std::size_t rows = 0;
        for (const auto idx : train_idx) {
            const auto& feats = ds.samples()[idx].features;
            for (std::size_t i = 0; i < feats.size(); ++i) {
                mean[i % f] += feats[i];
            }
            rows += feats.size() / f;
        }
        for (auto& m : mean) {
            m /= static_cast<double>(rows);
        }
        for (const auto idx : train_idx) {
            const auto& feats = ds.samples()[idx].features;
            for (std::size_t i = 0; i < feats.size(); ++i) {
                const double d = feats[i] - mean[i % f];
                var[i % f] += d * d;
            }
        }
        std::vector<float> mean_f(f);
        std::vector<float> std_f(f);
        for (std::size_t j = 0; j < f; ++j) {
            mean_f[j] = static_cast<float>(mean[j]);
            std_f[j] = static_cast<float>(
                std::sqrt(var[j] / static_cast<double>(rows)));
        }
        model.set_input_stats(std::move(mean_f), std::move(std_f));
    }

    nn::Adam opt(model.params(), cfg.lr);
    const nn::StepDecay decay{cfg.lr, cfg.decay_factor, cfg.decay_every};
    bg::Rng shuffle_rng(cfg.seed ^ 0x5EED);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        opt.set_lr(decay.at_epoch(static_cast<unsigned>(epoch)));
        shuffle_rng.shuffle(train_idx);

        double train_loss = 0.0;
        std::size_t seen = 0;
        for (std::size_t start = 0; start < train_idx.size();
             start += cfg.batch_size) {
            const std::size_t b =
                std::min(cfg.batch_size, train_idx.size() - start);
            if (b < 2) {
                break;  // batch-norm needs at least two rows
            }
            Matrix x;
            Matrix labels;
            Matrix mask;
            make_batch(ds, std::span(train_idx).subspan(start, b),
                       model.config(), x, labels, mask);
            model.zero_grad();
            const Matrix pred = model.forward(x, ds.csr(), b, /*train=*/true);
            const auto loss = nn::masked_mse_loss(pred, labels, mask);
            model.backward(loss.grad);
            opt.step();
            train_loss += loss.loss * static_cast<double>(b);
            seen += b;
        }
        train_loss /= static_cast<double>(std::max<std::size_t>(seen, 1));

        if (epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs) {
            EpochStats st;
            st.epoch = epoch;
            st.train_loss = train_loss;
            st.test_loss = evaluate_loss(model, ds, test_idx);
            st.lr = opt.lr();
            result.history.push_back(st);
        }
    }
    if (!result.history.empty()) {
        result.final_train_loss = result.history.back().train_loss;
        result.final_test_loss = result.history.back().test_loss;
    }
    return result;
}

MultiTrainResult train_model_multi(BoolGebraModel& model,
                                   std::span<const Dataset* const> datasets,
                                   const TrainConfig& cfg) {
    BG_EXPECTS(!datasets.empty(), "need at least one dataset");
    MultiTrainResult out;

    // Per-design splits.
    std::vector<Dataset::Split> splits;
    splits.reserve(datasets.size());
    for (std::size_t d = 0; d < datasets.size(); ++d) {
        splits.push_back(
            datasets[d]->split(cfg.train_fraction, cfg.seed + d));
        BG_EXPECTS(!splits.back().train.empty(), "empty training split");
    }

    // Standardization over the union of all training samples.
    if (model.config().standardize_inputs) {
        const auto f = static_cast<std::size_t>(model.config().in_dim);
        std::vector<double> mean(f, 0.0);
        std::vector<double> var(f, 0.0);
        std::size_t rows = 0;
        for (std::size_t d = 0; d < datasets.size(); ++d) {
            for (const auto idx : splits[d].train) {
                const auto& feats = datasets[d]->samples()[idx].features;
                for (std::size_t i = 0; i < feats.size(); ++i) {
                    mean[i % f] += feats[i];
                }
                rows += feats.size() / f;
            }
        }
        for (auto& m : mean) {
            m /= static_cast<double>(rows);
        }
        for (std::size_t d = 0; d < datasets.size(); ++d) {
            for (const auto idx : splits[d].train) {
                const auto& feats = datasets[d]->samples()[idx].features;
                for (std::size_t i = 0; i < feats.size(); ++i) {
                    const double diff = feats[i] - mean[i % f];
                    var[i % f] += diff * diff;
                }
            }
        }
        std::vector<float> mean_f(f);
        std::vector<float> std_f(f);
        for (std::size_t j = 0; j < f; ++j) {
            mean_f[j] = static_cast<float>(mean[j]);
            std_f[j] = static_cast<float>(
                std::sqrt(var[j] / static_cast<double>(rows)));
        }
        model.set_input_stats(std::move(mean_f), std::move(std_f));
    }

    nn::Adam opt(model.params(), cfg.lr);
    const nn::StepDecay decay{cfg.lr, cfg.decay_factor, cfg.decay_every};
    bg::Rng shuffle_rng(cfg.seed ^ 0x5EED);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        opt.set_lr(decay.at_epoch(static_cast<unsigned>(epoch)));
        double train_loss = 0.0;
        std::size_t seen = 0;
        // Round-robin over designs, shuffled per epoch.
        std::vector<std::size_t> order(datasets.size());
        for (std::size_t d = 0; d < order.size(); ++d) {
            order[d] = d;
        }
        shuffle_rng.shuffle(order);
        for (const std::size_t d : order) {
            auto& train_idx = splits[d].train;
            shuffle_rng.shuffle(train_idx);
            for (std::size_t start = 0; start < train_idx.size();
                 start += cfg.batch_size) {
                const std::size_t b =
                    std::min(cfg.batch_size, train_idx.size() - start);
                if (b < 2) {
                    break;
                }
                Matrix x;
                Matrix labels;
                Matrix mask;
                make_batch(*datasets[d],
                           std::span(train_idx).subspan(start, b),
                           model.config(), x, labels, mask);
                model.zero_grad();
                const Matrix pred = model.forward(x, datasets[d]->csr(), b,
                                                  /*train=*/true);
                const auto loss = nn::masked_mse_loss(pred, labels, mask);
                model.backward(loss.grad);
                opt.step();
                train_loss += loss.loss * static_cast<double>(b);
                seen += b;
            }
        }
        train_loss /= static_cast<double>(std::max<std::size_t>(seen, 1));

        if (epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs) {
            double test_loss = 0.0;
            for (std::size_t d = 0; d < datasets.size(); ++d) {
                test_loss +=
                    evaluate_loss(model, *datasets[d], splits[d].test);
            }
            test_loss /= static_cast<double>(datasets.size());
            EpochStats st;
            st.epoch = epoch;
            st.train_loss = train_loss;
            st.test_loss = test_loss;
            st.lr = opt.lr();
            out.combined.history.push_back(st);
        }
    }
    if (!out.combined.history.empty()) {
        out.combined.final_train_loss =
            out.combined.history.back().train_loss;
        out.combined.final_test_loss = out.combined.history.back().test_loss;
    }
    for (std::size_t d = 0; d < datasets.size(); ++d) {
        out.per_design_test.push_back(
            evaluate_loss(model, *datasets[d], splits[d].test));
    }
    return out;
}

}  // namespace bg::core
