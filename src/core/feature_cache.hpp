#pragma once

/// \file feature_cache.hpp
/// Incremental static-feature / CSR maintenance for iterated flows.
///
/// A full static-feature rebuild runs three transformability checks at
/// every AND node — the dominant per-round cost once a design reaches
/// tens of thousands of nodes.  Between rounds an iterated flow commits
/// one decision vector, which structurally touches a small cone; every
/// feature row whose *recorded read-set* is disjoint from that touched
/// set is bit-for-bit unchanged, because the footprint instrumentation
/// (aig/footprint.hpp) covers every graph read the row's checks perform.
///
/// The cache stores a 256-bit Bloom signature of each row's read-set and
/// recomputes exactly the rows whose signature intersects the commit's
/// touched set.  Conservative by construction: a Bloom collision only
/// ever recomputes *more* rows, never fewer, so incremental results are
/// bit-identical to a full rebuild (the parity test pins this).
///
/// The CSR adjacency is rebuilt whole each update: it is a linear,
/// allocation-bound pass, noise next to the feature checks.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/features.hpp"

namespace bg {
class ThreadPool;
}  // namespace bg

namespace bg::core {

class FeatureCache {
public:
    /// Per-row read-set recording cap; an overflowing row's signature
    /// saturates, so the row is recomputed after every commit (still
    /// correct, just not incremental for that row).
    std::size_t footprint_cap = 64 * 1024;

    bool valid() const { return valid_; }
    void invalidate() { valid_ = false; }

    const StaticFeatures& features() const { return rows_; }
    const GraphCsr& csr() const { return csr_; }
    /// Rows recomputed by the last rebuild()/update() (diagnostics).
    std::size_t last_recomputed() const { return last_recomputed_; }

    /// Full rebuild: every row recomputed (with read-set recording) and
    /// the CSR rebuilt.  The row loop runs on `pool` when given.
    void rebuild(const aig::Aig& g, const opt::OptParams& params,
                 ThreadPool* pool = nullptr);

    /// Incremental update after a commit that structurally touched
    /// `touched` (OrchestrationResult::touched): recomputes the rows
    /// whose recorded read-set may intersect it, plus any slots the
    /// commit created.  Requires valid(); the graph must be the same one
    /// the cache was built from, un-compacted (compaction remaps ids —
    /// invalidate() and rebuild instead).
    void update(const aig::Aig& g, const opt::OptParams& params,
                std::span<const aig::Var> touched,
                ThreadPool* pool = nullptr);

private:
    using Bloom = std::array<std::uint64_t, 4>;

    void recompute_rows(const aig::Aig& g, const opt::OptParams& params,
                        std::span<const aig::Var> vars, ThreadPool* pool);

    StaticFeatures rows_;
    GraphCsr csr_;
    std::vector<Bloom> blooms_;
    bool valid_ = false;
    std::size_t last_recomputed_ = 0;
};

}  // namespace bg::core
