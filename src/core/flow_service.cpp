#include "core/flow_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace bg::core {

namespace {

/// Definite outcome of one accepted job (how its future resolved).
enum class Outcome { Ok, Cancelled, TimedOut, Failed };

Outcome classify(const std::exception_ptr& error) {
    if (error == nullptr) {
        return Outcome::Ok;
    }
    try {
        std::rethrow_exception(error);
    } catch (const bg::CancelledError& e) {
        return e.reason() == bg::CancelReason::TimedOut ? Outcome::TimedOut
                                                        : Outcome::Cancelled;
    } catch (...) {
        return Outcome::Failed;
    }
}

}  // namespace

FlowService::FlowService(ServiceConfig cfg, ModelSnapshot model)
    : cfg_(cfg), pool_(cfg.workers), model_(std::move(model)) {
    BG_EXPECTS(cfg_.rounds >= 1, "service needs at least one flow round");
    BG_EXPECTS(cfg_.latency_window >= 1, "latency window must be positive");
    latencies_.assign(cfg_.latency_window, 0.0);
    if (cfg_.flow.verify) {
        // One shared prover for the service lifetime: its verdict cache
        // spans jobs, and it races engines on the same pool the serving
        // tasks run on (for_each is nesting-safe).
        prover_ = std::make_unique<verify::PortfolioCec>(
            cfg_.flow.verify_opts, &pool_);
    }
    // The default tenant always exists: pre-tenancy submit() maps to it.
    auto def = std::make_unique<Tenant>();
    def->cfg.name = "";
    def->credits = def->cfg.weight;
    tenants_.push_back(std::move(def));
}

FlowService::~FlowService() { stop(); }

FlowService::Tenant* FlowService::find_tenant_locked(
    const std::string& name) {
    for (auto& t : tenants_) {
        if (t->cfg.name == name) {
            return t.get();
        }
    }
    return nullptr;
}

void FlowService::register_tenant(TenantConfig tenant) {
    BG_EXPECTS(tenant.weight >= 1, "tenant weight must be >= 1");
    const std::lock_guard<std::mutex> lock(mu_);
    if (Tenant* existing = find_tenant_locked(tenant.name)) {
        // Reconfigure in place: queued jobs keep the model they bound at
        // submit() time, the new weight takes effect at the next cursor
        // visit.
        existing->cfg = std::move(tenant);
        return;
    }
    auto t = std::make_unique<Tenant>();
    t->counters.name = tenant.name;
    t->cfg = std::move(tenant);
    t->credits = t->cfg.weight;
    tenants_.push_back(std::move(t));
}

void FlowService::swap_model(ModelSnapshot model) {
    const std::lock_guard<std::mutex> lock(mu_);
    model_ = std::move(model);
    ++swaps_;
}

void FlowService::swap_tenant_model(const std::string& tenant,
                                    ModelSnapshot model) {
    const std::lock_guard<std::mutex> lock(mu_);
    Tenant* t = find_tenant_locked(tenant);
    if (t == nullptr) {
        throw AdmissionError(AdmissionError::Kind::UnknownTenant,
                             "unknown tenant '" + tenant + "'");
    }
    t->cfg.model = std::move(model);
    ++swaps_;
}

ModelSnapshot FlowService::model_snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return model_;
}

std::future<DesignFlowResult> FlowService::submit(DesignJob job,
                                                  SubmitOptions opts) {
    std::future<DesignFlowResult> future;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (!accepting_) {
            throw AdmissionError(
                AdmissionError::Kind::Stopped,
                "FlowService is stopped and rejects new jobs");
        }
        Tenant* tenant = find_tenant_locked(opts.tenant);
        if (tenant == nullptr) {
            ++rejected_;
            throw AdmissionError(AdmissionError::Kind::UnknownTenant,
                                 "unknown tenant '" + opts.tenant + "'");
        }
        const ModelSnapshot bound =
            tenant->cfg.model != nullptr ? tenant->cfg.model : model_;
        if (bound == nullptr) {
            throw std::invalid_argument(
                "FlowService has no model installed (swap_model first)");
        }
        if (tenant->cfg.max_pending != 0 &&
            tenant->queue.size() + tenant->running >=
                tenant->cfg.max_pending) {
            ++rejected_;
            ++tenant->counters.jobs_rejected;
            throw AdmissionError(
                AdmissionError::Kind::QuotaExceeded,
                "tenant '" + opts.tenant + "' quota exceeded (" +
                    std::to_string(tenant->cfg.max_pending) +
                    " pending jobs)");
        }
        QueuedJob queued;
        queued.job = std::move(job);
        queued.model = bound;  // bind the snapshot at submission
        queued.tenant_index = static_cast<std::size_t>(
            std::find_if(tenants_.begin(), tenants_.end(),
                         [&](const auto& t) { return t.get() == tenant; }) -
            tenants_.begin());
        queued.token = opts.cancel != nullptr
                           ? std::move(opts.cancel)
                           : std::make_shared<bg::CancelToken>();
        if (opts.timeout_seconds > 0.0) {
            queued.token->set_deadline_after(opts.timeout_seconds);
        }
        queued.rounds = opts.rounds != 0 ? opts.rounds : cfg_.rounds;
        queued.flow = std::move(opts.flow);
        queued.want_graph = opts.want_graph;
        queued.on_progress = std::move(opts.on_progress);
        queued.on_complete = std::move(opts.on_complete);
        future = queued.promise.get_future();
        tenant->queue.push_back(std::move(queued));
        ++queued_total_;
        ++submitted_;
        ++tenant->counters.jobs_submitted;
    }
    // One serving task per job: any pool worker may pop any queued job.
    // The job always reaches a queue before its task reaches the pool, so
    // a serving task finds work unless stop_now() flushed it first.
    (void)pool_.submit([this] { serve_next(); });
    return future;
}

std::vector<std::future<DesignFlowResult>> FlowService::submit_batch(
    std::vector<DesignJob> jobs) {
    std::vector<std::future<DesignFlowResult>> futures;
    futures.reserve(jobs.size());
    for (auto& job : jobs) {
        futures.push_back(submit(std::move(job)));
    }
    return futures;
}

void FlowService::advance_cursor_locked() {
    rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
    tenants_[rr_cursor_]->credits = tenants_[rr_cursor_]->cfg.weight;
}

std::optional<FlowService::QueuedJob> FlowService::pop_next_locked() {
    if (queued_total_ == 0) {
        return std::nullopt;
    }
    // Weighted round-robin: the cursor tenant keeps popping while it has
    // credits and queued work; advancing the cursor refills the next
    // tenant's credits.  Empty tenants are skipped without spending
    // anything, so one full sweep always finds the work counted by
    // queued_total_.
    for (std::size_t attempts = 0; attempts <= tenants_.size();
         ++attempts) {
        Tenant& t = *tenants_[rr_cursor_];
        if (!t.queue.empty() && t.credits > 0) {
            --t.credits;
            QueuedJob job = std::move(t.queue.front());
            t.queue.pop_front();
            --queued_total_;
            ++t.running;
            if (t.credits == 0) {
                advance_cursor_locked();
            }
            return job;
        }
        advance_cursor_locked();
    }
    return std::nullopt;  // unreachable while queued_total_ is accurate
}

void FlowService::finish_job(QueuedJob& queued, DesignFlowResult* res,
                             std::exception_ptr error, double busy,
                             bool ran) {
    const Outcome outcome = classify(error);
    const double latency = queued.queued.seconds();
    {
        // Account first, deliver after: once a future resolves, stats()
        // already reflects that job.
        const std::lock_guard<std::mutex> lock(mu_);
        Tenant& tenant = *tenants_[queued.tenant_index];
        if (ran) {
            --running_;
            --tenant.running;
            running_tokens_.erase(
                std::find(running_tokens_.begin(), running_tokens_.end(),
                          queued.token));
        }
        ++completed_;
        ++tenant.counters.jobs_completed;
        switch (outcome) {
            case Outcome::Ok:
                ++tenant.counters.jobs_ok;
                break;
            case Outcome::Cancelled:
                ++cancelled_;
                ++tenant.counters.jobs_cancelled;
                break;
            case Outcome::TimedOut:
                ++timed_out_;
                ++tenant.counters.jobs_timed_out;
                break;
            case Outcome::Failed:
                ++tenant.counters.jobs_failed;
                break;
        }
        samples_ += error == nullptr ? res->samples_run : 0;
        if (error == nullptr && res->verification) {
            switch (res->verification->verdict) {
                case aig::CecVerdict::Equivalent:
                    ++verified_;
                    break;
                case aig::CecVerdict::NotEquivalent:
                    ++refuted_;
                    break;
                case aig::CecVerdict::ProbablyEquivalent:
                    ++unknown_;
                    break;
            }
        } else {
            ++unverified_;
        }
        if (ran) {
            busy_seconds_ += busy;
            latencies_[latency_next_] = latency;
            latency_next_ = (latency_next_ + 1) % latencies_.size();
            latency_full_ = latency_full_ || latency_next_ == 0;
        }
        if (queued_total_ == 0 && running_ == 0) {
            idle_cv_.notify_all();
        }
    }
    if (queued.on_complete) {
        // Contract: runs before the future resolves, must not throw.
        try {
            queued.on_complete(error == nullptr ? res : nullptr, error);
        } catch (...) {
        }
    }
    if (error != nullptr) {
        queued.promise.set_exception(error);
    } else {
        queued.promise.set_value(std::move(*res));
    }
}

void FlowService::serve_next() {
    std::optional<QueuedJob> popped;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        popped = pop_next_locked();
        if (!popped) {
            return;  // stop_now() flushed the job this task was paired with
        }
        ++running_;
        running_tokens_.push_back(popped->token);
    }
    QueuedJob queued = std::move(*popped);
    const bg::Stopwatch exec;
    DesignFlowResult res;
    std::exception_ptr error;
    if (queued.token->should_stop()) {
        // Cancelled or expired while queued: never start the flow.
        error = std::make_exception_ptr(bg::CancelledError(
            queued.token->stop_reason(), "FlowService queue"));
    } else {
        try {
            JobControl control;
            control.cancel = queued.token.get();
            control.on_progress = std::move(queued.on_progress);
            control.want_graph = queued.want_graph;
            const FlowConfig& flow =
                queued.flow ? *queued.flow : cfg_.flow;
            res = run_design_flow(queued.job, *queued.model, flow,
                                  queued.rounds, &pool_, prover_.get(),
                                  &control);
        } catch (...) {
            error = std::current_exception();
        }
    }
    finish_job(queued, &res, error, exec.seconds(), /*ran=*/true);
}

void FlowService::drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [&] { return queued_total_ == 0 && running_ == 0; });
}

void FlowService::stop() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
    }
    drain();
}

void FlowService::stop_now() {
    std::vector<QueuedJob> flushed;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
        for (auto& tenant : tenants_) {
            while (!tenant->queue.empty()) {
                flushed.push_back(std::move(tenant->queue.front()));
                tenant->queue.pop_front();
                --queued_total_;
            }
        }
        // Running jobs stop at their next cancel point; their futures
        // resolve with CancelledError from the serving task itself.
        for (const auto& token : running_tokens_) {
            token->request_cancel();
        }
    }
    for (auto& queued : flushed) {
        const auto error = std::make_exception_ptr(bg::CancelledError(
            bg::CancelReason::Cancelled, "FlowService stop_now"));
        finish_job(queued, nullptr, error, 0.0, /*ran=*/false);
    }
    drain();
}

bool FlowService::accepting() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return accepting_;
}

namespace {

double percentile(std::vector<double>& sorted_scratch, double q) {
    if (sorted_scratch.empty()) {
        return 0.0;
    }
    // Nearest-rank on the sorted window.
    const auto n = sorted_scratch.size();
    const auto rank = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(n) - 1.0,
        std::max(0.0, std::ceil(q * static_cast<double>(n)) - 1.0)));
    return sorted_scratch[rank];
}

}  // namespace

ServiceStats FlowService::stats() const {
    ServiceStats out;
    std::vector<double> window;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        out.jobs_submitted = submitted_;
        out.jobs_completed = completed_;
        out.jobs_pending = queued_total_ + running_;
        out.jobs_cancelled = cancelled_;
        out.jobs_timed_out = timed_out_;
        out.jobs_rejected = rejected_;
        out.samples_run = samples_;
        out.model_swaps = swaps_;
        out.jobs_verified = verified_;
        out.jobs_refuted = refuted_;
        out.jobs_unknown = unknown_;
        out.jobs_unverified = unverified_;
        out.busy_seconds = busy_seconds_;
        out.tenants.reserve(tenants_.size());
        for (const auto& t : tenants_) {
            TenantStats ts = t->counters;
            ts.name = t->cfg.name;
            ts.jobs_pending = t->queue.size() + t->running;
            out.tenants.push_back(std::move(ts));
        }
        const std::size_t filled =
            latency_full_ ? latencies_.size() : latency_next_;
        window.assign(latencies_.begin(),
                      latencies_.begin() +
                          static_cast<std::ptrdiff_t>(filled));
    }
    if (prover_ != nullptr) {
        out.verify_cache_lookups = prover_->cache_lookups();
        out.verify_cache_hits = prover_->cache_hits();
    }
    out.uptime_seconds = uptime_.seconds();
    std::sort(window.begin(), window.end());
    out.p50_latency_seconds = percentile(window, 0.50);
    out.p95_latency_seconds = percentile(window, 0.95);
    if (out.uptime_seconds > 0.0) {
        out.jobs_per_second =
            static_cast<double>(out.jobs_completed) / out.uptime_seconds;
        out.samples_per_second =
            static_cast<double>(out.samples_run) / out.uptime_seconds;
    }
    return out;
}

}  // namespace bg::core
