#include "core/flow_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace bg::core {

FlowService::FlowService(ServiceConfig cfg, ModelSnapshot model)
    : cfg_(cfg), pool_(cfg.workers), model_(std::move(model)) {
    BG_EXPECTS(cfg_.rounds >= 1, "service needs at least one flow round");
    BG_EXPECTS(cfg_.latency_window >= 1, "latency window must be positive");
    latencies_.assign(cfg_.latency_window, 0.0);
    if (cfg_.flow.verify) {
        // One shared prover for the service lifetime: its verdict cache
        // spans jobs, and it races engines on the same pool the serving
        // tasks run on (for_each is nesting-safe).
        prover_ = std::make_unique<verify::PortfolioCec>(
            cfg_.flow.verify_opts, &pool_);
    }
}

FlowService::~FlowService() { stop(); }

void FlowService::swap_model(ModelSnapshot model) {
    const std::lock_guard<std::mutex> lock(mu_);
    model_ = std::move(model);
    ++swaps_;
}

ModelSnapshot FlowService::model_snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return model_;
}

std::future<DesignFlowResult> FlowService::submit(DesignJob job) {
    std::future<DesignFlowResult> future;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (!accepting_) {
            throw std::runtime_error(
                "FlowService is stopped and rejects new jobs");
        }
        if (model_ == nullptr) {
            throw std::invalid_argument(
                "FlowService has no model installed (swap_model first)");
        }
        QueuedJob queued;
        queued.job = std::move(job);
        queued.model = model_;  // bind the snapshot at submission
        future = queued.promise.get_future();
        queue_.push_back(std::move(queued));
        ++submitted_;
    }
    // One serving task per job: any pool worker may pop any queued job.
    // The job always reaches the queue before its task reaches the pool,
    // so a serving task can never find the queue empty.
    (void)pool_.submit([this] { serve_next(); });
    return future;
}

std::vector<std::future<DesignFlowResult>> FlowService::submit_batch(
    std::vector<DesignJob> jobs) {
    std::vector<std::future<DesignFlowResult>> futures;
    futures.reserve(jobs.size());
    for (auto& job : jobs) {
        futures.push_back(submit(std::move(job)));
    }
    return futures;
}

void FlowService::serve_next() {
    QueuedJob queued;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty()) {
            return;  // defensive: tasks and jobs are 1:1
        }
        queued = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
    }
    const bg::Stopwatch exec;
    DesignFlowResult res;
    std::exception_ptr error;
    try {
        res = run_design_flow(queued.job, *queued.model, cfg_.flow,
                              cfg_.rounds, &pool_, prover_.get());
    } catch (...) {
        error = std::current_exception();
    }
    const double busy = exec.seconds();
    const double latency = queued.queued.seconds();
    {
        // Account first, deliver after: once a future resolves, stats()
        // already reflects that job.
        const std::lock_guard<std::mutex> lock(mu_);
        --running_;
        ++completed_;
        samples_ += error == nullptr ? res.samples_run : 0;
        if (error == nullptr && res.verification) {
            switch (res.verification->verdict) {
                case aig::CecVerdict::Equivalent:
                    ++verified_;
                    break;
                case aig::CecVerdict::NotEquivalent:
                    ++refuted_;
                    break;
                case aig::CecVerdict::ProbablyEquivalent:
                    ++unknown_;
                    break;
            }
        } else {
            ++unverified_;
        }
        busy_seconds_ += busy;
        latencies_[latency_next_] = latency;
        latency_next_ = (latency_next_ + 1) % latencies_.size();
        latency_full_ = latency_full_ || latency_next_ == 0;
        if (queue_.empty() && running_ == 0) {
            idle_cv_.notify_all();
        }
    }
    if (error != nullptr) {
        queued.promise.set_exception(error);
    } else {
        queued.promise.set_value(std::move(res));
    }
}

void FlowService::drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void FlowService::stop() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
    }
    drain();
}

bool FlowService::accepting() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return accepting_;
}

namespace {

double percentile(std::vector<double>& sorted_scratch, double q) {
    if (sorted_scratch.empty()) {
        return 0.0;
    }
    // Nearest-rank on the sorted window.
    const auto n = sorted_scratch.size();
    const auto rank = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(n) - 1.0,
        std::max(0.0, std::ceil(q * static_cast<double>(n)) - 1.0)));
    return sorted_scratch[rank];
}

}  // namespace

ServiceStats FlowService::stats() const {
    ServiceStats out;
    std::vector<double> window;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        out.jobs_submitted = submitted_;
        out.jobs_completed = completed_;
        out.jobs_pending = queue_.size() + running_;
        out.samples_run = samples_;
        out.model_swaps = swaps_;
        out.jobs_verified = verified_;
        out.jobs_refuted = refuted_;
        out.jobs_unknown = unknown_;
        out.jobs_unverified = unverified_;
        out.busy_seconds = busy_seconds_;
        const std::size_t filled =
            latency_full_ ? latencies_.size() : latency_next_;
        window.assign(latencies_.begin(),
                      latencies_.begin() +
                          static_cast<std::ptrdiff_t>(filled));
    }
    if (prover_ != nullptr) {
        out.verify_cache_lookups = prover_->cache_lookups();
        out.verify_cache_hits = prover_->cache_hits();
    }
    out.uptime_seconds = uptime_.seconds();
    std::sort(window.begin(), window.end());
    out.p50_latency_seconds = percentile(window, 0.50);
    out.p95_latency_seconds = percentile(window, 0.95);
    if (out.uptime_seconds > 0.0) {
        out.jobs_per_second =
            static_cast<double>(out.jobs_completed) / out.uptime_seconds;
        out.samples_per_second =
            static_cast<double>(out.samples_run) / out.uptime_seconds;
    }
    return out;
}

}  // namespace bg::core
