#include "core/model.hpp"

#include <algorithm>
#include <fstream>

#include "core/dataset.hpp"
#include "util/contracts.hpp"

namespace bg::core {

using nn::Matrix;

BoolGebraModel::BoolGebraModel(const ModelConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      bn0_(static_cast<std::size_t>(cfg.mlp_dims.at(0))),
      bn1_(static_cast<std::size_t>(cfg.mlp_dims.at(1))) {
    BG_EXPECTS(cfg.sage_dims.size() == 3, "the paper uses three conv layers");
    BG_EXPECTS(cfg.mlp_dims.size() == 3 && cfg.mlp_dims.back() == 1,
               "the paper uses a three-layer regression head");
    BG_EXPECTS(!cfg_.heads.empty() &&
                   cfg_.heads.size() <= kNumMetricHeads,
               "the model needs between one and three metric heads");
    for (std::size_t i = 0; i < cfg_.heads.size(); ++i) {
        for (std::size_t j = i + 1; j < cfg_.heads.size(); ++j) {
            BG_EXPECTS(cfg_.heads[i] != cfg_.heads[j],
                       "duplicate metric head");
        }
    }
    BG_EXPECTS(has_head(MetricHead::Size),
               "every model carries the size head (the ranking fallback)");
    bg::Rng init(cfg.seed);
    int in = cfg.in_dim;
    for (const int out : cfg.sage_dims) {
        convs_.emplace_back(static_cast<std::size_t>(in),
                            static_cast<std::size_t>(out), init);
        conv_act_.emplace_back();
        conv_drop_.emplace_back(cfg.dropout);
        in = out;
    }
    // mlp_dims.back() is the per-head width (1); the final linear layer
    // carries one column per head.  With the default single size head the
    // init RNG draws — and therefore the weights — are bit-identical to
    // the pre-multi-head model.
    for (std::size_t l = 0; l < cfg.mlp_dims.size(); ++l) {
        const int out = l + 1 == cfg.mlp_dims.size()
                            ? static_cast<int>(cfg_.heads.size())
                            : cfg.mlp_dims[l];
        linears_.emplace_back(static_cast<std::size_t>(in),
                              static_cast<std::size_t>(out), init);
        in = out;
    }
}

std::optional<std::size_t> BoolGebraModel::head_index(MetricHead head) const {
    for (std::size_t i = 0; i < cfg_.heads.size(); ++i) {
        if (cfg_.heads[i] == head) {
            return i;
        }
    }
    return std::nullopt;
}

void BoolGebraModel::set_input_stats(std::vector<float> mean,
                                     std::vector<float> stddev) {
    BG_EXPECTS(mean.size() == static_cast<std::size_t>(cfg_.in_dim) &&
                   stddev.size() == static_cast<std::size_t>(cfg_.in_dim),
               "input statistics must match the input width");
    in_mean_ = std::move(mean);
    in_std_ = std::move(stddev);
    for (auto& s : in_std_) {
        if (s <= 1e-12F) {
            s = 1.0F;  // constant column: leave it centred only
        }
    }
}

void BoolGebraModel::standardize_into(nn::ConstMatrixView x,
                                      Matrix& y) const {
    // One fused pass: materializes the (possibly strided) view and applies
    // the column statistics together.
    if (y.rows() != x.rows() || y.cols() != x.cols()) {
        y = Matrix(x.rows(), x.cols());
    }
    const std::size_t f = x.cols();
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const float* src = x.row(i);
        float* dst = y.row(i);
        for (std::size_t j = 0; j < f; ++j) {
            dst[j] = (src[j] - in_mean_[j]) / in_std_[j];
        }
    }
}

Matrix BoolGebraModel::forward(nn::ConstMatrixView x, const nn::Csr& csr,
                               std::size_t batch, bool train,
                               bg::ThreadPool* pool) {
    BG_EXPECTS(x.rows() == batch * csr.num_nodes(),
               "feature rows must equal batch * nodes");
    cache_num_nodes_ = csr.num_nodes();
    Matrix owned;  // standardized copy when input stats are active
    nn::ConstMatrixView cur = x;
    if (cfg_.standardize_inputs && !in_mean_.empty()) {
        standardize_into(x, owned);
        cur = owned;
    }
    Matrix h = convs_[0].forward(cur, csr, batch, train, pool);
    h = conv_act_[0].forward(h, train);
    h = conv_drop_[0].forward(h, train, rng_);
    for (std::size_t i = 1; i < convs_.size(); ++i) {
        h = convs_[i].forward(h, csr, batch, train, pool);
        h = conv_act_[i].forward(h, train);
        h = conv_drop_[i].forward(h, train, rng_);
    }
    Matrix pooled;
    nn::mean_pool(h, batch, pooled);
    Matrix y = linears_[0].forward(pooled, train, pool);
    y = mlp_act0_.forward(y, train);
    y = bn0_.forward(y, train);
    y = linears_[1].forward(y, train, pool);
    y = bn1_.forward(y, train);
    y = linears_[2].forward(y, train, pool);
    return out_act_.forward(y, train);
}

Matrix BoolGebraModel::forward_eval(nn::ConstMatrixView x,
                                    const nn::Csr& csr, std::size_t batch,
                                    nn::EvalScratch& scratch,
                                    bg::ThreadPool* pool) const {
    BG_EXPECTS(x.rows() == batch * csr.num_nodes(),
               "feature rows must equal batch * nodes");
    nn::ConstMatrixView cur = x;
    if (cfg_.standardize_inputs && !in_mean_.empty()) {
        standardize_into(x, scratch.standardized);
        cur = scratch.standardized;
    }
    if (scratch.sage_agg.size() < convs_.size()) {
        scratch.sage_agg.resize(convs_.size());
    }
    // Dropout is the identity at eval time and is skipped outright.
    Matrix h =
        convs_[0].forward_eval(cur, csr, batch, scratch.sage_agg[0], pool);
    h = conv_act_[0].forward_eval(std::move(h));
    for (std::size_t i = 1; i < convs_.size(); ++i) {
        h = convs_[i].forward_eval(h, csr, batch, scratch.sage_agg[i], pool);
        h = conv_act_[i].forward_eval(std::move(h));
    }
    Matrix pooled;
    nn::mean_pool(h, batch, pooled);
    Matrix y = linears_[0].forward_eval(pooled, pool);
    y = mlp_act0_.forward_eval(std::move(y));
    y = bn0_.forward_eval(y);
    y = linears_[1].forward_eval(y, pool);
    y = bn1_.forward_eval(y);
    y = linears_[2].forward_eval(y, pool);
    return out_act_.forward_eval(std::move(y));
}

void BoolGebraModel::backward(const Matrix& dpred) {
    Matrix d = out_act_.backward(dpred);
    d = linears_[2].backward(d);
    d = bn1_.backward(d);
    d = linears_[1].backward(d);
    d = bn0_.backward(d);
    d = mlp_act0_.backward(d);
    d = linears_[0].backward(d);
    Matrix dnodes;
    nn::mean_pool_backward(d, cache_num_nodes_, dnodes);
    for (std::size_t i = convs_.size(); i-- > 0;) {
        dnodes = conv_drop_[i].backward(dnodes);
        dnodes = conv_act_[i].backward(dnodes);
        dnodes = convs_[i].backward(dnodes);
    }
}

void BoolGebraModel::zero_grad() {
    for (auto& c : convs_) {
        c.zero_grad();
    }
    for (auto& l : linears_) {
        l.zero_grad();
    }
    bn0_.zero_grad();
    bn1_.zero_grad();
}

std::vector<nn::ParamRef> BoolGebraModel::params() {
    std::vector<nn::ParamRef> out;
    for (auto& c : convs_) {
        for (const auto& p : c.params()) {
            out.push_back(p);
        }
    }
    for (auto& l : linears_) {
        for (const auto& p : l.params()) {
            out.push_back(p);
        }
    }
    for (const auto& p : bn0_.params()) {
        out.push_back(p);
    }
    for (const auto& p : bn1_.params()) {
        out.push_back(p);
    }
    return out;
}

std::size_t BoolGebraModel::num_parameters() {
    std::size_t n = 0;
    for (const auto& p : params()) {
        n += p.size;
    }
    return n;
}

std::vector<double> BoolGebraModel::predict(
    const Dataset& ds, std::span<const std::size_t> indices,
    std::size_t batch_size, bg::ThreadPool* pool) const {
    const std::size_t n = ds.num_nodes();
    return predict_gathered(
        ds.csr(), n, indices.size(), batch_size, pool,
        [&](std::size_t s) -> std::span<const float> {
            return ds.samples()[indices[s]].features;
        });
}

std::vector<double> BoolGebraModel::predict_features(
    const nn::Csr& csr, std::size_t num_nodes,
    std::span<const std::vector<float>> feature_rows,
    std::size_t batch_size, bg::ThreadPool* pool) const {
    return predict_gathered(
        csr, num_nodes, feature_rows.size(), batch_size, pool,
        [&](std::size_t s) -> std::span<const float> {
            return feature_rows[s];
        });
}

std::vector<double> BoolGebraModel::predict_gathered(
    const nn::Csr& csr, std::size_t num_nodes, std::size_t total,
    std::size_t batch_size, bg::ThreadPool* pool,
    const std::function<std::span<const float>(std::size_t)>& sample_row)
    const {
    // Scattered per-sample rows must be gathered into contiguous storage
    // once; doing it one batch_size chunk at a time keeps peak temporary
    // memory bounded by batch_size samples.  Each gathered chunk then runs
    // through the shared zero-copy batching path.
    BG_EXPECTS(batch_size > 0, "predict batch size must be positive");
    std::vector<double> out;
    out.reserve(total);
    Matrix stacked(std::min(batch_size, total) * num_nodes,
                   static_cast<std::size_t>(cfg_.in_dim));
    for (std::size_t start = 0; start < total; start += batch_size) {
        const std::size_t b = std::min(batch_size, total - start);
        for (std::size_t s = 0; s < b; ++s) {
            const std::span<const float> feats = sample_row(start + s);
            BG_ASSERT(feats.size() ==
                          num_nodes * static_cast<std::size_t>(cfg_.in_dim),
                      "sample feature width mismatch");
            std::copy(feats.begin(), feats.end(),
                      stacked.row(s * num_nodes));
        }
        for (const double p :
             predict_batch(csr, num_nodes,
                           stacked.rows_view(0, b * num_nodes), batch_size,
                           pool)) {
            out.push_back(p);
        }
    }
    return out;
}

std::vector<double> BoolGebraModel::predict_batch_scored(
    const nn::Csr& csr, std::size_t num_nodes, nn::ConstMatrixView stacked,
    std::size_t batch_size, bg::ThreadPool* pool,
    const std::function<double(const Matrix&, std::size_t)>& score) const {
    BG_EXPECTS(num_nodes > 0 && stacked.rows() % num_nodes == 0,
               "stacked feature rows must be a whole number of samples");
    BG_EXPECTS(stacked.cols() == static_cast<std::size_t>(cfg_.in_dim),
               "stacked feature width mismatch");
    BG_EXPECTS(batch_size > 0, "predict batch size must be positive");
    const std::size_t total = stacked.rows() / num_nodes;
    std::vector<double> out;
    out.reserve(total);
    nn::EvalScratch scratch;  // temporaries shared across the chunks
    for (std::size_t start = 0; start < total; start += batch_size) {
        const std::size_t b = std::min(batch_size, total - start);
        // Zero-copy chunking: each forward sees a row-panel view of the
        // stacked matrix.
        const Matrix pred =
            forward_eval(stacked.rows_view(start * num_nodes, b * num_nodes),
                         csr, b, scratch, pool);
        for (std::size_t s = 0; s < b; ++s) {
            out.push_back(score(pred, s));
        }
    }
    return out;
}

std::vector<double> BoolGebraModel::predict_batch(const nn::Csr& csr,
                                                  std::size_t num_nodes,
                                                  nn::ConstMatrixView stacked,
                                                  std::size_t batch_size,
                                                  bg::ThreadPool* pool) const {
    return predict_batch_head(csr, num_nodes, stacked, 0, batch_size, pool);
}

std::vector<double> BoolGebraModel::predict_batch_head(
    const nn::Csr& csr, std::size_t num_nodes, nn::ConstMatrixView stacked,
    std::size_t head, std::size_t batch_size, bg::ThreadPool* pool) const {
    BG_EXPECTS(head < cfg_.heads.size(), "head index out of range");
    return predict_batch_scored(
        csr, num_nodes, stacked, batch_size, pool,
        [head](const Matrix& pred, std::size_t s) -> double {
            return pred.at(s, head);
        });
}

std::vector<double> BoolGebraModel::predict_batch_blend(
    const nn::Csr& csr, std::size_t num_nodes, nn::ConstMatrixView stacked,
    std::span<const double> weights, std::size_t batch_size,
    bg::ThreadPool* pool) const {
    BG_EXPECTS(weights.size() == cfg_.heads.size(),
               "blend weights must cover every head");
    return predict_batch_scored(
        csr, num_nodes, stacked, batch_size, pool,
        [weights](const Matrix& pred, std::size_t s) -> double {
            double score = 0.0;
            for (std::size_t h = 0; h < weights.size(); ++h) {
                if (weights[h] != 0.0) {
                    score += weights[h] * pred.at(s, h);
                }
            }
            return score;
        });
}

void BoolGebraModel::save(const std::filesystem::path& path) {
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("cannot write model file: " + path.string());
    }
    // Versioned header: a single size head writes the legacy v1 layout
    // (magic "BGMODEL2" — byte-identical to the pre-multi-head format, so
    // old tooling keeps reading these files); everything else writes v2
    // ("BGMODEL3"), which records the head list before the input stats.
    const bool legacy = cfg_.heads.size() == 1 &&
                        cfg_.heads.front() == MetricHead::Size;
    if (legacy) {
        const char magic[8] = {'B', 'G', 'M', 'O', 'D', 'E', 'L', '2'};
        out.write(magic, sizeof magic);
    } else {
        const char magic[8] = {'B', 'G', 'M', 'O', 'D', 'E', 'L', '3'};
        out.write(magic, sizeof magic);
        const auto num_heads = static_cast<std::uint32_t>(cfg_.heads.size());
        out.write(reinterpret_cast<const char*>(&num_heads),
                  sizeof num_heads);
        for (const MetricHead h : cfg_.heads) {
            const auto id = static_cast<std::uint8_t>(h);
            out.write(reinterpret_cast<const char*>(&id), sizeof id);
        }
    }
    const auto stats_len = static_cast<std::uint64_t>(in_mean_.size());
    out.write(reinterpret_cast<const char*>(&stats_len), sizeof stats_len);
    out.write(reinterpret_cast<const char*>(in_mean_.data()),
              static_cast<std::streamsize>(stats_len * sizeof(float)));
    out.write(reinterpret_cast<const char*>(in_std_.data()),
              static_cast<std::streamsize>(stats_len * sizeof(float)));
    for (const auto& p : params()) {
        const auto sz = static_cast<std::uint64_t>(p.size);
        out.write(reinterpret_cast<const char*>(&sz), sizeof sz);
        out.write(reinterpret_cast<const char*>(p.value),
                  static_cast<std::streamsize>(p.size * sizeof(float)));
    }
}

namespace {

/// Read a checkpoint's head list from its magic + (v2 only) head header.
/// Leaves the stream positioned at the input-stats length field.
std::vector<MetricHead> read_checkpoint_heads(std::ifstream& in,
                                              const std::string& path) {
    char magic[8];
    in.read(magic, sizeof magic);
    const std::string tag(magic, 8);
    if (tag == "BGMODEL2") {
        // v1: single-head files predate the head header; they are always
        // the paper's size predictor.
        return {MetricHead::Size};
    }
    if (tag != "BGMODEL3") {
        throw std::runtime_error("bad model file magic: " + path);
    }
    std::uint32_t num_heads = 0;
    in.read(reinterpret_cast<char*>(&num_heads), sizeof num_heads);
    if (!in || num_heads == 0 || num_heads > kNumMetricHeads) {
        throw std::runtime_error("model file head count out of range: " +
                                 path);
    }
    std::vector<MetricHead> heads;
    heads.reserve(num_heads);
    bool seen[kNumMetricHeads] = {};
    for (std::uint32_t i = 0; i < num_heads; ++i) {
        std::uint8_t id = 0;
        in.read(reinterpret_cast<char*>(&id), sizeof id);
        if (!in || id >= kNumMetricHeads) {
            throw std::runtime_error("model file head id out of range: " +
                                     path);
        }
        if (seen[id]) {
            throw std::runtime_error("model file repeats a head id: " + path);
        }
        seen[id] = true;
        heads.push_back(static_cast<MetricHead>(id));
    }
    // Enforce the model invariants here so a corrupt header surfaces as a
    // file error (runtime_error naming the path), not as the constructor's
    // ContractViolation.
    if (!seen[static_cast<std::size_t>(MetricHead::Size)]) {
        throw std::runtime_error("model file lacks the size head: " + path);
    }
    return heads;
}

}  // namespace

void BoolGebraModel::load(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read model file: " + path.string());
    }
    const auto file_heads = read_checkpoint_heads(in, path.string());
    if (!std::equal(file_heads.begin(), file_heads.end(),
                    cfg_.heads.begin(), cfg_.heads.end())) {
        throw std::runtime_error(
            "model file head list does not match this architecture "
            "(construct via load_checkpoint() to adopt the file's heads): " +
            path.string());
    }
    std::uint64_t stats_len = 0;
    in.read(reinterpret_cast<char*>(&stats_len), sizeof stats_len);
    if (!in || (stats_len != 0 &&
                stats_len != static_cast<std::uint64_t>(cfg_.in_dim))) {
        throw std::runtime_error(
            "model file input-stats width does not match: " + path.string());
    }
    in_mean_.assign(stats_len, 0.0F);
    in_std_.assign(stats_len, 1.0F);
    in.read(reinterpret_cast<char*>(in_mean_.data()),
            static_cast<std::streamsize>(stats_len * sizeof(float)));
    in.read(reinterpret_cast<char*>(in_std_.data()),
            static_cast<std::streamsize>(stats_len * sizeof(float)));
    for (auto& p : params()) {
        std::uint64_t sz = 0;
        in.read(reinterpret_cast<char*>(&sz), sizeof sz);
        if (!in || sz != p.size) {
            throw std::runtime_error(
                "model file does not match this architecture: " +
                path.string());
        }
        in.read(reinterpret_cast<char*>(p.value),
                static_cast<std::streamsize>(p.size * sizeof(float)));
        if (!in) {
            throw std::runtime_error("truncated model file: " + path.string());
        }
    }
}

BoolGebraModel load_checkpoint(const std::filesystem::path& path,
                               ModelConfig base) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read model file: " + path.string());
    }
    base.heads = read_checkpoint_heads(in, path.string());
    in.close();
    BoolGebraModel model(base);
    model.load(path);
    return model;
}

}  // namespace bg::core
