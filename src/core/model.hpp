#pragma once

/// \file model.hpp
/// The BoolGebra predictor (paper Fig 3g):
///
///   GraphConv0 -> ReLU6 -> Dropout -> GraphConv1 -> ReLU6 -> Dropout
///   -> GraphConv2 -> ReLU6 -> Dropout -> MeanPool
///   -> Linear0 -> ReLU6 -> BatchNorm0 -> Linear1 -> BatchNorm1
///   -> Linear2 -> Sigmoid
///
/// Paper hyper-parameters: conv dims 12 -> 512 -> 512 -> 64, MLP
/// 64 -> 1000 -> 200 -> 1, dropout 0.1.  `quick()` shrinks the widths so
/// CPU-only experiment harnesses finish in seconds; the architecture is
/// identical.
///
/// The final linear layer carries one sigmoid-squashed regression column
/// per configured MetricHead (size / depth / mapped-LUT), sharing the
/// SAGE trunk and MLP — the default single size head reproduces the
/// paper's (and the pre-multi-head code's) output bit for bit.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/metrics.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/sage.hpp"

namespace bg::core {

class Dataset;  // dataset.hpp

struct ModelConfig {
    int in_dim = feature_dim;
    std::vector<int> sage_dims = {512, 512, 64};
    std::vector<int> mlp_dims = {1000, 200, 1};
    float dropout = 0.1F;
    std::uint64_t seed = 0xB001;
    /// Standardize input columns with dataset statistics before the first
    /// convolution.  The paper feeds raw features (PI rows are -99) and
    /// trains at lr 8e-7; CPU-quick training uses a ~1000x larger rate,
    /// where the raw -99 scale destabilizes BatchNorm.  Identity until
    /// set_input_stats() is called (the trainer does it automatically).
    bool standardize_inputs = true;

    /// Output heads sharing the SAGE trunk and MLP: the final linear layer
    /// is `heads.size()` wide and every head gets its own sigmoid-squashed
    /// regression column.  The default single size head is the paper's
    /// architecture, bit-identical to the pre-multi-head model; the head
    /// list must contain MetricHead::Size (the universal ranking fallback)
    /// and no duplicates.  Canonical multi-head order is size, depth, luts.
    std::vector<MetricHead> heads = {MetricHead::Size};

    /// The paper's exact architecture.
    static ModelConfig paper() { return {}; }
    /// Quick widths with all three metric heads (size, depth, mapped-LUT).
    static ModelConfig quick_multi() {
        ModelConfig c = quick();
        c.heads = {MetricHead::Size, MetricHead::Depth, MetricHead::Luts};
        return c;
    }
    /// CPU-friendly widths for the quick experiment harnesses.  Dropout is
    /// disabled: at quick-mode scale (small widths, tens of epochs) the
    /// dropout noise exceeds the inter-sample signal that survives mean
    /// pooling; the paper's 1500-epoch regime averages it out.
    static ModelConfig quick() {
        ModelConfig c;
        c.sage_dims = {48, 48, 24};
        c.mlp_dims = {64, 16, 1};
        c.dropout = 0.0F;
        return c;
    }
};

class BoolGebraModel {
public:
    explicit BoolGebraModel(const ModelConfig& cfg = {});

    const ModelConfig& config() const { return cfg_; }

    /// The output heads, in column order of the forward result.
    std::span<const MetricHead> heads() const { return cfg_.heads; }
    std::size_t num_heads() const { return cfg_.heads.size(); }
    bool has_head(MetricHead head) const {
        return head_index(head).has_value();
    }
    /// Column index of `head`, or nullopt when this model was not built
    /// (or trained) with it.
    std::optional<std::size_t> head_index(MetricHead head) const;

    /// Forward pass for a batch of samples over one graph.
    /// `x` is a (B * N, in_dim) row-major view (zero-copy panels of a
    /// larger stacked matrix work); returns (B, num_heads()) with one
    /// column per configured head.  `pool` (optional) shards the GEMM row
    /// panels without changing any output bit.
    nn::Matrix forward(nn::ConstMatrixView x, const nn::Csr& csr,
                       std::size_t batch, bool train,
                       bg::ThreadPool* pool = nullptr);

    /// Genuinely const eval-mode forward: bit-identical to
    /// forward(x, ..., /*train=*/false) but never touches the layer
    /// backward caches, so one model instance serves concurrent inference
    /// (the FlowService shares shared_ptr<const BoolGebraModel> snapshots
    /// across in-flight jobs).  `scratch` holds the per-thread temporaries
    /// — reuse one instance per thread across calls, never share it.
    nn::Matrix forward_eval(nn::ConstMatrixView x, const nn::Csr& csr,
                            std::size_t batch, nn::EvalScratch& scratch,
                            bg::ThreadPool* pool = nullptr) const;

    /// Back-propagate dL/dpred; accumulates parameter gradients.
    void backward(const nn::Matrix& dpred);

    void zero_grad();
    std::vector<nn::ParamRef> params();
    std::size_t num_parameters();

    /// Per-column input statistics used when cfg.standardize_inputs is on
    /// (persisted by save()/load()).
    void set_input_stats(std::vector<float> mean, std::vector<float> stddev);
    const std::vector<float>& input_mean() const { return in_mean_; }
    const std::vector<float>& input_std() const { return in_std_; }

    /// Default samples-per-forward chunk for the predict helpers.
    static constexpr std::size_t kPredictBatch = 64;

    /// Convenience inference: predictions for selected dataset samples.
    /// Gathers the samples into one stacked matrix and delegates to
    /// predict_batch.
    std::vector<double> predict(const Dataset& ds,
                                std::span<const std::size_t> indices,
                                std::size_t batch_size = kPredictBatch,
                                bg::ThreadPool* pool = nullptr) const;
    /// Same for per-sample feature vectors scattered across `feature_rows`
    /// (one gather copy, then the shared view-based batching path).
    std::vector<double> predict_features(
        const nn::Csr& csr, std::size_t num_nodes,
        std::span<const std::vector<float>> feature_rows,
        std::size_t batch_size = kPredictBatch,
        bg::ThreadPool* pool = nullptr) const;

    /// Batched inference over a pre-stacked feature matrix: `stacked` is
    /// (B * num_nodes, in_dim) row-major with each sample's node block
    /// contiguous.  Chunks of `batch_size` samples go through
    /// forward_eval() as zero-copy row-panel views; results are identical
    /// to per-sample inference.  Const and cache-free: safe to call
    /// concurrently from many threads on one shared model.  Returns the
    /// first head's column (the size head on every canonical config) —
    /// exactly the single-head behavior.
    std::vector<double> predict_batch(const nn::Csr& csr,
                                      std::size_t num_nodes,
                                      nn::ConstMatrixView stacked,
                                      std::size_t batch_size = kPredictBatch,
                                      bg::ThreadPool* pool = nullptr) const;

    /// Same batched inference, returning the column of head `head`
    /// (an index into heads(); resolve metrics with head_index()).  With
    /// head 0 this is predict_batch bit for bit.
    std::vector<double> predict_batch_head(
        const nn::Csr& csr, std::size_t num_nodes,
        nn::ConstMatrixView stacked, std::size_t head,
        std::size_t batch_size = kPredictBatch,
        bg::ThreadPool* pool = nullptr) const;

    /// Weighted blend over the heads — the score path for weighted
    /// objectives: score_s = sum over heads h of weights[h] * pred(s, h),
    /// skipping zero weights.  `weights` must be num_heads() wide.
    std::vector<double> predict_batch_blend(
        const nn::Csr& csr, std::size_t num_nodes,
        nn::ConstMatrixView stacked, std::span<const double> weights,
        std::size_t batch_size = kPredictBatch,
        bg::ThreadPool* pool = nullptr) const;

    /// Binary weight persistence.  Single-size-head models write the
    /// legacy v1 layout (magic "BGMODEL2", byte-identical to the
    /// pre-multi-head format); any other head list writes v2
    /// ("BGMODEL3"), which prepends the head list to the header.  load()
    /// accepts both but the architecture — including the head list —
    /// must match the constructed model; use load_checkpoint() to let the
    /// file pick the heads.
    void save(const std::filesystem::path& path);
    void load(const std::filesystem::path& path);

private:
    /// Shared predict_batch/_head/_blend driver: `score` maps one row of
    /// the (b, num_heads) forward output to the sample's scalar score.
    std::vector<double> predict_batch_scored(
        const nn::Csr& csr, std::size_t num_nodes,
        nn::ConstMatrixView stacked, std::size_t batch_size,
        bg::ThreadPool* pool,
        const std::function<double(const nn::Matrix&, std::size_t)>& score)
        const;
    /// Standardize `x` into `y`, reusing y's storage when already sized.
    void standardize_into(nn::ConstMatrixView x, nn::Matrix& y) const;
    /// Shared chunked-gather path behind predict()/predict_features():
    /// copies batch_size samples at a time into one reused stacked matrix
    /// (bounded peak memory) and runs predict_batch on each chunk view.
    std::vector<double> predict_gathered(
        const nn::Csr& csr, std::size_t num_nodes, std::size_t total,
        std::size_t batch_size, bg::ThreadPool* pool,
        const std::function<std::span<const float>(std::size_t)>& sample_row)
        const;

    ModelConfig cfg_;
    bg::Rng rng_;  ///< drives dropout masks
    std::vector<float> in_mean_;
    std::vector<float> in_std_;
    std::vector<nn::SageConv> convs_;
    std::vector<nn::ReLU6> conv_act_;
    std::vector<nn::Dropout> conv_drop_;
    std::vector<nn::Linear> linears_;
    nn::ReLU6 mlp_act0_;
    nn::BatchNorm1d bn0_;
    nn::BatchNorm1d bn1_;
    nn::Sigmoid out_act_;
    // Forward caches for backward.
    std::size_t cache_num_nodes_ = 0;
};

/// Construct a model whose head list matches the checkpoint at `path` and
/// load it: a legacy v1 file ("BGMODEL2") loads as a single size head —
/// size-only, whatever `base.heads` says — and a v2 file ("BGMODEL3")
/// restores its recorded head list.  `base` supplies everything else
/// (trunk/MLP widths, standardization flag); its `heads` field is
/// overwritten by the file's.
BoolGebraModel load_checkpoint(const std::filesystem::path& path,
                               ModelConfig base);

}  // namespace bg::core
