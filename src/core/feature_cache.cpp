#include "core/feature_cache.hpp"

#include <numeric>

#include "aig/footprint.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::core {

using aig::Aig;
using aig::Var;

namespace {

/// splitmix64 finalizer — the same mix the strash table uses.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Two bits per var in a 256-bit signature.
void bloom_add(std::array<std::uint64_t, 4>& b, Var v) {
    const std::uint64_t h = mix64(v);
    const auto set = [&](std::uint64_t bit) {
        b[(bit >> 6) & 3] |= 1ULL << (bit & 63);
    };
    set(h & 255);
    set((h >> 8) & 255);
}

bool bloom_intersects(const std::array<std::uint64_t, 4>& a,
                      const std::array<std::uint64_t, 4>& b) {
    return ((a[0] & b[0]) | (a[1] & b[1]) | (a[2] & b[2]) | (a[3] & b[3])) !=
           0;
}

}  // namespace

void FeatureCache::recompute_rows(const Aig& g, const opt::OptParams& params,
                                  std::span<const Var> vars,
                                  ThreadPool* pool) {
    const auto run = [&](std::size_t i) {
        const Var v = vars[i];
        thread_local aig::ReadFootprint fp;
        fp.cap = footprint_cap;
        fp.clear();
        {
            const aig::FootprintScope scope(fp);
            // The row's direct reads (node kind, fanin refs) all key on v;
            // the transformability-check walks record the rest.
            aig::fp_touch(v, aig::Read::Struct);
            compute_static_row(g, v, params, rows_[v]);
        }
        Bloom& b = blooms_[v];
        if (fp.overflow) {
            b = {~0ULL, ~0ULL, ~0ULL, ~0ULL};  // always-dirty
            return;
        }
        b = {};
        // Var-granular signature: `touched` lists plain vars, so decode
        // the class-tagged footprint entries before hashing (a row read
        // of any aspect of u must match a commit touching any aspect).
        for (const auto u : fp.vars) {
            bloom_add(b, aig::fp_entry_var(u));
        }
    };
    if (pool != nullptr) {
        pool->for_each(vars.size(), run);
    } else {
        bg::parallel_for(vars.size(), run);
    }
    last_recomputed_ = vars.size();
}

void FeatureCache::rebuild(const Aig& g, const opt::OptParams& params,
                           ThreadPool* pool) {
    params.validate();
    const std::size_t n = g.num_slots();
    rows_.assign(n, {});
    blooms_.assign(n, Bloom{});
    std::vector<Var> all(n);
    std::iota(all.begin(), all.end(), Var{0});
    recompute_rows(g, params, all, pool);
    csr_ = build_csr(g);
    valid_ = true;
}

void FeatureCache::update(const Aig& g, const opt::OptParams& params,
                          std::span<const Var> touched, ThreadPool* pool) {
    BG_EXPECTS(valid_, "FeatureCache::update needs a prior rebuild()");
    params.validate();
    const std::size_t old_n = rows_.size();
    const std::size_t n = g.num_slots();
    BG_EXPECTS(n >= old_n,
               "cached design shrank — compaction requires a rebuild");
    rows_.resize(n);
    blooms_.resize(n, Bloom{});

    Bloom tb{};
    for (const Var u : touched) {
        bloom_add(tb, u);
    }
    std::vector<Var> dirty;
    for (std::size_t v = 0; v < old_n; ++v) {
        if (bloom_intersects(blooms_[v], tb)) {
            dirty.push_back(static_cast<Var>(v));
        }
    }
    for (std::size_t v = old_n; v < n; ++v) {
        dirty.push_back(static_cast<Var>(v));  // commit-created slots
    }
    recompute_rows(g, params, dirty, pool);
    csr_ = build_csr(g);
}

}  // namespace bg::core
