#include "core/flow_engine.hpp"

#include <algorithm>

#include "circuits/registry.hpp"
#include "util/contracts.hpp"
#include "util/progress.hpp"

namespace bg::core {

using aig::Aig;

FlowEngine::FlowEngine(EngineConfig cfg)
    : cfg_(cfg), pool_(cfg.workers) {
    BG_EXPECTS(cfg_.rounds >= 1, "engine needs at least one flow round");
}

DesignFlowResult FlowEngine::run_one(const DesignJob& job,
                                     const BoolGebraModel& model) {
    DesignFlowResult res;
    res.name = job.name;
    res.original_size = job.design.num_ands();
    res.iterated.original_size = res.original_size;

    const bg::Stopwatch watch;
    BoolGebraModel local(model);  // private copy: forward caches mutate
    Aig current = job.design;
    FlowConfig round_cfg = cfg_.flow;
    for (std::size_t round = 0; round < cfg_.rounds; ++round) {
        round_cfg.seed = cfg_.flow.seed + round;  // fresh samples per round
        // Per-round caches shared by every flow step of this design.
        const StaticFeatures st =
            compute_static_features(current, round_cfg.opt);
        const GraphCsr csr = build_csr(current);
        FlowContext ctx;
        ctx.static_features = &st;
        ctx.csr = &csr;
        ctx.pool = &pool_;
        const FlowResult flow = run_flow(current, local, round_cfg, ctx);
        res.samples_run += round_cfg.num_samples;
        const bool productive =
            flow.best_reduction > 0 && !flow.best_decisions.empty();
        if (round == 0) {
            res.flow = flow;
        }
        if (!productive) {
            break;
        }
        res.iterated.per_round_reduction.push_back(flow.best_reduction);
        if (cfg_.rounds == 1) {
            break;  // single-shot: nothing is committed
        }
        auto decisions = flow.best_decisions;
        (void)opt::orchestrate(current, decisions, round_cfg.opt);
        current = current.compact();
    }
    if (cfg_.rounds == 1) {
        // Final size is the best evaluated candidate's (uncommitted).
        res.iterated.final_size =
            res.original_size -
            static_cast<std::size_t>(std::max(res.flow.best_reduction, 0));
        res.iterated.final_ratio = res.flow.bg_best_ratio;
    } else {
        res.iterated.final_size = current.num_ands();
        res.iterated.final_ratio =
            static_cast<double>(res.iterated.final_size) /
            static_cast<double>(res.iterated.original_size);
    }
    res.seconds = watch.seconds();
    return res;
}

BatchFlowResult FlowEngine::run(std::span<const DesignJob> jobs,
                                const BoolGebraModel& model) {
    BatchFlowResult out;
    out.designs.resize(jobs.size());
    const bg::Stopwatch watch;
    pool_.for_each(jobs.size(), [&](std::size_t j) {
        out.designs[j] = run_one(jobs[j], model);
    });
    out.total_seconds = watch.seconds();

    if (!out.designs.empty()) {
        double best = 0.0;
        double mean = 0.0;
        double final_r = 0.0;
        for (const auto& d : out.designs) {
            best += d.flow.bg_best_ratio;
            mean += d.flow.bg_mean_ratio;
            final_r += d.iterated.final_ratio;
            out.total_samples += d.samples_run;
        }
        const auto n = static_cast<double>(out.designs.size());
        out.avg_bg_best_ratio = best / n;
        out.avg_bg_mean_ratio = mean / n;
        out.avg_final_ratio = final_r / n;
    }
    if (out.total_seconds > 0.0) {
        out.designs_per_second =
            static_cast<double>(out.designs.size()) / out.total_seconds;
        out.samples_per_second =
            static_cast<double>(out.total_samples) / out.total_seconds;
    }
    return out;
}

std::vector<DesignJob> jobs_from_registry(std::span<const std::string> names,
                                          double scale) {
    std::vector<DesignJob> jobs;
    jobs.reserve(names.size());
    for (const auto& name : names) {
        jobs.push_back(
            {name, scale == 1.0
                       ? circuits::make_benchmark(name)
                       : circuits::make_benchmark_scaled(name, scale)});
    }
    return jobs;
}

namespace {

bool glob_match(const char* pat, const char* str) {
    // Iterative '*'/'?' matcher with single-star backtracking.
    const char* star = nullptr;
    const char* resume = nullptr;
    while (*str != '\0') {
        if (*pat == *str || *pat == '?') {
            ++pat;
            ++str;
        } else if (*pat == '*') {
            star = pat++;
            resume = str;
        } else if (star != nullptr) {
            pat = star + 1;
            str = ++resume;
        } else {
            return false;
        }
    }
    while (*pat == '*') {
        ++pat;
    }
    return *pat == '\0';
}

}  // namespace

std::vector<std::string> expand_registry_pattern(const std::string& pattern) {
    std::vector<std::string> out;
    for (const auto& info : circuits::benchmark_registry()) {
        if (glob_match(pattern.c_str(), info.name.c_str())) {
            out.push_back(info.name);
        }
    }
    return out;
}

}  // namespace bg::core
