#include "core/flow_engine.hpp"

#include <algorithm>

#include "circuits/design_source.hpp"
#include "circuits/registry.hpp"
#include "core/flow_service.hpp"
#include "util/contracts.hpp"
#include "util/glob.hpp"
#include "util/progress.hpp"

namespace bg::core {

using aig::Aig;

DesignFlowResult run_design_flow(const DesignJob& job,
                                 const BoolGebraModel& model,
                                 const FlowConfig& flow_cfg,
                                 std::size_t rounds, ThreadPool* pool,
                                 verify::PortfolioCec* prover,
                                 const JobControl* control) {
    BG_EXPECTS(rounds >= 1, "a design flow needs at least one round");
    const opt::Objective& obj = flow_objective(flow_cfg);
    const bg::CancelToken* cancel =
        control != nullptr ? control->cancel : nullptr;
    DesignFlowResult res;
    res.name = job.name;
    res.original_size = job.design.num_ands();
    res.iterated.original_size = res.original_size;

    const bg::Stopwatch watch;
    Aig current = job.design;
    FlowConfig round_cfg = flow_cfg;
    // Iterated flows are proven once end-to-end below (final committed
    // graph vs input design) — cheaper and strictly stronger than proving
    // each round; a single uncommitted round verifies inside run_flow.
    round_cfg.verify = flow_cfg.verify && rounds == 1;
    // The token rides OptParams into every run_flow stage and orchestrate
    // node walk; null leaves those paths bit-identical to uncontrolled
    // runs.  A provided JobControl owns the cancel decision; without one,
    // whatever the caller put in flow.opt.cancel stays in effect.
    if (control != nullptr) {
        round_cfg.opt.cancel = cancel;
    }

    // Commit-path intra parallelism: share the engine pool, else spin up
    // a transient one (orchestrate_parallel stays bit-identical to the
    // sequential pass either way).
    std::optional<ThreadPool> intra_pool;
    opt::IntraParallel intra;
    if (flow_cfg.intra_workers >= 2) {
        if (pool != nullptr) {
            intra.pool = pool;
        } else {
            intra_pool.emplace(flow_cfg.intra_workers);
            intra.pool = &*intra_pool;
        }
    }
    FeatureCache cache;  // incremental mode only
    bool round1_productive = false;
    for (std::size_t round = 0; round < rounds; ++round) {
        poll_cancel(cancel, "run_design_flow round boundary");
        round_cfg.seed = flow_cfg.seed + round;  // fresh samples per round
        // Per-round caches shared by every flow step of this design —
        // rebuilt fresh each round, or maintained incrementally across
        // commits from each pass's touched set.
        StaticFeatures st;
        GraphCsr csr;
        FlowContext ctx;
        if (flow_cfg.incremental_features) {
            if (!cache.valid()) {
                cache.rebuild(current, round_cfg.opt, pool);
            }
            ctx.feature_cache = &cache;
        } else {
            st = compute_static_features(current, round_cfg.opt);
            csr = build_csr(current);
            ctx.static_features = &st;
            ctx.csr = &csr;
        }
        ctx.pool = pool;
        ctx.prover = prover;
        const FlowResult flow = run_flow(current, model, round_cfg, ctx);
        res.samples_run += flow.samples_evaluated;
        // Productive = the objective-best strictly improves on the round's
        // entry cost (under size: best_reduction > 0, as before).
        const bool productive =
            !flow.best_decisions.empty() &&
            obj.better(flow.best_cost, flow.original_cost);
        if (round == 0) {
            res.flow = flow;
            res.iterated.original_depth = flow.original_depth;
            round1_productive = productive;
        }
        if (!productive) {
            break;
        }
        res.iterated.per_round_reduction.push_back(flow.best_reduction);
        if (rounds == 1) {
            break;  // single-shot: nothing is committed
        }
        auto decisions = flow.best_decisions;
        const auto commit = opt::orchestrate_parallel(
            current, decisions, round_cfg.opt, obj, intra);
        if (!flow_cfg.incremental_features) {
            current = current.compact();
        } else {
            cache.update(current, round_cfg.opt, commit.touched, pool);
            // Defer compaction until tombstones dominate; compacting
            // remaps var ids, so the cache restarts from a full rebuild.
            const std::size_t dead = current.num_slots() - 1 -
                                     current.num_pis() - current.num_ands();
            if (2 * dead >= current.num_slots()) {
                current = current.compact();
                cache.invalidate();
            }
        }
        if (control != nullptr && control->on_progress) {
            control->on_progress(round + 1, current.num_ands());
        }
    }
    if (rounds == 1) {
        // Final size/depth are the best evaluated candidate's
        // (uncommitted).
        res.iterated.final_size =
            res.original_size -
            static_cast<std::size_t>(std::max(res.flow.best_reduction, 0));
        res.iterated.final_ratio = res.flow.bg_best_ratio;
        res.iterated.final_depth = res.flow.best_cost.depth;
        res.iterated.final_depth_ratio = res.flow.bg_best_depth_ratio;
        res.verification = res.flow.verification;
        if (control != nullptr && control->on_progress) {
            control->on_progress(1, res.iterated.final_size);
        }
        if (control != nullptr && control->want_graph) {
            // Re-materialize the best candidate exactly as the verify
            // path does (deterministic re-run; the k evaluated graphs
            // were deliberately not retained).
            if (round1_productive) {
                Aig best_graph;
                (void)evaluate_decisions(
                    job.design, res.flow.best_decisions, round_cfg.opt, obj,
                    &best_graph,
                    flow_cfg.intra_workers >= 2 ? &intra : nullptr);
                res.final_graph =
                    std::make_shared<const Aig>(std::move(best_graph));
            } else {
                res.final_graph = std::make_shared<const Aig>(job.design);
            }
        }
    } else {
        res.iterated.final_size = current.num_ands();
        res.iterated.final_ratio =
            static_cast<double>(res.iterated.final_size) /
            static_cast<double>(res.iterated.original_size);
        res.iterated.final_depth = current.depth();
        res.iterated.final_depth_ratio =
            res.iterated.original_depth != 0
                ? static_cast<double>(res.iterated.final_depth) /
                      static_cast<double>(res.iterated.original_depth)
                : 1.0;
        if (flow_cfg.verify) {
            // One end-to-end proof of everything that was committed.
            if (prover != nullptr) {
                res.verification = prover->check(job.design, current);
            } else {
                verify::PortfolioCec local(flow_cfg.verify_opts, pool);
                res.verification = local.check(job.design, current);
            }
        }
        if (control != nullptr && control->want_graph) {
            res.final_graph = std::make_shared<const Aig>(std::move(current));
        }
    }
    res.seconds = watch.seconds();
    return res;
}

FlowEngine::FlowEngine(EngineConfig cfg) : cfg_(cfg) {
    BG_EXPECTS(cfg_.rounds >= 1, "engine needs at least one flow round");
    ServiceConfig scfg;
    scfg.workers = cfg_.workers;
    scfg.rounds = cfg_.rounds;
    scfg.flow = cfg_.flow;
    service_ = std::make_unique<FlowService>(scfg);
}

FlowEngine::~FlowEngine() = default;

std::size_t FlowEngine::workers() const { return service_->workers(); }

DesignFlowResult FlowEngine::run_one(const DesignJob& job,
                                     const BoolGebraModel& model) {
    return run_design_flow(job, model, cfg_.flow, cfg_.rounds,
                           &service_->pool(), service_->prover());
}

BatchFlowResult FlowEngine::run(std::span<const DesignJob> jobs,
                                const BoolGebraModel& model) {
    BatchFlowResult out;
    out.designs.resize(jobs.size());
    const bg::Stopwatch watch;
    // Non-owning snapshot: `model` outlives the batch because every
    // future is waited on below, and the service's reference is dropped
    // again before returning.
    service_->swap_model(ModelSnapshot(&model, [](const BoolGebraModel*) {}));
    try {
        std::vector<std::future<DesignFlowResult>> futures;
        futures.reserve(jobs.size());
        for (const auto& job : jobs) {
            futures.push_back(service_->submit(job));
        }
        for (std::size_t j = 0; j < futures.size(); ++j) {
            out.designs[j] = futures[j].get();
        }
    } catch (...) {
        // Never keep the non-owning snapshot past this call: wait out any
        // already-submitted jobs, drop the reference, then rethrow.
        service_->drain();
        service_->swap_model(nullptr);
        throw;
    }
    service_->swap_model(nullptr);
    out.total_seconds = watch.seconds();
    out.objective = flow_objective(cfg_.flow).name();
    out.ranked_by =
        plan_ranking(model, flow_objective(cfg_.flow), cfg_.flow.ranking_head)
            .describe;

    if (!out.designs.empty()) {
        double best = 0.0;
        double mean = 0.0;
        double final_r = 0.0;
        double best_depth = 0.0;
        double best_value = 0.0;
        double final_depth = 0.0;
        for (const auto& d : out.designs) {
            best += d.flow.bg_best_ratio;
            mean += d.flow.bg_mean_ratio;
            final_r += d.iterated.final_ratio;
            best_depth += d.flow.bg_best_depth_ratio;
            best_value += d.flow.bg_best_value_ratio;
            final_depth += d.iterated.final_depth_ratio;
            out.total_samples += d.samples_run;
            if (d.verification) {
                switch (d.verification->verdict) {
                    case aig::CecVerdict::Equivalent:
                        ++out.jobs_verified;
                        break;
                    case aig::CecVerdict::NotEquivalent:
                        ++out.jobs_refuted;
                        break;
                    case aig::CecVerdict::ProbablyEquivalent:
                        ++out.jobs_unknown;
                        break;
                }
            }
        }
        const auto n = static_cast<double>(out.designs.size());
        out.avg_bg_best_ratio = best / n;
        out.avg_bg_mean_ratio = mean / n;
        out.avg_final_ratio = final_r / n;
        out.avg_bg_best_depth_ratio = best_depth / n;
        out.avg_bg_best_value_ratio = best_value / n;
        out.avg_final_depth_ratio = final_depth / n;
    }
    if (out.total_seconds > 0.0) {
        out.designs_per_second =
            static_cast<double>(out.designs.size()) / out.total_seconds;
        out.samples_per_second =
            static_cast<double>(out.total_samples) / out.total_seconds;
    }
    return out;
}

std::vector<DesignJob> jobs_from_registry(std::span<const std::string> names,
                                          double scale) {
    std::vector<DesignJob> jobs;
    jobs.reserve(names.size());
    for (const auto& name : names) {
        // One code path for every scale: make_benchmark_scaled(name, 1.0)
        // reproduces make_benchmark exactly (asserted by
        // tests/test_flow_engine.cpp), so no float-equality dispatch.
        jobs.push_back({name, circuits::make_benchmark_scaled(name, scale)});
    }
    return jobs;
}

bool glob_match(const std::string& pattern, const std::string& text) {
    return bg::glob_match(pattern, text);
}

std::vector<std::string> expand_registry_pattern(const std::string& pattern) {
    std::vector<std::string> out;
    for (const auto& info : circuits::benchmark_registry()) {
        if (glob_match(pattern, info.name)) {
            out.push_back(info.name);
        }
    }
    return out;
}

std::vector<DesignJob> jobs_from_specs(const std::vector<std::string>& specs,
                                       bool all, double scale) {
    std::vector<DesignJob> jobs;
    for (const auto& r :
         circuits::resolve_design_specs(specs, all, scale)) {
        jobs.push_back({r.name, r.load()});
    }
    return jobs;
}

}  // namespace bg::core
