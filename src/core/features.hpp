#pragma once

/// \file features.hpp
/// The paper's attributed-graph feature embedding (§III-C.1):
///
/// Static features (8 per node, design-dependent only):
///   [0..1]  fanin-edge complementation bits (left, right)
///   [2..3]  rw transformability (0/1) and local gain (−1 when n/a)
///   [4..5]  rs transformability and local gain
///   [6..7]  rf transformability and local gain
/// PI (and constant) rows are filled with −99.
///
/// Dynamic features (4 per node, sample-dependent): one-hot of the
/// operation *actually applied* at the node under the sampled decisions —
/// [none, rw, rs, rf]; PIs are −99-filled.

#include <array>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "nn/sage.hpp"
#include "opt/orchestrate.hpp"
#include "opt/transform.hpp"

namespace bg::core {

inline constexpr int static_dim = 8;
inline constexpr int dynamic_dim = 4;
inline constexpr int feature_dim = static_dim + dynamic_dim;
inline constexpr float pi_fill = -99.0F;

/// Feature-set selection, used by the ablation benchmarks.  Disabled
/// groups are zero-filled so the model input width stays `feature_dim`.
struct FeatureConfig {
    bool use_static = true;
    bool use_dynamic = true;
};

/// Per-var static rows for a design (index = Var id; size = num_slots).
using StaticFeatures = std::vector<std::array<float, static_dim>>;
/// Per-var dynamic rows for one sample.
using DynamicFeatures = std::vector<std::array<float, dynamic_dim>>;

/// Compute static features; runs the three read-only transformability
/// checks at every AND node (the dominant cost, cached per design).
StaticFeatures compute_static_features(const aig::Aig& g,
                                       const opt::OptParams& params = {});

/// One row of the above — the per-node unit incremental maintenance
/// (core/feature_cache.hpp) recomputes for dirty vars.  Thread-safe for
/// distinct vars; `params` must already be validated.
void compute_static_row(const aig::Aig& g, aig::Var v,
                        const opt::OptParams& params,
                        std::array<float, static_dim>& row);

/// Dynamic one-hot rows from an orchestration trace (`applied` indexed by
/// original var id, as produced by opt::orchestrate).
DynamicFeatures compute_dynamic_features(const aig::Aig& g,
                                         std::span<const opt::OpKind> applied);

/// Assemble the flat N x 12 model input for one sample.
std::vector<float> assemble_features(const StaticFeatures& st,
                                     const DynamicFeatures& dy,
                                     const FeatureConfig& cfg = {});
/// Same, written directly into `out` (size N * feature_dim) — batched
/// callers assemble straight into their stacked matrix rows, no
/// per-sample temporary.
void assemble_features_into(const StaticFeatures& st,
                            const DynamicFeatures& dy,
                            const FeatureConfig& cfg, std::span<float> out);

/// Undirected CSR adjacency of the AIG (all slots; PIs/const included,
/// dead slots isolated).  Consumed by the GraphSAGE layers.
using GraphCsr = nn::Csr;

GraphCsr build_csr(const aig::Aig& g);

}  // namespace bg::core
