#pragma once

/// \file sampling.hpp
/// Decision-vector sampling (§III-B / §III-C.1 "Data Normalization"):
///
///  * purely random sampling — D[v] uniform over {rw, rs, rf};
///  * priority-guided sampling — a base assignment gives every node the
///    highest-priority *applicable* operation (priority rw > rs > rf, to
///    minimize structural change, following FlowTune), then additional
///    samples mutate a random 10%..90% of the nodes;
///  * evaluation — run Algorithm 1 on a copy and record the reduction and
///    the applied-op trace (the dynamic-feature source).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "core/features.hpp"
#include "opt/lut_map.hpp"
#include "opt/orchestrate.hpp"
#include "util/rng.hpp"

namespace bg::core {

/// One evaluated Boolean-manipulation sample.
struct SampleRecord {
    opt::DecisionVector decisions;       ///< input assignment D
    std::vector<opt::OpKind> applied;    ///< ops actually applied per var
    int reduction = 0;                   ///< AND nodes removed
    int depth_reduction = 0;             ///< levels removed
    std::size_t final_size = 0;
    std::uint32_t final_depth = 0;
    /// Mapped K-LUT count of the optimized graph — the training label for
    /// the model's LUT head.  -1 = not measured (mapping every sample
    /// costs a lut_map run, so it is opt-in via the generators'
    /// `lut_labels` parameter); datasets mask the LUT label out for such
    /// records.
    long long lut_count = -1;
};

/// Uniformly random decisions on the AND nodes (None elsewhere).
opt::DecisionVector random_decisions(const aig::Aig& g, bg::Rng& rng);

/// Priority-guided base assignment derived from the static features:
/// highest-priority applicable op, random op where nothing applies.
opt::DecisionVector priority_decisions(const aig::Aig& g,
                                       const StaticFeatures& st,
                                       bg::Rng& rng);

/// Re-assign a random `fraction` (0..1) of the AND positions.
opt::DecisionVector mutate_decisions(const aig::Aig& g,
                                     const opt::DecisionVector& base,
                                     double fraction, bg::Rng& rng);

/// Run Algorithm 1 on a copy of `design` and record the outcome.  The
/// orchestration commits under `objective` (default size, the paper's
/// behavior); `optimized_out`, when given, receives the optimized copy so
/// graph-needing objectives can measure it before it is discarded.
/// `intra`, when given, routes the pass through the partition/speculate
/// parallel orchestrator on its pool — bit-identical results, so callers
/// may mix the two paths freely.
SampleRecord evaluate_decisions(const aig::Aig& design,
                                opt::DecisionVector decisions,
                                const opt::OptParams& params = {},
                                const opt::Objective& objective =
                                    opt::size_objective(),
                                aig::Aig* optimized_out = nullptr,
                                const opt::IntraParallel* intra = nullptr);

/// N purely random samples (Fig 2 "Random").  When `lut_labels` is
/// non-null every record additionally carries the K-LUT mapping size of
/// its optimized graph (SampleRecord::lut_count — the LUT head's label).
std::vector<SampleRecord> generate_random_samples(
    const aig::Aig& design, std::size_t n, std::uint64_t seed,
    const opt::OptParams& params = {},
    const opt::LutMapParams* lut_labels = nullptr);

/// N priority-guided samples (Fig 2 "Guided"): the base assignment plus
/// partial random mutations with fractions cycling through 10%..90%.
/// `lut_labels` works as in generate_random_samples.
std::vector<SampleRecord> generate_guided_samples(
    const aig::Aig& design, std::size_t n, std::uint64_t seed,
    const opt::OptParams& params = {},
    const StaticFeatures* precomputed_static = nullptr,
    const opt::LutMapParams* lut_labels = nullptr);

}  // namespace bg::core
