#pragma once

/// \file flow_service.hpp
/// Long-lived cross-design serving: an always-on front end over the
/// FlowEngine internals.  Where FlowEngine::run batches a fixed job list,
/// FlowService keeps accepting design jobs for as long as it lives — the
/// ROADMAP's "heavy traffic" north star.
///
///  * **MPMC queue on the shared ThreadPool.**  Any number of producer
///    threads submit() jobs; every submission enqueues the job and
///    schedules one serving task on the pool, so any worker may pick up
///    any job (jobs start in FIFO order).  Inside a job the same pool
///    parallelizes the per-sample loops via the nesting-safe,
///    caller-participating for_each.
///  * **Atomic model hot-swap.**  The model is a
///    shared_ptr<const BoolGebraModel> snapshot.  swap_model() replaces it
///    for *later* submissions; every queued/in-flight job keeps the
///    snapshot it was bound to at submit() time and finishes on it.  This
///    is sound because eval-mode inference is genuinely const
///    (BoolGebraModel::predict_batch / forward_eval) — no per-job model
///    copy is ever made.  Snapshots may differ in head lists: each job
///    resolves its ranking plan (objective -> metric head, see
///    plan_ranking) against its own snapshot, so hot-swapping a legacy
///    single-head checkpoint for a multi-head one upgrades depth/LUT
///    flows from size-as-proxy to true head ranking mid-stream.
///  * **Graceful shutdown.**  drain() blocks until the service is idle;
///    stop() additionally rejects further submissions.  The destructor
///    stops implicitly.
///  * **Rolling stats.**  Jobs served, submit-to-completion latency
///    percentiles over a sliding window, and samples/s throughput.
///
/// Results are bit-identical to a sequential run_flow / run_iterated_flow
/// with the snapshot the job was bound to, independent of worker count,
/// queue depth, and any concurrent hot-swaps.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/flow_engine.hpp"
#include "util/progress.hpp"

namespace bg::core {

/// An immutable model snapshot shared between the service and its
/// in-flight jobs.  Callers usually make_shared a trained model; a
/// non-owning snapshot (null deleter) works when the model provably
/// outlives every job bound to it, which is how FlowEngine::run wraps its
/// caller's model.
using ModelSnapshot = std::shared_ptr<const BoolGebraModel>;

struct ServiceConfig {
    std::size_t workers = 0;  ///< pool threads (0 = default_worker_count())
    std::size_t rounds = 1;   ///< flow rounds per job (>1 = iterated)
    FlowConfig flow;          ///< per-job flow parameters
    /// Sliding window of per-job latencies kept for the p50/p95 stats.
    std::size_t latency_window = 512;
};

/// A point-in-time view of the serving counters.
struct ServiceStats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;  ///< includes failed jobs
    std::uint64_t jobs_pending = 0;    ///< queued + currently executing
    std::uint64_t samples_run = 0;     ///< decision vectors scored (measured)
    std::uint64_t model_swaps = 0;
    /// Verification tally (FlowConfig::verify gates the first three):
    /// verified = proven equivalent, refuted = counterexample found,
    /// unknown = every engine degraded, unverified = completed without a
    /// verdict (verification off, or the job failed).
    std::uint64_t jobs_verified = 0;
    std::uint64_t jobs_refuted = 0;
    std::uint64_t jobs_unknown = 0;
    std::uint64_t jobs_unverified = 0;
    /// Portfolio verdict-cache counters (zero when verification is off).
    std::uint64_t verify_cache_lookups = 0;
    std::uint64_t verify_cache_hits = 0;
    double uptime_seconds = 0.0;
    double busy_seconds = 0.0;  ///< summed per-job execution time
    /// Submit-to-completion latency percentiles over the sliding window.
    double p50_latency_seconds = 0.0;
    double p95_latency_seconds = 0.0;
    /// Completed-job throughput over the service lifetime.
    double jobs_per_second = 0.0;
    double samples_per_second = 0.0;
};

class FlowService {
public:
    explicit FlowService(ServiceConfig cfg = {}, ModelSnapshot model = {});
    ~FlowService();  // stop()s: pending jobs finish, new ones are rejected

    FlowService(const FlowService&) = delete;
    FlowService& operator=(const FlowService&) = delete;

    const ServiceConfig& config() const { return cfg_; }
    std::size_t workers() const { return pool_.size(); }
    ThreadPool& pool() { return pool_; }
    /// The long-lived portfolio prover every served job shares (its
    /// verdict cache spans jobs); null when FlowConfig::verify is off.
    verify::PortfolioCec* prover() { return prover_.get(); }

    /// Install `model` for jobs submitted from now on; in-flight and
    /// queued jobs keep the snapshot they were bound to.  A null snapshot
    /// is allowed (drops the service's reference) but submissions are
    /// rejected until a real model is installed again.
    void swap_model(ModelSnapshot model);
    ModelSnapshot model_snapshot() const;

    /// Enqueue one design job, bound to the current model snapshot.  The
    /// future reports the job's DesignFlowResult or rethrows its error.
    /// Throws std::runtime_error after stop() and std::invalid_argument
    /// when no model is installed.
    std::future<DesignFlowResult> submit(DesignJob job);
    std::vector<std::future<DesignFlowResult>> submit_batch(
        std::vector<DesignJob> jobs);

    /// Block until the service is idle (no queued or executing job).
    /// Concurrent producers may keep the service busy past the return —
    /// call stop() first for a definitive quiesce.
    void drain();

    /// Reject further submissions, then drain().  Idempotent.
    void stop();
    bool accepting() const;

    ServiceStats stats() const;

private:
    struct QueuedJob {
        DesignJob job;
        ModelSnapshot model;  ///< bound at submit() time
        std::promise<DesignFlowResult> promise;
        bg::Stopwatch queued;  ///< started at submit() -> latency
    };

    void serve_next();  ///< one pool task: pop one job and run it

    ServiceConfig cfg_;
    ThreadPool pool_;
    /// Created in the constructor when cfg_.flow.verify is on; shared by
    /// every serving task (PortfolioCec::check is thread-safe).
    std::unique_ptr<verify::PortfolioCec> prover_;
    const bg::Stopwatch uptime_;

    mutable std::mutex mu_;
    std::condition_variable idle_cv_;  ///< signalled when service goes idle
    std::deque<QueuedJob> queue_;
    std::size_t running_ = 0;
    bool accepting_ = true;
    ModelSnapshot model_;
    // Counters (guarded by mu_).
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t swaps_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t verified_ = 0;
    std::uint64_t refuted_ = 0;
    std::uint64_t unknown_ = 0;
    std::uint64_t unverified_ = 0;
    double busy_seconds_ = 0.0;
    std::vector<double> latencies_;  ///< ring buffer, latency_window wide
    std::size_t latency_next_ = 0;
    bool latency_full_ = false;
};

}  // namespace bg::core
