#pragma once

/// \file flow_service.hpp
/// Long-lived cross-design serving: an always-on front end over the
/// FlowEngine internals.  Where FlowEngine::run batches a fixed job list,
/// FlowService keeps accepting design jobs for as long as it lives — the
/// ROADMAP's "heavy traffic" north star.
///
///  * **Multi-tenant admission on the shared ThreadPool.**  Any number of
///    producer threads submit() jobs under a tenant name; each tenant has
///    its own FIFO queue, and serving tasks pick the next job by weighted
///    round-robin across tenants (a tenant of weight w gets w consecutive
///    pops before the cursor moves on), so one flooding tenant cannot
///    starve the others.  Per-tenant quotas bound queued + running jobs
///    (AdmissionError on breach).  Inside a job the same pool parallelizes
///    the per-sample loops via the nesting-safe, caller-participating
///    for_each.
///  * **Atomic model hot-swap, per tenant.**  The model is a
///    shared_ptr<const BoolGebraModel> snapshot.  swap_model() replaces
///    the service default for *later* submissions; a tenant with its own
///    snapshot (TenantConfig::model, swap_tenant_model) binds that
///    instead.  Every queued/in-flight job keeps the snapshot it was
///    bound to at submit() time and finishes on it.  This is sound
///    because eval-mode inference is genuinely const
///    (BoolGebraModel::predict_batch / forward_eval) — no per-job model
///    copy is ever made.
///  * **Timeouts and cooperative cancellation.**  SubmitOptions arms a
///    per-job CancelToken (deadline and/or external cancel); the token is
///    polled at run_flow stage boundaries and inside the orchestrate node
///    walks, so a cancelled job stops within one transformation check.
///    The job's future then rethrows bg::CancelledError, whose reason
///    distinguishes Cancelled from TimedOut.
///  * **Graceful vs immediate shutdown.**  drain() blocks until idle;
///    stop() additionally rejects further submissions and lets queued
///    work finish.  stop_now() rejects, flushes every queued job with
///    CancelledError, cancels the running ones cooperatively, and drains
///    — every future resolves with a definite outcome.  The destructor
///    stops gracefully.
///  * **Rolling stats.**  Jobs served / cancelled / timed out / rejected
///    globally and per tenant, submit-to-completion latency percentiles
///    over a sliding window, and samples/s throughput.
///
/// Results are bit-identical to a sequential run_flow / run_iterated_flow
/// with the snapshot the job was bound to, independent of worker count,
/// queue depth, tenant mix, and any concurrent hot-swaps.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow_engine.hpp"
#include "util/cancel.hpp"
#include "util/progress.hpp"

namespace bg::core {

/// An immutable model snapshot shared between the service and its
/// in-flight jobs.  Callers usually make_shared a trained model; a
/// non-owning snapshot (null deleter) works when the model provably
/// outlives every job bound to it, which is how FlowEngine::run wraps its
/// caller's model.
using ModelSnapshot = std::shared_ptr<const BoolGebraModel>;

struct ServiceConfig {
    std::size_t workers = 0;  ///< pool threads (0 = default_worker_count())
    std::size_t rounds = 1;   ///< flow rounds per job (>1 = iterated)
    FlowConfig flow;          ///< per-job flow parameters
    /// Sliding window of per-job latencies kept for the p50/p95 stats.
    std::size_t latency_window = 512;
};

/// One serving tenant.  The default tenant (empty name) always exists
/// with weight 1 and no quota; register_tenant() adds or reconfigures
/// others (and may reconfigure the default).
struct TenantConfig {
    std::string name;
    /// Weighted round-robin share: the admission cursor pops up to
    /// `weight` consecutive jobs from this tenant before moving on.
    std::size_t weight = 1;
    /// Max queued + running jobs for this tenant; 0 = unlimited.
    /// Breaches reject the submission with AdmissionError.
    std::size_t max_pending = 0;
    /// Tenant-specific model; null = use the service default snapshot.
    ModelSnapshot model;
};

/// Per-tenant serving counters (a slice of ServiceStats).
struct TenantStats {
    std::string name;
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;  ///< futures resolved, any outcome
    std::uint64_t jobs_ok = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t jobs_timed_out = 0;
    std::uint64_t jobs_failed = 0;
    std::uint64_t jobs_rejected = 0;  ///< quota breaches (never submitted)
    std::uint64_t jobs_pending = 0;   ///< queued + currently executing
};

/// Per-submission controls; default-constructed options reproduce the
/// pre-tenancy submit() exactly (default tenant, no timeout, no token).
struct SubmitOptions {
    std::string tenant;  ///< must name a registered tenant ("" = default)
    /// Wall-clock budget from submission; expiry aborts the job with
    /// CancelledError(TimedOut) wherever it is, queued or running.
    /// 0 = no timeout.
    double timeout_seconds = 0.0;
    /// External cancel handle: request_cancel() aborts the job
    /// cooperatively.  Null = the service makes a private token (needed
    /// for timeouts and stop_now()).
    std::shared_ptr<bg::CancelToken> cancel;
    /// Flow rounds for this job; 0 = ServiceConfig::rounds.
    std::size_t rounds = 0;
    /// Per-job flow parameters; unset = ServiceConfig::flow.
    std::optional<FlowConfig> flow;
    /// Materialize DesignFlowResult::final_graph (JobControl::want_graph).
    bool want_graph = false;
    /// Per-round progress, invoked on the serving thread
    /// (JobControl::on_progress semantics).
    std::function<void(std::size_t round, std::size_t ands)> on_progress;
    /// Invoked on the serving thread after accounting and *before* the
    /// future resolves, with exactly one of (result, error) set.  Must
    /// not block on this service's own futures (the caller may be a pool
    /// worker) and must not throw (exceptions are swallowed).  This is
    /// how the network front end pushes Result frames without parking a
    /// worker on a future.
    std::function<void(const DesignFlowResult* result,
                       std::exception_ptr error)>
        on_complete;
};

/// Typed admission failures: thrown by submit() before a job is accepted
/// (the job never gets a future).  Derives from std::runtime_error so
/// pre-tenancy callers that caught that keep working.
class AdmissionError : public std::runtime_error {
public:
    enum class Kind {
        Stopped,        ///< service no longer accepts submissions
        UnknownTenant,  ///< SubmitOptions::tenant was never registered
        QuotaExceeded,  ///< tenant's max_pending breached
    };

    AdmissionError(Kind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}

    Kind kind() const { return kind_; }

private:
    Kind kind_;
};

/// A point-in-time view of the serving counters.
struct ServiceStats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;  ///< includes failed/cancelled jobs
    std::uint64_t jobs_pending = 0;    ///< queued + currently executing
    std::uint64_t jobs_cancelled = 0;  ///< explicit cancel or stop_now()
    std::uint64_t jobs_timed_out = 0;  ///< SubmitOptions::timeout_seconds
    std::uint64_t jobs_rejected = 0;   ///< admission failures (not submitted)
    std::uint64_t samples_run = 0;     ///< decision vectors scored (measured)
    std::uint64_t model_swaps = 0;
    /// Verification tally (FlowConfig::verify gates the first three):
    /// verified = proven equivalent, refuted = counterexample found,
    /// unknown = every engine degraded, unverified = completed without a
    /// verdict (verification off, or the job failed/was cancelled).
    std::uint64_t jobs_verified = 0;
    std::uint64_t jobs_refuted = 0;
    std::uint64_t jobs_unknown = 0;
    std::uint64_t jobs_unverified = 0;
    /// Portfolio verdict-cache counters (zero when verification is off).
    std::uint64_t verify_cache_lookups = 0;
    std::uint64_t verify_cache_hits = 0;
    double uptime_seconds = 0.0;
    double busy_seconds = 0.0;  ///< summed per-job execution time
    /// Submit-to-completion latency percentiles over the sliding window.
    double p50_latency_seconds = 0.0;
    double p95_latency_seconds = 0.0;
    /// Completed-job throughput over the service lifetime.
    double jobs_per_second = 0.0;
    double samples_per_second = 0.0;
    /// Per-tenant slices, in registration order (default tenant first).
    std::vector<TenantStats> tenants;
};

class FlowService {
public:
    explicit FlowService(ServiceConfig cfg = {}, ModelSnapshot model = {});
    ~FlowService();  // stop()s: pending jobs finish, new ones are rejected

    FlowService(const FlowService&) = delete;
    FlowService& operator=(const FlowService&) = delete;

    const ServiceConfig& config() const { return cfg_; }
    std::size_t workers() const { return pool_.size(); }
    ThreadPool& pool() { return pool_; }
    /// The long-lived portfolio prover every served job shares (its
    /// verdict cache spans jobs); null when FlowConfig::verify is off.
    verify::PortfolioCec* prover() { return prover_.get(); }

    /// Add a tenant, or reconfigure an existing one (weight, quota,
    /// model) — queued jobs keep their bindings.  Thread-safe; weight
    /// must be >= 1.
    void register_tenant(TenantConfig tenant);

    /// Install `model` for default-tenant jobs submitted from now on;
    /// in-flight and queued jobs keep the snapshot they were bound to.
    /// A null snapshot is allowed (drops the service's reference) but
    /// submissions are rejected until a real model is installed again.
    void swap_model(ModelSnapshot model);
    /// Same hot-swap contract for one tenant's override; a null snapshot
    /// reverts the tenant to the service default.  Throws AdmissionError
    /// (UnknownTenant) for unregistered names.
    void swap_tenant_model(const std::string& tenant, ModelSnapshot model);
    ModelSnapshot model_snapshot() const;

    /// Enqueue one design job, bound to the submitting tenant's current
    /// model snapshot.  The future reports the job's DesignFlowResult or
    /// rethrows its error (bg::CancelledError for cancelled / timed-out /
    /// stop_now-flushed jobs).  Throws AdmissionError when stopped, for
    /// unknown tenants, and on quota breaches; std::invalid_argument when
    /// no model is installed.
    std::future<DesignFlowResult> submit(DesignJob job,
                                         SubmitOptions opts = {});
    std::vector<std::future<DesignFlowResult>> submit_batch(
        std::vector<DesignJob> jobs);

    /// Block until the service is idle (no queued or executing job).
    /// Concurrent producers may keep the service busy past the return —
    /// call stop() first for a definitive quiesce.
    void drain();

    /// Reject further submissions, then drain().  Queued and running
    /// jobs complete normally.  Idempotent.
    void stop();
    /// Reject further submissions, fail every *queued* job's future with
    /// CancelledError, request cancellation of every *running* job, and
    /// drain.  Every issued future is resolved when this returns.
    /// Idempotent; safe after stop().
    void stop_now();
    bool accepting() const;

    ServiceStats stats() const;

private:
    struct QueuedJob {
        DesignJob job;
        ModelSnapshot model;  ///< bound at submit() time
        std::promise<DesignFlowResult> promise;
        bg::Stopwatch queued;  ///< started at submit() -> latency
        std::size_t tenant_index = 0;
        std::shared_ptr<bg::CancelToken> token;  ///< never null
        std::size_t rounds = 1;                  ///< resolved at submit()
        std::optional<FlowConfig> flow;
        bool want_graph = false;
        std::function<void(std::size_t, std::size_t)> on_progress;
        std::function<void(const DesignFlowResult*, std::exception_ptr)>
            on_complete;
    };

    struct Tenant {
        TenantConfig cfg;
        std::deque<QueuedJob> queue;
        std::size_t running = 0;
        std::size_t credits = 0;  ///< weighted-RR budget at the cursor
        TenantStats counters;     ///< name + totals (pending derived)
    };

    void serve_next();  ///< one pool task: pop one job and run it
    Tenant* find_tenant_locked(const std::string& name);
    std::optional<QueuedJob> pop_next_locked();
    void advance_cursor_locked();
    /// Deliver one job's outcome: account under the lock, then run
    /// on_complete and resolve the promise outside it.
    void finish_job(QueuedJob& queued, DesignFlowResult* res,
                    std::exception_ptr error, double busy, bool ran);

    ServiceConfig cfg_;
    ThreadPool pool_;
    /// Created in the constructor when cfg_.flow.verify is on; shared by
    /// every serving task (PortfolioCec::check is thread-safe).
    std::unique_ptr<verify::PortfolioCec> prover_;
    const bg::Stopwatch uptime_;

    mutable std::mutex mu_;
    std::condition_variable idle_cv_;  ///< signalled when service goes idle
    /// Stable-address tenant slots in registration order; index 0 is the
    /// default tenant.  The weighted-RR cursor walks this vector.
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::size_t rr_cursor_ = 0;
    std::size_t queued_total_ = 0;
    std::size_t running_ = 0;
    /// Tokens of currently executing jobs, for stop_now() cancellation.
    std::vector<std::shared_ptr<bg::CancelToken>> running_tokens_;
    bool accepting_ = true;
    ModelSnapshot model_;
    // Counters (guarded by mu_).
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t timed_out_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t swaps_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t verified_ = 0;
    std::uint64_t refuted_ = 0;
    std::uint64_t unknown_ = 0;
    std::uint64_t unverified_ = 0;
    double busy_seconds_ = 0.0;
    std::vector<double> latencies_;  ///< ring buffer, latency_window wide
    std::size_t latency_next_ = 0;
    bool latency_full_ = false;
};

}  // namespace bg::core
