#pragma once

/// \file flow.hpp
/// The end-to-end BoolGebra flow (§III-D): (1) sample a large batch of
/// Boolean-manipulation decision vectors, (2) prune the batch with the
/// GNN predictor (cheap inference; dynamic features are estimated from
/// per-node transformability instead of running the graph updates),
/// (3) evaluate only the top-k predictions exactly and report BG-Mean /
/// BG-Best (Table I's columns).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/feature_cache.hpp"
#include "core/metrics.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "opt/objective.hpp"
#include "util/parallel.hpp"
#include "verify/portfolio.hpp"

namespace bg::core {

struct FlowConfig {
    std::size_t num_samples = 600;  ///< paper: 600 per design
    std::size_t top_k = 10;         ///< paper: evaluate the top 10
    bool guided = true;             ///< priority-guided sampling
    std::uint64_t seed = 1;
    opt::OptParams opt;
    FeatureConfig features;
    /// Cost model ranking the evaluated candidates and gating their
    /// orchestration (shared read-only across concurrent flows).  Null
    /// means size — the paper's metric and the pre-objective behavior,
    /// bit-identical to it.
    opt::ObjectivePtr objective;
    /// Optional override of the learned head used for pruning: rank the
    /// sampled candidates with this metric head regardless of the
    /// objective (A/B baselines — e.g. forcing the PR-4 size-as-proxy
    /// ranking on a multi-head model).  The objective still decides which
    /// evaluated candidate wins.  Falls back to the size head when the
    /// model lacks the requested head.
    std::optional<MetricHead> ranking_head;
    /// Verify the committed candidate: after the objective picks the
    /// winner, re-materialize its optimized graph and prove it equivalent
    /// to the input design with the portfolio CEC (FlowResult records the
    /// verdict).  Every transform is correct by construction, so this is
    /// the production gate against orchestration bugs, not a per-sample
    /// cost.
    bool verify = false;
    /// Engine budgets for the verification gate (ignored when the caller
    /// supplies FlowContext::prover, which carries its own options).
    verify::PortfolioOptions verify_opts;
    /// Intra-design parallelism: when >= 2, every committed or evaluated
    /// orchestration runs the partition/speculate/ordered-commit path
    /// (opt::orchestrate_parallel) — bit-identical to the sequential pass
    /// at any worker count.  Runs on FlowContext::pool when one is set
    /// (nesting-safe with the outer sample loops), else on a transient
    /// pool of this many workers.  0/1 = sequential.
    std::size_t intra_workers = 0;
    /// Iterated flows only: maintain static features / CSR incrementally
    /// across rounds (FeatureCache) instead of rebuilding per round.
    /// Feature rows are bit-identical to a full rebuild; compaction is
    /// deferred until half the slots are tombstones, so round-by-round
    /// var ids (and therefore sampling) differ from the compact-every-
    /// round default — results stay deterministic either way.
    bool incremental_features = false;
};

/// The objective a config resolves to (size when unset).
const opt::Objective& flow_objective(const FlowConfig& cfg);

/// How run_flow turns the objective's prediction weights into scores from
/// the model's actual heads.  `single_head` is set when one head's raw
/// column suffices (bit-identical to the single-head predictor path —
/// this is what keeps size flows on legacy checkpoints pinned to PR-4
/// behavior); otherwise `weights` (model head order) drive a blended
/// score.  `describe` is the name recorded in FlowResult::ranked_by.
struct RankingPlan {
    std::optional<std::size_t> single_head;
    std::vector<double> weights;
    std::string describe;
};

/// Resolve the ranking plan for a model/objective pair: map the
/// objective's prediction_weights() onto the heads the model carries,
/// dropping absent heads and falling back to the size head (suffix
/// "-proxy") when none of the requested heads exist.  `override_head`
/// (FlowConfig::ranking_head) short-circuits the objective mapping.
RankingPlan plan_ranking(const BoolGebraModel& model,
                         const opt::Objective& objective,
                         std::optional<MetricHead> override_head = {});

/// Extension beyond the paper's single-shot flow: run the flow, commit
/// the best decision vector, and repeat on the optimized graph.  Ratios
/// accumulate against the *original* size.
struct IteratedFlowResult {
    std::size_t original_size = 0;
    std::size_t final_size = 0;
    std::uint32_t original_depth = 0;
    std::uint32_t final_depth = 0;
    std::vector<int> per_round_reduction;
    double final_ratio = 1.0;
    double final_depth_ratio = 1.0;

    std::size_t rounds() const { return per_round_reduction.size(); }
};

struct FlowResult {
    std::size_t original_size = 0;
    std::uint32_t original_depth = 0;
    /// Objective used for ranking ("size" unless configured otherwise)
    /// and the original graph's measurement under it.
    std::string objective = "size";
    opt::CostVector original_cost;
    /// Decision vectors actually scored by the predictor in this run —
    /// measured, not the configured budget, so throughput accounting
    /// downstream (FlowEngine/FlowService samples/s) reports real work.
    std::size_t samples_evaluated = 0;
    /// Model scores for every sampled decision vector (lower = better).
    std::vector<double> predictions;
    /// How the pruning scores were produced: a head name ("size",
    /// "depth", "luts"), "blend(size:a,depth:b)" when a weighted
    /// objective combines heads, with "-proxy" appended when the model
    /// lacks the requested head(s) and the size head stood in (the PR-4
    /// behavior on legacy single-head checkpoints).
    std::string ranked_by = "size";
    /// Indices (into the sample batch) of the evaluated top-k.
    std::vector<std::size_t> selected;
    /// Exact reductions of the evaluated top-k, same order as `selected`.
    std::vector<int> reductions;
    /// Exact per-candidate measurements, same order as `selected`.
    std::vector<opt::CostVector> costs;

    /// Size reduction of the objective-best candidate (under the default
    /// size objective: the best size reduction, as before the redesign).
    int best_reduction = 0;
    double mean_reduction = 0.0;
    /// Measurement of the objective-best candidate.
    opt::CostVector best_cost;
    /// Optimized/original size ratios — the numbers Table I reports.
    double bg_best_ratio = 1.0;
    double bg_mean_ratio = 1.0;
    /// Per-metric companions: depth and objective-scalar ratios of the
    /// same evaluated top-k ("best" is always the objective-best).
    double bg_best_depth_ratio = 1.0;
    double bg_mean_depth_ratio = 1.0;
    double bg_best_value_ratio = 1.0;
    double bg_mean_value_ratio = 1.0;
    /// The objective-best decision vector (for committing).
    opt::DecisionVector best_decisions;
    /// Portfolio-CEC verdict on the best candidate vs the input design;
    /// set exactly when FlowConfig::verify was on.
    std::optional<verify::VerifyReport> verification;
};

/// Estimate the applied-op trace without running Algorithm 1: operation
/// D[v] is predicted to apply wherever the static features say it is
/// transformable.  This is what makes flow inference cheap.
std::vector<opt::OpKind> predicted_applied(const aig::Aig& g,
                                           const opt::DecisionVector& d,
                                           const StaticFeatures& st);

/// Generate decision vectors only (no evaluation): the flow's step 1.
std::vector<opt::DecisionVector> generate_decisions(
    const aig::Aig& design, std::size_t n, bool guided, std::uint64_t seed,
    const StaticFeatures& st);

/// Shared per-design state a caller may supply to avoid recomputation, and
/// an optional persistent worker pool for the inner sample loops.  All
/// members are optional; run_flow computes whatever is missing.  Cached
/// values must belong to the *same* graph and OptParams as the call (the
/// FlowEngine guarantees this by caching per design round).
struct FlowContext {
    const StaticFeatures* static_features = nullptr;
    const GraphCsr* csr = nullptr;
    ThreadPool* pool = nullptr;  ///< inner loops run here when set
    /// Shared portfolio prover for FlowConfig::verify (the FlowService
    /// passes its long-lived instance so the verdict cache spans jobs).
    /// Null + verify => run_flow builds a transient one from
    /// cfg.verify_opts on the same pool.
    verify::PortfolioCec* prover = nullptr;
    /// Incremental per-design feature state (dirty-region tracking).
    /// When set and valid, run_flow reads static features / CSR from it
    /// (static_features / csr, when also set, win); iterated drivers own
    /// the cache and update() it with each commit's touched set.
    FeatureCache* feature_cache = nullptr;
};

/// Run the full sample -> prune -> evaluate flow on one design.  The
/// model is shared read-only: inference goes through the const
/// predict_batch/forward_eval path, so one instance (or one FlowService
/// snapshot) can serve many concurrent flows without copies.
FlowResult run_flow(const aig::Aig& design, const BoolGebraModel& model,
                    const FlowConfig& cfg = {});
FlowResult run_flow(const aig::Aig& design, const BoolGebraModel& model,
                    const FlowConfig& cfg, const FlowContext& ctx);

/// Run up to `max_rounds` flows, committing each round's best candidate;
/// stops early when a round finds no reduction.  The optional pool is used
/// for every round's inner loops (cached features are per-round state the
/// iteration manages itself).
IteratedFlowResult run_iterated_flow(const aig::Aig& design,
                                     const BoolGebraModel& model,
                                     const FlowConfig& cfg = {},
                                     std::size_t max_rounds = 3,
                                     ThreadPool* pool = nullptr);

}  // namespace bg::core
