#pragma once

/// \file flow_engine.hpp
/// Batched multi-design flow execution.  The paper evaluates BoolGebra per
/// design (Table I); production use runs the sample -> prune -> evaluate
/// flow over a whole design suite.  The FlowEngine is a thin batch facade
/// over the long-lived FlowService (flow_service.hpp): run() binds the
/// caller's model as a non-owning snapshot, submits every job to the
/// service queue and waits for the futures, so the batch path and the
/// serving path exercise the same internals.  Inside each job the shared
/// pool parallelizes the per-sample loops (caller-participating fork-join,
/// so nesting cannot deadlock).  Per design round it computes the static
/// features and CSR adjacency once and shares them with every flow step;
/// candidate features are assembled in place into a stacked batch matrix
/// whose chunks reach BoolGebraModel::predict_batch as zero-copy row-panel
/// views, and the pool also shards the blocked GEMM row panels inside
/// inference (bit-stable, see nn/matrix.hpp).
///
/// The model is shared read-only across every concurrent job — inference
/// runs the const eval path (forward_eval), so no per-job model copy is
/// made.  Output is bit-identical to running the sequential run_flow /
/// run_iterated_flow per design with the same FlowConfig, independent of
/// the worker count (everything is written to per-index slots).

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace bg::core {

class FlowService;  // flow_service.hpp

struct EngineConfig {
    std::size_t workers = 0;  ///< pool threads (0 = default_worker_count())
    std::size_t rounds = 1;   ///< >1 = iterated flow, committing each best
    FlowConfig flow;          ///< per-design flow parameters (same seed each)
};

/// One unit of work: a named design.
struct DesignJob {
    std::string name;
    aig::Aig design;
};

/// Cooperative controls for one design-flow job, threaded by the serving
/// stack (FlowService tenancy, the network front end).  All members are
/// optional; the default object reproduces the uncontrolled run exactly.
struct JobControl {
    /// Cancel point polled at round boundaries and, via
    /// OptParams::cancel, inside every orchestrate node walk and run_flow
    /// stage.  A stopped token aborts the job with bg::CancelledError.
    const bg::CancelToken* cancel = nullptr;
    /// Invoked on the executing thread after each completed round with
    /// (1-based round, AND count of the graph after that round): the
    /// committed size for iterated flows, the best candidate's size for
    /// single-shot flows (which commit nothing).
    std::function<void(std::size_t round, std::size_t ands)> on_progress;
    /// Materialize the final optimized graph into
    /// DesignFlowResult::final_graph (the committed graph for rounds > 1,
    /// the re-materialized best round-1 candidate otherwise; the input
    /// design when no round was productive).
    bool want_graph = false;
};

struct DesignFlowResult {
    std::string name;
    std::size_t original_size = 0;
    /// Round-1 flow result: the BG-Mean / BG-Best source (Table I columns).
    FlowResult flow;
    /// Round trace.  For rounds == 1 no commit happens and final_* reflect
    /// the best evaluated candidate; for rounds > 1 this matches
    /// run_iterated_flow exactly.
    IteratedFlowResult iterated;
    /// Decision vectors actually scored across all executed rounds —
    /// accumulated from each round's FlowResult::samples_evaluated, not
    /// from the configured budget, so an early-breaking iterated flow
    /// reports only the work it really did.
    std::size_t samples_run = 0;
    /// Portfolio-CEC verdict of the final graph against the input design
    /// (the committed graph for rounds > 1, the best round-1 candidate
    /// otherwise); set exactly when FlowConfig::verify was on.
    std::optional<verify::VerifyReport> verification;
    /// The final optimized graph; set exactly when JobControl::want_graph
    /// was on (shared_ptr keeps the result cheap to copy through futures
    /// and callbacks).  For rounds > 1 this is the committed graph, for
    /// rounds == 1 the re-materialized best candidate, and the unchanged
    /// input design when no round was productive.
    std::shared_ptr<const aig::Aig> final_graph;
    double seconds = 0.0;
};

struct BatchFlowResult {
    std::vector<DesignFlowResult> designs;
    /// Objective the whole batch ranked under ("size" by default).
    std::string objective = "size";
    /// How candidates were scored (FlowResult::ranked_by of the batch —
    /// e.g. "depth" on a multi-head model under the depth objective,
    /// "size-proxy" on a legacy single-head checkpoint).
    std::string ranked_by = "size";
    /// Arithmetic means of the per-design ratios (Table I "Avg." row).
    double avg_bg_best_ratio = 1.0;
    double avg_bg_mean_ratio = 1.0;
    double avg_final_ratio = 1.0;
    /// Per-metric companions under the configured objective.
    double avg_bg_best_depth_ratio = 1.0;
    double avg_bg_best_value_ratio = 1.0;
    double avg_final_depth_ratio = 1.0;
    std::size_t total_samples = 0;
    /// Verification tally (all zero when FlowConfig::verify is off):
    /// verified = proven equivalent, refuted = counterexample found,
    /// unknown = every engine degraded within its budget.
    std::size_t jobs_verified = 0;
    std::size_t jobs_refuted = 0;
    std::size_t jobs_unknown = 0;
    double total_seconds = 0.0;
    double designs_per_second = 0.0;
    double samples_per_second = 0.0;
};

/// The per-design unit of work shared by FlowEngine and FlowService: run
/// `rounds` flow rounds (committing each productive best when rounds > 1)
/// with per-round StaticFeatures/CSR caching, on `pool` when given.  The
/// model is read-only; results are bit-identical to the sequential
/// run_flow / run_iterated_flow with the same config.
/// `prover` is the shared portfolio instance used when flow.verify is on
/// (null + verify => a transient prover is built from flow.verify_opts).
/// For rounds > 1 the committed result is proven end-to-end once — final
/// graph vs input design — instead of per round; a single round verifies
/// inside run_flow.
/// `control` (optional) carries the cooperative cancel token, the
/// per-round progress callback, and the want_graph switch; see JobControl.
DesignFlowResult run_design_flow(const DesignJob& job,
                                 const BoolGebraModel& model,
                                 const FlowConfig& flow, std::size_t rounds,
                                 ThreadPool* pool,
                                 verify::PortfolioCec* prover = nullptr,
                                 const JobControl* control = nullptr);

class FlowEngine {
public:
    explicit FlowEngine(EngineConfig cfg = {});
    ~FlowEngine();

    const EngineConfig& config() const { return cfg_; }
    std::size_t workers() const;

    /// Run the flow over every job.  `model` is shared read-only across
    /// the whole batch (bound as a non-owning service snapshot for the
    /// duration of the call); results equal the sequential single-model
    /// run bit for bit.
    BatchFlowResult run(std::span<const DesignJob> jobs,
                        const BoolGebraModel& model);

    /// Convenience wrapper for a single design, run on the caller thread.
    DesignFlowResult run_one(const DesignJob& job,
                             const BoolGebraModel& model);

private:
    EngineConfig cfg_;
    std::unique_ptr<FlowService> service_;
};

/// Registry names -> jobs, optionally scaled (scale < 1.0 shrinks for
/// quick runs, > 1.0 grows).  Every scale goes through
/// make_benchmark_scaled — an identity at scale 1.0 — so there is no
/// float-equality special case.  Unknown names throw std::out_of_range.
std::vector<DesignJob> jobs_from_registry(std::span<const std::string> names,
                                          double scale = 1.0);

/// Shell-style match: '*' = any run (including empty), '?' = any single
/// character, everything else literal.  The registry pattern language.
bool glob_match(const std::string& pattern, const std::string& text);

/// Expand a shell-style pattern ('*' and '?') against the registry names;
/// a literal name matches itself.  Returns names in registry order.
std::vector<std::string> expand_registry_pattern(const std::string& pattern);

/// Full design-spec resolution (circuits::resolve_design_specs semantics:
/// registry names, name@scale, registry globs, file:<path|glob>, bare
/// netlist paths; `all` prepends the whole registry) with every design
/// loaded into a job.  Throws circuits::DesignSourceError on unknown
/// names, empty globs, or unreadable/malformed files.
std::vector<DesignJob> jobs_from_specs(const std::vector<std::string>& specs,
                                       bool all, double scale = 1.0);

}  // namespace bg::core
