#pragma once

/// \file flow_engine.hpp
/// Batched multi-design flow execution.  The paper evaluates BoolGebra per
/// design (Table I); production use runs the sample -> prune -> evaluate
/// flow over a whole design suite.  The FlowEngine owns a persistent
/// ThreadPool and schedules one job per design on it; inside each job the
/// same pool parallelizes the per-sample loops (caller-participating
/// fork-join, so nesting cannot deadlock).  Per design round it computes
/// the static features and CSR adjacency once and shares them with every
/// flow step; candidate features are assembled in place into a stacked
/// batch matrix whose chunks reach BoolGebraModel::predict_batch as
/// zero-copy row-panel views, and the pool also shards the blocked GEMM
/// row panels inside inference (bit-stable, see nn/matrix.hpp).
///
/// Output is bit-identical to running the sequential run_flow /
/// run_iterated_flow per design with the same FlowConfig, independent of
/// the worker count (everything is written to per-index slots).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "util/parallel.hpp"

namespace bg::core {

struct EngineConfig {
    std::size_t workers = 0;  ///< pool threads (0 = default_worker_count())
    std::size_t rounds = 1;   ///< >1 = iterated flow, committing each best
    FlowConfig flow;          ///< per-design flow parameters (same seed each)
};

/// One unit of work: a named design.
struct DesignJob {
    std::string name;
    aig::Aig design;
};

struct DesignFlowResult {
    std::string name;
    std::size_t original_size = 0;
    /// Round-1 flow result: the BG-Mean / BG-Best source (Table I columns).
    FlowResult flow;
    /// Round trace.  For rounds == 1 no commit happens and final_* reflect
    /// the best evaluated candidate; for rounds > 1 this matches
    /// run_iterated_flow exactly.
    IteratedFlowResult iterated;
    std::size_t samples_run = 0;  ///< decision vectors sampled (all rounds)
    double seconds = 0.0;
};

struct BatchFlowResult {
    std::vector<DesignFlowResult> designs;
    /// Arithmetic means of the per-design ratios (Table I "Avg." row).
    double avg_bg_best_ratio = 1.0;
    double avg_bg_mean_ratio = 1.0;
    double avg_final_ratio = 1.0;
    std::size_t total_samples = 0;
    double total_seconds = 0.0;
    double designs_per_second = 0.0;
    double samples_per_second = 0.0;
};

class FlowEngine {
public:
    explicit FlowEngine(EngineConfig cfg = {});

    const EngineConfig& config() const { return cfg_; }
    std::size_t workers() const { return pool_.size(); }

    /// Run the flow over every job.  `model` is shared read-only: each
    /// design job works on a private copy because forward() mutates
    /// layer caches (weights are never touched in inference, so results
    /// equal the sequential single-model run).
    BatchFlowResult run(std::span<const DesignJob> jobs,
                        const BoolGebraModel& model);

    /// Convenience wrapper for a single design.
    DesignFlowResult run_one(const DesignJob& job,
                             const BoolGebraModel& model);

private:
    EngineConfig cfg_;
    ThreadPool pool_;
};

/// Registry names -> jobs, optionally scaled (scale < 1.0 shrinks for
/// quick runs, > 1.0 grows).  Unknown names throw std::out_of_range.
std::vector<DesignJob> jobs_from_registry(std::span<const std::string> names,
                                          double scale = 1.0);

/// Expand a shell-style pattern ('*' and '?') against the registry names;
/// a literal name matches itself.  Returns names in registry order.
std::vector<std::string> expand_registry_pattern(const std::string& pattern);

}  // namespace bg::core
