#pragma once

/// \file metrics.hpp
/// The learned prediction metrics.  Each MetricHead names one output head
/// of the multi-head BoolGebraModel and one per-sample label column in the
/// Dataset: the AND-count (size) label the paper trains on, the level
/// (depth) label, and the mapped K-LUT-count label.  Objectives map onto
/// these heads via opt::Objective::prediction_weights(), so a depth flow
/// prunes by predicted depth gain instead of size-as-proxy.

#include <cstddef>
#include <cstdint>
#include <string>

namespace bg::core {

enum class MetricHead : std::uint8_t {
    Size = 0,   ///< AND-count reduction — the paper's label
    Depth = 1,  ///< level reduction
    Luts = 2,   ///< mapped K-LUT count of the optimized graph
};

/// Number of distinct metric heads (label columns per dataset sample).
inline constexpr std::size_t kNumMetricHeads = 3;

inline const char* to_string(MetricHead head) {
    switch (head) {
        case MetricHead::Size:
            return "size";
        case MetricHead::Depth:
            return "depth";
        case MetricHead::Luts:
            return "luts";
    }
    return "?";
}

/// Parse a head name ("size" | "depth" | "luts"); throws
/// std::invalid_argument on anything else.
MetricHead head_from_string(const std::string& name);

}  // namespace bg::core
