#include "core/dataset.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace bg::core {

float normalize_label(int reduction, int best_reduction) {
    if (best_reduction <= 0) {
        return 0.0F;  // degenerate dataset: nothing was ever reduced
    }
    const float label = static_cast<float>(best_reduction - reduction) /
                        static_cast<float>(best_reduction);
    return std::clamp(label, 0.0F, 1.0F);
}

float range_label(double value, double best, double worst) {
    if (worst <= best) {
        return 0.0F;  // degenerate range: every sample measured the same
    }
    return std::clamp(static_cast<float>((value - best) / (worst - best)),
                      0.0F, 1.0F);
}

Dataset build_dataset(const aig::Aig& design,
                      std::span<const SampleRecord> records,
                      const opt::OptParams& params, const FeatureConfig& cfg) {
    Dataset ds;
    ds.num_nodes_ = design.num_slots();
    ds.csr_ = build_csr(design);

    const StaticFeatures st = compute_static_features(design, params);

    // Per-metric normalization statistics.  Size keeps the paper's
    // best-reduction scheme; depth and LUTs are range-normalized (see the
    // file comment) so the columns rank usefully even when no sample
    // improves on the original graph.
    int best = 0;
    std::uint32_t depth_best = UINT32_MAX;
    std::uint32_t depth_worst = 0;
    long long lut_best = 0;
    long long lut_worst = 0;
    bool have_luts = false;
    for (const auto& rec : records) {
        best = std::max(best, rec.reduction);
        depth_best = std::min(depth_best, rec.final_depth);
        depth_worst = std::max(depth_worst, rec.final_depth);
        if (rec.lut_count >= 0) {
            lut_best = have_luts ? std::min(lut_best, rec.lut_count)
                                 : rec.lut_count;
            lut_worst = have_luts ? std::max(lut_worst, rec.lut_count)
                                  : rec.lut_count;
            have_luts = true;
        }
    }
    ds.best_reduction_ = best;

    constexpr auto kSize = static_cast<std::size_t>(MetricHead::Size);
    constexpr auto kDepth = static_cast<std::size_t>(MetricHead::Depth);
    constexpr auto kLuts = static_cast<std::size_t>(MetricHead::Luts);
    ds.samples_.reserve(records.size());
    for (const auto& rec : records) {
        DatasetSample s;
        const DynamicFeatures dy =
            compute_dynamic_features(design, rec.applied);
        s.features = assemble_features(st, dy, cfg);
        s.label = normalize_label(rec.reduction, best);
        s.reduction = rec.reduction;
        s.labels[kSize] = s.label;
        s.mask[kSize] = 1.0F;
        s.labels[kDepth] = range_label(rec.final_depth, depth_best,
                                       depth_worst);
        s.mask[kDepth] = 1.0F;
        if (rec.lut_count >= 0) {
            s.labels[kLuts] = range_label(static_cast<double>(rec.lut_count),
                                          static_cast<double>(lut_best),
                                          static_cast<double>(lut_worst));
            s.mask[kLuts] = 1.0F;
        }
        ds.samples_.push_back(std::move(s));
    }
    ds.labelled_[kSize] = !ds.samples_.empty();
    ds.labelled_[kDepth] = !ds.samples_.empty();
    ds.labelled_[kLuts] = have_luts;
    return ds;
}

Dataset::Split Dataset::split(double train_fraction,
                              std::uint64_t seed) const {
    BG_EXPECTS(train_fraction > 0.0 && train_fraction <= 1.0,
               "train fraction must lie in (0, 1]");
    std::vector<std::size_t> idx(samples_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        idx[i] = i;
    }
    bg::Rng rng(seed);
    rng.shuffle(idx);
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()));
    Split s;
    s.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(cut));
    s.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(cut), idx.end());
    return s;
}

}  // namespace bg::core
