#include "core/dataset.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace bg::core {

float normalize_label(int reduction, int best_reduction) {
    if (best_reduction <= 0) {
        return 0.0F;  // degenerate dataset: nothing was ever reduced
    }
    const float label = static_cast<float>(best_reduction - reduction) /
                        static_cast<float>(best_reduction);
    return std::clamp(label, 0.0F, 1.0F);
}

Dataset build_dataset(const aig::Aig& design,
                      std::span<const SampleRecord> records,
                      const opt::OptParams& params, const FeatureConfig& cfg) {
    Dataset ds;
    ds.num_nodes_ = design.num_slots();
    ds.csr_ = build_csr(design);

    const StaticFeatures st = compute_static_features(design, params);

    int best = 0;
    for (const auto& rec : records) {
        best = std::max(best, rec.reduction);
    }
    ds.best_reduction_ = best;

    ds.samples_.reserve(records.size());
    for (const auto& rec : records) {
        DatasetSample s;
        const DynamicFeatures dy =
            compute_dynamic_features(design, rec.applied);
        s.features = assemble_features(st, dy, cfg);
        s.label = normalize_label(rec.reduction, best);
        s.reduction = rec.reduction;
        ds.samples_.push_back(std::move(s));
    }
    return ds;
}

Dataset::Split Dataset::split(double train_fraction,
                              std::uint64_t seed) const {
    BG_EXPECTS(train_fraction > 0.0 && train_fraction <= 1.0,
               "train fraction must lie in (0, 1]");
    std::vector<std::size_t> idx(samples_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        idx[i] = i;
    }
    bg::Rng rng(seed);
    rng.shuffle(idx);
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()));
    Split s;
    s.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(cut));
    s.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(cut), idx.end());
    return s;
}

}  // namespace bg::core
