#pragma once

/// \file trainer.hpp
/// Training loop for the BoolGebra predictor: mini-batch Adam with
/// masked multi-head MSE loss and the paper's step-decay schedule;
/// records the testing-loss curve (Fig 4's series) per epoch.  Each of
/// the model's heads trains on its own label column (size / depth /
/// mapped-LUT) with a per-sample mask, so datasets missing a
/// measurement — e.g. records evaluated without LUT mapping — still
/// train every head they have labels for, and a single-size-head model
/// trains exactly as before the multi-head extension.

#include <cstdint>
#include <vector>

#include "core/dataset.hpp"
#include "core/model.hpp"

namespace bg::core {

struct TrainConfig {
    std::size_t epochs = 1500;
    std::size_t batch_size = 100;
    double lr = 8e-7;              ///< paper: Adam with lr 8e-7
    double decay_factor = 0.5;     ///< paper: x0.5 every 100 epochs
    unsigned decay_every = 100;
    double train_fraction = 0.8;
    std::uint64_t seed = 7;
    /// Record test loss every `eval_every` epochs (1 = every epoch).
    std::size_t eval_every = 1;

    /// The paper's hyper-parameters (expensive on CPU).
    static TrainConfig paper() { return {}; }
    /// CPU-quick settings: fewer epochs, workable learning rate (requires
    /// ModelConfig::standardize_inputs, the default).
    static TrainConfig quick() {
        TrainConfig c;
        c.epochs = 60;
        c.batch_size = 16;
        c.lr = 3e-3;
        c.decay_every = 25;
        c.eval_every = 2;
        return c;
    }
};

struct EpochStats {
    std::size_t epoch = 0;
    double train_loss = 0.0;
    double test_loss = 0.0;
    double lr = 0.0;
};

struct TrainResult {
    std::vector<EpochStats> history;
    double final_train_loss = 0.0;
    double final_test_loss = 0.0;
    Dataset::Split split;  ///< indices used for train / test
};

/// Train `model` on `ds`; deterministic given the seeds in the configs.
TrainResult train_model(BoolGebraModel& model, const Dataset& ds,
                        const TrainConfig& cfg = TrainConfig::quick());

/// Multi-design training (an extension beyond the paper's single-design
/// setup, in the direction its conclusion sketches): every epoch walks all
/// datasets, drawing same-design mini-batches (one graph per batch is a
/// GraphSAGE requirement).  The recorded test loss is the average across
/// the designs' test splits.
struct MultiTrainResult {
    TrainResult combined;                ///< averaged history
    std::vector<double> per_design_test;  ///< final test loss per dataset
};
MultiTrainResult train_model_multi(BoolGebraModel& model,
                                   std::span<const Dataset* const> datasets,
                                   const TrainConfig& cfg =
                                       TrainConfig::quick());

/// Evaluate masked MSE of `model` on the given sample indices (averaged
/// over every labelled head entry).
double evaluate_loss(BoolGebraModel& model, const Dataset& ds,
                     std::span<const std::size_t> indices,
                     std::size_t batch_size = 64);

/// Per-head masked MSE on the given sample indices, in the model's head
/// order (0 for heads the dataset never labels).
std::vector<double> evaluate_head_losses(
    BoolGebraModel& model, const Dataset& ds,
    std::span<const std::size_t> indices, std::size_t batch_size = 64);

}  // namespace bg::core
