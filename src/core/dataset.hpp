#pragma once

/// \file dataset.hpp
/// Training-data assembly (§III-C.1 "Data Normalization"): one design
/// yields one graph (CSR + static features) and many samples (dynamic
/// features + label).  Labels are normalized against the best reduction
/// in the dataset:  label = (best_red − red) / best_red, so 0 is the best
/// sample and 1 the worst; the model learns to *rank* candidates.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "core/features.hpp"
#include "core/sampling.hpp"

namespace bg::core {

struct DatasetSample {
    std::vector<float> features;  ///< N x feature_dim, row-major
    float label = 0.0F;           ///< normalized, 0 = best
    int reduction = 0;            ///< raw node reduction
};

class Dataset {
public:
    Dataset() = default;

    std::size_t num_nodes() const { return num_nodes_; }
    const GraphCsr& csr() const { return csr_; }
    std::span<const DatasetSample> samples() const { return samples_; }
    std::size_t size() const { return samples_.size(); }
    int best_reduction() const { return best_reduction_; }

    /// Split into train/test by a deterministic shuffle.
    struct Split {
        std::vector<std::size_t> train;
        std::vector<std::size_t> test;
    };
    Split split(double train_fraction, std::uint64_t seed) const;

    friend Dataset build_dataset(const aig::Aig& design,
                                 std::span<const SampleRecord> records,
                                 const opt::OptParams& params,
                                 const FeatureConfig& cfg);

private:
    std::size_t num_nodes_ = 0;
    GraphCsr csr_;
    std::vector<DatasetSample> samples_;
    int best_reduction_ = 0;
};

/// Build a dataset for one design from evaluated sample records.
Dataset build_dataset(const aig::Aig& design,
                      std::span<const SampleRecord> records,
                      const opt::OptParams& params = {},
                      const FeatureConfig& cfg = {});

/// Normalized label for a raw reduction given the dataset's best.
float normalize_label(int reduction, int best_reduction);

}  // namespace bg::core
