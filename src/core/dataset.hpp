#pragma once

/// \file dataset.hpp
/// Training-data assembly (§III-C.1 "Data Normalization"): one design
/// yields one graph (CSR + static features) and many samples (dynamic
/// features + labels).  The size label is normalized against the best
/// reduction in the dataset:  label = (best_red − red) / best_red, so 0
/// is the best sample and 1 the worst; the model learns to *rank*
/// candidates.  The depth and mapped-LUT labels are range-normalized over
/// the dataset ((v − best) / (worst − best), 0 = best) — a pure ranking
/// signal that stays informative even when no sample beats the original
/// graph on that metric — and each label column carries a mask so samples
/// missing a measurement (e.g. records evaluated without LUT mapping)
/// still train the heads they do have.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "core/features.hpp"
#include "core/metrics.hpp"
#include "core/sampling.hpp"

namespace bg::core {

struct DatasetSample {
    std::vector<float> features;  ///< N x feature_dim, row-major
    float label = 0.0F;           ///< the size label (labels[Size])
    int reduction = 0;            ///< raw node reduction
    /// Per-metric labels, indexed by MetricHead; 0 = best, normalized
    /// per the scheme above.  `mask[h]` is 1 when labels[h] was measured.
    std::array<float, kNumMetricHeads> labels{};
    std::array<float, kNumMetricHeads> mask{};
};

class Dataset {
public:
    Dataset() = default;

    std::size_t num_nodes() const { return num_nodes_; }
    const GraphCsr& csr() const { return csr_; }
    std::span<const DatasetSample> samples() const { return samples_; }
    std::size_t size() const { return samples_.size(); }
    int best_reduction() const { return best_reduction_; }
    /// True when at least one sample carries a measured label for `head`
    /// (size and depth always do; LUT labels are opt-in at sampling time).
    bool has_labels(MetricHead head) const {
        return labelled_[static_cast<std::size_t>(head)];
    }

    /// Split into train/test by a deterministic shuffle.
    struct Split {
        std::vector<std::size_t> train;
        std::vector<std::size_t> test;
    };
    Split split(double train_fraction, std::uint64_t seed) const;

    friend Dataset build_dataset(const aig::Aig& design,
                                 std::span<const SampleRecord> records,
                                 const opt::OptParams& params,
                                 const FeatureConfig& cfg);

private:
    std::size_t num_nodes_ = 0;
    GraphCsr csr_;
    std::vector<DatasetSample> samples_;
    int best_reduction_ = 0;
    std::array<bool, kNumMetricHeads> labelled_{};
};

/// Build a dataset for one design from evaluated sample records.
Dataset build_dataset(const aig::Aig& design,
                      std::span<const SampleRecord> records,
                      const opt::OptParams& params = {},
                      const FeatureConfig& cfg = {});

/// Normalized label for a raw reduction given the dataset's best.
float normalize_label(int reduction, int best_reduction);

/// Range-normalized label: (value − best) / (worst − best) clamped to
/// [0, 1]; 0 when the range is degenerate.  Lower value = better, so 0 is
/// the best sample.  Used for the depth and mapped-LUT label columns.
float range_label(double value, double best, double worst);

}  // namespace bg::core
