#include "core/flow.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::core {

using aig::Aig;
using aig::Var;
using opt::DecisionVector;
using opt::OpKind;

std::vector<OpKind> predicted_applied(const Aig& g, const DecisionVector& d,
                                      const StaticFeatures& st) {
    BG_EXPECTS(d.size() >= g.num_slots() && st.size() >= g.num_slots(),
               "decisions and features must cover every var");
    std::vector<OpKind> applied(g.num_slots(), OpKind::None);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (!g.is_and(v) || g.is_dead(v) || d[v] == OpKind::None) {
            continue;
        }
        // Feature layout: applicability flags at columns 2 (rw), 4 (rs),
        // 6 (rf).
        const int col = 2 + 2 * opt::op_index(d[v]);
        if (st[v][static_cast<std::size_t>(col)] > 0.5F) {
            applied[v] = d[v];
        }
    }
    return applied;
}

std::vector<DecisionVector> generate_decisions(const Aig& design,
                                               std::size_t n, bool guided,
                                               std::uint64_t seed,
                                               const StaticFeatures& st) {
    bg::Rng rng(seed);
    std::vector<DecisionVector> out;
    out.reserve(n);
    if (!guided) {
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(random_decisions(design, rng));
        }
        return out;
    }
    const DecisionVector base = priority_decisions(design, st, rng);
    if (n > 0) {
        out.push_back(base);
    }
    static constexpr double fractions[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9};
    for (std::size_t i = 1; i < n; ++i) {
        const double frac = fractions[(i - 1) % std::size(fractions)];
        out.push_back(mutate_decisions(design, base, frac, rng));
    }
    return out;
}

const opt::Objective& flow_objective(const FlowConfig& cfg) {
    return cfg.objective != nullptr ? *cfg.objective : opt::size_objective();
}

namespace {

double weight_for(const opt::PredictionWeights& w, MetricHead head) {
    switch (head) {
        case MetricHead::Size:
            return w.size;
        case MetricHead::Depth:
            return w.depth;
        case MetricHead::Luts:
            return w.luts;
    }
    return 0.0;
}

std::string format_weight(double w) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", w);
    return buf;
}

}  // namespace

RankingPlan plan_ranking(const BoolGebraModel& model,
                         const opt::Objective& objective,
                         std::optional<MetricHead> override_head) {
    RankingPlan plan;
    plan.weights.assign(model.num_heads(), 0.0);
    // The size head is the universal fallback (every model carries it).
    const std::size_t size_head =
        model.head_index(MetricHead::Size).value();

    if (override_head) {
        if (const auto idx = model.head_index(*override_head)) {
            plan.single_head = *idx;
            plan.describe = to_string(*override_head);
        } else {
            plan.single_head = size_head;
            plan.describe = std::string(to_string(MetricHead::Size)) +
                            "-proxy";
        }
        plan.weights[*plan.single_head] = 1.0;
        return plan;
    }

    const opt::PredictionWeights want = objective.prediction_weights();
    std::vector<std::pair<std::size_t, double>> terms;
    bool dropped = false;
    for (const MetricHead head :
         {MetricHead::Size, MetricHead::Depth, MetricHead::Luts}) {
        const double w = weight_for(want, head);
        if (w == 0.0) {
            continue;
        }
        if (const auto idx = model.head_index(head)) {
            terms.emplace_back(*idx, w);
        } else {
            dropped = true;  // the model was not trained with this head
        }
    }
    if (terms.empty()) {
        // None of the requested heads exist: size-as-proxy, the PR-4
        // behavior on legacy single-head checkpoints.
        plan.single_head = size_head;
        plan.weights[size_head] = 1.0;
        plan.describe = std::string(to_string(MetricHead::Size)) + "-proxy";
        return plan;
    }
    if (terms.size() == 1) {
        // One head suffices: use its raw column (bit-identical to the
        // single-head predictor path — no weight multiplication).
        plan.single_head = terms.front().first;
        plan.weights[terms.front().first] = 1.0;
        plan.describe = to_string(model.heads()[terms.front().first]);
        if (dropped) {
            plan.describe += "-proxy";
        }
        return plan;
    }
    std::string name = "blend(";
    for (std::size_t t = 0; t < terms.size(); ++t) {
        plan.weights[terms[t].first] = terms[t].second;
        if (t != 0) {
            name += ',';
        }
        name += to_string(model.heads()[terms[t].first]);
        name += ':';
        name += format_weight(terms[t].second);
    }
    name += ')';
    if (dropped) {
        name += "-proxy";
    }
    plan.describe = std::move(name);
    return plan;
}

FlowResult run_flow(const Aig& design, const BoolGebraModel& model,
                    const FlowConfig& cfg) {
    return run_flow(design, model, cfg, FlowContext{});
}

FlowResult run_flow(const Aig& design, const BoolGebraModel& model,
                    const FlowConfig& cfg, const FlowContext& ctx) {
    BG_EXPECTS(cfg.num_samples > 0 && cfg.top_k > 0,
               "flow needs samples and a positive top-k");
    cfg.opt.validate();
    // Stage-boundary cancel points (the exact-evaluation and commit inner
    // loops poll the same token through OptParams inside orchestrate).
    poll_cancel(cfg.opt.cancel, "run_flow entry");
    const opt::Objective& obj = flow_objective(cfg);
    FlowResult res;
    res.original_size = design.num_ands();
    res.objective = obj.name();
    res.original_cost = obj.measure(design);  // runs lut_map for `luts`
    res.original_depth = res.original_cost.depth;

    const auto pfor = [&ctx](std::size_t n, auto&& f) {
        if (ctx.pool != nullptr) {
            ctx.pool->for_each(n, f);
        } else {
            bg::parallel_for(n, f);
        }
    };

    // Intra-design parallel orchestration for the exact-evaluation steps:
    // shares ctx.pool when present (for_each nests safely inside the
    // outer candidate loop), else spins up a transient pool.  Results are
    // bit-identical to the sequential pass either way.
    std::optional<ThreadPool> intra_pool;
    opt::IntraParallel intra;
    const opt::IntraParallel* intra_ptr = nullptr;
    if (cfg.intra_workers >= 2) {
        if (ctx.pool != nullptr) {
            intra.pool = ctx.pool;
        } else {
            intra_pool.emplace(cfg.intra_workers);
            intra.pool = &*intra_pool;
        }
        intra_ptr = &intra;
    }

    // Step 1: sample decision vectors (static features cached per design
    // round by callers that run many flows, e.g. the FlowEngine, or
    // maintained incrementally by a FeatureCache-owning iterated driver).
    StaticFeatures st_local;
    const StaticFeatures* st_src = ctx.static_features;
    if (st_src == nullptr && ctx.feature_cache != nullptr &&
        ctx.feature_cache->valid()) {
        st_src = &ctx.feature_cache->features();
    }
    if (st_src == nullptr) {
        st_local = compute_static_features(design, cfg.opt);
        st_src = &st_local;
    }
    const StaticFeatures& st = *st_src;
    poll_cancel(cfg.opt.cancel, "run_flow sampling");
    const auto decisions = generate_decisions(design, cfg.num_samples,
                                              cfg.guided, cfg.seed, st);

    // Step 2: prune with the predictor (cheap estimated dynamic features).
    // Candidate features are assembled directly into the stacked batch
    // matrix so inference sees one contiguous block.
    GraphCsr csr_local;
    const GraphCsr* csr_src = ctx.csr;
    if (csr_src == nullptr && ctx.feature_cache != nullptr &&
        ctx.feature_cache->valid()) {
        csr_src = &ctx.feature_cache->csr();
    }
    if (csr_src == nullptr) {
        csr_local = build_csr(design);
        csr_src = &csr_local;
    }
    const GraphCsr& csr = *csr_src;
    const std::size_t num_nodes = design.num_slots();
    nn::Matrix stacked(decisions.size() * num_nodes,
                       static_cast<std::size_t>(feature_dim));
    pfor(decisions.size(), [&](std::size_t i) {
        const auto applied = predicted_applied(design, decisions[i], st);
        const auto dy = compute_dynamic_features(design, applied);
        assemble_features_into(
            st, dy, cfg.features,
            {stacked.row(i * num_nodes),
             num_nodes * static_cast<std::size_t>(feature_dim)});
    });
    // Head selection: rank under the head(s) the objective asks for,
    // falling back to the size head when the model lacks them (legacy
    // single-head checkpoints keep the PR-4 size-as-proxy ranking bit for
    // bit — plan.single_head reads the raw column, no reweighting).
    const RankingPlan plan =
        plan_ranking(model, obj, cfg.ranking_head);
    poll_cancel(cfg.opt.cancel, "run_flow prediction");
    res.ranked_by = plan.describe;
    res.predictions =
        plan.single_head
            ? model.predict_batch_head(csr, num_nodes, stacked,
                                       *plan.single_head,
                                       BoolGebraModel::kPredictBatch,
                                       ctx.pool)
            : model.predict_batch_blend(csr, num_nodes, stacked,
                                        plan.weights,
                                        BoolGebraModel::kPredictBatch,
                                        ctx.pool);
    res.samples_evaluated = res.predictions.size();

    // Step 3: evaluate the top-k exactly (smaller score = better).
    poll_cancel(cfg.opt.cancel, "run_flow evaluation");
    std::vector<std::size_t> order(decisions.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return res.predictions[a] < res.predictions[b];
                     });
    const std::size_t k = std::min(cfg.top_k, order.size());
    res.selected.assign(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(k));

    std::vector<SampleRecord> evaluated(k);
    std::vector<opt::CostVector> costs(k);
    pfor(k, [&](std::size_t i) {
        Aig optimized;
        const bool keep_graph = obj.needs_graph();
        evaluated[i] =
            evaluate_decisions(design, decisions[res.selected[i]], cfg.opt,
                               obj, keep_graph ? &optimized : nullptr,
                               intra_ptr);
        const auto& rec = evaluated[i];
        costs[i] = keep_graph
                       ? obj.measure(optimized)
                       : opt::CostVector{
                             obj.scalar(rec.final_size, rec.final_depth),
                             rec.final_size, rec.final_depth};
    });
    double sum_ratio = 0.0;
    double sum_reduction = 0.0;
    double sum_depth_ratio = 0.0;
    double sum_value_ratio = 0.0;
    std::size_t best_idx = k;  // none yet; the first candidate claims it
    for (std::size_t i = 0; i < evaluated.size(); ++i) {
        const auto& rec = evaluated[i];
        res.reductions.push_back(rec.reduction);
        res.costs.push_back(costs[i]);
        // First strictly-better wins, so ties keep prediction order —
        // under size this reproduces the pre-objective "max reduction,
        // first index" selection exactly.
        if (best_idx == k || obj.better(costs[i], costs[best_idx])) {
            best_idx = i;
        }
        sum_reduction += rec.reduction;
        sum_ratio += static_cast<double>(rec.final_size) /
                     static_cast<double>(res.original_size);
        sum_depth_ratio += res.original_depth != 0
                               ? static_cast<double>(rec.final_depth) /
                                     static_cast<double>(res.original_depth)
                               : 1.0;
        sum_value_ratio += res.original_cost.value > 0.0
                               ? costs[i].value / res.original_cost.value
                               : 1.0;
    }
    res.best_cost = costs[best_idx];
    res.best_decisions = evaluated[best_idx].decisions;
    res.best_reduction =
        std::max(evaluated[best_idx].reduction, res.best_reduction);
    res.mean_reduction = sum_reduction / static_cast<double>(k);
    res.bg_mean_ratio = sum_ratio / static_cast<double>(k);
    res.bg_best_ratio =
        static_cast<double>(static_cast<int>(res.original_size) -
                            res.best_reduction) /
        static_cast<double>(res.original_size);
    res.bg_mean_depth_ratio = sum_depth_ratio / static_cast<double>(k);
    res.bg_best_depth_ratio =
        res.original_depth != 0
            ? static_cast<double>(res.best_cost.depth) /
                  static_cast<double>(res.original_depth)
            : 1.0;
    res.bg_mean_value_ratio = sum_value_ratio / static_cast<double>(k);
    res.bg_best_value_ratio = res.original_cost.value > 0.0
                                  ? res.best_cost.value /
                                        res.original_cost.value
                                  : 1.0;

    if (cfg.verify) {
        poll_cancel(cfg.opt.cancel, "run_flow verification");
        // Re-materialize the winner (deterministic re-run keeps peak
        // memory flat: no need to retain k optimized graphs above) and
        // prove it against the input design.
        Aig best_graph;
        (void)evaluate_decisions(design, decisions[res.selected[best_idx]],
                                 cfg.opt, obj, &best_graph, intra_ptr);
        if (ctx.prover != nullptr) {
            res.verification = ctx.prover->check(design, best_graph);
        } else {
            verify::PortfolioCec prover(cfg.verify_opts, ctx.pool);
            res.verification = prover.check(design, best_graph);
        }
    }
    return res;
}

IteratedFlowResult run_iterated_flow(const Aig& design,
                                     const BoolGebraModel& model,
                                     const FlowConfig& cfg,
                                     std::size_t max_rounds,
                                     ThreadPool* pool) {
    BG_EXPECTS(max_rounds >= 1, "need at least one round");
    const opt::Objective& obj = flow_objective(cfg);
    IteratedFlowResult out;
    out.original_size = design.num_ands();
    out.original_depth = design.depth();
    Aig current = design;
    FlowConfig round_cfg = cfg;
    FlowContext ctx;
    ctx.pool = pool;

    // Commit-path intra parallelism mirrors run_flow's: share the
    // caller's pool or spin up a transient one.  A null pool makes
    // orchestrate_parallel fall back to the sequential pass (journaled,
    // so the feature cache still gets its touched set).
    std::optional<ThreadPool> intra_pool;
    opt::IntraParallel intra;
    if (cfg.intra_workers >= 2) {
        if (pool != nullptr) {
            intra.pool = pool;
        } else {
            intra_pool.emplace(cfg.intra_workers);
            intra.pool = &*intra_pool;
        }
    }
    FeatureCache cache;  // incremental mode only
    for (std::size_t round = 0; round < max_rounds; ++round) {
        round_cfg.seed = cfg.seed + round;  // fresh samples per round
        if (cfg.incremental_features) {
            if (!cache.valid()) {
                cache.rebuild(current, round_cfg.opt, pool);
            }
            ctx.feature_cache = &cache;
        }
        const auto flow = run_flow(current, model, round_cfg, ctx);
        // Stop when the round's objective-best does not strictly improve
        // on the round's entry cost (under size: best_reduction <= 0,
        // exactly the pre-objective stop).
        if (flow.best_decisions.empty() ||
            !obj.better(flow.best_cost, flow.original_cost)) {
            break;
        }
        // Commit the winning decision vector; orchestrate_parallel is
        // pinned bit-identical to orchestrate and additionally reports
        // the touched set the feature cache consumes.
        auto decisions = flow.best_decisions;
        const auto commit = opt::orchestrate_parallel(
            current, decisions, round_cfg.opt, obj, intra);
        if (!cfg.incremental_features) {
            current = current.compact();
        } else {
            cache.update(current, round_cfg.opt, commit.touched, pool);
            // Defer compaction until tombstones dominate; compacting
            // remaps var ids, so the cache restarts from a full rebuild.
            const std::size_t dead = current.num_slots() - 1 -
                                     current.num_pis() - current.num_ands();
            if (2 * dead >= current.num_slots()) {
                current = current.compact();
                cache.invalidate();
            }
        }
        out.per_round_reduction.push_back(flow.best_reduction);
    }
    out.final_size = current.num_ands();
    out.final_depth = current.depth();
    out.final_ratio = static_cast<double>(out.final_size) /
                      static_cast<double>(out.original_size);
    out.final_depth_ratio =
        out.original_depth != 0
            ? static_cast<double>(out.final_depth) /
                  static_cast<double>(out.original_depth)
            : 1.0;
    return out;
}

}  // namespace bg::core
