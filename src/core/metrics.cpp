#include "core/metrics.hpp"

#include <stdexcept>

namespace bg::core {

MetricHead head_from_string(const std::string& name) {
    if (name == "size") {
        return MetricHead::Size;
    }
    if (name == "depth") {
        return MetricHead::Depth;
    }
    if (name == "luts") {
        return MetricHead::Luts;
    }
    throw std::invalid_argument("unknown metric head '" + name +
                                "' (use size | depth | luts)");
}

}  // namespace bg::core
