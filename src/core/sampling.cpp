#include "core/sampling.hpp"

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::core {

using aig::Aig;
using aig::Var;
using opt::DecisionVector;
using opt::OpKind;

namespace {

OpKind random_op(bg::Rng& rng) {
    return opt::op_from_index(static_cast<int>(rng.next_below(3)));
}

}  // namespace

DecisionVector random_decisions(const Aig& g, bg::Rng& rng) {
    DecisionVector d(g.num_slots(), OpKind::None);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (g.is_and(v) && !g.is_dead(v)) {
            d[v] = random_op(rng);
        }
    }
    return d;
}

DecisionVector priority_decisions(const Aig& g, const StaticFeatures& st,
                                  bg::Rng& rng) {
    BG_EXPECTS(st.size() == g.num_slots(),
               "static features must cover every var");
    DecisionVector d(g.num_slots(), OpKind::None);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (!g.is_and(v) || g.is_dead(v)) {
            continue;
        }
        // Priority rw > rs > rf (feature layout: rw at [2], rs [4], rf [6]).
        if (st[v][2] > 0.5F) {
            d[v] = OpKind::Rewrite;
        } else if (st[v][4] > 0.5F) {
            d[v] = OpKind::Resub;
        } else if (st[v][6] > 0.5F) {
            d[v] = OpKind::Refactor;
        } else {
            d[v] = random_op(rng);
        }
    }
    return d;
}

DecisionVector mutate_decisions(const Aig& g, const DecisionVector& base,
                                double fraction, bg::Rng& rng) {
    BG_EXPECTS(fraction >= 0.0 && fraction <= 1.0,
               "mutation fraction must lie in [0, 1]");
    DecisionVector d = base;
    std::vector<Var> and_vars;
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (g.is_and(v) && !g.is_dead(v)) {
            and_vars.push_back(v);
        }
    }
    const auto k = static_cast<std::size_t>(
        fraction * static_cast<double>(and_vars.size()) + 0.5);
    const auto idx = rng.sample_indices(and_vars.size(), k);
    for (const auto i : idx) {
        d[and_vars[i]] = random_op(rng);
    }
    return d;
}

SampleRecord evaluate_decisions(const Aig& design, DecisionVector decisions,
                                const opt::OptParams& params,
                                const opt::Objective& objective,
                                Aig* optimized_out,
                                const opt::IntraParallel* intra) {
    Aig copy = design;
    const auto res =
        intra != nullptr
            ? opt::orchestrate_parallel(copy, decisions, params, objective,
                                        *intra)
            : opt::orchestrate(copy, decisions, params, objective);
    SampleRecord rec;
    rec.decisions = std::move(decisions);
    rec.applied = res.applied;
    rec.reduction = res.reduction();
    rec.depth_reduction = res.depth_reduction();
    rec.final_size = res.final_size;
    rec.final_depth = res.final_depth;
    if (optimized_out != nullptr) {
        *optimized_out = std::move(copy);
    }
    return rec;
}

namespace {

/// Evaluate a batch of decision vectors in parallel; the result order
/// matches the input order, so the outcome is deterministic.  When
/// `lut_labels` is set, each record's optimized graph is technology-mapped
/// and the LUT count recorded as the sample's LUT-head label.
std::vector<SampleRecord> evaluate_batch(
    const Aig& design, std::vector<DecisionVector> batch,
    const opt::OptParams& params,
    const opt::LutMapParams* lut_labels = nullptr) {
    std::vector<SampleRecord> out(batch.size());
    bg::parallel_for(batch.size(), [&](std::size_t i) {
        if (lut_labels == nullptr) {
            out[i] = evaluate_decisions(design, std::move(batch[i]), params);
            return;
        }
        Aig optimized;
        out[i] = evaluate_decisions(design, std::move(batch[i]), params,
                                    opt::size_objective(), &optimized);
        out[i].lut_count = static_cast<long long>(
            opt::map_to_luts(optimized, *lut_labels).num_luts());
    });
    return out;
}

}  // namespace

std::vector<SampleRecord> generate_random_samples(
    const Aig& design, std::size_t n, std::uint64_t seed,
    const opt::OptParams& params, const opt::LutMapParams* lut_labels) {
    bg::Rng rng(seed);
    std::vector<DecisionVector> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(random_decisions(design, rng));
    }
    return evaluate_batch(design, std::move(batch), params, lut_labels);
}

std::vector<SampleRecord> generate_guided_samples(
    const Aig& design, std::size_t n, std::uint64_t seed,
    const opt::OptParams& params, const StaticFeatures* precomputed_static,
    const opt::LutMapParams* lut_labels) {
    bg::Rng rng(seed);
    StaticFeatures local;
    if (precomputed_static == nullptr) {
        local = compute_static_features(design, params);
        precomputed_static = &local;
    }
    const DecisionVector base =
        priority_decisions(design, *precomputed_static, rng);

    std::vector<DecisionVector> batch;
    batch.reserve(n);
    if (n > 0) {
        batch.push_back(base);
    }
    // Mutation fractions span the paper's 10%..90% range, weighted toward
    // small mutations so the batch stays anchored near the guided base
    // (that anchoring is what shifts the Fig 2 distribution left).
    static constexpr double fractions[] = {0.1, 0.1, 0.2, 0.2, 0.3, 0.3,
                                           0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
    for (std::size_t i = 1; i < n; ++i) {
        const double frac = fractions[(i - 1) % std::size(fractions)];
        batch.push_back(mutate_decisions(design, base, frac, rng));
    }
    return evaluate_batch(design, std::move(batch), params, lut_labels);
}

}  // namespace bg::core
