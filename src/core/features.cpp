#include "core/features.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::core {

using aig::Aig;
using aig::Var;
using opt::OpKind;

void compute_static_row(const Aig& g, Var v, const opt::OptParams& params,
                        std::array<float, static_dim>& row) {
    if (!g.is_and(v) || g.is_dead(v)) {
        row.fill(pi_fill);  // PIs, the constant, and tombstones
        return;
    }
    row[0] = g.fanin0_ref(v).complemented() ? 1.0F : 0.0F;
    row[1] = g.fanin1_ref(v).complemented() ? 1.0F : 0.0F;
    const OpKind ops[3] = {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor};
    for (int k = 0; k < 3; ++k) {
        const auto res = opt::check_op(g, v, ops[k], params);
        row[2 + 2 * k] = res.applicable ? 1.0F : 0.0F;
        // The embedded local gain stays the size delta under every
        // objective: feature semantics (and trained weights) must not
        // depend on the flow's cost model.
        row[3 + 2 * k] = res.applicable
                             ? static_cast<float>(res.gain.size_delta)
                             : -1.0F;
    }
}

StaticFeatures compute_static_features(const Aig& g,
                                       const opt::OptParams& params) {
    params.validate();
    StaticFeatures rows(g.num_slots());
    // The three checks are read-only, so per-node work parallelizes.
    bg::parallel_for(g.num_slots(), [&](std::size_t i) {
        compute_static_row(g, static_cast<Var>(i), params, rows[i]);
    });
    return rows;
}

DynamicFeatures compute_dynamic_features(const Aig& g,
                                         std::span<const OpKind> applied) {
    BG_EXPECTS(applied.size() >= g.num_slots(),
               "applied-op trace must cover every var");
    DynamicFeatures rows(g.num_slots());
    for (Var v = 0; v < g.num_slots(); ++v) {
        auto& row = rows[v];
        if (!g.is_and(v) || g.is_dead(v)) {
            row.fill(pi_fill);
            continue;
        }
        row.fill(0.0F);
        switch (applied[v]) {
            case OpKind::None:
                row[0] = 1.0F;
                break;
            case OpKind::Rewrite:
                row[1] = 1.0F;
                break;
            case OpKind::Resub:
                row[2] = 1.0F;
                break;
            case OpKind::Refactor:
                row[3] = 1.0F;
                break;
        }
    }
    return rows;
}

void assemble_features_into(const StaticFeatures& st,
                            const DynamicFeatures& dy,
                            const FeatureConfig& cfg, std::span<float> out) {
    BG_EXPECTS(st.size() == dy.size(),
               "static/dynamic row counts must match");
    BG_EXPECTS(out.size() == st.size() * feature_dim,
               "feature output span size mismatch");
    std::fill(out.begin(), out.end(), 0.0F);
    for (std::size_t v = 0; v < st.size(); ++v) {
        float* row = &out[v * feature_dim];
        if (cfg.use_static) {
            for (int i = 0; i < static_dim; ++i) {
                row[i] = st[v][i];
            }
        }
        if (cfg.use_dynamic) {
            for (int i = 0; i < dynamic_dim; ++i) {
                row[static_dim + i] = dy[v][i];
            }
        }
    }
}

std::vector<float> assemble_features(const StaticFeatures& st,
                                     const DynamicFeatures& dy,
                                     const FeatureConfig& cfg) {
    std::vector<float> out(st.size() * feature_dim);
    assemble_features_into(st, dy, cfg, out);
    return out;
}

GraphCsr build_csr(const Aig& g) {
    const std::size_t n = g.num_slots();
    std::vector<std::int32_t> degree(n, 0);
    for (Var v = 0; v < n; ++v) {
        if (!g.is_and(v) || g.is_dead(v)) {
            continue;
        }
        const auto [f0, f1] = g.fanin_refs(v);
        const Var u0 = f0.index();
        const Var u1 = f1.index();
        degree[v] += 2;
        ++degree[u0];
        ++degree[u1];
    }
    GraphCsr csr;
    csr.offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        csr.offsets[v + 1] = csr.offsets[v] + degree[v];
    }
    csr.neighbors.assign(static_cast<std::size_t>(csr.offsets[n]), 0);
    std::vector<std::int32_t> cursor(csr.offsets.begin(),
                                     csr.offsets.end() - 1);
    for (Var v = 0; v < n; ++v) {
        if (!g.is_and(v) || g.is_dead(v)) {
            continue;
        }
        for (const aig::NodeRef f : g.fanin_refs(v)) {
            const Var u = f.index();
            csr.neighbors[static_cast<std::size_t>(cursor[v]++)] =
                static_cast<std::int32_t>(u);
            csr.neighbors[static_cast<std::size_t>(cursor[u]++)] =
                static_cast<std::int32_t>(v);
        }
    }
    csr.build_inv_deg();
    return csr;
}

}  // namespace bg::core
