#pragma once

/// \file portfolio.hpp
/// Portfolio combinational equivalence checking: race the three CEC back
/// ends — random simulation (aig/cec.hpp), BDD (bdd/cec_bdd.hpp) and SAT
/// (sat/cec_sat.hpp) — and take the first *definitive* verdict.
///
/// The engines have complementary strengths: simulation refutes buggy
/// rewrites in microseconds but can only ever prove "probably equivalent"
/// past the exhaustive bound; BDDs prove small-to-medium control logic
/// instantly but blow up on multipliers; SAT handles what BDDs cannot but
/// pays per-output solving cost.  Racing all three under one cancel flag
/// gets the best of each: the first Equivalent / NotEquivalent wins and
/// cancels the rest; if every engine degrades within its budget the
/// portfolio reports ProbablyEquivalent honestly (never upgraded).
///
/// Verdicts for structurally identical queries are served from a small
/// FIFO cache keyed on the pair of structural fingerprints
/// (aig::structural_fingerprint), so a served flow re-verifying the same
/// design pair pays nothing.  Only definitive verdicts are cached —
/// ProbablyEquivalent depends on budgets and luck, so it is always
/// recomputed.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/cec.hpp"
#include "bdd/cec_bdd.hpp"
#include "sat/cec_sat.hpp"
#include "util/parallel.hpp"

namespace bg::verify {

/// Which engine produced a verdict.
enum class Engine {
    None,        ///< cache miss degraded / zero-engine edge cases
    Simulation,  ///< word-parallel random or exhaustive simulation
    Bdd,         ///< canonical ROBDD comparison
    Sat,         ///< incremental SAT on the shared miter
    Cache,       ///< served from the result cache
};

std::string to_string(Engine e);

struct PortfolioOptions {
    /// Per-engine budgets.  Each engine's own cancel pointer and
    /// timeout_seconds are overwritten by the portfolio (it owns the race
    /// flag); a zero per-engine timeout inherits engine_timeout_seconds.
    aig::CecOptions sim;
    bdd::BddCecOptions bdd;
    sat::SatCecOptions sat;
    /// Default wall-clock budget per engine, in seconds (0 = unlimited).
    double engine_timeout_seconds = 30.0;
    /// Serve repeated structural-fingerprint pairs from the cache.
    bool use_cache = true;
    /// FIFO capacity of the verdict cache.
    std::size_t cache_capacity = 4096;
    /// Per-PI-count capacity of the cross-job counterexample pool (0
    /// disables pooling).  Every definitive refutation's witness — SAT,
    /// BDD or simulation, fresh or cache-served — is pooled and fed back
    /// into the simulation engine as seed patterns on later jobs with the
    /// same PI count, so a recurring bug is refuted by simulation before
    /// any random budget is spent.
    std::size_t cex_pool_capacity = 64;
};

/// Outcome of one portfolio check.
struct VerifyReport {
    aig::CecVerdict verdict = aig::CecVerdict::ProbablyEquivalent;
    /// Engine that produced the verdict (Cache when served from cache).
    Engine engine = Engine::None;
    /// Wall-clock seconds spent inside check().
    double seconds = 0.0;
    bool from_cache = false;
    /// Differing PI assignment; non-empty exactly when the verdict is
    /// NotEquivalent and the winning engine produced a witness (cached
    /// refutations keep the witness from the original run).
    std::vector<bool> counterexample;
};

/// Thread-safe portfolio prover.  One instance is meant to live as long
/// as the serving process (FlowService owns one); concurrent check()
/// calls are safe and share the verdict cache.
class PortfolioCec {
public:
    /// `pool` is the shared worker pool used to race the engines; pass
    /// nullptr to run them sequentially (sim, then BDD, then SAT — still
    /// short-circuiting on the first definitive verdict).  The pool's
    /// for_each is nesting-safe, so check() may be called from inside a
    /// job running on the same pool.
    explicit PortfolioCec(PortfolioOptions opts = {},
                          ThreadPool* pool = nullptr);

    /// Race the engines on the (a, b) miter.  Throws ContractViolation
    /// when the PI/PO interfaces differ; never throws from a verdict
    /// path.
    VerifyReport check(const aig::Aig& a, const aig::Aig& b);

    std::size_t cache_lookups() const {
        return cache_lookups_.load(std::memory_order_relaxed);
    }
    std::size_t cache_hits() const {
        return cache_hits_.load(std::memory_order_relaxed);
    }
    std::size_t cache_size() const;

    /// Snapshot of the pooled counterexamples for designs with `num_pis`
    /// inputs (oldest first) — the seed patterns the next check() with
    /// that PI count will simulate first.
    std::vector<std::vector<bool>> seed_patterns(std::size_t num_pis) const;

private:
    struct CacheKey {
        std::uint64_t fp_a = 0;
        std::uint64_t fp_b = 0;
        bool operator==(const CacheKey& o) const {
            return fp_a == o.fp_a && fp_b == o.fp_b;
        }
    };
    struct CacheKeyHash {
        std::size_t operator()(const CacheKey& k) const;
    };
    struct CacheEntry {
        aig::CecVerdict verdict = aig::CecVerdict::ProbablyEquivalent;
        Engine engine = Engine::None;
        std::vector<bool> counterexample;
    };

    bool cache_get(const CacheKey& key, VerifyReport& out);
    void cache_put(const CacheKey& key, const VerifyReport& report);
    void pool_counterexample(std::size_t num_pis,
                             const std::vector<bool>& cex);

    PortfolioOptions opts_;
    ThreadPool* pool_ = nullptr;

    mutable std::mutex cache_mu_;
    std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
    std::deque<CacheKey> cache_order_;  // FIFO eviction
    std::atomic<std::size_t> cache_lookups_{0};
    std::atomic<std::size_t> cache_hits_{0};

    /// Cross-job counterexample pool, keyed by PI count (a witness is
    /// just a PI assignment, so it transfers between any designs of the
    /// same width).  FIFO-bounded per key by cex_pool_capacity.
    mutable std::mutex cex_mu_;
    std::unordered_map<std::size_t, std::deque<std::vector<bool>>> cex_pool_;
};

}  // namespace bg::verify
