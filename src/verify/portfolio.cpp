#include "verify/portfolio.hpp"

#include <array>
#include <chrono>
#include <utility>

#include "util/contracts.hpp"

namespace bg::verify {

namespace {

bool is_definitive(aig::CecVerdict v) {
    return v == aig::CecVerdict::Equivalent ||
           v == aig::CecVerdict::NotEquivalent;
}

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

std::string to_string(Engine e) {
    switch (e) {
        case Engine::None:
            return "none";
        case Engine::Simulation:
            return "sim";
        case Engine::Bdd:
            return "bdd";
        case Engine::Sat:
            return "sat";
        case Engine::Cache:
            return "cache";
    }
    return "?";
}

std::size_t PortfolioCec::CacheKeyHash::operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(mix64(k.fp_a ^ mix64(k.fp_b)));
}

PortfolioCec::PortfolioCec(PortfolioOptions opts, ThreadPool* pool)
    : opts_(std::move(opts)), pool_(pool) {}

bool PortfolioCec::cache_get(const CacheKey& key, VerifyReport& out) {
    cache_lookups_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        // Equivalence is symmetric, and a counterexample is just a PI
        // assignment, so a hit on the swapped pair is equally valid.
        it = cache_.find(CacheKey{key.fp_b, key.fp_a});
    }
    if (it == cache_.end()) {
        return false;
    }
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    out.verdict = it->second.verdict;
    out.engine = Engine::Cache;
    out.from_cache = true;
    out.counterexample = it->second.counterexample;
    return true;
}

void PortfolioCec::cache_put(const CacheKey& key,
                             const VerifyReport& report) {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.count(key) != 0) {
        return;
    }
    while (cache_.size() >= opts_.cache_capacity && !cache_order_.empty()) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
    }
    cache_.emplace(key, CacheEntry{report.verdict, report.engine,
                                   report.counterexample});
    cache_order_.push_back(key);
}

std::size_t PortfolioCec::cache_size() const {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
}

std::vector<std::vector<bool>> PortfolioCec::seed_patterns(
    std::size_t num_pis) const {
    const std::lock_guard<std::mutex> lock(cex_mu_);
    const auto it = cex_pool_.find(num_pis);
    if (it == cex_pool_.end()) {
        return {};
    }
    return {it->second.begin(), it->second.end()};
}

void PortfolioCec::pool_counterexample(std::size_t num_pis,
                                       const std::vector<bool>& cex) {
    if (opts_.cex_pool_capacity == 0 || cex.size() != num_pis) {
        return;
    }
    const std::lock_guard<std::mutex> lock(cex_mu_);
    auto& pool = cex_pool_[num_pis];
    for (const auto& have : pool) {
        if (have == cex) {
            return;  // recurring witness: already pooled
        }
    }
    while (pool.size() >= opts_.cex_pool_capacity) {
        pool.pop_front();
    }
    pool.push_back(cex);
}

VerifyReport PortfolioCec::check(const aig::Aig& a, const aig::Aig& b) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "portfolio CEC requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "portfolio CEC requires matching PO counts");

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const auto elapsed = [t0] {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    VerifyReport report;
    CacheKey key{};
    const bool use_cache = opts_.use_cache && opts_.cache_capacity > 0;
    if (use_cache) {
        key = CacheKey{aig::structural_fingerprint(a),
                       aig::structural_fingerprint(b)};
        if (cache_get(key, report)) {
            if (report.verdict == aig::CecVerdict::NotEquivalent &&
                !report.counterexample.empty()) {
                // Cached refutations feed the cross-job seed pool too: a
                // different-structure job with the same PI width gets the
                // witness even though its own fingerprints miss.
                pool_counterexample(a.num_pis(), report.counterexample);
            }
            report.seconds = elapsed();
            return report;
        }
    }

    // Counterexample-guided simulation: earlier refutations with this PI
    // width are simulated before any random budget (lifetime spans the
    // race below — for_each joins every engine before `seeds` dies).
    const std::vector<std::vector<bool>> seeds =
        opts_.cex_pool_capacity > 0 ? seed_patterns(a.num_pis())
                                    : std::vector<std::vector<bool>>{};

    // The race: one shared cancel flag, first definitive verdict wins via
    // CAS and cancels the others.  Engine outcomes land in per-engine
    // slots; for_each joins every iteration before we read them.
    std::atomic<bool> cancel{false};
    std::atomic<int> winner{-1};
    struct Outcome {
        aig::CecVerdict verdict = aig::CecVerdict::ProbablyEquivalent;
        std::vector<bool> counterexample;
    };
    std::array<Outcome, 3> outcomes;
    constexpr std::array<Engine, 3> kEngines = {
        Engine::Simulation, Engine::Bdd, Engine::Sat};

    const auto engine_timeout = [this](double own) {
        return own > 0.0 ? own : opts_.engine_timeout_seconds;
    };

    const auto run_engine = [&](std::size_t idx) {
        if (cancel.load(std::memory_order_relaxed)) {
            return;  // raced after a definitive verdict: nothing to do
        }
        Outcome& out = outcomes[idx];
        switch (kEngines[idx]) {
            case Engine::Simulation: {
                aig::CecOptions o = opts_.sim;
                o.cancel = &cancel;
                o.timeout_seconds = engine_timeout(o.timeout_seconds);
                if (!seeds.empty() && o.seed_patterns == nullptr) {
                    o.seed_patterns = &seeds;
                }
                auto r = aig::check_equivalence_full(a, b, o);
                out.verdict = r.verdict;
                out.counterexample = std::move(r.counterexample);
                break;
            }
            case Engine::Bdd: {
                bdd::BddCecOptions o = opts_.bdd;
                o.cancel = &cancel;
                o.timeout_seconds = engine_timeout(o.timeout_seconds);
                auto r = bdd::check_equivalence_bdd_full(a, b, o);
                out.verdict = r.verdict;
                out.counterexample = std::move(r.counterexample);
                break;
            }
            case Engine::Sat: {
                sat::SatCecOptions o = opts_.sat;
                o.cancel = &cancel;
                o.timeout_seconds = engine_timeout(o.timeout_seconds);
                auto r = sat::check_equivalence_sat_full(a, b, o);
                out.verdict = r.verdict;
                out.counterexample = std::move(r.counterexample);
                break;
            }
            default:
                break;
        }
        if (is_definitive(out.verdict)) {
            int expected = -1;
            if (winner.compare_exchange_strong(
                    expected, static_cast<int>(idx),
                    std::memory_order_acq_rel)) {
                cancel.store(true, std::memory_order_relaxed);
            }
        }
    };

    if (pool_ != nullptr) {
        // Nesting-safe: the caller participates, so this works even from
        // inside a job on the same pool (serving threads verify in-line).
        pool_->for_each(kEngines.size(), run_engine);
    } else {
        for (std::size_t i = 0; i < kEngines.size(); ++i) {
            run_engine(i);  // sequential; cancel short-circuits the rest
        }
    }

    const int w = winner.load(std::memory_order_acquire);
    if (w >= 0) {
        report.verdict = outcomes[static_cast<std::size_t>(w)].verdict;
        report.engine = kEngines[static_cast<std::size_t>(w)];
        report.counterexample = std::move(
            outcomes[static_cast<std::size_t>(w)].counterexample);
        if (use_cache) {
            cache_put(key, report);
        }
        if (report.verdict == aig::CecVerdict::NotEquivalent &&
            !report.counterexample.empty()) {
            pool_counterexample(a.num_pis(), report.counterexample);
        }
    } else {
        // Every engine degraded within its budget: honest "probably".
        report.verdict = aig::CecVerdict::ProbablyEquivalent;
        report.engine = Engine::None;
    }
    report.seconds = elapsed();
    return report;
}

}  // namespace bg::verify
