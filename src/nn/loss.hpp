#pragma once

/// \file loss.hpp
/// Mean-squared-error loss (the paper trains the predictor as regression
/// onto normalized labels in [0, 1]).

#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace bg::nn {

struct LossResult {
    double loss = 0.0;
    Matrix grad;  ///< dL/dpred, same shape as pred
};

/// pred is (B, 1); target holds B labels.
LossResult mse_loss(const Matrix& pred, std::span<const float> target);

/// Loss only (no gradient); for evaluation passes.
double mse_value(const Matrix& pred, std::span<const float> target);

/// Multi-head MSE with per-entry masks: pred, target and mask are all
/// (B, H).  Entries whose mask is 0 contribute nothing to the loss or the
/// gradient, so samples missing a label (e.g. an old dataset without LUT
/// measurements) still train the heads they do have.  The loss averages
/// over the *unmasked* entries; with H = 1 and an all-ones mask it equals
/// mse_loss bit for bit.  An all-zero mask yields loss 0 and a zero
/// gradient.
LossResult masked_mse_loss(const Matrix& pred, const Matrix& target,
                           const Matrix& mask);

/// Loss only (no gradient); for evaluation passes.
double masked_mse_value(const Matrix& pred, const Matrix& target,
                        const Matrix& mask);

/// Per-column masked MSE: one value per head (0 when a head has no
/// unmasked entry).  Diagnostic companion for multi-head evaluation.
/// `counts`, when given, receives the per-column unmasked entry counts —
/// callers averaging across batches must weight by these, not the batch
/// size, or partially-labelled columns deflate.
std::vector<double> masked_mse_per_column(const Matrix& pred,
                                          const Matrix& target,
                                          const Matrix& mask,
                                          std::vector<std::size_t>* counts =
                                              nullptr);

}  // namespace bg::nn
