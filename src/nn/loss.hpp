#pragma once

/// \file loss.hpp
/// Mean-squared-error loss (the paper trains the predictor as regression
/// onto normalized labels in [0, 1]).

#include <span>

#include "nn/matrix.hpp"

namespace bg::nn {

struct LossResult {
    double loss = 0.0;
    Matrix grad;  ///< dL/dpred, same shape as pred
};

/// pred is (B, 1); target holds B labels.
LossResult mse_loss(const Matrix& pred, std::span<const float> target);

/// Loss only (no gradient); for evaluation passes.
double mse_value(const Matrix& pred, std::span<const float> target);

}  // namespace bg::nn
