#pragma once

/// \file matrix.hpp
/// Dense float32 matrix layer: an owning row-major Matrix, non-owning
/// strided views (MatrixView / ConstMatrixView), and the three GEMM
/// variants the training and inference loops need.
///
/// The GEMM kernels are cache-blocked and register-tiled but *bit-stable*:
/// every output element accumulates its k contributions strictly in
/// p = 0..k-1 order, independent of blocking, tiling, view strides and of
/// whether row panels are sharded across a ThreadPool.  Results are
/// therefore identical across worker counts, which the FlowEngine relies
/// on.  No BLAS dependency.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace bg {
class ThreadPool;  // util/parallel.hpp
}

namespace bg::nn {

/// Non-owning read-only view of a row-major panel: rows x cols elements
/// whose consecutive rows are `stride` floats apart (stride == cols means
/// the panel is contiguous).  Views are cheap to copy and must not outlive
/// the storage they point into.
class ConstMatrixView {
public:
    ConstMatrixView() = default;
    ConstMatrixView(const float* data, std::size_t rows, std::size_t cols,
                    std::size_t stride)
        : data_(data), rows_(rows), cols_(cols), stride_(stride) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t stride() const { return stride_; }
    std::size_t size() const { return rows_ * cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }
    bool contiguous() const { return stride_ == cols_; }

    const float* row(std::size_t r) const { return data_ + r * stride_; }
    float at(std::size_t r, std::size_t c) const { return row(r)[c]; }

    /// Panel of `count` whole rows starting at `start`; works on any view
    /// (view-of-view keeps the parent stride).
    ConstMatrixView rows_view(std::size_t start, std::size_t count) const {
        return {row(start), count, cols_, stride_};
    }
    /// Arbitrary sub-block; non-contiguous unless it spans all columns.
    ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nrows,
                          std::size_t ncols) const {
        return {row(r0) + c0, nrows, ncols, stride_};
    }

private:
    const float* data_ = nullptr;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t stride_ = 0;
};

/// Mutable counterpart of ConstMatrixView.
class MatrixView {
public:
    MatrixView() = default;
    MatrixView(float* data, std::size_t rows, std::size_t cols,
               std::size_t stride)
        : data_(data), rows_(rows), cols_(cols), stride_(stride) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t stride() const { return stride_; }
    std::size_t size() const { return rows_ * cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }
    bool contiguous() const { return stride_ == cols_; }

    float* row(std::size_t r) const { return data_ + r * stride_; }
    float& at(std::size_t r, std::size_t c) const { return row(r)[c]; }

    MatrixView rows_view(std::size_t start, std::size_t count) const {
        return {row(start), count, cols_, stride_};
    }
    MatrixView block(std::size_t r0, std::size_t c0, std::size_t nrows,
                     std::size_t ncols) const {
        return {row(r0) + c0, nrows, ncols, stride_};
    }

    operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
        return {data_, rows_, cols_, stride_};
    }

private:
    float* data_ = nullptr;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t stride_ = 0;
};

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}
    /// Materialize a (possibly strided) view into owned contiguous storage.
    explicit Matrix(ConstMatrixView v)
        : rows_(v.rows()), cols_(v.cols()), data_(v.rows() * v.cols()) {
        for (std::size_t r = 0; r < rows_; ++r) {
            const float* src = v.row(r);
            std::copy(src, src + cols_, data_.data() + r * cols_);
        }
    }

    static Matrix zeros(std::size_t rows, std::size_t cols) {
        return Matrix(rows, cols);
    }
    /// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
    static Matrix xavier(std::size_t fan_in, std::size_t fan_out,
                         bg::Rng& rng);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    float* row(std::size_t r) { return data_.data() + r * cols_; }
    const float* row(std::size_t r) const { return data_.data() + r * cols_; }

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

    MatrixView view() { return {data_.data(), rows_, cols_, cols_}; }
    ConstMatrixView view() const { return {data_.data(), rows_, cols_, cols_}; }
    /// Zero-copy panel of whole rows (the FlowEngine/predict_batch chunking
    /// primitive).
    MatrixView rows_view(std::size_t start, std::size_t count) {
        return view().rows_view(start, count);
    }
    ConstMatrixView rows_view(std::size_t start, std::size_t count) const {
        return view().rows_view(start, count);
    }

    operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
        return view();
    }
    operator MatrixView() {  // NOLINT(google-explicit-constructor)
        return view();
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/// C = A * B.  Blocked/tiled kernel; `pool` (optional) shards disjoint row
/// panels of C, leaving results bit-identical to the sequential run.  `c`
/// is reallocated, so it must not alias the storage behind `a` or `b`.
void matmul(ConstMatrixView a, ConstMatrixView b, Matrix& c,
            bg::ThreadPool* pool = nullptr);
/// C = A^T * B (gradients w.r.t. weights); transpose-packs A.
void matmul_tn(ConstMatrixView a, ConstMatrixView b, Matrix& c,
               bg::ThreadPool* pool = nullptr);
/// C = A * B^T (gradients w.r.t. inputs); transpose-packs B.
void matmul_nt(ConstMatrixView a, ConstMatrixView b, Matrix& c,
               bg::ThreadPool* pool = nullptr);

/// C += A * B into an existing correctly-shaped destination view.
void gemm_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                     bg::ThreadPool* pool = nullptr);

/// The seed's triple-loop kernels, kept as the parity and benchmark
/// baseline (tests assert the blocked kernels match them bit-for-bit).
void matmul_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c);
void matmul_tn_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c);
void matmul_nt_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c);

/// Y += bias broadcast over rows.
void add_row_bias(MatrixView y, std::span<const float> bias);
/// bias_grad += column sums of dY.
void accumulate_bias_grad(ConstMatrixView dy, std::span<float> bias_grad);

}  // namespace bg::nn
