#pragma once

/// \file matrix.hpp
/// Minimal dense float32 matrix with the three GEMM variants the training
/// loop needs.  Row-major, cache-friendly ikj loops; no BLAS dependency.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace bg::nn {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}

    static Matrix zeros(std::size_t rows, std::size_t cols) {
        return Matrix(rows, cols);
    }
    /// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
    static Matrix xavier(std::size_t fan_in, std::size_t fan_out,
                         bg::Rng& rng);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    float* row(std::size_t r) { return data_.data() + r * cols_; }
    const float* row(std::size_t r) const { return data_.data() + r * cols_; }

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/// C = A * B.
void matmul(const Matrix& a, const Matrix& b, Matrix& c);
/// C = A^T * B (gradients w.r.t. weights).
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& c);
/// C = A * B^T (gradients w.r.t. inputs).
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c);

/// Y += bias broadcast over rows.
void add_row_bias(Matrix& y, std::span<const float> bias);
/// bias_grad += column sums of dY.
void accumulate_bias_grad(const Matrix& dy, std::span<float> bias_grad);

}  // namespace bg::nn
