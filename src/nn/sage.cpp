#include "nn/sage.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::nn {

void Csr::build_inv_deg() {
    const std::size_t n = num_nodes();
    inv_deg.assign(n, 0.0F);
    for (std::size_t v = 0; v < n; ++v) {
        const auto deg = degree(v);
        if (deg != 0) {
            // Exactly the expression the aggregation fallback uses, so the
            // cached and on-the-fly paths stay bit-identical.
            inv_deg[v] = 1.0F / static_cast<float>(deg);
        }
    }
}

void mean_aggregate(ConstMatrixView x, const Csr& csr, std::size_t batch,
                    Matrix& h, bg::ThreadPool* pool) {
    const std::size_t n = csr.num_nodes();
    BG_EXPECTS(x.rows() == batch * n, "feature rows must be batch * nodes");
    const std::size_t f = x.cols();
    if (!(h.rows() == x.rows() && h.cols() == f)) {
        h = Matrix(x.rows(), f);
    }
    // Raw pointers: by-value view structs defeat vectorization of the
    // accumulation loop (see the GEMM kernels in matrix.cpp), and rows are
    // touched exactly once each, so no whole-matrix zero fill is needed.
    const std::int32_t* offsets = csr.offsets.data();
    const std::int32_t* neighbors = csr.neighbors.data();
    const float* inv_deg =
        csr.inv_deg.size() == n ? csr.inv_deg.data() : nullptr;
    // Rows are independent and each is accumulated wholly by one thread in
    // edge order, so any partition of the row range gives the same bits as
    // the serial loop.
    const auto row_range = [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const std::size_t b = r / n;
            const std::size_t i = r - b * n;
            const std::size_t base = b * n;
            float* hi = h.row(r);
            std::fill(hi, hi + f, 0.0F);
            const auto beg = offsets[i];
            const auto end = offsets[i + 1];
            if (beg == end) {
                continue;
            }
            for (auto e = beg; e < end; ++e) {
                const float* xj =
                    x.row(base + static_cast<std::size_t>(
                                     neighbors[static_cast<std::size_t>(e)]));
                for (std::size_t c = 0; c < f; ++c) {
                    hi[c] += xj[c];
                }
            }
            const float inv = inv_deg != nullptr
                                  ? inv_deg[i]
                                  : 1.0F / static_cast<float>(end - beg);
            for (std::size_t c = 0; c < f; ++c) {
                hi[c] *= inv;
            }
        }
    };

    const std::size_t rows = batch * n;
    const std::size_t edges = csr.neighbors.size();
    // Per-row cost ~ degree + 1; below this much total work the fork-join
    // overhead outweighs the sharding.
    constexpr std::size_t k_min_shard_work = std::size_t{1} << 15;
    if (pool == nullptr || pool->size() < 2 ||
        batch * (edges + n) < k_min_shard_work) {
        row_range(0, rows);
        return;
    }

    // Edge-balanced shard boundaries: the cumulative cost of rows before
    // global row r = (b, i) is b*(edges+n) + offsets[i] + i, monotone in
    // r, so each boundary is a binary search — heavy hubs split across
    // boundaries land wholly in one shard, light tails pack together.
    const std::size_t num_shards = std::min(rows, pool->size() * 4);
    const std::size_t total = batch * (edges + n);
    const auto cum = [&](std::size_t r) {
        const std::size_t b = r / n;
        const std::size_t i = r - b * n;
        return b * (edges + n) + static_cast<std::size_t>(offsets[i]) + i;
    };
    std::vector<std::size_t> bounds(num_shards + 1, 0);
    bounds[num_shards] = rows;
    for (std::size_t s = 1; s < num_shards; ++s) {
        const std::size_t target = total / num_shards * s;
        std::size_t lo = bounds[s - 1];
        std::size_t hi = rows;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (cum(mid) < target) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bounds[s] = lo;
    }
    pool->for_each(num_shards, [&](std::size_t s) {
        row_range(bounds[s], bounds[s + 1]);
    });
}

void mean_aggregate_transpose(ConstMatrixView dh, const Csr& csr,
                              std::size_t batch, Matrix& dx) {
    const std::size_t n = csr.num_nodes();
    BG_EXPECTS(dh.rows() == batch * n, "gradient rows must be batch * nodes");
    const std::size_t f = dh.cols();
    dx = Matrix(dh.rows(), f);
    for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t base = b * n;
        for (std::size_t i = 0; i < n; ++i) {
            const auto deg = csr.degree(i);
            if (deg == 0) {
                continue;
            }
            const float inv = 1.0F / static_cast<float>(deg);
            const float* dhi = dh.row(base + i);
            for (auto e = csr.offsets[i]; e < csr.offsets[i + 1]; ++e) {
                float* dxj =
                    dx.row(base + static_cast<std::size_t>(csr.neighbors[
                                      static_cast<std::size_t>(e)]));
                for (std::size_t c = 0; c < f; ++c) {
                    dxj[c] += dhi[c] * inv;
                }
            }
        }
    }
}

void mean_pool(ConstMatrixView x, std::size_t batch, Matrix& pooled) {
    BG_EXPECTS(batch > 0 && x.rows() % batch == 0,
               "rows must divide evenly into batch blocks");
    const std::size_t n = x.rows() / batch;
    const std::size_t f = x.cols();
    pooled = Matrix(batch, f);
    const float inv = 1.0F / static_cast<float>(n);
    for (std::size_t b = 0; b < batch; ++b) {
        float* p = pooled.row(b);
        for (std::size_t i = 0; i < n; ++i) {
            const float* xi = x.row(b * n + i);
            for (std::size_t c = 0; c < f; ++c) {
                p[c] += xi[c];
            }
        }
        for (std::size_t c = 0; c < f; ++c) {
            p[c] *= inv;
        }
    }
}

void mean_pool_backward(const Matrix& dpooled, std::size_t num_nodes,
                        Matrix& dx) {
    const std::size_t batch = dpooled.rows();
    const std::size_t f = dpooled.cols();
    dx = Matrix(batch * num_nodes, f);
    const float inv = 1.0F / static_cast<float>(num_nodes);
    for (std::size_t b = 0; b < batch; ++b) {
        const float* dp = dpooled.row(b);
        for (std::size_t i = 0; i < num_nodes; ++i) {
            float* d = dx.row(b * num_nodes + i);
            for (std::size_t c = 0; c < f; ++c) {
                d[c] = dp[c] * inv;
            }
        }
    }
}

SageConv::SageConv(std::size_t in, std::size_t out, bg::Rng& rng)
    : w_self_(Matrix::xavier(in, out, rng)),
      w_neigh_(Matrix::xavier(in, out, rng)),
      b_(out, 0.0F),
      gw_self_(in, out),
      gw_neigh_(in, out),
      gb_(out, 0.0F) {}

Matrix SageConv::forward(ConstMatrixView x, const Csr& csr,
                         std::size_t batch, bool train,
                         bg::ThreadPool* pool) {
    Matrix agg;  // aggregated neighbors
    Matrix y = forward_eval(x, csr, batch, agg, pool);
    if (train) {
        cache_x_ = Matrix(x);
        cache_h_ = std::move(agg);
        csr_ = &csr;
        batch_ = batch;
    } else {
        cache_x_ = Matrix();
        cache_h_ = Matrix();
        csr_ = nullptr;
        batch_ = 0;
    }
    return y;
}

Matrix SageConv::forward_eval(ConstMatrixView x, const Csr& csr,
                              std::size_t batch, Matrix& agg,
                              bg::ThreadPool* pool) const {
    BG_EXPECTS(x.cols() == w_self_.rows(), "sage input width mismatch");
    mean_aggregate(x, csr, batch, agg, pool);
    Matrix y;
    matmul(x, w_self_, y, pool);
    Matrix yn;
    matmul(agg, w_neigh_, yn, pool);
    for (std::size_t i = 0; i < y.size(); ++i) {
        y.data()[i] += yn.data()[i];
    }
    add_row_bias(y, b_);
    return y;
}

Matrix SageConv::backward(const Matrix& dy) {
    BG_EXPECTS(csr_ != nullptr, "backward without forward");
    Matrix g;
    matmul_tn(cache_x_, dy, g);
    for (std::size_t i = 0; i < gw_self_.size(); ++i) {
        gw_self_.data()[i] += g.data()[i];
    }
    matmul_tn(cache_h_, dy, g);
    for (std::size_t i = 0; i < gw_neigh_.size(); ++i) {
        gw_neigh_.data()[i] += g.data()[i];
    }
    accumulate_bias_grad(dy, gb_);

    Matrix dx;
    matmul_nt(dy, w_self_, dx);
    Matrix dh;
    matmul_nt(dy, w_neigh_, dh);
    Matrix dx_agg;
    mean_aggregate_transpose(dh, *csr_, batch_, dx_agg);
    for (std::size_t i = 0; i < dx.size(); ++i) {
        dx.data()[i] += dx_agg.data()[i];
    }
    return dx;
}

void SageConv::zero_grad() {
    gw_self_.fill(0.0F);
    gw_neigh_.fill(0.0F);
    std::fill(gb_.begin(), gb_.end(), 0.0F);
}

std::vector<ParamRef> SageConv::params() {
    return {
        {w_self_.data().data(), gw_self_.data().data(), w_self_.size()},
        {w_neigh_.data().data(), gw_neigh_.data().data(), w_neigh_.size()},
        {b_.data(), gb_.data(), b_.size()},
    };
}

}  // namespace bg::nn
