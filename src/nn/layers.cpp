#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace bg::nn {

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, bg::Rng& rng)
    : w_(Matrix::xavier(in, out, rng)),
      b_(out, 0.0F),
      gw_(in, out),
      gb_(out, 0.0F) {}

Matrix Linear::forward(ConstMatrixView x, bool train, bg::ThreadPool* pool) {
    cache_x_ = train ? Matrix(x) : Matrix();
    return forward_eval(x, pool);
}

Matrix Linear::forward_eval(ConstMatrixView x, bg::ThreadPool* pool) const {
    BG_EXPECTS(x.cols() == w_.rows(), "linear input width mismatch");
    Matrix y;
    matmul(x, w_, y, pool);
    add_row_bias(y, b_);
    return y;
}

Matrix Linear::backward(const Matrix& dy) {
    BG_EXPECTS(!cache_x_.empty() && dy.rows() == cache_x_.rows(),
               "linear backward needs a train-mode forward");
    Matrix gw_batch;
    matmul_tn(cache_x_, dy, gw_batch);
    for (std::size_t i = 0; i < gw_.size(); ++i) {
        gw_.data()[i] += gw_batch.data()[i];
    }
    accumulate_bias_grad(dy, gb_);
    Matrix dx;
    matmul_nt(dy, w_, dx);
    return dx;
}

void Linear::zero_grad() {
    gw_.fill(0.0F);
    std::fill(gb_.begin(), gb_.end(), 0.0F);
}

std::vector<ParamRef> Linear::params() {
    return {
        {w_.data().data(), gw_.data().data(), w_.size()},
        {b_.data(), gb_.data(), b_.size()},
    };
}

// ---------------------------------------------------------------------------
// ReLU6
// ---------------------------------------------------------------------------

Matrix ReLU6::forward(const Matrix& x, bool train) {
    cache_x_ = train ? x : Matrix();
    return forward_eval(x);
}

Matrix ReLU6::forward_eval(Matrix x) const {
    for (auto& v : x.data()) {
        v = std::clamp(v, 0.0F, 6.0F);
    }
    return x;
}

Matrix ReLU6::backward(const Matrix& dy) {
    BG_EXPECTS(dy.size() == cache_x_.size(), "relu6 backward shape mismatch");
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
        const float x = cache_x_.data()[i];
        if (x <= 0.0F || x >= 6.0F) {
            dx.data()[i] = 0.0F;
        }
    }
    return dx;
}

// ---------------------------------------------------------------------------
// Sigmoid
// ---------------------------------------------------------------------------

Matrix Sigmoid::forward(const Matrix& x, bool train) {
    Matrix y = forward_eval(x);
    cache_y_ = train ? y : Matrix();
    return y;
}

Matrix Sigmoid::forward_eval(Matrix x) const {
    for (auto& v : x.data()) {
        v = 1.0F / (1.0F + std::exp(-v));
    }
    return x;
}

Matrix Sigmoid::backward(const Matrix& dy) {
    BG_EXPECTS(dy.size() == cache_y_.size(), "sigmoid backward shape mismatch");
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
        const float y = cache_y_.data()[i];
        dx.data()[i] *= y * (1.0F - y);
    }
    return dx;
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

Matrix Dropout::forward(const Matrix& x, bool train, bg::Rng& rng) {
    last_train_ = train && rate_ > 0.0F;
    if (!last_train_) {
        mask_.clear();
        return x;
    }
    const float keep = 1.0F - rate_;
    const float scale = 1.0F / keep;
    mask_.assign(x.size(), 0.0F);
    Matrix y = x;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (rng.next_float() < keep) {
            mask_[i] = scale;
            y.data()[i] *= scale;
        } else {
            y.data()[i] = 0.0F;
        }
    }
    return y;
}

Matrix Dropout::backward(const Matrix& dy) {
    if (!last_train_) {
        return dy;
    }
    BG_EXPECTS(dy.size() == mask_.size(), "dropout backward shape mismatch");
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
        dx.data()[i] *= mask_[i];
    }
    return dx;
}

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

BatchNorm1d::BatchNorm1d(std::size_t dim, float momentum, float eps)
    : gamma_(dim, 1.0F),
      beta_(dim, 0.0F),
      g_gamma_(dim, 0.0F),
      g_beta_(dim, 0.0F),
      running_mean_(dim, 0.0F),
      running_var_(dim, 1.0F),
      momentum_(momentum),
      eps_(eps) {}

void BatchNorm1d::batch_stats(const Matrix& x, std::vector<float>& mean,
                              std::vector<float>& var) const {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    mean.assign(d, 0.0F);
    var.assign(d, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            mean[j] += x.at(i, j);
        }
    }
    for (auto& m : mean) {
        m /= static_cast<float>(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const float c = x.at(i, j) - mean[j];
            var[j] += c * c;
        }
    }
    for (auto& v : var) {
        v /= static_cast<float>(n);
    }
}

Matrix BatchNorm1d::forward(const Matrix& x, bool train) {
    if (!train || x.rows() == 1) {
        // Eval, or a degenerate single-row train batch (backward then
        // requires a fresh multi-row forward): no cache, no running-stat
        // update — same bits as the const path.
        cache_xhat_ = Matrix();
        cache_inv_std_.clear();
        return forward_eval(x);
    }
    BG_EXPECTS(x.cols() == gamma_.size(), "batchnorm width mismatch");
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    std::vector<float> mean;
    std::vector<float> var;
    batch_stats(x, mean, var);

    cache_xhat_ = Matrix(n, d);
    cache_inv_std_.assign(d, 0.0F);
    for (std::size_t j = 0; j < d; ++j) {
        cache_inv_std_[j] = 1.0F / std::sqrt(var[j] + eps_);
        running_mean_[j] =
            (1.0F - momentum_) * running_mean_[j] + momentum_ * mean[j];
        running_var_[j] =
            (1.0F - momentum_) * running_var_[j] + momentum_ * var[j];
    }
    Matrix y(n, d);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const float xhat = (x.at(i, j) - mean[j]) * cache_inv_std_[j];
            cache_xhat_.at(i, j) = xhat;
            y.at(i, j) = gamma_[j] * xhat + beta_[j];
        }
    }
    return y;
}

Matrix BatchNorm1d::forward_eval(const Matrix& x) const {
    BG_EXPECTS(x.cols() == gamma_.size(), "batchnorm width mismatch");
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    Matrix y(n, d);
    // Batch statistics are used whenever the batch is large enough —
    // including at evaluation time.  With graph-level mean pooling the
    // inter-sample signal is small relative to the running variance, and
    // the standard running-stat eval mode washes it out (a known
    // small-batch-regression pathology); normalizing the evaluation batch
    // itself preserves the ranking the predictor was trained to produce.
    if (n == 1) {
        for (std::size_t j = 0; j < d; ++j) {
            const float inv = 1.0F / std::sqrt(running_var_[j] + eps_);
            const float xhat = (x.at(0, j) - running_mean_[j]) * inv;
            y.at(0, j) = gamma_[j] * xhat + beta_[j];
        }
        return y;
    }
    std::vector<float> mean;
    std::vector<float> var;
    batch_stats(x, mean, var);
    for (std::size_t j = 0; j < d; ++j) {
        const float inv_std = 1.0F / std::sqrt(var[j] + eps_);
        for (std::size_t i = 0; i < n; ++i) {
            const float xhat = (x.at(i, j) - mean[j]) * inv_std;
            y.at(i, j) = gamma_[j] * xhat + beta_[j];
        }
    }
    return y;
}

Matrix BatchNorm1d::backward(const Matrix& dy) {
    BG_EXPECTS(!cache_xhat_.empty(),
               "batchnorm backward requires a train-mode forward");
    const std::size_t n = dy.rows();
    const std::size_t d = dy.cols();
    // Standard batch-norm gradient.
    std::vector<float> sum_dy(d, 0.0F);
    std::vector<float> sum_dy_xhat(d, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            sum_dy[j] += dy.at(i, j);
            sum_dy_xhat[j] += dy.at(i, j) * cache_xhat_.at(i, j);
        }
    }
    for (std::size_t j = 0; j < d; ++j) {
        g_beta_[j] += sum_dy[j];
        g_gamma_[j] += sum_dy_xhat[j];
    }
    Matrix dx(n, d);
    const float inv_n = 1.0F / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const float term = dy.at(i, j) - inv_n * sum_dy[j] -
                               inv_n * cache_xhat_.at(i, j) * sum_dy_xhat[j];
            dx.at(i, j) = gamma_[j] * cache_inv_std_[j] * term;
        }
    }
    return dx;
}

void BatchNorm1d::zero_grad() {
    std::fill(g_gamma_.begin(), g_gamma_.end(), 0.0F);
    std::fill(g_beta_.begin(), g_beta_.end(), 0.0F);
}

std::vector<ParamRef> BatchNorm1d::params() {
    return {
        {gamma_.data(), g_gamma_.data(), gamma_.size()},
        {beta_.data(), g_beta_.data(), beta_.size()},
    };
}

}  // namespace bg::nn
