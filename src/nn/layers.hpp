#pragma once

/// \file layers.hpp
/// The dense layers of the BoolGebra predictor (Fig 3g): Linear, ReLU6,
/// Sigmoid, Dropout and BatchNorm1d, each with explicit forward/backward.
/// Layers cache what backward needs — only when forward runs in train
/// mode; eval-mode forward skips the cache copies entirely, which keeps
/// the inference hot path allocation-light.  Inputs are taken as
/// ConstMatrixView so batched callers can pass zero-copy row panels.  The
/// training loop is single-threaded by design (one model instance per
/// thread if parallelism is wanted); the optional `pool` shards the GEMM
/// row panels without changing a single output bit.
///
/// Every layer also exposes a `forward_eval()` that is genuinely `const`:
/// it computes the same bits as `forward(x, /*train=*/false)` but never
/// touches the backward caches, so one model instance can serve
/// concurrent inference (the FlowService shares a
/// `shared_ptr<const BoolGebraModel>` across jobs).  Per-thread
/// temporaries live in an EvalScratch the caller threads through.

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace bg::nn {

/// A view of one trainable tensor for the optimizer.
struct ParamRef {
    float* value = nullptr;
    float* grad = nullptr;
    std::size_t size = 0;
};

/// Reusable temporaries for the const eval-mode forward path.  Buffers are
/// sized on first use and reused across forward_eval() calls, so a long
/// inference stream allocates once.  One scratch per thread: instances
/// must never be shared between concurrent forwards.
struct EvalScratch {
    Matrix standardized;  ///< model input standardization buffer
    /// SageConv neighbor-aggregation buffers, one per conv layer (layer
    /// widths differ, so sharing one buffer would reallocate every call).
    std::vector<Matrix> sage_agg;
};

class Linear {
public:
    Linear(std::size_t in, std::size_t out, bg::Rng& rng);

    /// `train` = false skips the input cache (backward then requires a new
    /// train-mode forward first).
    Matrix forward(ConstMatrixView x, bool train = true,
                   bg::ThreadPool* pool = nullptr);
    /// Same bits as forward(x, false) without touching any member.
    Matrix forward_eval(ConstMatrixView x,
                        bg::ThreadPool* pool = nullptr) const;
    /// Accumulates parameter gradients, returns dL/dx.
    Matrix backward(const Matrix& dy);

    void zero_grad();
    std::vector<ParamRef> params();

    std::size_t in_dim() const { return w_.rows(); }
    std::size_t out_dim() const { return w_.cols(); }
    Matrix& weights() { return w_; }
    std::vector<float>& bias() { return b_; }

private:
    Matrix w_;  // in x out
    std::vector<float> b_;
    Matrix gw_;
    std::vector<float> gb_;
    Matrix cache_x_;
};

/// min(max(x, 0), 6) — the paper's activation.
class ReLU6 {
public:
    Matrix forward(const Matrix& x, bool train = true);
    /// In-place clamp of the (by-value) input; stateless.
    Matrix forward_eval(Matrix x) const;
    Matrix backward(const Matrix& dy);

private:
    Matrix cache_x_;
};

class Sigmoid {
public:
    Matrix forward(const Matrix& x, bool train = true);
    /// In-place logistic of the (by-value) input; stateless.
    Matrix forward_eval(Matrix x) const;
    Matrix backward(const Matrix& dy);

private:
    Matrix cache_y_;
};

/// Inverted dropout: scales by 1/(1-rate) at train time, identity at eval.
class Dropout {
public:
    explicit Dropout(float rate) : rate_(rate) {}

    Matrix forward(const Matrix& x, bool train, bg::Rng& rng);
    Matrix backward(const Matrix& dy);

    float rate() const { return rate_; }

private:
    float rate_;
    std::vector<float> mask_;  // per element, 0 or 1/(1-rate)
    bool last_train_ = false;
};

class BatchNorm1d {
public:
    explicit BatchNorm1d(std::size_t dim, float momentum = 0.1F,
                         float eps = 1e-5F);

    Matrix forward(const Matrix& x, bool train);
    /// Same bits as forward(x, false) — running statistics for a single
    /// row, batch statistics otherwise — without touching any member.
    Matrix forward_eval(const Matrix& x) const;
    Matrix backward(const Matrix& dy);

    void zero_grad();
    std::vector<ParamRef> params();

    std::size_t dim() const { return gamma_.size(); }

private:
    /// Per-column batch mean/variance, shared by the train and eval
    /// forwards so their arithmetic cannot drift apart.
    void batch_stats(const Matrix& x, std::vector<float>& mean,
                     std::vector<float>& var) const;

    std::vector<float> gamma_;
    std::vector<float> beta_;
    std::vector<float> g_gamma_;
    std::vector<float> g_beta_;
    std::vector<float> running_mean_;
    std::vector<float> running_var_;
    float momentum_;
    float eps_;
    // Backward caches (train mode).
    Matrix cache_xhat_;
    std::vector<float> cache_inv_std_;
};

}  // namespace bg::nn
