#pragma once

/// \file sage.hpp
/// GraphSAGE convolution with mean aggregation (Hamilton et al., NeurIPS
/// 2017) — the paper's graph encoder.  One design means one fixed graph,
/// so a batch of B samples shares a single CSR adjacency and stacks node
/// features as B consecutive blocks of N rows.

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"

namespace bg::nn {

/// Compressed sparse row adjacency (undirected; built by core::build_csr).
struct Csr {
    std::vector<std::int32_t> offsets;    ///< size num_nodes + 1
    std::vector<std::int32_t> neighbors;  ///< size 2 * |edges|
    /// Precomputed 1/degree per node (0 for isolated nodes), filled by
    /// build_inv_deg().  mean_aggregate takes its fast path when present
    /// — one division per node per design instead of per inference call —
    /// and falls back to dividing on the fly (bit-identical) when empty,
    /// so hand-built CSRs keep working.
    std::vector<float> inv_deg;

    std::size_t num_nodes() const { return offsets.size() - 1; }
    std::size_t degree(std::size_t v) const {
        return static_cast<std::size_t>(offsets[v + 1] - offsets[v]);
    }
    void build_inv_deg();
};

/// y_i = x_i W_self + mean_{j in N(i)} x_j W_neigh + b
class SageConv {
public:
    SageConv(std::size_t in, std::size_t out, bg::Rng& rng);

    /// `x` is (B*N, in); the same CSR applies to each of the B blocks.
    /// `train` = false skips the backward caches; `pool` shards the GEMM
    /// row panels bit-stably.
    Matrix forward(ConstMatrixView x, const Csr& csr, std::size_t batch,
                   bool train = true, bg::ThreadPool* pool = nullptr);
    /// Same bits as forward(x, ..., false) without touching any member;
    /// the neighbor aggregation reuses `agg` (one scratch buffer per
    /// layer per thread, see EvalScratch).
    Matrix forward_eval(ConstMatrixView x, const Csr& csr,
                        std::size_t batch, Matrix& agg,
                        bg::ThreadPool* pool = nullptr) const;
    Matrix backward(const Matrix& dy);

    void zero_grad();
    std::vector<ParamRef> params();

    std::size_t in_dim() const { return w_self_.rows(); }
    std::size_t out_dim() const { return w_self_.cols(); }

private:
    Matrix w_self_;
    Matrix w_neigh_;
    std::vector<float> b_;
    Matrix gw_self_;
    Matrix gw_neigh_;
    std::vector<float> gb_;
    // Caches.
    Matrix cache_x_;
    Matrix cache_h_;  // aggregated neighbors
    const Csr* csr_ = nullptr;
    std::size_t batch_ = 0;
};

/// H[i] = mean of X over i's neighbors, per batch block.  `h` is reused
/// without reallocation when it already has the right shape.  `pool`
/// shards the row range edge-balanced (boundaries from a binary search on
/// the CSR offsets, so heavy hubs don't serialize a shard); every row is
/// accumulated wholly inside one shard in the same order as the serial
/// loop, so the result is bit-identical at any worker count.
void mean_aggregate(ConstMatrixView x, const Csr& csr, std::size_t batch,
                    Matrix& h, bg::ThreadPool* pool = nullptr);
/// Transposed aggregation: DX[j] += DH[i]/deg(i) for each edge (i, j).
void mean_aggregate_transpose(ConstMatrixView dh, const Csr& csr,
                              std::size_t batch, Matrix& dx);

/// Mean pooling over each block of N node rows -> (B, F), and its adjoint.
void mean_pool(ConstMatrixView x, std::size_t batch, Matrix& pooled);
void mean_pool_backward(const Matrix& dpooled, std::size_t num_nodes,
                        Matrix& dx);

}  // namespace bg::nn
