#include "nn/optimizer.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace bg::nn {

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1,
           double beta2, double eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        BG_EXPECTS(p.value != nullptr && p.grad != nullptr,
                   "optimizer parameter must be bound");
        m_.emplace_back(p.size, 0.0F);
        v_.emplace_back(p.size, 0.0F);
    }
}

void Adam::step() {
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t p = 0; p < params_.size(); ++p) {
        auto& param = params_[p];
        auto& m = m_[p];
        auto& v = v_[p];
        for (std::size_t i = 0; i < param.size; ++i) {
            const double g = param.grad[i];
            m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
            v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            param.value[i] -= static_cast<float>(
                lr_ * mhat / (std::sqrt(vhat) + eps_));
        }
    }
}

double StepDecay::at_epoch(unsigned epoch) const {
    return base_lr * std::pow(factor, static_cast<double>(epoch / every));
}

}  // namespace bg::nn
