#include "nn/matrix.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace bg::nn {

Matrix Matrix::xavier(std::size_t fan_in, std::size_t fan_out, bg::Rng& rng) {
    Matrix m(fan_in, fan_out);
    const float bound = std::sqrt(
        6.0F / static_cast<float>(fan_in + fan_out));
    for (auto& v : m.data_) {
        v = (2.0F * rng.next_float() - 1.0F) * bound;
    }
    return m;
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c) {
    BG_EXPECTS(a.cols() == b.rows(), "matmul shape mismatch");
    c = Matrix(a.rows(), b.cols());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.cols();
    for (std::size_t i = 0; i < n; ++i) {
        float* ci = c.row(i);
        const float* ai = a.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = ai[p];
            if (av == 0.0F) {
                continue;
            }
            const float* bp = b.row(p);
            for (std::size_t j = 0; j < m; ++j) {
                ci[j] += av * bp[j];
            }
        }
    }
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& c) {
    BG_EXPECTS(a.rows() == b.rows(), "matmul_tn shape mismatch");
    c = Matrix(a.cols(), b.cols());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.cols();
    for (std::size_t r = 0; r < n; ++r) {
        const float* ar = a.row(r);
        const float* br = b.row(r);
        for (std::size_t i = 0; i < k; ++i) {
            const float av = ar[i];
            if (av == 0.0F) {
                continue;
            }
            float* ci = c.row(i);
            for (std::size_t j = 0; j < m; ++j) {
                ci[j] += av * br[j];
            }
        }
    }
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c) {
    BG_EXPECTS(a.cols() == b.cols(), "matmul_nt shape mismatch");
    c = Matrix(a.rows(), b.rows());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.rows();
    for (std::size_t i = 0; i < n; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        for (std::size_t j = 0; j < m; ++j) {
            const float* bj = b.row(j);
            float acc = 0.0F;
            for (std::size_t p = 0; p < k; ++p) {
                acc += ai[p] * bj[p];
            }
            ci[j] = acc;
        }
    }
}

void add_row_bias(Matrix& y, std::span<const float> bias) {
    BG_EXPECTS(bias.size() == y.cols(), "bias width mismatch");
    for (std::size_t i = 0; i < y.rows(); ++i) {
        float* yi = y.row(i);
        for (std::size_t j = 0; j < y.cols(); ++j) {
            yi[j] += bias[j];
        }
    }
}

void accumulate_bias_grad(const Matrix& dy, std::span<float> bias_grad) {
    BG_EXPECTS(bias_grad.size() == dy.cols(), "bias grad width mismatch");
    for (std::size_t i = 0; i < dy.rows(); ++i) {
        const float* row = dy.row(i);
        for (std::size_t j = 0; j < dy.cols(); ++j) {
            bias_grad[j] += row[j];
        }
    }
}

}  // namespace bg::nn
