#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace bg::nn {

Matrix Matrix::xavier(std::size_t fan_in, std::size_t fan_out, bg::Rng& rng) {
    Matrix m(fan_in, fan_out);
    const float bound = std::sqrt(
        6.0F / static_cast<float>(fan_in + fan_out));
    for (auto& v : m.data_) {
        v = (2.0F * rng.next_float() - 1.0F) * bound;
    }
    return m;
}

// ---------------------------------------------------------------------------
// Blocked GEMM
//
// C += A * B as  (row panels) x (k blocks) x (register tiles).  Each output
// element accumulates its k contributions strictly in ascending p order —
// the same order as the naive ikj loop — so blocking, tiling, the tile
// size a given ISA picks, and row-panel sharding never change a single bit
// of the result.  The micro kernel keeps an Mr x Nr tile of C in registers
// across a whole k block; its loops have compile-time trip counts so the
// compiler fully unrolls and vectorizes them.
//
// The row-panel driver is compiled once per ISA (SSE baseline, AVX2,
// AVX-512) and the variant is picked once at runtime — the rest of the
// build keeps its portable flags.  matrix.cpp is compiled with
// -ffp-contract=off (see CMakeLists) so no variant fuses mul+add into FMA;
// every kernel therefore matches the naive reference bit-for-bit.
// ---------------------------------------------------------------------------

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define BG_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define BG_ALWAYS_INLINE inline
#endif

/// k-block depth: a kKc-deep panel of B stays cache-resident while a whole
/// row panel of A streams past it.
constexpr std::size_t kKc = 256;
/// Rows of C per parallel work item (multiple of every Mr below).
constexpr std::size_t kRowPanel = 64;

/// Full Mr x Nr tile: compile-time bounds, accumulators live in registers
/// for the whole k block.  always_inline so the body is compiled with the
/// ISA of whichever driver variant it is expanded into.
template <std::size_t Mr, std::size_t Nr>
BG_ALWAYS_INLINE void micro_tile_full(const float* a, std::size_t lda,
                                      const float* b, std::size_t ldb,
                                      float* c, std::size_t ldc,
                                      std::size_t kc) {
    float acc[Mr][Nr];
    for (std::size_t r = 0; r < Mr; ++r) {
        for (std::size_t j = 0; j < Nr; ++j) {
            acc[r][j] = c[r * ldc + j];
        }
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const float* bp = b + p * ldb;
        for (std::size_t r = 0; r < Mr; ++r) {
            const float ar = a[r * lda + p];
            for (std::size_t j = 0; j < Nr; ++j) {
                acc[r][j] += ar * bp[j];
            }
        }
    }
    for (std::size_t r = 0; r < Mr; ++r) {
        for (std::size_t j = 0; j < Nr; ++j) {
            c[r * ldc + j] = acc[r][j];
        }
    }
}

/// Edge tile with runtime bounds (mr <= Mr, nr <= Nr); same accumulation
/// order as the full tile.
template <std::size_t Mr, std::size_t Nr>
BG_ALWAYS_INLINE void micro_tile_edge(const float* a, std::size_t lda,
                                      const float* b, std::size_t ldb,
                                      float* c, std::size_t ldc,
                                      std::size_t kc, std::size_t mr,
                                      std::size_t nr) {
    float acc[Mr][Nr];
    for (std::size_t r = 0; r < mr; ++r) {
        for (std::size_t j = 0; j < nr; ++j) {
            acc[r][j] = c[r * ldc + j];
        }
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const float* bp = b + p * ldb;
        for (std::size_t r = 0; r < mr; ++r) {
            const float ar = a[r * lda + p];
            for (std::size_t j = 0; j < nr; ++j) {
                acc[r][j] += ar * bp[j];
            }
        }
    }
    for (std::size_t r = 0; r < mr; ++r) {
        for (std::size_t j = 0; j < nr; ++j) {
            c[r * ldc + j] = acc[r][j];
        }
    }
}

/// C[r0..r1) += A[r0..r1) * B over the full k and m extents.  Raw pointers
/// and strides only: routing them through the view structs here defeats
/// the vectorizer (measured 6x slower).
template <std::size_t Mr, std::size_t Nr>
BG_ALWAYS_INLINE void gemm_rows_impl(const float* A, std::size_t lda,
                                     const float* B, std::size_t ldb,
                                     float* C, std::size_t ldc,
                                     std::size_t r0, std::size_t r1,
                                     std::size_t k, std::size_t m) {
    for (std::size_t pp = 0; pp < k; pp += kKc) {
        const std::size_t kc = std::min(kKc, k - pp);
        const float* bpp = B + pp * ldb;
        for (std::size_t i = r0; i < r1; i += Mr) {
            const std::size_t mr = std::min(Mr, r1 - i);
            const float* ai = A + i * lda + pp;
            float* ci = C + i * ldc;
            std::size_t j = 0;
            if (mr == Mr) {
                for (; j + Nr <= m; j += Nr) {
                    micro_tile_full<Mr, Nr>(ai, lda, bpp + j, ldb, ci + j,
                                            ldc, kc);
                }
            }
            for (; j < m; j += Nr) {
                micro_tile_edge<Mr, Nr>(ai, lda, bpp + j, ldb, ci + j, ldc,
                                        kc, mr, std::min(Nr, m - j));
            }
        }
    }
}

using RowsFn = void (*)(const float*, std::size_t, const float*, std::size_t,
                        float*, std::size_t, std::size_t, std::size_t,
                        std::size_t, std::size_t);

void gemm_rows_portable(const float* A, std::size_t lda, const float* B,
                        std::size_t ldb, float* C, std::size_t ldc,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t m) {
    gemm_rows_impl<4, 8>(A, lda, B, ldb, C, ldc, r0, r1, k, m);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BG_GEMM_MULTIVERSION 1
// Tile sizes per ISA: the accumulator tile must fit the register file
// (AVX2: 4x32 floats = 16 ymm; AVX-512: 8x32 = 16 zmm of 32).
__attribute__((target("avx2"))) void gemm_rows_avx2(
    const float* A, std::size_t lda, const float* B, std::size_t ldb,
    float* C, std::size_t ldc, std::size_t r0, std::size_t r1, std::size_t k,
    std::size_t m) {
    gemm_rows_impl<4, 32>(A, lda, B, ldb, C, ldc, r0, r1, k, m);
}
__attribute__((target("avx512f"))) void gemm_rows_avx512(
    const float* A, std::size_t lda, const float* B, std::size_t ldb,
    float* C, std::size_t ldc, std::size_t r0, std::size_t r1, std::size_t k,
    std::size_t m) {
    gemm_rows_impl<8, 32>(A, lda, B, ldb, C, ldc, r0, r1, k, m);
}
#endif

RowsFn pick_rows_fn() {
#if defined(BG_GEMM_MULTIVERSION)
    if (__builtin_cpu_supports("avx512f")) {
        return gemm_rows_avx512;
    }
    if (__builtin_cpu_supports("avx2")) {
        return gemm_rows_avx2;
    }
#endif
    return gemm_rows_portable;
}

/// ISA dispatch, resolved once (thread-safe magic static).
RowsFn rows_fn() {
    static const RowsFn fn = pick_rows_fn();
    return fn;
}

void gemm_rows(ConstMatrixView a, ConstMatrixView b, MatrixView c,
               std::size_t r0, std::size_t r1) {
    rows_fn()(a.row(0), a.stride(), b.row(0), b.stride(), c.row(0),
              c.stride(), r0, r1, a.cols(), b.cols());
}

/// Cache-blocked transpose pack (the `_tn`/`_nt` operands become plain
/// row-major panels for the one shared kernel).
Matrix transposed(ConstMatrixView a) {
    Matrix t(a.cols(), a.rows());
    constexpr std::size_t kTb = 32;
    for (std::size_t ii = 0; ii < a.rows(); ii += kTb) {
        const std::size_t ie = std::min(ii + kTb, a.rows());
        for (std::size_t jj = 0; jj < a.cols(); jj += kTb) {
            const std::size_t je = std::min(jj + kTb, a.cols());
            for (std::size_t i = ii; i < ie; ++i) {
                const float* src = a.row(i);
                for (std::size_t j = jj; j < je; ++j) {
                    t.at(j, i) = src[j];
                }
            }
        }
    }
    return t;
}

}  // namespace

void gemm_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                     bg::ThreadPool* pool) {
    BG_EXPECTS(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "gemm shape mismatch");
    const std::size_t n = a.rows();
    if (n == 0 || b.cols() == 0 || a.cols() == 0) {
        return;
    }
    const std::size_t panels = (n + kRowPanel - 1) / kRowPanel;
    if (pool == nullptr || panels <= 1 || pool->size() == 0) {
        gemm_rows(a, b, c, 0, n);
        return;
    }
    // Disjoint row panels: each output element is produced by exactly one
    // worker with the sequential kernel, so the result is schedule-free.
    pool->for_each(panels, [&](std::size_t pi) {
        const std::size_t lo = pi * kRowPanel;
        gemm_rows(a, b, c, lo, std::min(n, lo + kRowPanel));
    });
}

void matmul(ConstMatrixView a, ConstMatrixView b, Matrix& c,
            bg::ThreadPool* pool) {
    BG_EXPECTS(a.cols() == b.rows(), "matmul shape mismatch");
    c = Matrix(a.rows(), b.cols());
    gemm_accumulate(a, b, c.view(), pool);
}

void matmul_tn(ConstMatrixView a, ConstMatrixView b, Matrix& c,
               bg::ThreadPool* pool) {
    BG_EXPECTS(a.rows() == b.rows(), "matmul_tn shape mismatch");
    const Matrix at = transposed(a);
    c = Matrix(a.cols(), b.cols());
    gemm_accumulate(at, b, c.view(), pool);
}

void matmul_nt(ConstMatrixView a, ConstMatrixView b, Matrix& c,
               bg::ThreadPool* pool) {
    BG_EXPECTS(a.cols() == b.cols(), "matmul_nt shape mismatch");
    const Matrix bt = transposed(b);
    c = Matrix(a.rows(), b.rows());
    gemm_accumulate(a, bt, c.view(), pool);
}

// ---------------------------------------------------------------------------
// Naive reference kernels (the seed's triple loops, view-ified)
// ---------------------------------------------------------------------------

void matmul_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c) {
    BG_EXPECTS(a.cols() == b.rows(), "matmul shape mismatch");
    c = Matrix(a.rows(), b.cols());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.cols();
    for (std::size_t i = 0; i < n; ++i) {
        float* ci = c.row(i);
        const float* ai = a.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = ai[p];
            if (av == 0.0F) {
                continue;
            }
            const float* bp = b.row(p);
            for (std::size_t j = 0; j < m; ++j) {
                ci[j] += av * bp[j];
            }
        }
    }
}

void matmul_tn_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c) {
    BG_EXPECTS(a.rows() == b.rows(), "matmul_tn shape mismatch");
    c = Matrix(a.cols(), b.cols());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.cols();
    for (std::size_t r = 0; r < n; ++r) {
        const float* ar = a.row(r);
        const float* br = b.row(r);
        for (std::size_t i = 0; i < k; ++i) {
            const float av = ar[i];
            if (av == 0.0F) {
                continue;
            }
            float* ci = c.row(i);
            for (std::size_t j = 0; j < m; ++j) {
                ci[j] += av * br[j];
            }
        }
    }
}

void matmul_nt_naive(ConstMatrixView a, ConstMatrixView b, Matrix& c) {
    BG_EXPECTS(a.cols() == b.cols(), "matmul_nt shape mismatch");
    c = Matrix(a.rows(), b.rows());
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    const std::size_t m = b.rows();
    for (std::size_t i = 0; i < n; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        for (std::size_t j = 0; j < m; ++j) {
            const float* bj = b.row(j);
            float acc = 0.0F;
            for (std::size_t p = 0; p < k; ++p) {
                acc += ai[p] * bj[p];
            }
            ci[j] = acc;
        }
    }
}

void add_row_bias(MatrixView y, std::span<const float> bias) {
    BG_EXPECTS(bias.size() == y.cols(), "bias width mismatch");
    for (std::size_t i = 0; i < y.rows(); ++i) {
        float* yi = y.row(i);
        for (std::size_t j = 0; j < y.cols(); ++j) {
            yi[j] += bias[j];
        }
    }
}

void accumulate_bias_grad(ConstMatrixView dy, std::span<float> bias_grad) {
    BG_EXPECTS(bias_grad.size() == dy.cols(), "bias grad width mismatch");
    for (std::size_t i = 0; i < dy.rows(); ++i) {
        const float* row = dy.row(i);
        for (std::size_t j = 0; j < dy.cols(); ++j) {
            bias_grad[j] += row[j];
        }
    }
}

}  // namespace bg::nn
