#pragma once

/// \file optimizer.hpp
/// Adam (Kingma & Ba, 2014) with the paper's step-decay schedule
/// (learning rate halves every 100 epochs from a base of 8e-7).

#include <vector>

#include "nn/layers.hpp"

namespace bg::nn {

class Adam {
public:
    explicit Adam(std::vector<ParamRef> params, double lr = 1e-3,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    void step();
    void set_lr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }
    std::size_t steps_taken() const { return t_; }

private:
    std::vector<ParamRef> params_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    std::size_t t_ = 0;
};

/// lr(epoch) = base * factor^(epoch / every)  — the paper: 0.5 every 100.
struct StepDecay {
    double base_lr = 8e-7;
    double factor = 0.5;
    unsigned every = 100;

    double at_epoch(unsigned epoch) const;
};

}  // namespace bg::nn
