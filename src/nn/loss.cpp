#include "nn/loss.hpp"

#include "util/contracts.hpp"

namespace bg::nn {

LossResult mse_loss(const Matrix& pred, std::span<const float> target) {
    BG_EXPECTS(pred.cols() == 1, "predictions must be a column");
    BG_EXPECTS(pred.rows() == target.size(), "prediction/target mismatch");
    LossResult out;
    out.grad = Matrix(pred.rows(), 1);
    const auto n = static_cast<double>(pred.rows());
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        const double d = pred.at(i, 0) - target[i];
        out.loss += d * d;
        out.grad.at(i, 0) = static_cast<float>(2.0 * d / n);
    }
    out.loss /= n;
    return out;
}

double mse_value(const Matrix& pred, std::span<const float> target) {
    BG_EXPECTS(pred.cols() == 1, "predictions must be a column");
    BG_EXPECTS(pred.rows() == target.size(), "prediction/target mismatch");
    double loss = 0.0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        const double d = pred.at(i, 0) - target[i];
        loss += d * d;
    }
    return loss / static_cast<double>(pred.rows());
}

}  // namespace bg::nn
