#include "nn/loss.hpp"

#include "util/contracts.hpp"

namespace bg::nn {

LossResult mse_loss(const Matrix& pred, std::span<const float> target) {
    BG_EXPECTS(pred.cols() == 1, "predictions must be a column");
    BG_EXPECTS(pred.rows() == target.size(), "prediction/target mismatch");
    LossResult out;
    out.grad = Matrix(pred.rows(), 1);
    const auto n = static_cast<double>(pred.rows());
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        const double d = pred.at(i, 0) - target[i];
        out.loss += d * d;
        out.grad.at(i, 0) = static_cast<float>(2.0 * d / n);
    }
    out.loss /= n;
    return out;
}

namespace {

void check_masked_shapes(const Matrix& pred, const Matrix& target,
                         const Matrix& mask) {
    BG_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols(),
               "prediction/target shape mismatch");
    BG_EXPECTS(pred.rows() == mask.rows() && pred.cols() == mask.cols(),
               "prediction/mask shape mismatch");
}

}  // namespace

LossResult masked_mse_loss(const Matrix& pred, const Matrix& target,
                           const Matrix& mask) {
    check_masked_shapes(pred, target, mask);
    LossResult out;
    out.grad = Matrix(pred.rows(), pred.cols());
    // Two passes: the gradient scale is 1/count, so count first.
    std::size_t count = 0;
    for (std::size_t i = 0; i < mask.rows(); ++i) {
        for (std::size_t j = 0; j < mask.cols(); ++j) {
            count += mask.at(i, j) != 0.0F ? 1 : 0;
        }
    }
    if (count == 0) {
        return out;  // nothing labelled: loss 0, zero gradient
    }
    const auto n = static_cast<double>(count);
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        for (std::size_t j = 0; j < pred.cols(); ++j) {
            if (mask.at(i, j) == 0.0F) {
                out.grad.at(i, j) = 0.0F;
                continue;
            }
            const double d = pred.at(i, j) - target.at(i, j);
            out.loss += d * d;
            out.grad.at(i, j) = static_cast<float>(2.0 * d / n);
        }
    }
    out.loss /= n;
    return out;
}

double masked_mse_value(const Matrix& pred, const Matrix& target,
                        const Matrix& mask) {
    check_masked_shapes(pred, target, mask);
    double loss = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        for (std::size_t j = 0; j < pred.cols(); ++j) {
            if (mask.at(i, j) == 0.0F) {
                continue;
            }
            const double d = pred.at(i, j) - target.at(i, j);
            loss += d * d;
            ++count;
        }
    }
    return count != 0 ? loss / static_cast<double>(count) : 0.0;
}

std::vector<double> masked_mse_per_column(const Matrix& pred,
                                          const Matrix& target,
                                          const Matrix& mask,
                                          std::vector<std::size_t>* counts) {
    check_masked_shapes(pred, target, mask);
    std::vector<double> loss(pred.cols(), 0.0);
    std::vector<std::size_t> count(pred.cols(), 0);
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        for (std::size_t j = 0; j < pred.cols(); ++j) {
            if (mask.at(i, j) == 0.0F) {
                continue;
            }
            const double d = pred.at(i, j) - target.at(i, j);
            loss[j] += d * d;
            ++count[j];
        }
    }
    for (std::size_t j = 0; j < loss.size(); ++j) {
        loss[j] = count[j] != 0 ? loss[j] / static_cast<double>(count[j])
                                : 0.0;
    }
    if (counts != nullptr) {
        *counts = std::move(count);
    }
    return loss;
}

double mse_value(const Matrix& pred, std::span<const float> target) {
    BG_EXPECTS(pred.cols() == 1, "predictions must be a column");
    BG_EXPECTS(pred.rows() == target.size(), "prediction/target mismatch");
    double loss = 0.0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
        const double d = pred.at(i, 0) - target[i];
        loss += d * d;
    }
    return loss / static_cast<double>(pred.rows());
}

}  // namespace bg::nn
