#pragma once

/// \file cec_bdd.hpp
/// BDD-based combinational equivalence checking: build both networks'
/// output diagrams over a shared variable order; canonicity makes the
/// comparison exact.  Falls back to ProbablyEquivalent when the diagrams
/// blow past the node limit (the caller can then try SAT).
///
/// One of the three engines raced by bg::verify::PortfolioCec; the
/// `cancel`/`timeout_seconds` options let the portfolio stop a losing
/// BDD build early.

#include <atomic>

#include "aig/cec.hpp"
#include "bdd/bdd.hpp"

namespace bg::bdd {

/// BDD references of every PO of `g` inside `mgr` (PI i = variable i).
std::vector<BddManager::Ref> build_po_bdds(BddManager& mgr,
                                           const aig::Aig& g);

struct BddCecOptions {
    std::size_t node_limit = 2'000'000;
    /// Cooperative cancellation: polled every few dozen AND gates while
    /// the diagrams are built; a set flag degrades the verdict to
    /// ProbablyEquivalent.  Must outlive the call.
    const std::atomic<bool>* cancel = nullptr;
    /// Wall-clock budget in seconds (0 = unlimited), checked at the same
    /// points as `cancel`.
    double timeout_seconds = 0.0;
};

struct BddCecResult {
    aig::CecVerdict verdict = aig::CecVerdict::ProbablyEquivalent;
    /// PI assignment witnessing NotEquivalent (one bool per PI, indexed
    /// by PI position); empty otherwise, or when extracting the witness
    /// itself overflowed the node limit (the verdict stands on
    /// canonicity alone).
    std::vector<bool> counterexample;
};

BddCecResult check_equivalence_bdd_full(const aig::Aig& a, const aig::Aig& b,
                                        const BddCecOptions& opts = {});

aig::CecVerdict check_equivalence_bdd(const aig::Aig& a, const aig::Aig& b,
                                      const BddCecOptions& opts = {});

}  // namespace bg::bdd
