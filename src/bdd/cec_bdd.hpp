#pragma once

/// \file cec_bdd.hpp
/// BDD-based combinational equivalence checking: build both networks'
/// output diagrams over a shared variable order; canonicity makes the
/// comparison exact.  Falls back to ProbablyEquivalent when the diagrams
/// blow past the node limit (the caller can then try SAT).

#include "aig/cec.hpp"
#include "bdd/bdd.hpp"

namespace bg::bdd {

/// BDD references of every PO of `g` inside `mgr` (PI i = variable i).
std::vector<BddManager::Ref> build_po_bdds(BddManager& mgr,
                                           const aig::Aig& g);

struct BddCecOptions {
    std::size_t node_limit = 2'000'000;
};

aig::CecVerdict check_equivalence_bdd(const aig::Aig& a, const aig::Aig& b,
                                      const BddCecOptions& opts = {});

}  // namespace bg::bdd
