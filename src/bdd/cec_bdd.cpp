#include "bdd/cec_bdd.hpp"

#include "util/contracts.hpp"

namespace bg::bdd {

std::vector<BddManager::Ref> build_po_bdds(BddManager& mgr,
                                           const aig::Aig& g) {
    BG_EXPECTS(mgr.num_vars() >= g.num_pis(),
               "manager must have one variable per PI");
    std::vector<BddManager::Ref> node_bdd(g.num_slots(),
                                          BddManager::bdd_false);
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        node_bdd[g.pi(i)] = mgr.var(static_cast<unsigned>(i));
    }
    const auto lit_bdd = [&](aig::Lit l) {
        const auto r = node_bdd[aig::lit_var(l)];
        return aig::lit_is_compl(l) ? mgr.not_(r) : r;
    };
    for (const aig::Var v : g.topo_ands()) {
        node_bdd[v] = mgr.and_(lit_bdd(g.fanin0(v)), lit_bdd(g.fanin1(v)));
    }
    std::vector<BddManager::Ref> pos;
    pos.reserve(g.num_pos());
    for (const aig::Lit po : g.pos()) {
        pos.push_back(lit_bdd(po));
    }
    return pos;
}

aig::CecVerdict check_equivalence_bdd(const aig::Aig& a, const aig::Aig& b,
                                      const BddCecOptions& opts) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "equivalence check requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "equivalence check requires matching PO counts");
    try {
        BddManager mgr(static_cast<unsigned>(a.num_pis()), opts.node_limit);
        const auto pa = build_po_bdds(mgr, a);
        const auto pb = build_po_bdds(mgr, b);
        for (std::size_t i = 0; i < pa.size(); ++i) {
            if (pa[i] != pb[i]) {
                return aig::CecVerdict::NotEquivalent;  // canonical forms
            }
        }
        return aig::CecVerdict::Equivalent;
    } catch (const BddOverflow&) {
        return aig::CecVerdict::ProbablyEquivalent;
    }
}

}  // namespace bg::bdd
