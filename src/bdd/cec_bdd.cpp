#include "bdd/cec_bdd.hpp"

#include <chrono>

#include "util/contracts.hpp"

namespace bg::bdd {

namespace {

/// Internal unwind for a cancelled/timed-out build; never escapes this
/// translation unit.
struct BddCancelled {};

/// As build_po_bdds, polling `stop` every 64 AND gates so a losing BDD
/// build can be abandoned quickly: single ITE calls on a blown-up
/// diagram dominate the build tail, so a coarse poll would let a
/// cancelled build run long after another engine already won the race.
template <typename StopFn>
std::vector<BddManager::Ref> build_po_bdds_cancellable(BddManager& mgr,
                                                       const aig::Aig& g,
                                                       StopFn&& stop) {
    BG_EXPECTS(mgr.num_vars() >= g.num_pis(),
               "manager must have one variable per PI");
    std::vector<BddManager::Ref> node_bdd(g.num_slots(),
                                          BddManager::bdd_false);
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        node_bdd[g.pi(i)] = mgr.var(static_cast<unsigned>(i));
    }
    const auto lit_bdd = [&](aig::Lit l) {
        const auto r = node_bdd[aig::lit_var(l)];
        return aig::lit_is_compl(l) ? mgr.not_(r) : r;
    };
    const auto ref_bdd = [&](aig::NodeRef f) {
        const auto r = node_bdd[f.index()];
        return f.complemented() ? mgr.not_(r) : r;
    };
    std::size_t gates = 0;
    for (const aig::Var v : g.topo_ands()) {
        if ((++gates & 63U) == 0 && stop()) {
            throw BddCancelled{};
        }
        const auto [f0, f1] = g.fanin_refs(v);
        node_bdd[v] = mgr.and_(ref_bdd(f0), ref_bdd(f1));
    }
    std::vector<BddManager::Ref> pos;
    pos.reserve(g.num_pos());
    for (const aig::Lit po : g.pos()) {
        pos.push_back(lit_bdd(po));
    }
    return pos;
}

}  // namespace

std::vector<BddManager::Ref> build_po_bdds(BddManager& mgr,
                                           const aig::Aig& g) {
    return build_po_bdds_cancellable(mgr, g, [] { return false; });
}

BddCecResult check_equivalence_bdd_full(const aig::Aig& a, const aig::Aig& b,
                                        const BddCecOptions& opts) {
    BG_EXPECTS(a.num_pis() == b.num_pis(),
               "equivalence check requires matching PI counts");
    BG_EXPECTS(a.num_pos() == b.num_pos(),
               "equivalence check requires matching PO counts");
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline = Clock::time_point::max();
    if (opts.timeout_seconds > 0.0) {
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(opts.timeout_seconds));
    }
    const auto stop = [&opts, deadline] {
        if (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_relaxed)) {
            return true;
        }
        return opts.timeout_seconds > 0.0 && Clock::now() >= deadline;
    };
    BddCecResult res;
    if (stop()) {
        // Pre-cancelled (e.g. another portfolio engine already won): the
        // in-build poll only fires every 256 gates, so small designs need
        // this upfront check to degrade deterministically.
        return res;
    }
    try {
        BddManager mgr(static_cast<unsigned>(a.num_pis()), opts.node_limit);
        const auto pa = build_po_bdds_cancellable(mgr, a, stop);
        const auto pb = build_po_bdds_cancellable(mgr, b, stop);
        for (std::size_t i = 0; i < pa.size(); ++i) {
            if (pa[i] != pb[i]) {  // canonical forms
                res.verdict = aig::CecVerdict::NotEquivalent;
                try {
                    res.counterexample =
                        mgr.find_satisfying(mgr.xor_(pa[i], pb[i]));
                } catch (const BddOverflow&) {
                    // Witness lost, verdict unaffected.
                }
                return res;
            }
        }
        res.verdict = aig::CecVerdict::Equivalent;
        return res;
    } catch (const BddOverflow&) {
        return res;
    } catch (const BddCancelled&) {
        return res;
    }
}

aig::CecVerdict check_equivalence_bdd(const aig::Aig& a, const aig::Aig& b,
                                      const BddCecOptions& opts) {
    return check_equivalence_bdd_full(a, b, opts).verdict;
}

}  // namespace bg::bdd
