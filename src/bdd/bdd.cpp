#include "bdd/bdd.hpp"

#include <cmath>
#include <functional>

#include "util/contracts.hpp"

namespace bg::bdd {

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
    BG_EXPECTS(num_vars <= 4096, "unreasonable BDD variable count");
    // Terminals: index 0 = FALSE, 1 = TRUE; var = num_vars_ sorts last.
    nodes_.push_back(Node{num_vars_, 0, 0});
    nodes_.push_back(Node{num_vars_, 1, 1});
}

BddManager::Ref BddManager::make_node(unsigned v, Ref low, Ref high) {
    if (low == high) {
        return low;  // redundant test elimination
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(v) << 48) ^
                              (static_cast<std::uint64_t>(low) << 24) ^
                              high;
    const auto it = unique_.find(key);
    if (it != unique_.end()) {
        return it->second;
    }
    if (nodes_.size() >= node_limit_) {
        throw BddOverflow(node_limit_);
    }
    nodes_.push_back(Node{v, low, high});
    const Ref r = static_cast<Ref>(nodes_.size() - 1);
    unique_.emplace(key, r);
    return r;
}

BddManager::Ref BddManager::var(unsigned i) {
    BG_EXPECTS(i < num_vars_, "BDD variable out of range");
    return make_node(i, bdd_false, bdd_true);
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
    // Terminal cases.
    if (f == bdd_true) {
        return g;
    }
    if (f == bdd_false) {
        return h;
    }
    if (g == h) {
        return g;
    }
    if (g == bdd_true && h == bdd_false) {
        return f;
    }

    const std::uint64_t key = (static_cast<std::uint64_t>(f) << 42) ^
                              (static_cast<std::uint64_t>(g) << 21) ^ h;
    if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
        return it->second;
    }

    const unsigned v = std::min({top_var(f), top_var(g), top_var(h)});
    const auto cof = [&](Ref x, bool hi) {
        if (top_var(x) != v) {
            return x;
        }
        return hi ? nodes_[x].high : nodes_[x].low;
    };
    const Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
    const Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
    const Ref r = make_node(v, lo, hi);
    ite_cache_.emplace(key, r);
    return r;
}

bool BddManager::evaluate(Ref f, const std::vector<bool>& assignment) const {
    BG_EXPECTS(assignment.size() >= num_vars_,
               "assignment must cover every variable");
    while (f > bdd_true) {
        const auto& n = nodes_[f];
        f = assignment[n.var] ? n.high : n.low;
    }
    return f == bdd_true;
}

std::vector<bool> BddManager::find_satisfying(Ref f) const {
    if (f == bdd_false) {
        return {};
    }
    std::vector<bool> assignment(num_vars_, false);
    while (f > bdd_true) {
        const auto& n = nodes_[f];
        // Reduced diagram: any child other than bdd_false is satisfiable.
        if (n.high != bdd_false) {
            assignment[n.var] = true;
            f = n.high;
        } else {
            f = n.low;
        }
    }
    return assignment;
}

double BddManager::count_minterms(Ref f) {
    // count(f) relative to the full space of num_vars_ variables: each
    // node's count scales by 2^(child_var - var - 1) skipped levels.
    std::unordered_map<Ref, double>& memo = count_cache_;
    const std::function<double(Ref)> walk = [&](Ref r) -> double {
        if (r == bdd_false) {
            return 0.0;
        }
        if (r == bdd_true) {
            return 1.0;
        }
        if (const auto it = memo.find(r); it != memo.end()) {
            return it->second;
        }
        const auto& n = nodes_[r];
        const double lo = walk(n.low) *
                          std::exp2(static_cast<double>(
                              top_var(n.low) - n.var - 1));
        const double hi = walk(n.high) *
                          std::exp2(static_cast<double>(
                              top_var(n.high) - n.var - 1));
        const double total = lo + hi;
        memo.emplace(r, total);
        return total;
    };
    // Normalize the root: it may not start at variable 0.
    return walk(f) * std::exp2(static_cast<double>(top_var(f)));
}

std::size_t BddManager::size_of(Ref f) const {
    std::vector<Ref> stack{f};
    std::unordered_map<Ref, bool> seen;
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref r = stack.back();
        stack.pop_back();
        if (r <= bdd_true || seen[r]) {
            continue;
        }
        seen[r] = true;
        ++count;
        stack.push_back(nodes_[r].low);
        stack.push_back(nodes_[r].high);
    }
    return count;
}

}  // namespace bg::bdd
