#pragma once

/// \file bdd.hpp
/// A compact ROBDD package (unique table + memoized ITE, fixed variable
/// order, no complement edges) — the third independent verification
/// engine next to simulation and SAT.  BDDs are canonical: two functions
/// are equal iff their node indices are equal, which makes equivalence
/// checking a pointer comparison once the diagrams are built.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace bg::bdd {

/// Thrown when a diagram exceeds the manager's node limit (the classic
/// BDD failure mode; callers degrade to SAT or simulation).
class BddOverflow : public std::runtime_error {
public:
    explicit BddOverflow(std::size_t limit)
        : std::runtime_error("BDD node limit exceeded (" +
                             std::to_string(limit) + ")") {}
};

class BddManager {
public:
    using Ref = std::uint32_t;
    static constexpr Ref bdd_false = 0;
    static constexpr Ref bdd_true = 1;

    explicit BddManager(unsigned num_vars,
                        std::size_t node_limit = 2'000'000);

    unsigned num_vars() const { return num_vars_; }
    /// Live node count, terminals included.
    std::size_t num_nodes() const { return nodes_.size(); }

    /// Projection variable i (ordered by index: smaller index = higher).
    Ref var(unsigned i);
    Ref nvar(unsigned i) { return not_(var(i)); }

    /// if f then g else h — the universal connective.
    Ref ite(Ref f, Ref g, Ref h);

    Ref and_(Ref a, Ref b) { return ite(a, b, bdd_false); }
    Ref or_(Ref a, Ref b) { return ite(a, bdd_true, b); }
    Ref xor_(Ref a, Ref b) { return ite(a, not_(b), b); }
    Ref not_(Ref a) { return ite(a, bdd_false, bdd_true); }

    /// Evaluate under a complete assignment (indexed by variable).
    bool evaluate(Ref f, const std::vector<bool>& assignment) const;

    /// One satisfying assignment of `f` over all num_vars() variables
    /// (variables off f's support default to false); empty when
    /// f == bdd_false.  Exists for every other node: in a reduced diagram
    /// only bdd_false denotes the unsatisfiable function, so a greedy
    /// walk away from it always reaches bdd_true.  The BDD CEC engine
    /// uses this to turn a differing output pair into a counterexample.
    std::vector<bool> find_satisfying(Ref f) const;

    /// Number of satisfying assignments over all num_vars() variables
    /// (exact as long as it fits a double's integer range).
    double count_minterms(Ref f);

    /// Structural size of one function's diagram (reachable nodes).
    std::size_t size_of(Ref f) const;

private:
    struct Node {
        unsigned var = 0;  ///< terminals use var = num_vars_
        Ref low = 0;
        Ref high = 0;
    };

    Ref make_node(unsigned v, Ref low, Ref high);
    unsigned top_var(Ref f) const { return nodes_[f].var; }

    unsigned num_vars_;
    std::size_t node_limit_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, Ref> unique_;
    std::unordered_map<std::uint64_t, Ref> ite_cache_;
    std::unordered_map<Ref, double> count_cache_;
};

}  // namespace bg::bdd
