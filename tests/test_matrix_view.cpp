/// \file test_matrix_view.cpp
/// MatrixView/ConstMatrixView semantics (strides, aliasing, view-of-view,
/// degenerate panels) and blocked-GEMM parity against the naive reference
/// kernels across odd shapes — bit-for-bit, including under ThreadPool
/// row-panel sharding and for non-contiguous view operands.

#include <gtest/gtest.h>

#include "nn/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using bg::nn::ConstMatrixView;
using bg::nn::Matrix;
using bg::nn::MatrixView;

Matrix random_matrix(std::size_t r, std::size_t c, bg::Rng& rng,
                     float scale = 1.0F) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = scale * (2.0F * rng.next_float() - 1.0F);
    }
    return m;
}

void expect_bit_equal(const Matrix& a, const Matrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
    }
}

// ---------------------------------------------------------------------------
// View semantics
// ---------------------------------------------------------------------------

TEST(MatrixView, WholeMatrixViewIsContiguous) {
    bg::Rng rng(1);
    const Matrix m = random_matrix(5, 7, rng);
    const ConstMatrixView v = m.view();
    EXPECT_EQ(v.rows(), 5U);
    EXPECT_EQ(v.cols(), 7U);
    EXPECT_EQ(v.stride(), 7U);
    EXPECT_TRUE(v.contiguous());
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 7; ++j) {
            EXPECT_EQ(v.at(i, j), m.at(i, j));
        }
    }
}

TEST(MatrixView, RowPanelSharesStorage) {
    bg::Rng rng(2);
    Matrix m = random_matrix(6, 4, rng);
    const ConstMatrixView panel = m.rows_view(2, 3);
    EXPECT_EQ(panel.rows(), 3U);
    EXPECT_EQ(panel.cols(), 4U);
    EXPECT_TRUE(panel.contiguous());
    EXPECT_EQ(panel.row(0), m.row(2));  // same storage, not a copy
    // Writes through the owner are visible through the view.
    m.at(3, 1) = 42.0F;
    EXPECT_EQ(panel.at(1, 1), 42.0F);
}

TEST(MatrixView, MutableViewWritesAlias) {
    Matrix m(4, 3);
    MatrixView panel = m.rows_view(1, 2);
    panel.at(0, 2) = 7.0F;
    panel.row(1)[0] = -3.0F;
    EXPECT_EQ(m.at(1, 2), 7.0F);
    EXPECT_EQ(m.at(2, 0), -3.0F);
}

TEST(MatrixView, BlockIsNonContiguous) {
    bg::Rng rng(3);
    const Matrix m = random_matrix(8, 10, rng);
    const ConstMatrixView b = m.view().block(2, 3, 4, 5);
    EXPECT_EQ(b.rows(), 4U);
    EXPECT_EQ(b.cols(), 5U);
    EXPECT_EQ(b.stride(), 10U);
    EXPECT_FALSE(b.contiguous());
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            EXPECT_EQ(b.at(i, j), m.at(2 + i, 3 + j));
        }
    }
}

TEST(MatrixView, ViewOfViewComposes) {
    bg::Rng rng(4);
    const Matrix m = random_matrix(10, 6, rng);
    const ConstMatrixView outer = m.view().block(1, 1, 8, 4);
    const ConstMatrixView inner = outer.rows_view(2, 3).block(1, 1, 2, 2);
    EXPECT_EQ(inner.stride(), 6U);  // still the root stride
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_EQ(inner.at(i, j), m.at(1 + 2 + 1 + i, 1 + 1 + j));
        }
    }
}

TEST(MatrixView, DegeneratePanels) {
    bg::Rng rng(5);
    const Matrix m = random_matrix(9, 9, rng);
    const ConstMatrixView one_row = m.rows_view(4, 1);
    EXPECT_EQ(one_row.rows(), 1U);
    EXPECT_EQ(one_row.cols(), 9U);
    const ConstMatrixView one_col = m.view().block(0, 5, 9, 1);
    EXPECT_EQ(one_col.cols(), 1U);
    EXPECT_FALSE(one_col.contiguous());
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(one_col.at(i, 0), m.at(i, 5));
    }
    const ConstMatrixView empty = m.rows_view(3, 0);
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.size(), 0U);
}

TEST(MatrixView, MaterializeStridedView) {
    bg::Rng rng(6);
    const Matrix m = random_matrix(7, 8, rng);
    const Matrix copy(m.view().block(1, 2, 5, 3));
    EXPECT_EQ(copy.rows(), 5U);
    EXPECT_EQ(copy.cols(), 3U);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(copy.at(i, j), m.at(1 + i, 2 + j));
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked GEMM parity vs the naive kernels
// ---------------------------------------------------------------------------

// Shapes chosen to hit every edge path: 1x1, single row/col, tile-size
// boundaries (4/8/32 plus-minus one), k-block boundary (256/257), and the
// 257x129 odd panel from the issue.
struct Shape {
    std::size_t n, k, m;
};
const Shape kShapes[] = {
    {1, 1, 1},     {1, 5, 1},     {1, 1, 9},    {3, 1, 2},    {2, 3, 5},
    {4, 8, 8},     {5, 9, 7},     {7, 33, 31},  {8, 32, 32},  {9, 31, 33},
    {16, 17, 40},  {33, 64, 65},  {63, 12, 48}, {64, 257, 9}, {65, 128, 33},
    {257, 193, 129}};

TEST(BlockedGemm, MatmulMatchesNaiveBitExact) {
    bg::Rng rng(7);
    for (const auto& s : kShapes) {
        const Matrix a = random_matrix(s.n, s.k, rng);
        const Matrix b = random_matrix(s.k, s.m, rng);
        Matrix ref;
        bg::nn::matmul_naive(a, b, ref);
        Matrix out;
        bg::nn::matmul(a, b, out);
        expect_bit_equal(ref, out);
    }
}

TEST(BlockedGemm, MatmulTnMatchesNaiveBitExact) {
    bg::Rng rng(8);
    for (const auto& s : kShapes) {
        const Matrix a = random_matrix(s.k, s.n, rng);  // A^T is n x k
        const Matrix b = random_matrix(s.k, s.m, rng);
        Matrix ref;
        bg::nn::matmul_tn_naive(a, b, ref);
        Matrix out;
        bg::nn::matmul_tn(a, b, out);
        expect_bit_equal(ref, out);
    }
}

TEST(BlockedGemm, MatmulNtMatchesNaiveBitExact) {
    bg::Rng rng(9);
    for (const auto& s : kShapes) {
        const Matrix a = random_matrix(s.n, s.k, rng);
        const Matrix b = random_matrix(s.m, s.k, rng);  // B^T is k x m
        Matrix ref;
        bg::nn::matmul_nt_naive(a, b, ref);
        Matrix out;
        bg::nn::matmul_nt(a, b, out);
        expect_bit_equal(ref, out);
    }
}

TEST(BlockedGemm, SparseInputsWithZeroRows) {
    // The naive kernel skips zero A entries; the blocked kernel must land
    // on the same values anyway (features are full of exact zeros).
    bg::Rng rng(10);
    Matrix a = random_matrix(37, 29, rng);
    for (std::size_t i = 0; i < a.rows(); i += 3) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            a.at(i, j) = 0.0F;
        }
    }
    for (std::size_t j = 0; j < a.cols(); j += 4) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
            a.at(i, j) = 0.0F;
        }
    }
    const Matrix b = random_matrix(29, 23, rng);
    Matrix ref;
    bg::nn::matmul_naive(a, b, ref);
    Matrix out;
    bg::nn::matmul(a, b, out);
    expect_bit_equal(ref, out);
}

TEST(BlockedGemm, StridedViewOperandsMatchMaterializedCopies) {
    bg::Rng rng(11);
    const Matrix big_a = random_matrix(70, 90, rng);
    const Matrix big_b = random_matrix(80, 100, rng);
    const ConstMatrixView a = big_a.view().block(3, 5, 41, 37);
    const ConstMatrixView b = big_b.view().block(7, 2, 37, 53);
    Matrix from_views;
    bg::nn::matmul(a, b, from_views);
    Matrix from_copies;
    bg::nn::matmul(Matrix(a), Matrix(b), from_copies);
    expect_bit_equal(from_copies, from_views);
}

TEST(BlockedGemm, AccumulateIntoStridedDestination) {
    bg::Rng rng(12);
    const Matrix a = random_matrix(6, 10, rng);
    const Matrix b = random_matrix(10, 5, rng);
    Matrix dense;
    bg::nn::matmul(a, b, dense);
    // Write the same product into a sub-block of a larger zeroed matrix.
    Matrix target(12, 9);
    bg::nn::gemm_accumulate(a, b, target.view().block(3, 2, 6, 5));
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 9; ++j) {
            const bool inside = i >= 3 && i < 9 && j >= 2 && j < 7;
            EXPECT_EQ(target.at(i, j),
                      inside ? dense.at(i - 3, j - 2) : 0.0F);
        }
    }
}

TEST(BlockedGemm, ThreadPoolShardingIsBitStable) {
    bg::Rng rng(13);
    const Matrix a = random_matrix(257, 65, rng);
    const Matrix b = random_matrix(65, 43, rng);
    Matrix seq;
    bg::nn::matmul(a, b, seq);
    for (const std::size_t workers : {1U, 2U, 8U}) {
        bg::ThreadPool pool(workers);
        Matrix par;
        bg::nn::matmul(a, b, par, &pool);
        expect_bit_equal(seq, par);
        Matrix par_tn;
        bg::nn::matmul_tn(Matrix(b), Matrix(b), par_tn, &pool);
        Matrix seq_tn;
        bg::nn::matmul_tn(Matrix(b), Matrix(b), seq_tn);
        expect_bit_equal(seq_tn, par_tn);
    }
}

TEST(BlockedGemm, PoolRepeatedCallsAreDeterministic) {
    bg::Rng rng(14);
    const Matrix a = random_matrix(130, 70, rng);
    const Matrix b = random_matrix(70, 66, rng);
    bg::ThreadPool pool(4);
    Matrix first;
    bg::nn::matmul(a, b, first, &pool);
    for (int round = 0; round < 5; ++round) {
        Matrix again;
        bg::nn::matmul(a, b, again, &pool);
        expect_bit_equal(first, again);
    }
}

}  // namespace
