#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "io/aiger.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

TEST(AigerBinary, RoundTripRandomGraphs) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        const Aig g = bg::test::random_aig(6, 40, 3, seed);
        const auto bytes = bg::io::write_aiger_binary_string(g);
        const Aig h = bg::io::read_aiger_binary_string(bytes);
        EXPECT_EQ(h.num_pis(), g.num_pis());
        EXPECT_EQ(h.num_pos(), g.num_pos());
        EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent)
            << "seed " << seed;
    }
}

TEST(AigerBinary, BinaryIsSmallerThanAscii) {
    const Aig g = bg::test::random_aig(8, 200, 4, 9);
    const auto ascii = bg::io::write_aiger_string(g);
    const auto binary = bg::io::write_aiger_binary_string(g);
    EXPECT_LT(binary.size(), ascii.size());
}

TEST(AigerBinary, KnownEncoding) {
    // Single AND of two inputs: header, one output line, deltas 2,2
    // (lhs=6, rhs0=4, rhs1=2).
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(a, b));
    const auto bytes = bg::io::write_aiger_binary_string(g);
    const std::string expected_header = "aig 3 2 0 1 1\n6\n";
    ASSERT_GT(bytes.size(), expected_header.size());
    EXPECT_EQ(bytes.substr(0, expected_header.size()), expected_header);
    EXPECT_EQ(static_cast<unsigned char>(bytes[expected_header.size()]), 2u);
    EXPECT_EQ(static_cast<unsigned char>(bytes[expected_header.size() + 1]),
              2u);
}

TEST(AigerBinary, MultiByteDeltas) {
    // Force deltas >= 128: a wide AND tree makes late nodes reference
    // early literals.
    Aig g;
    const auto pis = g.add_pis(80);
    Lit acc = pis[0];
    for (std::size_t i = 1; i < pis.size(); ++i) {
        acc = g.and_(acc, pis[i]);
    }
    g.add_po(acc);
    const auto bytes = bg::io::write_aiger_binary_string(g);
    const Aig h = bg::io::read_aiger_binary_string(bytes);
    EXPECT_EQ(h.num_ands(), g.num_ands());
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::ProbablyEquivalent);
}

TEST(AigerBinary, ComplementedOutputsSurvive) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(lit_not(g.and_(a, lit_not(b))));
    g.add_po(lit_true);
    const Aig h =
        bg::io::read_aiger_binary_string(bg::io::write_aiger_binary_string(g));
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
    EXPECT_EQ(h.po(1), lit_true);
}

TEST(AigerBinary, RejectsLatches) {
    EXPECT_THROW((void)bg::io::read_aiger_binary_string("aig 1 0 1 0 0\n"),
                 std::runtime_error);
}

TEST(AigerBinary, RejectsTruncatedDelta) {
    // Header promises one AND but the delta block is empty.
    EXPECT_THROW(
        (void)bg::io::read_aiger_binary_string("aig 3 2 0 1 1\n6\n"),
        std::runtime_error);
}

TEST(AigerBinary, RejectsBadHeader) {
    EXPECT_THROW((void)bg::io::read_aiger_binary_string("aag 1 1 0 0 0\n2\n"),
                 std::runtime_error);
    // M != I + A.
    EXPECT_THROW((void)bg::io::read_aiger_binary_string("aig 9 2 0 0 1\n"),
                 std::runtime_error);
}

TEST(AigerBinary, AutoDetectionByMagic) {
    const Aig g = bg::test::random_aig(5, 25, 2, 3);
    const auto dir = std::filesystem::temp_directory_path();
    const auto ascii_path = dir / "bg_auto_test.aag";
    const auto binary_path = dir / "bg_auto_test.aig";
    bg::io::write_aiger_file(g, ascii_path);
    bg::io::write_aiger_binary_file(g, binary_path);
    const Aig ga = bg::io::read_aiger_auto_file(ascii_path);
    const Aig gb = bg::io::read_aiger_auto_file(binary_path);
    EXPECT_EQ(check_equivalence(g, ga), CecVerdict::Equivalent);
    EXPECT_EQ(check_equivalence(g, gb), CecVerdict::Equivalent);
    std::filesystem::remove(ascii_path);
    std::filesystem::remove(binary_path);
}

TEST(AigerBinary, CrossFormatAgreement) {
    // ascii -> graph -> binary -> graph: same interface, same function,
    // same node count (writers may topologically reorder, so the check is
    // semantic rather than byte-exact).
    const Aig g = bg::test::redundant_aig(7, 30, 3, 12);
    const auto ascii1 = bg::io::write_aiger_string(g);
    const Aig first = bg::io::read_aiger_string(ascii1);
    const Aig via_binary = bg::io::read_aiger_binary_string(
        bg::io::write_aiger_binary_string(first));
    EXPECT_EQ(via_binary.num_pis(), first.num_pis());
    EXPECT_EQ(via_binary.num_pos(), first.num_pos());
    EXPECT_EQ(via_binary.num_ands(), first.num_ands());
    EXPECT_EQ(check_equivalence(first, via_binary), CecVerdict::Equivalent);
}

}  // namespace
