/// \file test_net_protocol.cpp
/// BGNP codec hardening: round-trips of every message type, then the
/// negative space — truncation at every byte boundary, hostile length
/// prefixes, bad magic/version/type/reserved, trailing junk, semantic
/// out-of-range fields, and garbage AIGER blobs.  Every malformed input
/// must surface as a typed ProtocolError (or io parse error), never a
/// crash — this suite runs under the ASan/UBSan CI jobs.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/aiger.hpp"
#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::net;  // NOLINT: test brevity

/// Frame a payload, push it through a FrameDecoder one byte at a time
/// (the worst-case TCP segmentation), and return the reassembled frame.
Frame roundtrip_frame(MsgType type, const std::vector<std::uint8_t>& payload) {
    const auto wire = encode_frame(type, payload);
    FrameDecoder decoder;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        EXPECT_FALSE(decoder.next().has_value())
            << "frame completed " << (wire.size() - i) << " bytes early";
        decoder.feed(&wire[i], 1);
    }
    auto frame = decoder.next();
    EXPECT_TRUE(frame.has_value());
    EXPECT_FALSE(decoder.next().has_value()) << "phantom second frame";
    return std::move(*frame);
}

SubmitJobMsg sample_submit() {
    SubmitJobMsg m;
    m.job_id = 42;
    m.kind = DesignKind::AigerBlob;
    m.name = "b07";
    m.design = std::string("aig binary\0bytes", 16);
    m.objective = "weighted:1,0.5";
    m.num_samples = 600;
    m.top_k = 10;
    m.rounds = 3;
    m.seed = 0xDEADBEEF;
    m.verify = true;
    m.want_progress = true;
    m.timeout_seconds = 12.5;
    return m;
}

ResultMsg sample_result() {
    ResultMsg m;
    m.job_id = 42;
    m.status = JobStatus::Ok;
    m.message = "";
    m.ranked_by = "size";
    m.objective = "size";
    m.original_ands = 403;
    m.final_ands = 291;
    m.bg_best_ratio = 0.722;
    m.bg_mean_ratio = 0.81;
    m.final_ratio = 0.722;
    m.rounds_run = 1;
    m.verdict = WireVerdict::Equivalent;
    m.seconds = 0.37;
    m.optimized = std::string("\x01\x02\x00\x03", 4);
    return m;
}

StatsReplyMsg sample_stats() {
    StatsReplyMsg m;
    m.jobs_submitted = 10;
    m.jobs_completed = 8;
    m.jobs_pending = 2;
    m.jobs_cancelled = 1;
    m.jobs_timed_out = 1;
    m.jobs_rejected = 3;
    m.samples_run = 4800;
    m.jobs_verified = 5;
    m.jobs_refuted = 0;
    m.jobs_unknown = 1;
    m.uptime_seconds = 12.25;
    m.p50_latency_seconds = 0.25;
    m.p95_latency_seconds = 0.5;
    TenantStatsWire t;
    t.name = "acme";
    t.submitted = 4;
    t.completed = 4;
    t.ok = 3;
    t.cancelled = 1;
    t.pending = 0;
    m.tenants = {TenantStatsWire{}, t};
    return m;
}

TEST(NetProtocol, HelloRoundTrip) {
    HelloMsg m;
    m.client_version = kProtocolVersion;
    m.token = "tenant-a";
    const auto frame = roundtrip_frame(MsgType::Hello, m.encode());
    ASSERT_EQ(frame.type, MsgType::Hello);
    const auto got = HelloMsg::decode(frame.payload);
    EXPECT_EQ(got.client_version, m.client_version);
    EXPECT_EQ(got.token, m.token);
}

TEST(NetProtocol, HelloAckRoundTrip) {
    HelloAckMsg m;
    m.session_id = 7;
    m.tenant = "acme";
    m.max_payload = kMaxPayloadBytes;
    const auto got =
        HelloAckMsg::decode(roundtrip_frame(MsgType::HelloAck, m.encode())
                                .payload);
    EXPECT_EQ(got.session_id, 7u);
    EXPECT_EQ(got.tenant, "acme");
    EXPECT_EQ(got.max_payload, kMaxPayloadBytes);
}

TEST(NetProtocol, SubmitJobRoundTrip) {
    const SubmitJobMsg m = sample_submit();
    const auto got = SubmitJobMsg::decode(
        roundtrip_frame(MsgType::SubmitJob, m.encode()).payload);
    EXPECT_EQ(got.job_id, m.job_id);
    EXPECT_EQ(got.kind, m.kind);
    EXPECT_EQ(got.name, m.name);
    EXPECT_EQ(got.design, m.design);
    EXPECT_EQ(got.objective, m.objective);
    EXPECT_EQ(got.num_samples, m.num_samples);
    EXPECT_EQ(got.top_k, m.top_k);
    EXPECT_EQ(got.rounds, m.rounds);
    EXPECT_EQ(got.seed, m.seed);
    EXPECT_EQ(got.verify, m.verify);
    EXPECT_EQ(got.want_progress, m.want_progress);
    EXPECT_EQ(got.timeout_seconds, m.timeout_seconds);
}

TEST(NetProtocol, ProgressAndCancelRoundTrip) {
    ProgressMsg p;
    p.job_id = 9;
    p.round = 2;
    p.ands = 123;
    const auto gp = ProgressMsg::decode(
        roundtrip_frame(MsgType::Progress, p.encode()).payload);
    EXPECT_EQ(gp.job_id, 9u);
    EXPECT_EQ(gp.round, 2u);
    EXPECT_EQ(gp.ands, 123u);

    CancelMsg c;
    c.job_id = 9;
    EXPECT_EQ(CancelMsg::decode(
                  roundtrip_frame(MsgType::Cancel, c.encode()).payload)
                  .job_id,
              9u);
}

TEST(NetProtocol, ResultRoundTrip) {
    const ResultMsg m = sample_result();
    const auto got = ResultMsg::decode(
        roundtrip_frame(MsgType::Result, m.encode()).payload);
    EXPECT_EQ(got.job_id, m.job_id);
    EXPECT_EQ(got.status, m.status);
    EXPECT_EQ(got.ranked_by, m.ranked_by);
    EXPECT_EQ(got.original_ands, m.original_ands);
    EXPECT_EQ(got.final_ands, m.final_ands);
    EXPECT_EQ(got.bg_best_ratio, m.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, m.bg_mean_ratio);
    EXPECT_EQ(got.final_ratio, m.final_ratio);
    EXPECT_EQ(got.rounds_run, m.rounds_run);
    EXPECT_EQ(got.verdict, m.verdict);
    EXPECT_EQ(got.seconds, m.seconds);
    EXPECT_EQ(got.optimized, m.optimized);
}

TEST(NetProtocol, StatsRoundTrip) {
    const StatsReplyMsg m = sample_stats();
    const auto got = StatsReplyMsg::decode(
        roundtrip_frame(MsgType::StatsReply, m.encode()).payload);
    EXPECT_EQ(got.jobs_submitted, m.jobs_submitted);
    EXPECT_EQ(got.jobs_pending, m.jobs_pending);
    EXPECT_EQ(got.samples_run, m.samples_run);
    EXPECT_EQ(got.uptime_seconds, m.uptime_seconds);
    ASSERT_EQ(got.tenants.size(), 2u);
    EXPECT_EQ(got.tenants[0].name, "");
    EXPECT_EQ(got.tenants[1].name, "acme");
    EXPECT_EQ(got.tenants[1].ok, 3u);
    EXPECT_EQ(got.tenants[1].cancelled, 1u);
}

TEST(NetProtocol, EmptyMessagesRoundTrip) {
    (void)StatsRequestMsg::decode(
        roundtrip_frame(MsgType::StatsRequest, StatsRequestMsg{}.encode())
            .payload);
    (void)ShutdownMsg::decode(
        roundtrip_frame(MsgType::Shutdown, ShutdownMsg{}.encode()).payload);
    (void)ShutdownAckMsg::decode(
        roundtrip_frame(MsgType::ShutdownAck, ShutdownAckMsg{}.encode())
            .payload);

    ErrorMsg e;
    e.code = static_cast<std::uint32_t>(ErrCode::UnknownTenant);
    e.message = "no such tenant";
    const auto got =
        ErrorMsg::decode(roundtrip_frame(MsgType::Error, e.encode()).payload);
    EXPECT_EQ(got.code, e.code);
    EXPECT_EQ(got.message, e.message);
}

// ---------------------------------------------------------------------
// Frame-header negatives.  Only the 12 header bytes are fed: a hostile
// header must throw before any payload is buffered.

std::vector<std::uint8_t> valid_header(std::uint32_t payload_len) {
    const auto frame = encode_frame(MsgType::Cancel, CancelMsg{}.encode());
    std::vector<std::uint8_t> header(frame.begin(),
                                     frame.begin() + kHeaderSize);
    std::memcpy(&header[8], &payload_len, 4);  // little-endian hosts only
    return header;
}

ProtoErr feed_header_expecting_throw(std::vector<std::uint8_t> header) {
    FrameDecoder decoder;
    decoder.feed(header.data(), header.size());
    try {
        (void)decoder.next();
    } catch (const ProtocolError& e) {
        return e.code();
    }
    ADD_FAILURE() << "hostile header was accepted";
    return ProtoErr::BadMagic;
}

TEST(NetProtocol, BadMagicRejected) {
    auto header = valid_header(8);
    header[0] ^= 0xFF;
    EXPECT_EQ(feed_header_expecting_throw(std::move(header)),
              ProtoErr::BadMagic);
}

TEST(NetProtocol, BadVersionRejected) {
    auto header = valid_header(8);
    header[4] = kProtocolVersion + 1;
    EXPECT_EQ(feed_header_expecting_throw(std::move(header)),
              ProtoErr::BadVersion);
}

TEST(NetProtocol, UnknownTypeRejected) {
    auto header = valid_header(8);
    header[5] = 0;  // below Hello
    EXPECT_EQ(feed_header_expecting_throw(header), ProtoErr::BadType);
    header[5] = 200;  // above ShutdownAck
    EXPECT_EQ(feed_header_expecting_throw(std::move(header)),
              ProtoErr::BadType);
}

TEST(NetProtocol, NonzeroReservedRejected) {
    auto header = valid_header(8);
    header[6] = 1;
    EXPECT_EQ(feed_header_expecting_throw(std::move(header)),
              ProtoErr::BadReserved);
}

TEST(NetProtocol, OversizedLengthPrefixRejectedBeforeBuffering) {
    // 4 GiB-ish length prefix: the decoder must throw on the header alone
    // instead of trying to allocate or waiting for payload bytes.
    EXPECT_EQ(feed_header_expecting_throw(valid_header(0xFFFFFFF0u)),
              ProtoErr::Oversized);
    EXPECT_EQ(feed_header_expecting_throw(valid_header(
                  static_cast<std::uint32_t>(kMaxPayloadBytes) + 1)),
              ProtoErr::Oversized);
}

TEST(NetProtocol, PayloadAtCapBoundaryAccepted) {
    // Exactly kMaxPayloadBytes must pass header validation (the cap is
    // inclusive); we feed the header only and expect "incomplete", not a
    // throw.
    auto header =
        valid_header(static_cast<std::uint32_t>(kMaxPayloadBytes));
    FrameDecoder decoder;
    decoder.feed(header.data(), header.size());
    EXPECT_FALSE(decoder.next().has_value());
}

// ---------------------------------------------------------------------
// Payload truncation and trailing junk, at *every* byte boundary.

template <typename Msg>
void expect_all_prefixes_rejected(const char* what,
                                  const std::vector<std::uint8_t>& payload) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(payload.begin(),
                                               payload.begin() +
                                                   static_cast<std::ptrdiff_t>(cut));
        EXPECT_THROW((void)Msg::decode(prefix), ProtocolError)
            << what << " truncated to " << cut << "/" << payload.size()
            << " bytes must not decode";
    }
    auto junk = payload;
    junk.push_back(0x5A);
    try {
        (void)Msg::decode(junk);
        ADD_FAILURE() << what << ": trailing byte accepted";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ProtoErr::TrailingBytes) << what;
    }
}

TEST(NetProtocol, TruncationAtEveryFieldBoundaryRejected) {
    HelloMsg hello;
    hello.token = "tok";
    expect_all_prefixes_rejected<HelloMsg>("Hello", hello.encode());
    HelloAckMsg ack;
    ack.tenant = "acme";
    expect_all_prefixes_rejected<HelloAckMsg>("HelloAck", ack.encode());
    expect_all_prefixes_rejected<SubmitJobMsg>("SubmitJob",
                                               sample_submit().encode());
    expect_all_prefixes_rejected<ProgressMsg>("Progress",
                                              ProgressMsg{}.encode());
    expect_all_prefixes_rejected<ResultMsg>("Result",
                                            sample_result().encode());
    expect_all_prefixes_rejected<CancelMsg>("Cancel", CancelMsg{}.encode());
    expect_all_prefixes_rejected<StatsReplyMsg>("StatsReply",
                                                sample_stats().encode());
    ErrorMsg err;
    err.message = "boom";
    expect_all_prefixes_rejected<ErrorMsg>("Error", err.encode());
}

TEST(NetProtocol, SemanticallyInvalidFieldsRejected) {
    // Unknown DesignKind byte (offset 8, after the u64 job id).
    auto submit = sample_submit().encode();
    submit[8] = 7;
    EXPECT_THROW((void)SubmitJobMsg::decode(submit), ProtocolError);

    // Unknown flag bits.
    auto submit2 = sample_submit().encode();
    submit2[submit2.size() - 9] = 0xFF;  // flags byte precedes the f64
    EXPECT_THROW((void)SubmitJobMsg::decode(submit2), ProtocolError);

    // Unknown JobStatus (offset 8) and verdict in a Result.
    auto result = sample_result().encode();
    result[8] = 99;
    EXPECT_THROW((void)ResultMsg::decode(result), ProtocolError);

    // A Hello with a token larger than the remaining payload claims.
    WireWriter w;
    w.u32(kProtocolVersion);
    w.u32(0xFFFFFF);  // token "length" with no bytes behind it
    EXPECT_THROW((void)HelloMsg::decode(w.take()), ProtocolError);
}

TEST(NetProtocol, HostileTenantCountRejected) {
    // A StatsReply whose tenant count claims more entries than the
    // payload could possibly hold must throw instead of looping/allocating.
    WireWriter w;
    for (int i = 0; i < 10; ++i) {
        w.u64(0);
    }
    for (int i = 0; i < 3; ++i) {
        w.f64(0.0);
    }
    w.u32(0x7FFFFFFF);
    try {
        (void)StatsReplyMsg::decode(w.take());
        FAIL() << "hostile tenant count accepted";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ProtoErr::BadValue);
    }
}

TEST(NetProtocol, DecoderReassemblesBackToBackFrames) {
    // Two frames in one feed() call, split at an awkward offset.
    CancelMsg c1;
    c1.job_id = 1;
    CancelMsg c2;
    c2.job_id = 2;
    auto wire = encode_frame(MsgType::Cancel, c1.encode());
    const auto second = encode_frame(MsgType::Cancel, c2.encode());
    wire.insert(wire.end(), second.begin(), second.end());

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size() - 3);
    const auto first = decoder.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(CancelMsg::decode(first->payload).job_id, 1u);
    EXPECT_FALSE(decoder.next().has_value());
    decoder.feed(wire.data() + wire.size() - 3, 3);
    const auto got2 = decoder.next();
    ASSERT_TRUE(got2.has_value());
    EXPECT_EQ(CancelMsg::decode(got2->payload).job_id, 2u);
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetProtocol, RandomGarbageNeverCrashesDecoder) {
    // Deterministic fuzz: random byte streams either fail header checks
    // (almost always — the magic is 1 in 2^32) or produce frames; either
    // way no crash, no unbounded buffering.  Fresh decoder per stream:
    // a throw poisons the stream by contract.
    bg::Rng rng(0xF00D);
    for (int stream = 0; stream < 200; ++stream) {
        FrameDecoder decoder;
        std::vector<std::uint8_t> chunk(64);
        bool dead = false;
        for (int feeds = 0; feeds < 8 && !dead; ++feeds) {
            for (auto& b : chunk) {
                b = static_cast<std::uint8_t>(rng.next_below(256));
            }
            try {
                decoder.feed(chunk.data(), chunk.size());
                while (decoder.next().has_value()) {
                }
            } catch (const ProtocolError&) {
                dead = true;  // typed rejection is the expected outcome
            }
        }
    }
}

TEST(NetProtocol, GarbageAigerBlobThrowsTypedError) {
    // The server-side submit path parses untrusted AIGER bytes; every
    // malformed blob must throw a catchable exception, never crash.
    const std::string blobs[] = {
        "",
        "garbage",
        "aig 1 2 3",             // header only, no body
        "aag 4 1 0 1 2\n",       // ascii header on the binary parser
        std::string(64, '\0'),   // NUL soup
        "aig 999999999 999999999 0 1 999999999\n",  // absurd counts
    };
    for (const auto& blob : blobs) {
        EXPECT_THROW((void)bg::io::read_aiger_binary_string(blob),
                     std::exception)
            << "blob of " << blob.size() << " bytes";
    }
}

TEST(NetProtocol, WriterRejectsOversizedByteString) {
    WireWriter w;
    EXPECT_THROW(w.bytes(std::string(kMaxPayloadBytes + 1, 'x')),
                 ProtocolError);
}

}  // namespace
