/// \file test_net_server.cpp
/// FlowServer fault injection over real loopback sockets: bit-parity of
/// served results against the in-process FlowService, multi-tenant
/// concurrency, disconnect-mid-job cancellation, stop() with jobs in
/// flight, slow-reader backpressure/eviction, and wire-observable
/// quota/timeout/cancel accounting.  Every failure mode must resolve to
/// a typed outcome — no hang, no crash, no stalled tenant.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "core/flow_service.hpp"
#include "io/aiger.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"

namespace {

using namespace bg::net;  // NOLINT: test brevity
using bg::core::BoolGebraModel;
using bg::core::FlowService;
using bg::core::ModelConfig;
using bg::core::ServiceConfig;
using bg::core::SubmitOptions;
using bg::core::TenantConfig;

ModelConfig tiny_model_config(std::uint64_t seed = 21) {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = seed;
    return cfg;
}

ServiceConfig tiny_service(std::size_t workers = 2) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.flow.num_samples = 24;
    cfg.flow.top_k = 4;
    cfg.flow.seed = 11;
    return cfg;
}

ServerConfig tiny_server(std::size_t workers = 2) {
    ServerConfig cfg;
    cfg.port = 0;  // ephemeral
    cfg.service = tiny_service(workers);
    return cfg;
}

std::string blob_of(const char* name, double scale) {
    return bg::io::write_aiger_binary_string(
        bg::circuits::make_benchmark_scaled(name, scale));
}

SubmitJobMsg blob_job(const std::string& name, const std::string& blob) {
    SubmitJobMsg msg;
    msg.kind = DesignKind::AigerBlob;
    msg.name = name;
    msg.design = blob;
    return msg;
}

/// A job heavy enough (thousands of scored samples) that disconnect /
/// cancel / stop always lands while it is queued or running; the flow
/// polls its CancelToken inside the sample loops, so cancellation is
/// observed promptly regardless.
SubmitJobMsg heavy_job(const std::string& name, const std::string& blob) {
    SubmitJobMsg msg = blob_job(name, blob);
    msg.num_samples = 5000;
    return msg;
}

bool eventually(const std::function<bool()>& pred, double seconds = 20.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

/// Raw-socket loopback connect with the receive buffer clamped *before*
/// connect, so the advertised TCP window is small from the first byte —
/// the slow-reader test needs the server's writer to block after a few
/// kilobytes, deterministically.
TcpStream raw_connect(std::uint16_t port, int rcvbuf_bytes = 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw SocketError("socket");
    }
    if (rcvbuf_bytes > 0) {
        (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                           sizeof rcvbuf_bytes);
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
        0) {
        (void)::close(fd);
        throw SocketError("connect");
    }
    return TcpStream(fd);
}

Frame raw_read_frame(TcpStream& stream, FrameDecoder& decoder) {
    while (true) {
        if (auto frame = decoder.next()) {
            return std::move(*frame);
        }
        std::uint8_t buf[4096];
        const std::size_t got = stream.read_some(buf, sizeof buf);
        if (got == 0) {
            throw SocketError("eof");
        }
        decoder.feed(buf, got);
    }
}

void raw_send(TcpStream& stream, MsgType type,
              const std::vector<std::uint8_t>& payload) {
    const auto wire = encode_frame(type, payload);
    stream.write_all(wire.data(), wire.size());
}

// ---------------------------------------------------------------------

TEST(NetServer, LoopbackJobsMatchInProcessService) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    const std::vector<std::string> names = {"b07", "b08", "b09"};
    std::vector<std::string> blobs;
    for (const auto& name : names) {
        blobs.push_back(blob_of(name.c_str(), 0.3));
    }

    // In-process reference on the *round-tripped* graphs — the server
    // parses the submitted AIGER bytes, so parity must too.
    struct Ref {
        std::size_t original = 0;
        std::size_t final = 0;
        double final_ratio = 1.0;
        std::string optimized;
    };
    std::vector<Ref> refs;
    {
        FlowService service(tiny_service(), model);
        for (std::size_t i = 0; i < names.size(); ++i) {
            SubmitOptions opts;
            opts.want_graph = true;
            auto fut = service.submit(
                {names[i], bg::io::read_aiger_binary_string(blobs[i])},
                std::move(opts));
            const auto res = fut.get();
            ASSERT_NE(res.final_graph, nullptr);
            refs.push_back({res.original_size, res.iterated.final_size,
                            res.iterated.final_ratio,
                            bg::io::write_aiger_binary_string(
                                *res.final_graph)});
        }
        service.stop();
    }

    FlowServer server(tiny_server(), model);
    FlowClient client({.host = "127.0.0.1", .port = server.port(), .token = ""});
    EXPECT_EQ(client.session().tenant, "");
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < names.size(); ++i) {
        ids.push_back(client.submit(blob_job(names[i], blobs[i])));
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        const ResultMsg res = client.wait(ids[i]);
        EXPECT_EQ(res.status, JobStatus::Ok) << res.message;
        EXPECT_EQ(res.original_ands, refs[i].original);
        EXPECT_EQ(res.final_ands, refs[i].final);
        EXPECT_EQ(res.final_ratio, refs[i].final_ratio);
        EXPECT_EQ(res.optimized, refs[i].optimized)
            << "served graph must be bit-identical to the in-process run";
    }
    server.stop();
}

TEST(NetServer, ConcurrentTenantsBitIdenticalAndAccounted) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    const std::vector<std::string> names = {"b07", "b09"};
    std::vector<std::string> blobs;
    for (const auto& name : names) {
        blobs.push_back(blob_of(name.c_str(), 0.3));
    }

    std::vector<std::string> ref_optimized;
    {
        FlowService service(tiny_service(3), model);
        for (std::size_t i = 0; i < names.size(); ++i) {
            SubmitOptions opts;
            opts.want_graph = true;
            const auto res =
                service
                    .submit({names[i],
                             bg::io::read_aiger_binary_string(blobs[i])},
                            std::move(opts))
                    .get();
            ASSERT_NE(res.final_graph, nullptr);
            ref_optimized.push_back(
                bg::io::write_aiger_binary_string(*res.final_graph));
        }
        service.stop();
    }

    constexpr std::size_t kTenants = 3;
    std::vector<TenantConfig> tenants;
    for (std::size_t t = 0; t < kTenants; ++t) {
        TenantConfig tc;
        tc.name = "t" + std::to_string(t);
        tc.weight = 1 + t;
        tenants.push_back(tc);
    }
    FlowServer server(tiny_server(3), model, tenants);

    // One client per tenant, all submitting concurrently; every result
    // must be bit-identical to the sequential in-process reference.
    std::vector<std::vector<ResultMsg>> got(kTenants);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kTenants; ++t) {
        threads.emplace_back([&, t] {
            FlowClient client({.host = "127.0.0.1",
                               .port = server.port(),
                               .token = "t" + std::to_string(t)});
            std::vector<std::uint64_t> ids;
            for (std::size_t i = 0; i < names.size(); ++i) {
                ids.push_back(client.submit(blob_job(names[i], blobs[i])));
            }
            for (const auto id : ids) {
                got[t].push_back(client.wait(id));
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    for (std::size_t t = 0; t < kTenants; ++t) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            SCOPED_TRACE("tenant " + std::to_string(t) + " " + names[i]);
            EXPECT_EQ(got[t][i].status, JobStatus::Ok)
                << got[t][i].message;
            EXPECT_EQ(got[t][i].optimized, ref_optimized[i]);
        }
    }

    // The per-tenant accounting is visible over the wire.
    FlowClient observer(
        {.host = "127.0.0.1", .port = server.port(), .token = "t0"});
    const StatsReplyMsg stats = observer.stats();
    EXPECT_EQ(stats.jobs_submitted, kTenants * names.size());
    EXPECT_EQ(stats.jobs_completed, kTenants * names.size());
    EXPECT_EQ(stats.jobs_pending, 0u);
    ASSERT_EQ(stats.tenants.size(), kTenants + 1);  // + default tenant
    for (const auto& slice : stats.tenants) {
        if (slice.name.empty()) {
            EXPECT_EQ(slice.submitted, 0u);
            continue;
        }
        EXPECT_EQ(slice.submitted, names.size()) << slice.name;
        EXPECT_EQ(slice.ok, names.size()) << slice.name;
        EXPECT_EQ(slice.pending, 0u) << slice.name;
    }
    server.stop();
}

TEST(NetServer, UnknownTokenRefusedAtHello) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    FlowServer server(tiny_server(1), model);
    try {
        FlowClient client({.host = "127.0.0.1",
                           .port = server.port(),
                           .token = "no-such-tenant"});
        FAIL() << "handshake with an unknown token must not succeed";
    } catch (const RpcError& e) {
        EXPECT_EQ(e.code(), ErrCode::UnknownTenant);
    }
    // The refusal is connection-local: the server still serves.
    FlowClient ok({.host = "127.0.0.1", .port = server.port(), .token = ""});
    EXPECT_EQ(ok.stats().jobs_submitted, 0u);
    server.stop();
}

TEST(NetServer, GarbageBytesGetTypedErrorAndServerSurvives) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    FlowServer server(tiny_server(1), model);

    // Raw garbage never matches the frame magic: the reader must answer
    // with a BadFrame error, flush it, and drop the connection.
    TcpStream raw = raw_connect(server.port());
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    raw.write_all(garbage, sizeof garbage - 1);
    FrameDecoder decoder;
    const Frame reply = raw_read_frame(raw, decoder);
    ASSERT_EQ(reply.type, MsgType::Error);
    EXPECT_EQ(ErrorMsg::decode(reply.payload).code,
              static_cast<std::uint32_t>(ErrCode::BadFrame));
    std::uint8_t byte = 0;
    EXPECT_EQ(raw.read_some(&byte, 1), 0u) << "connection must be closed";

    // A well-formed frame with a garbage AIGER payload is a *job* level
    // failure: typed Rejected result, connection stays up.
    FlowClient client({.host = "127.0.0.1", .port = server.port(), .token = ""});
    SubmitJobMsg bad = blob_job("junk", "this is not an AIGER file");
    const auto id = client.submit(bad);
    const ResultMsg res = client.wait(id);
    EXPECT_EQ(res.status, JobStatus::Rejected);
    EXPECT_FALSE(res.message.empty());
    EXPECT_EQ(client.stats().jobs_pending, 0u)
        << "a rejected job must not leak into the queues";
    server.stop();
}

TEST(NetServer, DisconnectMidJobCancelsInFlight) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    FlowServer server(tiny_server(2), model);
    const std::string blob = blob_of("b10", 0.5);
    {
        FlowClient client({.host = "127.0.0.1", .port = server.port(), .token = ""});
        (void)client.submit(heavy_job("doomed", blob));
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        client.close();  // vanish with the job still in flight
    }
    // The reader observes the disconnect and cancels the orphaned job
    // cooperatively; the service accounts it and fully drains.
    EXPECT_TRUE(eventually([&] {
        const auto st = server.service().stats();
        return st.jobs_cancelled >= 1 && st.jobs_pending == 0;
    })) << "orphaned job was not cancelled";
    const auto st = server.service().stats();
    EXPECT_EQ(st.jobs_submitted, 1u);
    EXPECT_EQ(st.jobs_completed, 1u);
    server.stop();
}

TEST(NetServer, CancelTimeoutQuotaObservableInWireStats) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    TenantConfig wide;
    wide.name = "wide";
    wide.max_pending = 8;
    TenantConfig narrow;
    narrow.name = "narrow";
    narrow.max_pending = 1;
    FlowServer server(tiny_server(1), model, {wide, narrow});
    const std::string blob = blob_of("b10", 0.5);

    FlowClient client(
        {.host = "127.0.0.1", .port = server.port(), .token = "wide"});
    const auto blocker = client.submit(heavy_job("blocker", blob));
    SubmitJobMsg timed = heavy_job("timed", blob);
    timed.timeout_seconds = 0.02;
    const auto doomed = client.submit(timed);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    client.cancel(blocker);

    const ResultMsg cancelled = client.wait(blocker);
    EXPECT_EQ(cancelled.status, JobStatus::Cancelled) << cancelled.message;
    const ResultMsg expired = client.wait(doomed);
    EXPECT_EQ(expired.status, JobStatus::TimedOut) << expired.message;

    // Quota breach: second pending job on a max_pending=1 tenant comes
    // back Rejected without ever entering the queues.
    FlowClient narrow_client(
        {.host = "127.0.0.1", .port = server.port(), .token = "narrow"});
    const auto held = narrow_client.submit(heavy_job("held", blob));
    const auto over = narrow_client.submit(heavy_job("over", blob));
    const ResultMsg rejected = narrow_client.wait(over);
    EXPECT_EQ(rejected.status, JobStatus::Rejected) << rejected.message;
    narrow_client.cancel(held);
    EXPECT_EQ(narrow_client.wait(held).status, JobStatus::Cancelled);

    const StatsReplyMsg stats = client.stats();
    EXPECT_EQ(stats.jobs_cancelled, 2u);
    EXPECT_EQ(stats.jobs_timed_out, 1u);
    EXPECT_EQ(stats.jobs_rejected, 1u);
    EXPECT_EQ(stats.jobs_pending, 0u);
    for (const auto& slice : stats.tenants) {
        if (slice.name == "wide") {
            EXPECT_EQ(slice.cancelled, 1u);
            EXPECT_EQ(slice.timed_out, 1u);
            EXPECT_EQ(slice.rejected, 0u);
        } else if (slice.name == "narrow") {
            EXPECT_EQ(slice.cancelled, 1u);
            EXPECT_EQ(slice.rejected, 1u);
        }
    }
    server.stop();
}

TEST(NetServer, StopResolvesInFlightJobsDefinitively) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    auto server = std::make_unique<FlowServer>(tiny_server(1), model);
    const std::uint16_t port = server->port();
    const std::string blob = blob_of("b10", 0.5);

    FlowClient client({.host = "127.0.0.1", .port = port, .token = ""});
    for (int i = 0; i < 3; ++i) {
        (void)client.submit(heavy_job("j" + std::to_string(i), blob));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server->stop();  // returns only once every job reached an outcome

    const auto st = server->service().stats();
    EXPECT_EQ(st.jobs_submitted, 3u);
    EXPECT_EQ(st.jobs_completed, 3u)
        << "stop() must resolve every accepted job";
    EXPECT_EQ(st.jobs_pending, 0u);
    EXPECT_GE(st.jobs_cancelled, 2u) << "the queued jobs were flushed";

    // The client's connection is gone; any further wait fails fast with
    // a transport error rather than hanging.
    try {
        const ResultMsg res = client.wait(1);
        EXPECT_NE(res.status, JobStatus::Ok);
    } catch (const SocketError&) {
    } catch (const ProtocolError&) {
    }
    server.reset();
}

TEST(NetServer, SlowReaderEvictedWithoutStallingOtherTenants) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_model_config());
    ServerConfig cfg = tiny_server(2);
    cfg.outbound_capacity = 2;       // evict after two undeliverable results
    cfg.socket_send_buffer = 4096;   // writer blocks after a few KiB
    TenantConfig fast;
    fast.name = "fast";
    fast.weight = 4;
    FlowServer server(cfg, model, {fast});

    // A reader that Hellos, floods jobs, and then never reads: its
    // results pile up in the clamped kernel buffers, then in the bounded
    // outbound queue, and the connection must be evicted — without any
    // serving worker blocking on it.
    const std::string big_blob = blob_of("b11", 0.8);
    TcpStream slow = raw_connect(server.port(), /*rcvbuf_bytes=*/1024);
    FrameDecoder decoder;
    raw_send(slow, MsgType::Hello, HelloMsg{}.encode());
    ASSERT_EQ(raw_read_frame(slow, decoder).type, MsgType::HelloAck);
    constexpr std::uint64_t kSlowJobs = 16;
    for (std::uint64_t i = 1; i <= kSlowJobs; ++i) {
        SubmitJobMsg msg = blob_job("slow" + std::to_string(i), big_blob);
        msg.job_id = i;
        raw_send(slow, MsgType::SubmitJob, msg.encode());
    }

    // Meanwhile the other tenant gets served promptly.
    FlowClient fast_client(
        {.host = "127.0.0.1", .port = server.port(), .token = "fast"});
    const auto id = fast_client.submit(blob_job("fast", blob_of("b07", 0.3)));
    EXPECT_EQ(fast_client.wait(id).status, JobStatus::Ok);

    EXPECT_TRUE(eventually(
        [&] { return server.slow_consumer_evictions() >= 1; }))
        << "slow consumer was never evicted";
    EXPECT_TRUE(eventually([&] {
        return server.service().stats().jobs_pending == 0;
    })) << "eviction must resolve the slow connection's jobs";
    server.stop();
}

}  // namespace
