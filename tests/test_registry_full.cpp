#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/sampling.hpp"
#include "opt/standalone.hpp"

namespace {

using bg::aig::Aig;
using bg::opt::OpKind;

/// Full-scale registry designs (the sizes the paper reports) — built once
/// per test; these are the heaviest tests in the suite and act as the
/// paper-scale smoke check.
class RegistryFullScale : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryFullScale, SizeMatchesPaperTargetWithinTolerance) {
    const std::string name = GetParam();
    const auto& info = bg::circuits::benchmark_info(name);
    const Aig g = bg::circuits::make_benchmark(name);
    g.check_integrity();
    EXPECT_GE(g.num_ands(), info.target_ands * 7 / 10) << name;
    EXPECT_LE(g.num_ands(), info.target_ands * 13 / 10) << name;
    EXPECT_EQ(g.num_pis(), info.num_pis) << name;
}

TEST_P(RegistryFullScale, EveryOpFindsWorkAndStaysSound) {
    const std::string name = GetParam();
    const Aig base = bg::circuits::make_benchmark(name);
    for (const OpKind op :
         {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
        Aig g = base;
        const auto res = bg::opt::standalone_pass(g, op);
        g.check_integrity();
        EXPECT_GT(res.reduction(), 0)
            << name << ": " << bg::opt::to_string(op) << " found nothing";
        // Reduction should be a meaningful but not absurd fraction.
        EXPECT_LT(res.final_size, res.original_size);
        EXPECT_GT(res.final_size, res.original_size / 4);
    }
}

TEST_P(RegistryFullScale, OrchestrationSoundOnFullSize) {
    const std::string name = GetParam();
    const Aig base = bg::circuits::make_benchmark(name);
    bg::Rng rng(0xFED5);
    auto g = base;
    const auto d = bg::core::random_decisions(g, rng);
    const auto res = bg::opt::orchestrate(g, d);
    g.check_integrity();
    EXPECT_GT(res.reduction(), 0) << name;
    EXPECT_EQ(res.final_size, g.num_ands());
}

// The two designs the paper quotes sizes for, plus the largest one.
INSTANTIATE_TEST_SUITE_P(PaperDesigns, RegistryFullScale,
                         ::testing::Values("b07", "b10", "b12", "c5315"));

}  // namespace
