#include <gtest/gtest.h>

#include <set>

#include "aig/simulation.hpp"
#include "cut/cut_enum.hpp"
#include "test_helpers.hpp"
#include "tt/truth_table.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::cut::cone_function;
using bg::cut::cone_functions;
using bg::cut::enumerate_cuts;
using bg::cut::reconv_cut;
using bg::tt::TruthTable;

TEST(CutEnum, SimpleAndGate) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    const auto cuts = enumerate_cuts(g, lit_var(x), 4, 100);
    ASSERT_EQ(cuts.size(), 1u);  // only {a, b}
    EXPECT_EQ(cuts[0].leaves,
              (std::vector<Var>{lit_var(a), lit_var(b)}));
    // function must be AND over two leaves
    EXPECT_EQ(cuts[0].function, (TruthTable::nth_var(2, 0) &
                                 TruthTable::nth_var(2, 1)));
}

TEST(CutEnum, TwoLevelConeEnumeratesAllCuts) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    const auto cuts = enumerate_cuts(g, lit_var(y), 4, 100);
    std::set<std::vector<Var>> leaf_sets;
    for (const auto& cut : cuts) {
        leaf_sets.insert(cut.leaves);
    }
    // Expected cuts of y: {x, c} and {a, b, c}.
    EXPECT_TRUE(leaf_sets.contains(
        std::vector<Var>{std::min(lit_var(x), lit_var(c)),
                         std::max(lit_var(x), lit_var(c))}));
    std::vector<Var> abc{lit_var(a), lit_var(b), lit_var(c)};
    std::sort(abc.begin(), abc.end());
    EXPECT_TRUE(leaf_sets.contains(abc));
    EXPECT_EQ(cuts.size(), 2u);
}

TEST(CutEnum, RespectsK) {
    // A balanced 8-input AND tree: with k=4 no cut can have more leaves.
    Aig g;
    const auto pis = g.add_pis(8);
    const Lit root = g.and_reduce(pis);
    g.add_po(root);
    const auto cuts = enumerate_cuts(g, lit_var(root), 4, 1000);
    EXPECT_FALSE(cuts.empty());
    for (const auto& cut : cuts) {
        EXPECT_LE(cut.leaves.size(), 4u);
        EXPECT_TRUE(std::is_sorted(cut.leaves.begin(), cut.leaves.end()));
    }
}

TEST(CutEnum, MaxCutsCap) {
    bg::test::Aig g = bg::test::random_aig(8, 60, 2, 5);
    const auto ands = g.topo_ands();
    const Var root = ands.back();
    const auto cuts = enumerate_cuts(g, root, 4, 5);
    EXPECT_LE(cuts.size(), 5u);
}

TEST(CutEnum, CutFunctionsMatchSimulation) {
    // For every enumerated cut, check the cut function against exhaustive
    // cone evaluation through full-graph simulation.
    const auto g = bg::test::random_aig(6, 40, 2, 11);
    const auto sims = simulate(g, exhaustive_patterns(g.num_pis()));
    const auto ands = g.topo_ands();
    for (std::size_t idx = 0; idx < ands.size(); idx += 7) {
        const Var root = ands[idx];
        for (const auto& cut : enumerate_cuts(g, root, 4, 16)) {
            // Evaluate the cut function on each global minterm by plugging
            // in the leaves' simulated values.
            const unsigned nv = static_cast<unsigned>(cut.leaves.size());
            for (std::uint64_t m = 0; m < 64; ++m) {
                std::uint64_t leaf_vals = 0;
                for (unsigned i = 0; i < nv; ++i) {
                    const bool bit = (sims[cut.leaves[i]][0] >> m) & 1;
                    leaf_vals |= static_cast<std::uint64_t>(bit) << i;
                }
                const bool expect = (sims[root][0] >> m) & 1;
                EXPECT_EQ(cut.function.get_bit(leaf_vals), expect)
                    << "root " << root << " minterm " << m;
            }
        }
    }
}

TEST(ReconvCut, GrowsWithinBound) {
    const auto g = bg::test::random_aig(10, 80, 3, 21);
    const auto ands = g.topo_ands();
    for (std::size_t idx = 0; idx < ands.size(); idx += 5) {
        const auto leaves = reconv_cut(g, ands[idx], 8);
        if (leaves.empty()) {
            continue;
        }
        EXPECT_GE(leaves.size(), 2u);
        EXPECT_LE(leaves.size(), 8u);
        EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end()));
        // Must be a real cut: cone evaluation succeeds.
        EXPECT_NO_THROW((void)cone_function(g, ands[idx], leaves));
    }
}

TEST(ReconvCut, PiRootHasNoCut) {
    Aig g;
    const Lit a = g.add_pi();
    g.add_po(a);
    EXPECT_TRUE(reconv_cut(g, lit_var(a), 8).empty());
}

TEST(ConeFunctions, CoversAllConeNodes) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    const std::vector<Var> leaves{lit_var(a), lit_var(b), lit_var(c)};
    const auto fns = cone_functions(g, lit_var(y), leaves);
    EXPECT_EQ(fns.size(), 5u);  // 3 leaves + x + y
    EXPECT_EQ(fns.at(lit_var(x)),
              (TruthTable::nth_var(3, 0) & TruthTable::nth_var(3, 1)));
}

TEST(ConeFunctions, ThrowsWhenLeavesNotACut) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    // {a, c} is not a cut of y (path through b escapes).
    const std::vector<Var> bad{lit_var(a), lit_var(c)};
    EXPECT_THROW((void)cone_function(g, lit_var(y), bad),
                 bg::ContractViolation);
}

class CutSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutSweep, EveryCutFunctionIsConsistent) {
    const auto g = bg::test::redundant_aig(7, 30, 2, GetParam());
    const auto ands = g.topo_ands();
    for (std::size_t idx = 0; idx < ands.size(); idx += 9) {
        for (const auto& cut : enumerate_cuts(g, ands[idx], 4, 10)) {
            // Recompute via cone_function — must agree with stored one.
            EXPECT_EQ(cone_function(g, ands[idx], cut.leaves), cut.function);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
