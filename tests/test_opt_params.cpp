#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "opt/standalone.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::OpKind;
using bg::opt::OptParams;

/// Every parameter setting must preserve functionality; quality may vary.
class ParamSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned, bool>> {};

TEST_P(ParamSweep, AllSettingsPreserveFunction) {
    const auto [cut_size, rf_leaves, rs_leaves, zero_gain] = GetParam();
    OptParams p;
    p.rewrite_cut_size = cut_size;
    p.refactor_max_leaves = rf_leaves;
    p.resub_max_leaves = rs_leaves;
    p.allow_zero_gain = zero_gain;

    const Aig original = bg::test::redundant_aig(8, 40, 4, 77);
    Aig g = original;
    for (const OpKind op :
         {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
        (void)bg::opt::standalone_pass(g, op, p);
        g.check_integrity();
    }
    EXPECT_EQ(check_equivalence(original, g), CecVerdict::Equivalent)
        << "cut=" << cut_size << " rf=" << rf_leaves << " rs=" << rs_leaves
        << " z=" << zero_gain;
    EXPECT_LE(g.num_ands(), original.num_ands());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u),      // rewrite cut
                       ::testing::Values(6u, 10u, 12u),    // refactor leaves
                       ::testing::Values(4u, 8u),          // resub leaves
                       ::testing::Bool()));                // zero gain

TEST(OptParams, WindowSizeTradesQualityNotSoundness) {
    // Window size changes WHAT a greedy pass finds (larger windows can
    // even lose to smaller ones by consuming structure early — a known
    // greedy-DAG phenomenon), but never its soundness, and any setting
    // must still find something on redundant logic.
    const Aig original = bg::test::redundant_aig(8, 60, 4, 11);
    for (const unsigned leaves : {4u, 8u, 12u}) {
        OptParams p;
        p.refactor_max_leaves = leaves;
        Aig g = original;
        const auto res = bg::opt::standalone_pass(g, OpKind::Refactor, p);
        EXPECT_GT(res.reduction(), 0) << "leaves=" << leaves;
        EXPECT_EQ(check_equivalence(original, g), CecVerdict::Equivalent)
            << "leaves=" << leaves;
    }
}

TEST(OptParams, ZeroGainFindsAtLeastAsManyApplications) {
    const Aig original = bg::test::redundant_aig(8, 50, 4, 13);
    OptParams strict;
    OptParams relaxed;
    relaxed.allow_zero_gain = true;
    Aig g1 = original;
    Aig g2 = original;
    const auto r1 = bg::opt::standalone_pass(g1, OpKind::Rewrite, strict);
    const auto r2 = bg::opt::standalone_pass(g2, OpKind::Rewrite, relaxed);
    EXPECT_GE(r2.num_applied, r1.num_applied);
    EXPECT_TRUE(likely_equivalent(original, g2));
}

TEST(OptParams, RewriteCutSizeAboveFourRejected) {
    const Aig g = bg::test::redundant_aig(6, 20, 2, 1);
    OptParams p;
    p.rewrite_cut_size = 5;
    const auto ands = g.topo_ands();
    ASSERT_FALSE(ands.empty());
    EXPECT_THROW((void)bg::opt::check_rewrite(g, ands.back(), p),
                 bg::ContractViolation);
}

TEST(OptParams, ValidateAcceptsDefaultsAndSweepRange) {
    OptParams{}.validate();
    for (const unsigned cut : {2u, 3u, 4u}) {
        for (const unsigned leaves : {2u, 6u, 10u, 16u}) {
            OptParams p;
            p.rewrite_cut_size = cut;
            p.refactor_max_leaves = leaves;
            p.resub_max_leaves = leaves;
            p.validate();
        }
    }
}

TEST(OptParams, ValidateRejectsZeroAndOversizedLimits) {
    const auto expect_invalid = [](OptParams p) {
        EXPECT_THROW(p.validate(), bg::ContractViolation);
    };
    OptParams p;
    p.rewrite_cut_size = 0;
    expect_invalid(p);
    p = {};
    p.rewrite_cut_size = 1;
    expect_invalid(p);
    p = {};
    p.rewrite_cut_size = 5;  // beyond the 4-input NPN library
    expect_invalid(p);
    p = {};
    p.rewrite_cut_size = 7;
    expect_invalid(p);
    p = {};
    p.rewrite_max_cuts = 0;
    expect_invalid(p);
    p = {};
    p.refactor_max_leaves = 0;
    expect_invalid(p);
    p = {};
    p.refactor_max_leaves = 1;
    expect_invalid(p);
    p = {};
    p.refactor_max_leaves = OptParams::max_window_leaves + 1;
    expect_invalid(p);
    p = {};
    p.resub_max_leaves = 0;
    expect_invalid(p);
    p = {};
    p.resub_max_leaves = 40;
    expect_invalid(p);
    p = {};
    p.resub_max_divisors = 0;
    expect_invalid(p);
}

TEST(OptParams, EveryEntryPointValidates) {
    const Aig g = bg::test::redundant_aig(6, 20, 2, 5);
    OptParams bad;
    bad.refactor_max_leaves = 0;
    const auto ands = g.topo_ands();
    ASSERT_FALSE(ands.empty());
    EXPECT_THROW((void)bg::opt::check_refactor(g, ands.back(), bad),
                 bg::ContractViolation);
    EXPECT_THROW((void)bg::opt::check_op(g, ands.back(),
                                         OpKind::Refactor, bad),
                 bg::ContractViolation);
    Aig copy = g;
    EXPECT_THROW((void)bg::opt::standalone_pass(copy, OpKind::Rewrite, bad),
                 bg::ContractViolation);
    EXPECT_THROW(
        (void)bg::opt::orchestrate(
            copy, bg::opt::uniform_decisions(copy, OpKind::Rewrite), bad),
        bg::ContractViolation);
}

TEST(OptParams, ResubDivisorCapRespected) {
    // With a divisor cap of 1 almost nothing can be found, but the pass
    // must stay sound.
    const Aig original = bg::test::redundant_aig(8, 40, 4, 19);
    OptParams p;
    p.resub_max_divisors = 1;
    Aig g = original;
    (void)bg::opt::standalone_pass(g, OpKind::Resub, p);
    EXPECT_TRUE(likely_equivalent(original, g));
}

}  // namespace
