/// \file test_orchestrate_parallel.cpp
/// The partition/speculate/ordered-commit orchestrator against its
/// sequential reference: bit-identical graphs, counters and applied
/// vectors at 1/2/4 intra-workers, identical `touched` sets, rollback
/// determinism under forced conflicts, and the depth-objective fallback.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "opt/objective.hpp"
#include "opt/orchestrate.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::ThreadPool;
using bg::opt::DecisionVector;
using bg::opt::IntraParallel;
using bg::opt::OpKind;
using bg::opt::OrchestrationResult;
using bg::opt::orchestrate;
using bg::opt::orchestrate_parallel;

/// A decision vector that exercises all three operations: rw/rs/rf
/// assigned round-robin by var id.
DecisionVector mixed_decisions(const Aig& g) {
    DecisionVector d(g.num_slots(), OpKind::None);
    for (const Var v : g.topo_ands()) {
        d[v] = bg::opt::op_from_index(static_cast<int>(v % 3));
    }
    return d;
}

void expect_identical(const OrchestrationResult& got,
                      const OrchestrationResult& want) {
    EXPECT_EQ(got.original_size, want.original_size);
    EXPECT_EQ(got.final_size, want.final_size);
    EXPECT_EQ(got.applied, want.applied);
    EXPECT_EQ(got.num_checked, want.num_checked);
    EXPECT_EQ(got.num_applied, want.num_applied);
    EXPECT_EQ(got.num_rejected, want.num_rejected);
}

TEST(OrchestrateParallel, BitIdenticalToSequentialOnRegistryDesigns) {
    for (const auto& name : bg::circuits::benchmark_names()) {
        const Aig design = bg::circuits::make_benchmark_scaled(name, 0.3);
        const DecisionVector d = mixed_decisions(design);

        Aig ref = design;
        const auto res_ref = orchestrate(ref, d);
        const auto fp_ref = structural_fingerprint(ref);

        for (const std::size_t workers : {1UL, 2UL, 4UL}) {
            SCOPED_TRACE(name + " workers=" + std::to_string(workers));
            ThreadPool pool(workers);
            IntraParallel intra;
            intra.pool = &pool;
            Aig g = design;
            const auto res = orchestrate_parallel(g, d, {},
                                                  bg::opt::size_objective(),
                                                  intra);
            expect_identical(res, res_ref);
            EXPECT_EQ(structural_fingerprint(g), fp_ref);
            g.check_integrity(Aig::CheckLevel::Strict);
        }
    }
}

TEST(OrchestrateParallel, TouchedSetMatchesSequentialFallback) {
    // The fallback journals the sequential pass; the parallel path scans
    // its dirty array.  Both must report the same sorted deduplicated set
    // — that set is what incremental feature maintenance consumes.
    for (const auto& name : bg::circuits::benchmark_names()) {
        SCOPED_TRACE(name);
        const Aig design = bg::circuits::make_benchmark_scaled(name, 0.3);
        const DecisionVector d = mixed_decisions(design);

        Aig seq = design;
        const auto res_seq =
            orchestrate_parallel(seq, d, {}, bg::opt::size_objective(), {});
        EXPECT_TRUE(std::is_sorted(res_seq.touched.begin(),
                                   res_seq.touched.end()));

        ThreadPool pool(4);
        IntraParallel intra;
        intra.pool = &pool;
        Aig par = design;
        const auto res_par = orchestrate_parallel(
            par, d, {}, bg::opt::size_objective(), intra);
        EXPECT_EQ(res_par.touched, res_seq.touched);
        if (res_seq.num_applied > 0) {
            EXPECT_FALSE(res_seq.touched.empty());
        }
    }
}

TEST(OrchestrateParallel, ForcedConflictsRollBackDeterministically) {
    // Single-root regions with a huge speculation batch maximize stale
    // speculation: many regions are checked against the frozen graph
    // while earlier commits mutate it.  Conflicted speculations must be
    // re-checked inline so the result stays bit-identical — and at least
    // one conflict must actually fire, or this test proves nothing.
    std::size_t total_conflicts = 0;
    for (const auto& name : bg::circuits::benchmark_names()) {
        const Aig design = bg::circuits::make_benchmark_scaled(name, 0.3);
        const DecisionVector d = mixed_decisions(design);

        Aig ref = design;
        const auto res_ref = orchestrate(ref, d);
        const auto fp_ref = structural_fingerprint(ref);

        for (const std::size_t workers : {2UL, 4UL}) {
            SCOPED_TRACE(name + " workers=" + std::to_string(workers));
            ThreadPool pool(workers);
            IntraParallel intra;
            intra.pool = &pool;
            intra.region_roots = 1;
            intra.spec_batch = 1U << 20;
            Aig g = design;
            const auto res = orchestrate_parallel(
                g, d, {}, bg::opt::size_objective(), intra);
            expect_identical(res, res_ref);
            EXPECT_EQ(structural_fingerprint(g), fp_ref);
            EXPECT_GT(res.num_speculated, 0u);
            total_conflicts += res.num_conflicts;
        }
    }
    EXPECT_GT(total_conflicts, 0u)
        << "the forced-conflict configuration never conflicted; the "
           "rollback path went unexercised";
}

TEST(OrchestrateParallel, RepeatedRunsAreDeterministic) {
    const Aig design = bg::circuits::make_benchmark_scaled("b11", 0.4);
    const DecisionVector d = mixed_decisions(design);
    ThreadPool pool(4);
    IntraParallel intra;
    intra.pool = &pool;
    intra.region_roots = 4;

    std::uint64_t first_fp = 0;
    OrchestrationResult first;
    for (int run = 0; run < 3; ++run) {
        Aig g = design;
        const auto res =
            orchestrate_parallel(g, d, {}, bg::opt::size_objective(), intra);
        const auto fp = structural_fingerprint(g);
        if (run == 0) {
            first_fp = fp;
            first = res;
            continue;
        }
        SCOPED_TRACE("run=" + std::to_string(run));
        expect_identical(res, first);
        EXPECT_EQ(res.touched, first.touched);
        EXPECT_EQ(fp, first_fp);
    }
}

TEST(OrchestrateParallel, DepthObjectiveTakesSequentialPath) {
    // Depth-aware objectives refresh levels mid-pass; the parallel path
    // cannot speculate against them and must fall back (no regions, no
    // speculation) while still matching plain orchestrate bit for bit.
    const Aig design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    const DecisionVector d = mixed_decisions(design);
    const bg::opt::DepthObjective depth_obj;

    Aig ref = design;
    const auto res_ref = orchestrate(ref, d, {}, depth_obj);

    ThreadPool pool(4);
    IntraParallel intra;
    intra.pool = &pool;
    Aig g = design;
    const auto res = orchestrate_parallel(g, d, {}, depth_obj, intra);
    expect_identical(res, res_ref);
    EXPECT_EQ(res.num_regions, 0u);
    EXPECT_EQ(res.num_speculated, 0u);
    EXPECT_EQ(structural_fingerprint(g), structural_fingerprint(ref));
}

TEST(OrchestrateParallel, ResultStaysFunctionallyEquivalent) {
    // Belt and braces on top of the fingerprint pins: the parallel commit
    // must preserve the design's function, not just match the sequential
    // bits.
    const Aig design = bg::test::redundant_aig(10, 80, 4, 23);
    const DecisionVector d = mixed_decisions(design);
    ThreadPool pool(4);
    IntraParallel intra;
    intra.pool = &pool;
    Aig g = design;
    (void)orchestrate_parallel(g, d, {}, bg::opt::size_objective(), intra);
    EXPECT_EQ(check_equivalence(design, g), CecVerdict::Equivalent);
}

}  // namespace
