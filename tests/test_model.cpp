#include <gtest/gtest.h>

#include <filesystem>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "util/stats.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 11;
    return cfg;
}

Dataset tiny_dataset(std::size_t num_samples = 24, std::uint64_t seed = 3) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const auto records = generate_guided_samples(g, num_samples, seed);
    return build_dataset(g, records);
}

TEST(Model, OutputShapeAndRange) {
    const Dataset ds = tiny_dataset(6);
    BoolGebraModel model(tiny_config());
    std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5};
    const auto preds = model.predict(ds, idx);
    ASSERT_EQ(preds.size(), 6u);
    for (const double p : preds) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Model, DeterministicInference) {
    const Dataset ds = tiny_dataset(4);
    BoolGebraModel a(tiny_config());
    BoolGebraModel b(tiny_config());
    std::vector<std::size_t> idx{0, 1, 2, 3};
    EXPECT_EQ(a.predict(ds, idx), b.predict(ds, idx))
        << "same seed must give identical weights and predictions";
}

TEST(Model, ParameterCountMatchesArchitecture) {
    BoolGebraModel model(tiny_config());
    // conv0: 12*12*2+12, conv1: 12*12*2+12, conv2: 12*8*2+8,
    // l0: 8*16+16, l1: 16*8+8, l2: 8*1+1, bn0: 2*16, bn1: 2*8.
    const std::size_t expected = (12 * 12 * 2 + 12) + (12 * 12 * 2 + 12) +
                                 (12 * 8 * 2 + 8) + (8 * 16 + 16) +
                                 (16 * 8 + 8) + (8 * 1 + 1) + 32 + 16;
    EXPECT_EQ(model.num_parameters(), expected);
}

TEST(Model, PaperConfigDimensions) {
    const auto cfg = ModelConfig::paper();
    EXPECT_EQ(cfg.sage_dims, (std::vector<int>{512, 512, 64}));
    EXPECT_EQ(cfg.mlp_dims, (std::vector<int>{1000, 200, 1}));
    EXPECT_FLOAT_EQ(cfg.dropout, 0.1F);
    EXPECT_EQ(cfg.in_dim, feature_dim);
}

TEST(Model, SaveLoadRoundTrip) {
    const Dataset ds = tiny_dataset(4);
    BoolGebraModel a(tiny_config());
    const auto path =
        std::filesystem::temp_directory_path() / "bg_model_test.bin";
    a.save(path);

    ModelConfig other = tiny_config();
    other.seed = 999;  // different init
    BoolGebraModel b(other);
    std::vector<std::size_t> idx{0, 1, 2, 3};
    EXPECT_NE(a.predict(ds, idx), b.predict(ds, idx));
    b.load(path);
    EXPECT_EQ(a.predict(ds, idx), b.predict(ds, idx));
    std::filesystem::remove(path);
}

TEST(Model, LoadRejectsWrongArchitecture) {
    BoolGebraModel a(tiny_config());
    const auto path =
        std::filesystem::temp_directory_path() / "bg_model_badarch.bin";
    a.save(path);
    ModelConfig bigger = tiny_config();
    bigger.sage_dims = {16, 12, 8};
    BoolGebraModel b(bigger);
    EXPECT_THROW(b.load(path), std::runtime_error);
    std::filesystem::remove(path);
}

TEST(Trainer, LossDecreasesOnTinyProblem) {
    const Dataset ds = tiny_dataset(32, 5);
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 30;
    cfg.batch_size = 8;
    cfg.lr = 3e-3;
    cfg.eval_every = 1;
    const auto result = train_model(model, ds, cfg);
    ASSERT_GE(result.history.size(), 2u);
    const double first = result.history.front().train_loss;
    const double last = result.final_train_loss;
    EXPECT_LT(last, first) << "training loss must decrease";
}

TEST(Trainer, HistoryRespectsEvalCadence) {
    const Dataset ds = tiny_dataset(16, 6);
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 10;
    cfg.eval_every = 3;
    const auto result = train_model(model, ds, cfg);
    // Epochs 0, 3, 6, 9 -> 4 entries (last epoch always recorded).
    ASSERT_EQ(result.history.size(), 4u);
    EXPECT_EQ(result.history[1].epoch, 3u);
    EXPECT_EQ(result.history.back().epoch, 9u);
}

TEST(Trainer, LearningRateFollowsDecay) {
    const Dataset ds = tiny_dataset(16, 7);
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 60;
    cfg.lr = 1e-3;
    cfg.decay_every = 20;
    cfg.decay_factor = 0.5;
    cfg.eval_every = 20;
    const auto result = train_model(model, ds, cfg);
    EXPECT_DOUBLE_EQ(result.history[0].lr, 1e-3);
    EXPECT_DOUBLE_EQ(result.history[1].lr, 5e-4);
    EXPECT_DOUBLE_EQ(result.history[2].lr, 2.5e-4);
}

TEST(Trainer, PredictionsCorrelateWithLabelsAfterTraining) {
    // The Fig 5 property in miniature: after training, predicted scores
    // should correlate positively with the true labels.
    const Dataset ds = tiny_dataset(96, 5);
    ModelConfig mc = tiny_config();
    mc.sage_dims = {16, 16, 8};
    mc.mlp_dims = {24, 8, 1};
    BoolGebraModel model(mc);
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 150;
    cfg.batch_size = 12;
    cfg.lr = 2e-3;
    cfg.eval_every = 25;
    (void)train_model(model, ds, cfg);

    std::vector<std::size_t> all(ds.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
    }
    const auto preds = model.predict(ds, all);
    std::vector<double> labels;
    for (const auto& s : ds.samples()) {
        labels.push_back(s.label);
    }
    const double rho = bg::spearman(preds, labels);
    EXPECT_GT(rho, 0.3) << "trained model must rank samples usefully";
}

TEST(Trainer, DeterministicGivenSeeds) {
    const Dataset ds = tiny_dataset(16, 8);
    BoolGebraModel m1(tiny_config());
    BoolGebraModel m2(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 8;
    const auto r1 = train_model(m1, ds, cfg);
    const auto r2 = train_model(m2, ds, cfg);
    ASSERT_EQ(r1.history.size(), r2.history.size());
    for (std::size_t i = 0; i < r1.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.history[i].train_loss, r2.history[i].train_loss);
        EXPECT_DOUBLE_EQ(r1.history[i].test_loss, r2.history[i].test_loss);
    }
}

}  // namespace
