#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "aig/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

TEST(Simulation, ConstantAndPi) {
    Aig g;
    const Lit a = g.add_pi();
    g.add_po(a);
    g.add_po(lit_false);
    const auto pats = exhaustive_patterns(1);
    const auto sigs = simulate(g, pats);
    EXPECT_EQ(sigs[0][0], 0ULL);
    EXPECT_EQ(sigs[lit_var(a)][0], pats[0][0]);
}

TEST(Simulation, AndGateTruth) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(a, b));
    const auto pos = po_signatures(g, simulate(g, exhaustive_patterns(2)));
    // Patterns: minterm index m = (b a); AND = 1 only when both bits set.
    EXPECT_EQ(pos[0][0] & 0xF, 0b1000ULL);
}

TEST(Simulation, ComplementedEdges) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(lit_not(a), b));   // !a & b -> minterm 2
    g.add_po(lit_not(g.and_(a, b)));   // NAND
    const auto pos = po_signatures(g, simulate(g, exhaustive_patterns(2)));
    EXPECT_EQ(pos[0][0] & 0xF, 0b0100ULL);
    EXPECT_EQ(pos[1][0] & 0xF, 0b0111ULL);
}

TEST(Simulation, XorMuxMajTruth) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    g.add_po(g.xor_(a, b));
    g.add_po(g.mux_(a, b, c));  // a ? b : c
    g.add_po(g.maj_(a, b, c));
    const auto pos = po_signatures(g, simulate(g, exhaustive_patterns(3)));
    for (unsigned m = 0; m < 8; ++m) {
        const bool va = m & 1;
        const bool vb = (m >> 1) & 1;
        const bool vc = (m >> 2) & 1;
        EXPECT_EQ((pos[0][0] >> m) & 1, static_cast<std::uint64_t>(va ^ vb));
        EXPECT_EQ((pos[1][0] >> m) & 1,
                  static_cast<std::uint64_t>(va ? vb : vc));
        EXPECT_EQ((pos[2][0] >> m) & 1,
                  static_cast<std::uint64_t>((va + vb + vc) >= 2));
    }
}

TEST(Simulation, WideExhaustivePatterns) {
    // 8 PIs -> 4 words; projection rows must match formulas.
    const auto pats = exhaustive_patterns(8);
    ASSERT_EQ(pats.size(), 8u);
    ASSERT_EQ(pats[0].size(), 4u);
    for (unsigned i = 0; i < 8; ++i) {
        for (std::uint64_t m = 0; m < 256; ++m) {
            const bool bit = (pats[i][m >> 6] >> (m & 63)) & 1;
            EXPECT_EQ(bit, ((m >> i) & 1) != 0);
        }
    }
}

TEST(Simulation, RandomPatternsShape) {
    bg::Rng rng(1);
    const auto pats = random_patterns(5, 7, rng);
    EXPECT_EQ(pats.size(), 5u);
    for (const auto& row : pats) {
        EXPECT_EQ(row.size(), 7u);
    }
}

TEST(Cec, IdenticalGraphsAreEquivalent) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    g.add_po(g.maj_(a, b, c));
    const Aig h = g;  // value copy
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
}

TEST(Cec, StructurallyDifferentButEquivalent) {
    // DeMorgan: !(a & b) == !a | !b built two ways.
    Aig g;
    {
        const Lit a = g.add_pi();
        const Lit b = g.add_pi();
        g.add_po(lit_not(g.and_(a, b)));
    }
    Aig h;
    {
        const Lit a = h.add_pi();
        const Lit b = h.add_pi();
        h.add_po(h.or_(lit_not(a), lit_not(b)));
    }
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
}

TEST(Cec, DetectsInequivalence) {
    Aig g;
    {
        const Lit a = g.add_pi();
        const Lit b = g.add_pi();
        g.add_po(g.and_(a, b));
    }
    Aig h;
    {
        const Lit a = h.add_pi();
        const Lit b = h.add_pi();
        h.add_po(h.or_(a, b));
    }
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::NotEquivalent);
    EXPECT_FALSE(likely_equivalent(g, h));
}

TEST(Cec, InterfaceMismatchThrows) {
    Aig g;
    g.add_pi();
    Aig h;
    h.add_pis(2);
    EXPECT_THROW((void)check_equivalence(g, h), bg::ContractViolation);
}

TEST(Cec, CompactionIsEquivalent) {
    bg::Rng rng(7);
    Aig g;
    const auto pis = g.add_pis(6);
    std::vector<Lit> pool(pis);
    for (int k = 0; k < 30; ++k) {
        const Lit u =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        const Lit v =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        pool.push_back(g.and_(u, v));
    }
    g.add_po(pool.back());
    g.add_po(lit_not(pool[pool.size() - 3]));
    const Aig h = g.compact();
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
}

TEST(Cec, RandomFallbackAboveExhaustiveLimit) {
    // 16 PIs exceeds the default exhaustive limit of 14.
    Aig g;
    const auto pis = g.add_pis(16);
    g.add_po(g.and_reduce(pis));
    Aig h = g;
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::ProbablyEquivalent);

    // A single-minterm difference: random sim may or may not find it, but
    // a full-function inversion is always caught.
    Aig k;
    const auto kpis = k.add_pis(16);
    k.add_po(lit_not(k.and_reduce(kpis)));
    EXPECT_EQ(check_equivalence(g, k), CecVerdict::NotEquivalent);
}

TEST(Cec, MultiOutputMismatchOnOneOutput) {
    Aig g;
    {
        const Lit a = g.add_pi();
        const Lit b = g.add_pi();
        g.add_po(g.and_(a, b));
        g.add_po(g.or_(a, b));
    }
    Aig h;
    {
        const Lit a = h.add_pi();
        const Lit b = h.add_pi();
        h.add_po(h.and_(a, b));
        h.add_po(h.xor_(a, b));  // differs only at minterm 11
    }
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::NotEquivalent);
}

TEST(Cec, VerdictToString) {
    EXPECT_EQ(to_string(CecVerdict::Equivalent), "equivalent");
    EXPECT_EQ(to_string(CecVerdict::NotEquivalent), "NOT-equivalent");
    EXPECT_EQ(to_string(CecVerdict::ProbablyEquivalent),
              "probably-equivalent");
}

}  // namespace
