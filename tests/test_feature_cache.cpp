/// \file test_feature_cache.cpp
/// Incremental static-feature / CSR maintenance (core/feature_cache.hpp)
/// against the ground truth: after every committed decision vector the
/// incrementally-updated rows must equal a fresh full recompute on the
/// same graph bit for bit (float ==, no tolerance), while recomputing
/// strictly fewer rows than a rebuild would.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "core/feature_cache.hpp"
#include "core/flow.hpp"
#include "opt/orchestrate.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;
using bg::aig::Var;
using bg::opt::DecisionVector;
using bg::opt::OpKind;

DecisionVector round_decisions(const Aig& g, int round) {
    DecisionVector d(g.num_slots(), OpKind::None);
    for (const Var v : g.topo_ands()) {
        d[v] = bg::opt::op_from_index(
            static_cast<int>((v + static_cast<Var>(round)) % 3));
    }
    return d;
}

void expect_matches_full_rebuild(const FeatureCache& cache, const Aig& g,
                                 const bg::opt::OptParams& params) {
    const StaticFeatures want = compute_static_features(g, params);
    const GraphCsr want_csr = build_csr(g);
    ASSERT_EQ(cache.features().size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
        // Exact float equality: a row is either untouched (same bits by
        // definition) or recomputed by the very same code path.
        EXPECT_EQ(cache.features()[v], want[v]) << "row " << v;
    }
    EXPECT_EQ(cache.csr().offsets, want_csr.offsets);
    EXPECT_EQ(cache.csr().neighbors, want_csr.neighbors);
    EXPECT_EQ(cache.csr().inv_deg, want_csr.inv_deg);
}

TEST(FeatureCache, IncrementalMatchesFullRebuildAfterEveryCommit) {
    const bg::opt::OptParams params;
    for (const char* name : {"b07", "b10", "b12"}) {
        Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        FeatureCache cache;
        cache.rebuild(g, params);
        ASSERT_TRUE(cache.valid());
        expect_matches_full_rebuild(cache, g, params);

        bool any_incremental = false;
        for (int round = 0; round < 4; ++round) {
            SCOPED_TRACE(std::string(name) + " round " +
                         std::to_string(round));
            const DecisionVector d = round_decisions(g, round);
            const auto commit = bg::opt::orchestrate_parallel(
                g, d, params, bg::opt::size_objective(), {});
            cache.update(g, params, commit.touched);
            expect_matches_full_rebuild(cache, g, params);
            if (cache.last_recomputed() < g.num_slots()) {
                any_incremental = true;
            }
        }
        EXPECT_TRUE(any_incremental)
            << name << ": every update recomputed every row — the cache "
                       "never actually worked incrementally";
    }
}

TEST(FeatureCache, PooledRecomputeMatchesSerial) {
    const bg::opt::OptParams params;
    Aig g = bg::circuits::make_benchmark_scaled("b11", 0.4);

    FeatureCache serial;
    serial.rebuild(g, params);
    bg::ThreadPool pool(4);
    FeatureCache pooled;
    pooled.rebuild(g, params, &pool);
    ASSERT_EQ(pooled.features().size(), serial.features().size());
    EXPECT_EQ(pooled.features(), serial.features());

    const DecisionVector d = round_decisions(g, 0);
    Aig g2 = g;
    const auto commit = bg::opt::orchestrate_parallel(
        g, d, params, bg::opt::size_objective(), {});
    const auto commit2 = bg::opt::orchestrate_parallel(
        g2, d, params, bg::opt::size_objective(), {});
    serial.update(g, params, commit.touched);
    pooled.update(g2, params, commit2.touched, &pool);
    EXPECT_EQ(pooled.features(), serial.features());
    EXPECT_EQ(pooled.last_recomputed(), serial.last_recomputed());
}

TEST(FeatureCache, NoopCommitRecomputesNothing) {
    const bg::opt::OptParams params;
    const Aig g = bg::circuits::make_benchmark_scaled("b08", 0.3);
    FeatureCache cache;
    cache.rebuild(g, params);
    cache.update(g, params, {});
    EXPECT_EQ(cache.last_recomputed(), 0u);
    expect_matches_full_rebuild(cache, g, params);
}

TEST(FeatureCache, InvalidateForcesRebuild) {
    const bg::opt::OptParams params;
    const Aig g = bg::test::redundant_aig(8, 40, 2, 7);
    FeatureCache cache;
    cache.rebuild(g, params);
    ASSERT_TRUE(cache.valid());
    cache.invalidate();
    EXPECT_FALSE(cache.valid());
    cache.rebuild(g, params);
    EXPECT_TRUE(cache.valid());
    expect_matches_full_rebuild(cache, g, params);
}

TEST(FeatureCache, IncrementalIteratedFlowIsDeterministic) {
    // End-to-end smoke for FlowConfig::incremental_features: the
    // incremental iterated flow completes, optimizes, and is repeatable
    // bit for bit.  (It legitimately differs from the compact-every-round
    // default — compaction is deferred, so round-by-round var ids and
    // sampling diverge — which is why parity is pinned at the feature
    // level above, not the flow level.)
    ModelConfig mc;
    mc.sage_dims = {12, 12, 8};
    mc.mlp_dims = {16, 8, 1};
    mc.dropout = 0.0F;
    mc.seed = 29;
    const BoolGebraModel model(mc);

    FlowConfig fc;
    fc.num_samples = 16;
    fc.top_k = 3;
    fc.seed = 5;
    fc.incremental_features = true;

    const Aig design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    const auto a = run_iterated_flow(design, model, fc, 2);
    const auto b = run_iterated_flow(design, model, fc, 2);
    EXPECT_EQ(a.original_size, b.original_size);
    EXPECT_EQ(a.final_size, b.final_size);
    EXPECT_EQ(a.per_round_reduction, b.per_round_reduction);
    EXPECT_EQ(a.final_ratio, b.final_ratio);
    EXPECT_LE(a.final_size, a.original_size);
}

}  // namespace
